"""DTDG scenario: temporal link prediction on an evolving interaction
network (sx-mathoverflow stand-in), with on-demand snapshots.

Shows the GPMAGraph path end-to-end: the PMA-backed dynamic graph, the
snapshot cache across training sequences, the Graph Stack rewinding
snapshots during backward, and evaluation with ROC-AUC — the paper's DTDG
benchmark task ("Binary Cross Entropy Loss with Logits").

Run:  python examples/link_prediction_dtdg.py
"""

import numpy as np

from repro.dataset import load_sx_mathoverflow
from repro.tensor import Tensor, init, no_grad
from repro.train import (
    STGraphLinkPredictor,
    STGraphTrainer,
    make_link_prediction_samples,
)
from repro.train.metrics import accuracy_from_logits, roc_auc

FEATURES = 16
HIDDEN = 16


def main() -> None:
    dataset = load_sx_mathoverflow(
        scale=0.03, feature_size=FEATURES, percent_change=5.0, max_snapshots=10
    )
    print(f"dataset: {dataset.summary_row()}")
    print(
        "per-snapshot %change:",
        [round(dataset.dtdg.percent_change(t), 2) for t in range(1, dataset.num_timestamps)],
    )

    graph = dataset.build_gpma(enable_cache=True)
    print(f"graph: {graph}  (PMA storage {graph.storage_bytes()/1e3:.0f} KB)")

    samples = make_link_prediction_samples(dataset.dtdg, samples_per_timestamp=256, seed=0)
    init.set_seed(11)
    model = STGraphLinkPredictor(FEATURES, HIDDEN)
    trainer = STGraphTrainer(
        model, graph, lr=5e-3, sequence_length=4,
        task="link_prediction", link_samples=samples,
    )

    for epoch in range(25):
        loss = trainer.train_epoch(dataset.features)
        if epoch % 5 == 0:
            print(f"epoch {epoch:3d}  loss {loss:8.4f}")

    print(
        f"\nGPMA machinery: {graph.update_batches_applied} update batches applied, "
        f"{graph.cache_restores} cache restores"
    )

    # Evaluate AUC per timestamp with the trained embeddings.
    with no_grad():
        aucs, accs = [], []
        state = None
        for t in range(dataset.num_timestamps):
            trainer.executor.begin_timestamp(t)
            h, state = model.step(trainer.executor, Tensor(dataset.features[t]), state)
            logits = model.score(h, samples[t].pairs).numpy()
            aucs.append(roc_auc(logits, samples[t].labels))
            accs.append(accuracy_from_logits(logits, samples[t].labels))
    print(f"mean ROC-AUC {np.nanmean(aucs):.3f}   mean accuracy {np.mean(accs):.3f}")
    assert np.nanmean(aucs) > 0.6, "trained link predictor should beat chance"


if __name__ == "__main__":
    main()
