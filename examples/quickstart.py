"""Quickstart: train a TGCN on a static-temporal dataset with STGraph.

Mirrors the paper's node-regression benchmark setup on the Hungary
Chickenpox stand-in: features are 8 lagged signal values per county, the
target is the next value, MSE loss, Adam, Algorithm-1 training.

Run:  python examples/quickstart.py
"""

from repro.dataset import load_hungary_chickenpox
from repro.train import STGraphNodeRegressor, STGraphTrainer
from repro.train.metrics import rmse
from repro.tensor import Tensor, init, no_grad


def main() -> None:
    # 1. Load the dataset (synthetic stand-in at Table II's exact size).
    dataset = load_hungary_chickenpox(lags=8, num_timestamps=60)
    print(f"dataset: {dataset.summary_row()}")

    # 2. Build the STGraph graph object (pre-processes both CSR
    #    orientations, shared edge labels, degree-sorted node ids).
    graph = dataset.build_graph()

    # 3. Model: TGCN cell + linear head. The GCN gates inside TGCN are
    #    vertex-centric programs compiled to fused kernels.
    init.set_seed(7)
    model = STGraphNodeRegressor(in_features=8, hidden=16)
    conv = model.cell.conv_z
    print("\ngenerated forward kernel for the GCN gate:")
    print(conv.generated_forward_source)

    # 4. Train with Algorithm 1.
    trainer = STGraphTrainer(model, graph, lr=1e-2)
    train_T = 48
    for epoch in range(30):
        loss = trainer.train_epoch(dataset.features[:train_T], dataset.targets[:train_T])
        if epoch % 5 == 0:
            print(f"epoch {epoch:3d}  loss {loss:8.4f}  ({trainer.epoch_times[-1]*1e3:.1f} ms)")

    # 5. Evaluate one-step-ahead predictions on held-out timestamps.
    with no_grad():
        errors = []
        state = None
        for t in range(train_T, dataset.num_timestamps):
            trainer.executor.begin_timestamp(t)
            pred, state = model.step(trainer.executor, Tensor(dataset.features[t]), state)
            errors.append(rmse(pred.numpy(), dataset.targets[t]))
    print(f"\nheld-out RMSE over {len(errors)} steps: {sum(errors)/len(errors):.4f}")
    print(f"executor stats: {trainer.executor.stats()}")


if __name__ == "__main__":
    main()
