"""Writing a custom GNN layer with the vertex-centric programming model.

The paper's core promise: "a deep-learning practitioner can implement the
GNN logic quickly and a learner can ascertain the model's purpose from the
vertex-centric implementation."  This example builds a custom gated
attention layer from scratch, inspects every compilation stage (vertex IR,
tensor IR, generated kernels, State-Stack analysis), and trains it.

Run:  python examples/custom_vertex_program.py
"""

import numpy as np

from repro.compiler import compile_vertex_program
from repro.compiler.symbols import vfn
from repro.core import TemporalExecutor, VertexCentricLayer
from repro.dataset import load_wikimaths
from repro.tensor import Tensor, functional as F, init, optim
from repro.tensor.nn import Parameter


# --- 1. The vertex-centric definition ------------------------------------
def gated_attention(v):
    """Attention over in-neighbors with a tanh score, scaled by the
    destination's degree-normalization — four readable lines."""
    alpha = v.edge_softmax(lambda nb: vfn.tanh(nb.score_l + v.score_r))
    return v.agg_sum(lambda nb: nb.ft * alpha) * v.norm


#: (fn, feature_widths, grad_features, name) tuples `repro lint --examples`
#: compiles and verifies without running main().
LINT_SPECS = [
    (
        gated_attention,
        {"ft": "v", "score_l": "s", "score_r": "s", "norm": "s"},
        {"ft", "score_l", "score_r"},
        "gated_attention",
    ),
]


class GatedAttentionConv(VertexCentricLayer):
    def __init__(self, in_features: int, out_features: int) -> None:
        super().__init__(
            gated_attention,
            feature_widths={"ft": "v", "score_l": "s", "score_r": "s", "norm": "s"},
            grad_features={"ft", "score_l", "score_r"},
            name="gated_attention",
        )
        self.weight = Parameter(init.glorot_uniform((in_features, out_features)))
        self.attn_l = Parameter(init.glorot_uniform((out_features, 1)))
        self.attn_r = Parameter(init.glorot_uniform((out_features, 1)))

    def forward(self, executor, x):
        ctx = executor.current_context()
        norm = (1.0 / np.sqrt(np.maximum(ctx.in_deg, 1))).astype(np.float32)
        ft = F.matmul(x, self.weight)
        sl = F.reshape(F.matmul(ft, self.attn_l), (-1,))
        sr = F.reshape(F.matmul(ft, self.attn_r), (-1,))
        return self.aggregate(executor, {"ft": ft, "score_l": sl, "score_r": sr, "norm": norm})


def main() -> None:
    init.set_seed(0)
    layer = GatedAttentionConv(8, 16)

    # --- 2. Inspect what the compiler produced ----------------------------
    print(layer.program.describe())
    print("\n=== generated forward kernel ===")
    print(layer.generated_forward_source)
    print("=== generated backward kernel ===")
    print(layer.generated_backward_source)
    print(
        f"State Stack keeps {len(layer.program.saved_spec)} of "
        f"{len(layer.program.analysis.all_forward_buffers)} forward buffers "
        f"per timestamp: {layer.program.saved_spec}"
    )

    # --- 3. Train it ------------------------------------------------------
    dataset = load_wikimaths(lags=8, scale=0.2, num_timestamps=20)
    graph = dataset.build_graph()
    executor = TemporalExecutor(graph)
    head = Parameter(init.glorot_uniform((16, 1)))
    params = list(layer.parameters()) + [head]
    opt = optim.Adam(params, lr=5e-3)

    for epoch in range(15):
        opt.zero_grad()
        total = None
        for t in range(dataset.num_timestamps):
            executor.begin_timestamp(t)
            h = layer(executor, Tensor(dataset.features[t]))
            pred = F.matmul(F.tanh(h), head)
            loss = F.mse_loss(pred, dataset.targets[t])
            total = loss if total is None else F.add(total, loss)
        total.backward()
        executor.check_drained()
        opt.step()
        if epoch % 3 == 0:
            print(f"epoch {epoch:3d}  loss {total.item():8.4f}")


if __name__ == "__main__":
    main()
