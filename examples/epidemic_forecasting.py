"""Epidemic forecasting with spectral and diffusion TGNNs.

Forecasts county-level case counts (Hungary Chickenpox stand-in) with two
architectures beyond the benchmark TGCN:

* **ChebConv + GRU** — spectral filtering (the ChebConv building block
  PyG-T composes, paper §III);
* **DCRNN** — bidirectional diffusion convolution, which compiles to the
  framework's in- *and* out-neighbor aggregations in one fused kernel each.

Also demonstrates the training utilities: chronological train/test split,
early stopping with best-weight restore, checkpointing, and the rollout
evaluator.

Run:  python examples/epidemic_forecasting.py
"""

import tempfile

from repro.core import TemporalExecutor
from repro.dataset import load_hungary_chickenpox
from repro.nn import DCRNN, ChebConv
from repro.tensor import functional as F, init
from repro.tensor.nn import GRUCell, Linear, Module
from repro.tensor.tensor import Tensor
from repro.train import (
    EarlyStopping,
    STGraphTrainer,
    evaluate_regression,
    load_checkpoint,
    save_checkpoint,
    temporal_train_test_split,
)

LAGS = 8
HIDDEN = 16


class ChebGRURegressor(Module):
    """Chebyshev-filtered inputs driving a GRU, with a linear head."""

    def __init__(self, in_features: int, hidden: int, k: int = 3) -> None:
        super().__init__()
        self.conv = ChebConv(in_features, hidden, k=k)
        self.cell = GRUCell(hidden, hidden)
        self.head = Linear(hidden, 1)
        self.hidden = hidden

    def step(self, executor: TemporalExecutor, x: Tensor, state):
        if state is None:
            state = F.zeros((x.shape[0], self.hidden))
        h = self.cell(F.tanh(self.conv(executor, x)), state)
        return self.head(h), h


class DCRNNRegressor(Module):
    """The diffusion-convolutional GRU with a linear head."""

    def __init__(self, in_features: int, hidden: int, k: int = 2) -> None:
        super().__init__()
        self.cell = DCRNN(in_features, hidden, k=k)
        self.head = Linear(hidden, 1)

    def step(self, executor: TemporalExecutor, x: Tensor, state):
        h = self.cell(executor, x, state)
        return self.head(h), h


def train_model(name: str, model: Module, dataset) -> None:
    tr_x, te_x, tr_y, te_y = temporal_train_test_split(
        dataset.features, dataset.targets, train_ratio=0.8
    )
    trainer = STGraphTrainer(model, dataset.build_graph(), lr=1e-2)
    stopper = EarlyStopping(patience=8, min_delta=1e-3)
    for epoch in range(60):
        loss = trainer.train_epoch(tr_x, tr_y)
        if stopper.step(loss, model):
            print(f"{name}: early stop at epoch {epoch} (best train loss {stopper.best_loss:.4f})")
            break
    stopper.restore_best(model)

    # checkpoint round-trip (resumable training)
    with tempfile.NamedTemporaryFile(suffix=".npz") as tmp:
        save_checkpoint(tmp.name, model, trainer.optimizer, extra={"dataset": dataset.name})
        extra = load_checkpoint(tmp.name, model, trainer.optimizer)
        assert extra["dataset"] == dataset.name

    metrics = evaluate_regression(model, trainer.executor, te_x, te_y, start_timestamp=len(tr_x))
    print(f"{name}: held-out  rmse={metrics['rmse']:.4f}  mae={metrics['mae']:.4f}\n")


def main() -> None:
    dataset = load_hungary_chickenpox(lags=LAGS, num_timestamps=80)
    print(f"dataset: {dataset.summary_row()}\n")
    init.set_seed(5)
    train_model("ChebConv+GRU (K=3)", ChebGRURegressor(LAGS, HIDDEN), dataset)
    init.set_seed(5)
    train_model("DCRNN (K=2)", DCRNNRegressor(LAGS, HIDDEN), dataset)


if __name__ == "__main__":
    main()
