"""Static-temporal scenario: passenger-inflow forecasting (Montevideo Bus).

Compares two temporal architectures from the layer library — TGCN and
GConvGRU — on the same dataset, and compares STGraph against the PyG-T
baseline for the TGCN model (per-epoch time, peak memory, loss parity):
the single-dataset version of the paper's Figure 5/6 experiment.

Run:  python examples/traffic_forecasting.py
"""

import numpy as np

from repro.baselines.pygt import PyGTTGCN
from repro.dataset import load_montevideo_bus
from repro.device import Device, use_device
from repro.nn import GConvGRU, TGCN
from repro.tensor import init
from repro.train import BaselineTrainer, PyGTNodeRegressor, STGraphNodeRegressor, STGraphTrainer

LAGS = 8
HIDDEN = 16
EPOCHS = 12


def train_stgraph(dataset, cell_cls, label):
    device = Device(name=label)
    with use_device(device):
        init.set_seed(1)
        model = STGraphNodeRegressor(LAGS, HIDDEN, cell=cell_cls(LAGS, HIDDEN))
        trainer = STGraphTrainer(model, dataset.build_graph(), lr=1e-2, sequence_length=10)
        losses = trainer.train(dataset.features, dataset.targets, epochs=EPOCHS, warmup=2)
        print(
            f"{label:22s} loss {losses[0]:7.3f} -> {losses[-1]:7.3f}   "
            f"{trainer.mean_epoch_time*1e3:7.1f} ms/epoch   "
            f"{device.tracker.peak_bytes/1e6:6.2f} MB peak"
        )
        return losses


def train_baseline(dataset):
    device = Device(name="pygt")
    with use_device(device):
        init.set_seed(1)
        model = PyGTNodeRegressor(LAGS, HIDDEN)
        signal = dataset.to_pygt_signal()
        trainer = BaselineTrainer(model, signal.edge_index, lr=1e-2, sequence_length=10)
        losses = trainer.train(dataset.features, dataset.targets, epochs=EPOCHS, warmup=2)
        print(
            f"{'PyG-T TGCN (baseline)':22s} loss {losses[0]:7.3f} -> {losses[-1]:7.3f}   "
            f"{trainer.mean_epoch_time*1e3:7.1f} ms/epoch   "
            f"{device.tracker.peak_bytes/1e6:6.2f} MB peak"
        )
        return losses


def main() -> None:
    dataset = load_montevideo_bus(lags=LAGS, num_timestamps=40)
    print(f"dataset: {dataset.summary_row()}\n")
    stg_losses = train_stgraph(dataset, TGCN, "STGraph TGCN")
    train_stgraph(dataset, GConvGRU, "STGraph GConvGRU")
    pyg_losses = train_baseline(dataset)
    drift = abs(stg_losses[-1] - pyg_losses[-1]) / max(abs(pyg_losses[-1]), 1e-9)
    print(f"\nSTGraph vs PyG-T final-loss drift: {drift:.2e} (same math, different execution)")
    assert drift < 1e-3


if __name__ == "__main__":
    main()
