"""Kernel micro-benchmarks: vertex-centric SpMM vs edge-parallel
gather/scatter, the fusion ablation, and the compiled (native) tier."""

import time

import networkx as nx
import numpy as np
import pytest

from repro.compiler import compile_vertex_program
from repro.compiler.native import native_backend
from repro.compiler.runtime import GraphContext
from repro.graph import StaticGraph
from repro.tensor import Tensor, functional as F

N = 3000
P = 0.01
FDIM = 32


@pytest.fixture(scope="module")
def graph():
    g = nx.gnp_random_graph(N, P, seed=1, directed=True)
    edges = np.array(list(g.edges()), dtype=np.int64).T
    return g, edges


@pytest.fixture
def ctx(graph):
    g, edges = graph
    return GraphContext(StaticGraph(edges[0], edges[1], N))


def _gcn_fn(v):
    return v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm


def _inputs(ctx, rng):
    h = rng.standard_normal((N, FDIM)).astype(np.float32)
    norm = (1.0 / np.sqrt(np.maximum(ctx.in_deg, 1))).astype(np.float32)
    return h, norm


def test_vertex_centric_forward(benchmark, ctx, rng):
    prog = compile_vertex_program(_gcn_fn, {"h": "v", "norm": "s"}, {"h"}, name="mb_vc")
    h, norm = _inputs(ctx, rng)
    benchmark(lambda: prog.forward(ctx, {"h": h, "norm": norm}))


def test_edge_parallel_forward(benchmark, graph, rng):
    """The PyG mechanism on the same graph/features: gather E×F, scatter."""
    g, edges = graph
    h = Tensor(rng.standard_normal((N, FDIM)).astype(np.float32))
    w = rng.standard_normal(edges.shape[1]).astype(np.float32)

    def op():
        msgs = F.mul(F.index_select(h, edges[0]), w[:, None])
        return F.scatter_add(msgs, edges[1], N)

    benchmark(op)


def test_vertex_centric_backward(benchmark, ctx, rng):
    prog = compile_vertex_program(_gcn_fn, {"h": "v", "norm": "s"}, {"h"}, name="mb_vcb")
    h, norm = _inputs(ctx, rng)
    out, saved = prog.forward(ctx, {"h": h, "norm": norm})
    gout = rng.standard_normal(out.shape).astype(np.float32)
    benchmark(lambda: prog.backward(ctx, gout, saved))


def test_ablation_fused_kernel(benchmark, ctx, rng):
    prog = compile_vertex_program(_gcn_fn, {"h": "v", "norm": "s"}, {"h"}, name="mb_f", fused=True)
    h, norm = _inputs(ctx, rng)
    benchmark(lambda: prog.forward(ctx, {"h": h, "norm": norm}))


def test_ablation_unfused_kernels(benchmark, ctx, rng):
    """One launch per tensor-IR op — Seastar's motivation for fusion."""
    prog = compile_vertex_program(_gcn_fn, {"h": "v", "norm": "s"}, {"h"}, name="mb_u", fused=False)
    h, norm = _inputs(ctx, rng)
    benchmark(lambda: prog.forward(ctx, {"h": h, "norm": norm}))


def test_ablation_degree_sort_on(benchmark, graph, rng):
    g, edges = graph
    ctx = GraphContext(StaticGraph(edges[0], edges[1], N, sort_by_degree=True))
    prog = compile_vertex_program(_gcn_fn, {"h": "v", "norm": "s"}, {"h"}, name="mb_ds")
    h, norm = _inputs(ctx, rng)
    benchmark(lambda: prog.forward(ctx, {"h": h, "norm": norm}))


def test_compiled_forward(benchmark, ctx, rng):
    """The compiled (native) tier on the same CSR aggregation cell.

    Skipped without a toolchain — with neither numba nor a working cc the
    compiled engine is a documented delegate to the kernel engine, so
    timing it would just re-measure ``test_vertex_centric_forward``.
    """
    if native_backend() is None:
        pytest.skip("no native toolchain (numba or cc)")
    prog = compile_vertex_program(
        _gcn_fn, {"h": "v", "norm": "s"}, {"h"}, name="mb_cc", engine="compiled"
    )
    h, norm = _inputs(ctx, rng)
    prog.forward(ctx, {"h": h, "norm": norm})  # warm the driver cache
    benchmark(lambda: prog.forward(ctx, {"h": h, "norm": norm}))


def test_compiled_matches_kernel_bitwise(ctx, rng):
    """Compiled vs kernel on the micro cell: bitwise-equal fwd and bwd.

    Runs on every machine — without a toolchain the compiled engine
    delegates to the kernel engine, so equality is trivially preserved.
    """
    prog = compile_vertex_program(_gcn_fn, {"h": "v", "norm": "s"}, {"h"}, name="mb_eq")
    h, norm = _inputs(ctx, rng)
    env = {"h": h, "norm": norm}
    out_k, saved_k = prog.forward(ctx, env)
    out_c, saved_c = prog.with_engine("compiled").forward(ctx, env)
    assert np.array_equal(out_k, out_c)
    gout = rng.standard_normal(out_k.shape).astype(np.float32)
    grads_k = prog.backward(ctx, gout, saved_k)
    grads_c = prog.with_engine("compiled").backward(ctx, gout, saved_c)
    assert sorted(grads_k) == sorted(grads_c)
    for name in grads_k:
        assert np.array_equal(grads_k[name], grads_c[name])


def _median_seconds(fn, repeats: int = 15) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    times.sort()
    return times[len(times) // 2]


@pytest.mark.skipif(
    native_backend() != "numba",
    reason="the >=2x speedup gate applies only when numba is available",
)
def test_compiled_speedup_gate(ctx, rng):
    """Acceptance gate: compiled tier >= 2x kernel tier on CSR aggregation.

    Tied to the numba backend (the CI compiled-tier job installs it); on
    machines with only the cc path — or no toolchain at all — the gate is
    skipped, not failed.
    """
    prog = compile_vertex_program(_gcn_fn, {"h": "v", "norm": "s"}, {"h"}, name="mb_gate")
    compiled = prog.with_engine("compiled")
    h, norm = _inputs(ctx, rng)
    env = {"h": h, "norm": norm}
    prog.forward(ctx, env)
    compiled.forward(ctx, env)  # warm drivers + numba dispatch
    t_kernel = _median_seconds(lambda: prog.forward(ctx, env))
    t_compiled = _median_seconds(lambda: compiled.forward(ctx, env))
    assert t_compiled > 0
    assert t_kernel / t_compiled >= 2.0, (
        f"compiled tier {t_kernel / t_compiled:.2f}x vs kernel; expected >= 2x"
    )


def test_ablation_degree_sort_off(benchmark, graph, rng):
    """Figure 3 ablation: identity processing order.  (On a GPU the sorted
    order overlaps high-degree rows with many low-degree ones; on the
    simulated device the mechanism is preserved but the win is not
    expected to be large.)"""
    g, edges = graph
    ctx = GraphContext(StaticGraph(edges[0], edges[1], N, sort_by_degree=False))
    prog = compile_vertex_program(_gcn_fn, {"h": "v", "norm": "s"}, {"h"}, name="mb_dsoff")
    h, norm = _inputs(ctx, rng)
    benchmark(lambda: prog.forward(ctx, {"h": h, "norm": norm}))
