"""Figure 9: % split of total time into GNN processing vs graph updates.

Expected shape: the graph-update share of STGraph-GPMA's time decreases
significantly as feature size grows.
"""

from repro.bench.experiments import fig9_time_breakup
from repro.dataset import DYNAMIC_DATASETS

_DATASETS = {
    "sx-mathoverflow": DYNAMIC_DATASETS["sx-mathoverflow"],
    "reddit-title": DYNAMIC_DATASETS["reddit-title"],
}


def test_fig9(benchmark):
    results, text = benchmark.pedantic(
        fig9_time_breakup,
        kwargs=dict(feature_sizes=(4, 64), datasets=_DATASETS, scale=0.02),
        rounds=1, iterations=1,
    )
    print("\n" + text)
    for name in _DATASETS:
        per_ds = [r for r in results if name in r.dataset]
        small = next(r for r in per_ds if r.params["F"] == 4)
        large = next(r for r in per_ds if r.params["F"] == 64)
        assert large.graph_update_fraction < small.graph_update_fraction
        assert 0.0 < large.graph_update_fraction < 1.0
