"""Ablation: the State Stack dead-feature elimination (paper §V-B).

Compares training with the compiler's saved-tensor pruning against the
ablated variant that retains every forward buffer per timestamp — the
memory the IR comparison saves is measured, not asserted from theory.
"""

import numpy as np

from repro.core import TemporalExecutor
from repro.dataset import load_windmill_output
from repro.device import Device, use_device
from repro.nn import GCNConv
from repro.tensor import Tensor, functional as F, init


def _run(state_stack_opt: bool, seq_len: int = 16):
    device = Device(name="ablation")
    with use_device(device):
        ds = load_windmill_output(lags=8, scale=0.4, num_timestamps=seq_len)
        graph = ds.build_graph()
        ex = TemporalExecutor(graph)
        init.set_seed(0)
        conv = GCNConv(8, 16, state_stack_opt=state_stack_opt)
        total = None
        for t in range(seq_len):
            ex.begin_timestamp(t)
            out = conv(ex, Tensor(ds.features[t], requires_grad=True))
            loss = F.mse_loss(out, np.zeros(out.shape, dtype=np.float32))
            total = loss if total is None else F.add(total, loss)
        # after the full forward, every timestamp's saved state is resident
        peak_stack_bytes = ex.state_stack.current_bytes()
        total.backward()
        ex.check_drained()
        return peak_stack_bytes, device.tracker.peak_bytes


def test_state_stack_pruning_saves_memory(benchmark):
    def run_both():
        on = _run(state_stack_opt=True)
        off = _run(state_stack_opt=False)
        return on, off

    (on_stack, on_peak), (off_stack, off_peak) = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(
        f"\nstate-stack bytes over a 16-step sequence: "
        f"optimized={on_stack/1e6:.2f}MB  ablated={off_stack/1e6:.2f}MB "
        f"({off_stack/max(on_stack,1):.1f}x)"
    )
    # The ablated variant must retain strictly more per-timestamp state.
    assert off_stack > 2 * on_stack
    assert on_peak <= off_peak
