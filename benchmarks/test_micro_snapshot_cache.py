"""Snapshot-cache micro-benchmark: CSR/context reuse on vs off.

Every training sequence visits its snapshots twice (forward, then the LIFO
backward walk).  The (timestamp, version)-keyed CSR cache plus the
executor's context cache serve the second visit — and every later epoch —
from the forward pass's builds, so the graph_update share of epoch time
(Figure 9's y-axis) drops while the computed losses stay bitwise equal.
"""

import pytest

from repro.bench import run_dynamic_experiment
from repro.bench.report import format_table
from repro.dataset import load_sx_mathoverflow

_KW = dict(
    scale=0.02, feature_size=8, max_snapshots=12,
    sequence_length=4, epochs=3, warmup=1,
)


def _row(label, r):
    return {
        "csr_cache": label,
        "epoch_s": round(r.per_epoch_seconds, 4),
        "update_frac": round(r.graph_update_fraction, 3),
        "csr_hits": r.csr_cache_hits,
        "csr_misses": r.csr_cache_misses,
        "ctx_hits": r.ctx_cache_hits,
        "noop_skipped": r.noop_updates_skipped,
        "hit_rate": f"{100 * r.csr_cache_hit_rate:.1f}%",
    }


def test_csr_cache_cuts_graph_update_work(benchmark):
    def run_both():
        on = run_dynamic_experiment("gpma", load_sx_mathoverflow, csr_cache=True, **_KW)
        off = run_dynamic_experiment("gpma", load_sx_mathoverflow, csr_cache=False, **_KW)
        return on, off

    on, off = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(format_table([_row("on", on), _row("off", off)],
                       title="GPMA snapshot reuse: graph_update share"))
    # The ablation flag is clean: off records zero reuse of either kind.
    assert off.csr_cache_hits == 0 and off.ctx_cache_hits == 0
    assert on.csr_cache_hits + on.ctx_cache_hits > 0
    # Reuse eliminates rebuilds (Algorithm 3 runs), it never adds them.
    assert on.csr_cache_misses < off.csr_cache_misses
    # Pure optimization: training outcomes are identical.
    assert on.final_loss == pytest.approx(off.final_loss, rel=1e-6)


def test_bench_backward_walk_cached(benchmark):
    """Forward+backward positioning with the CSR cache warm: the backward
    walk is PMA repositioning only, zero Algorithm 3 runs."""
    from repro.graph import GPMAGraph

    ds = load_sx_mathoverflow(scale=0.02, feature_size=8, max_snapshots=12)
    graph = GPMAGraph(ds.dtdg, csr_cache_size=ds.num_timestamps)

    def roundtrip():
        for t in range(ds.num_timestamps):
            graph.get_graph(t)
            graph.forward_csr()
        for t in range(ds.num_timestamps - 1, -1, -1):
            graph.get_backward_graph(t)
            graph.forward_csr()

    benchmark(roundtrip)
    assert graph.csr_cache_misses == ds.num_timestamps  # first pass only


def test_bench_backward_walk_uncached(benchmark):
    """The same roundtrip with reuse disabled: every repositioning rebuilds."""
    from repro.graph import GPMAGraph

    ds = load_sx_mathoverflow(scale=0.02, feature_size=8, max_snapshots=12)
    graph = GPMAGraph(ds.dtdg, enable_csr_cache=False)

    def roundtrip():
        for t in range(ds.num_timestamps):
            graph.get_graph(t)
            graph.forward_csr()
        for t in range(ds.num_timestamps - 1, -1, -1):
            graph.get_backward_graph(t)
            graph.forward_csr()

    benchmark(roundtrip)
    assert graph.csr_cache_hits == 0
