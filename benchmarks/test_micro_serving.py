"""Serving micro-benchmarks: coalescing vs per-query dispatch, cache reuse.

Two of these are *gating* (plain asserts, not just timings):

* request coalescing must beat unbatched per-query dispatch on p50 latency
  under >= 100 concurrent closed-loop clients;
* repeated same-version queries must be pure reuse — zero Algorithm-3
  snapshot rebuilds, zero CSR/context cache misses, zero extra forwards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import DTDG, GPMAGraph
from repro.serve import InferenceEngine, ServingHarness, random_update_batches
from repro.train import STGraphNodeRegressor

N, F, HIDDEN = 256, 8, 16
CLIENTS = 100


@pytest.fixture
def setup(rng):
    src = rng.integers(0, N, 1500)
    dst = rng.integers(0, N, 1500)
    keep = src != dst
    dtdg = DTDG([(src[keep], dst[keep])], num_nodes=N)
    feats = rng.standard_normal((N, F)).astype(np.float32)
    return dtdg, feats


def _run(dtdg, feats, *, batching, invalidation=True, updates=(), clients=CLIENTS,
         requests=6, update_wait=True):
    model = STGraphNodeRegressor(F, HIDDEN)
    engine = InferenceEngine(
        model, GPMAGraph(dtdg), feats,
        batching=batching, invalidation=invalidation,
    )
    with engine:
        report = ServingHarness(
            engine,
            clients=clients,
            requests_per_client=requests,
            updates=list(updates),
            update_wait=update_wait,
            seed=42,
            collect=False,
        ).run(timeout=300.0)
    return report


def test_batching_beats_unbatched_p50_at_100_clients(setup):
    """GATING: coalescing wins on p50 under >= 100 concurrent clients."""
    dtdg, feats = setup
    batched = _run(dtdg, feats, batching=True)
    unbatched = _run(dtdg, feats, batching=False)
    print(
        f"\n  batched:   p50 {batched.p50_ms:.3f} ms / p99 {batched.p99_ms:.3f} ms "
        f"({batched.qps:.0f} qps, {batched.engine_stats['forwards']} forwards)"
        f"\n  unbatched: p50 {unbatched.p50_ms:.3f} ms / p99 {unbatched.p99_ms:.3f} ms "
        f"({unbatched.qps:.0f} qps, {unbatched.engine_stats['forwards']} forwards)"
    )
    assert int(batched.engine_stats["max_batch_observed"]) > 1
    assert int(batched.engine_stats["forwards"]) < int(unbatched.engine_stats["forwards"])
    assert batched.p50_ms < unbatched.p50_ms, (
        f"coalescing lost on p50: batched {batched.p50_ms:.3f} ms "
        f"vs unbatched {unbatched.p50_ms:.3f} ms"
    )


def test_same_version_queries_are_pure_reuse(setup, fresh_device):
    """GATING: repeated queries at one version rebuild nothing (Algorithm 3
    never re-runs; CSR/context caches only hit)."""
    dtdg, feats = setup
    model = STGraphNodeRegressor(F, HIDDEN)
    engine = InferenceEngine(model, GPMAGraph(dtdg), feats)
    profiler = fresh_device.profiler
    with engine:
        engine.query(0)  # warm
        before = {
            "csr_cache_misses": profiler.counter("csr_cache_misses"),
            "cache_fault_rebuilds": profiler.counter("cache_fault_rebuilds"),
            "ctx_cache_misses": engine._executor.ctx_cache_misses,
            "forwards": engine.forwards,
        }
        for v in range(200):
            engine.query(v % N)
        stats = engine.stats()
    assert profiler.counter("csr_cache_misses") == before["csr_cache_misses"]
    assert profiler.counter("cache_fault_rebuilds") == before["cache_fault_rebuilds"]
    assert engine._executor.ctx_cache_misses == before["ctx_cache_misses"]
    assert stats["forwards"] == before["forwards"]
    assert stats["row_cache_hits"] == 200


def test_invalidation_cuts_forwards_under_churn(setup):
    """K-hop dirty sets let clean rows keep serving across versions."""
    dtdg, feats = setup
    updates = random_update_batches(dtdg, 8, num_adds=4, num_deletes=2, seed=5)
    with_inval = _run(dtdg, feats, batching=True, invalidation=True,
                      updates=updates, clients=16, requests=24)
    without = _run(dtdg, feats, batching=True, invalidation=False,
                   updates=updates, clients=16, requests=24)
    print(
        f"\n  invalidation on:  {with_inval.engine_stats['forwards']} forwards, "
        f"{with_inval.engine_stats['row_cache_hits']} row hits"
        f"\n  invalidation off: {without.engine_stats['forwards']} forwards, "
        f"{without.engine_stats['row_cache_hits']} row hits"
    )
    assert int(with_inval.engine_stats["rows_invalidated"]) < 8 * N
    assert int(without.engine_stats["rows_invalidated"]) == 8 * N


def test_bench_serving_throughput(benchmark, setup):
    """Timed: steady-state cache-hit throughput for one client."""
    dtdg, feats = setup
    model = STGraphNodeRegressor(F, HIDDEN)
    engine = InferenceEngine(model, GPMAGraph(dtdg), feats)
    with engine:
        engine.query(0)  # warm

        def one_query():
            engine.query(17)

        benchmark(one_query)


def test_bench_update_ingest(benchmark, setup):
    """Timed: append + position + k-hop invalidate for one update batch."""
    dtdg, feats = setup
    model = STGraphNodeRegressor(F, HIDDEN)
    updates = iter(random_update_batches(dtdg, 120, num_adds=4, num_deletes=2, seed=9))
    engine = InferenceEngine(model, GPMAGraph(dtdg), feats)
    with engine:
        engine.query(0)

        def one_batch():
            engine.ingest.apply_update(next(updates), wait=True)

        # fixed rounds: the update stream is finite
        benchmark.pedantic(one_batch, rounds=100, iterations=1, warmup_rounds=5)
