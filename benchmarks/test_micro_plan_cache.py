"""Plan-cache micro-benchmark: cold-compile vs warm-cache model construction.

The compile-once/run-every-timestamp split means layer construction is a
trace + cache lookup when the plan is warm; the full lower → autodiff →
passes → codegen pipeline only runs on a cold cache. This file measures
that gap across the whole nn layer zoo.
"""

import time

from repro.bench.report import format_table
from repro.compiler import plan_cache
from repro.nn import (
    A3TGCN,
    DCRNN,
    ChebConv,
    EvolveGCNO,
    GATConv,
    GConvGRU,
    GConvLSTM,
    GCNConv,
    RGCNConv,
    SAGEConv,
    TGCN,
)
from repro.tensor import init

ZOO = [
    ("gcn", lambda: GCNConv(8, 8)),
    ("gat", lambda: GATConv(8, 8, heads=2)),
    ("sage", lambda: SAGEConv(8, 8)),
    ("cheb", lambda: ChebConv(8, 8, k=3)),
    ("rgcn", lambda: RGCNConv(8, 8, num_relations=3)),
    ("tgcn", lambda: TGCN(8, 8)),
    ("gconv_gru", lambda: GConvGRU(8, 8)),
    ("gconv_lstm", lambda: GConvLSTM(8, 8)),
    ("a3tgcn", lambda: A3TGCN(8, 8, periods=3)),
    ("evolve_gcn", lambda: EvolveGCNO(8, 8)),
    ("dcrnn", lambda: DCRNN(8, 8, k=2)),
]


def _construct(factory):
    init.set_seed(0)
    return factory()


def test_cold_vs_warm_construction_across_zoo():
    """Second construction of every layer must build zero new plans, and the
    zoo-wide warm construction time must beat the cold one."""
    rows = []
    for name, factory in ZOO:
        plan_cache().clear()
        t0 = time.perf_counter()
        _construct(factory)
        cold = time.perf_counter() - t0
        misses, size = plan_cache().misses, len(plan_cache())
        t0 = time.perf_counter()
        _construct(factory)
        warm = time.perf_counter() - t0
        assert plan_cache().misses == misses, name  # warm build compiles nothing
        assert len(plan_cache()) == size, name
        rows.append(
            {
                "layer": name,
                "plans": size,
                "cold_ms": round(cold * 1e3, 3),
                "warm_ms": round(warm * 1e3, 3),
                "speedup": round(cold / warm, 1) if warm > 0 else float("inf"),
            }
        )
    print()
    print(format_table(rows, title="Model construction: cold plan cache vs warm"))
    total_cold = sum(r["cold_ms"] for r in rows)
    total_warm = sum(r["warm_ms"] for r in rows)
    assert total_warm < total_cold


def test_bench_cold_compile_tgcn(benchmark):
    """Full pipeline per construction: the cache is cleared every round."""

    def build():
        plan_cache().clear()
        _construct(lambda: TGCN(8, 8))

    benchmark(build)


def test_bench_warm_cache_tgcn(benchmark):
    """Construction against a warm cache: trace + lookup only."""
    _construct(lambda: TGCN(8, 8))
    benchmark(lambda: _construct(lambda: TGCN(8, 8)))
