"""Plan-cache micro-benchmark: cold-compile vs warm-cache model construction.

The compile-once/run-every-timestamp split means layer construction is a
trace + cache lookup when the plan is warm; the full lower → autodiff →
passes → codegen pipeline only runs on a cold cache. This file measures
that gap across the whole nn layer zoo.
"""

import time

from repro.bench.report import format_table
from repro.compiler import plan_cache
from repro.nn import (
    A3TGCN,
    DCRNN,
    ChebConv,
    EvolveGCNO,
    GATConv,
    GConvGRU,
    GConvLSTM,
    GCNConv,
    RGCNConv,
    SAGEConv,
    TGCN,
)
from repro.tensor import init

ZOO = [
    ("gcn", lambda: GCNConv(8, 8)),
    ("gat", lambda: GATConv(8, 8, heads=2)),
    ("sage", lambda: SAGEConv(8, 8)),
    ("cheb", lambda: ChebConv(8, 8, k=3)),
    ("rgcn", lambda: RGCNConv(8, 8, num_relations=3)),
    ("tgcn", lambda: TGCN(8, 8)),
    ("gconv_gru", lambda: GConvGRU(8, 8)),
    ("gconv_lstm", lambda: GConvLSTM(8, 8)),
    ("a3tgcn", lambda: A3TGCN(8, 8, periods=3)),
    ("evolve_gcn", lambda: EvolveGCNO(8, 8)),
    ("dcrnn", lambda: DCRNN(8, 8, k=2)),
]


def _construct(factory):
    init.set_seed(0)
    return factory()


def test_cold_vs_warm_construction_across_zoo():
    """Second construction of every layer must build zero new plans, and the
    zoo-wide warm construction time must beat the cold one."""
    rows = []
    for name, factory in ZOO:
        plan_cache().clear()
        t0 = time.perf_counter()
        _construct(factory)
        cold = time.perf_counter() - t0
        misses, size = plan_cache().misses, len(plan_cache())
        t0 = time.perf_counter()
        _construct(factory)
        warm = time.perf_counter() - t0
        assert plan_cache().misses == misses, name  # warm build compiles nothing
        assert len(plan_cache()) == size, name
        rows.append(
            {
                "layer": name,
                "plans": size,
                "cold_ms": round(cold * 1e3, 3),
                "warm_ms": round(warm * 1e3, 3),
                "speedup": round(cold / warm, 1) if warm > 0 else float("inf"),
            }
        )
    print()
    print(format_table(rows, title="Model construction: cold plan cache vs warm"))
    total_cold = sum(r["cold_ms"] for r in rows)
    total_warm = sum(r["warm_ms"] for r in rows)
    assert total_warm < total_cold


def test_bench_cold_compile_tgcn(benchmark):
    """Full pipeline per construction: the cache is cleared every round."""

    def build():
        plan_cache().clear()
        _construct(lambda: TGCN(8, 8))

    benchmark(build)


def test_bench_warm_cache_tgcn(benchmark):
    """Construction against a warm cache: trace + lookup only."""
    _construct(lambda: TGCN(8, 8))
    benchmark(lambda: _construct(lambda: TGCN(8, 8)))


def test_verifier_overhead_under_5_percent():
    """Build-time verification must cost < 5% of a cold TGCN compile.

    Samples are interleaved (on, off, on, off, …) so clock drift and cache
    warmth hit both sides equally; the per-side minimum rejects scheduler
    noise, and a 50 µs absolute floor keeps sub-millisecond jitter from
    failing a build when the true difference is a memo-dict lookup.
    """
    from repro.compiler import set_verification

    def cold_compile() -> float:
        plan_cache().clear()
        t0 = time.perf_counter()
        _construct(lambda: TGCN(8, 8))
        return time.perf_counter() - t0

    cold_compile()  # warm imports / kernel-source dedup paths
    on_samples, off_samples = [], []
    prev = set_verification(True)
    try:
        for _ in range(9):
            set_verification(True)
            on_samples.append(cold_compile())
            set_verification(False)
            off_samples.append(cold_compile())
    finally:
        set_verification(prev)
    on, off = min(on_samples), min(off_samples)
    print(f"\ncold compile: verifier on {on * 1e3:.2f} ms, off {off * 1e3:.2f} ms "
          f"({(on / off - 1) * 100:+.2f}%)")
    assert on <= off * 1.05 + 50e-6, f"verifier adds {(on / off - 1) * 100:.1f}% (> 5%) to plan builds"
