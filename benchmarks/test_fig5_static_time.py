"""Figure 5: per-epoch time vs feature size, static-temporal, TGCN.

Expected shape (paper §VII-A): STGraph at or below PyG-T across feature
sizes, with the gap largest on dense graphs (WO, PM) and negligible on very
sparse ones (MB, WVM).
"""

from repro.bench.experiments import fig5_static_time
from repro.dataset import STATIC_DATASETS

_DATASETS = {k: STATIC_DATASETS[k] for k in ("WO", "HC", "PM")}


def test_fig5(benchmark):
    results, text = benchmark.pedantic(
        fig5_static_time,
        kwargs=dict(feature_sizes=(8, 32), datasets=_DATASETS, num_timestamps=10),
        rounds=1, iterations=1,
    )
    print("\n" + text)
    # shape assertion on the dense dataset: STGraph wins at every F
    wo = [r for r in results if "Windmill" in r.dataset]
    for fs in (8, 32):
        stg = next(r for r in wo if r.system == "stgraph" and r.params["F"] == fs)
        pyg = next(r for r in wo if r.system == "pygt" and r.params["F"] == fs)
        assert stg.per_epoch_seconds < pyg.per_epoch_seconds
        assert abs(stg.final_loss - pyg.final_loss) < 1e-2 * max(1.0, abs(pyg.final_loss))
