"""Table II: dataset summary (synthetic stand-ins at bench scale)."""

from repro.bench.experiments import table2_datasets


def test_table2(benchmark):
    rows, text = benchmark.pedantic(table2_datasets, rounds=1, iterations=1)
    print("\n" + text)
    assert len(rows) == 10
    assert sum(r["type"] == "Static" for r in rows) == 5
    assert sum(r["type"] == "Dynamic" for r in rows) == 5
    assert all(r["nodes"] > 0 and r["edges"] > 0 for r in rows)
