"""Regenerate every table and figure of the paper's evaluation section.

Prints the paper-style tables/series and (with ``--write``) refreshes the
measured sections of EXPERIMENTS.md.  Scales are controlled by the
environment (see ``repro.bench.experiments``):

    REPRO_BENCH_STATIC_SCALE=1.0 REPRO_BENCH_DYNAMIC_SCALE=0.05 \\
        python benchmarks/run_all.py --write

Defaults keep the full run under ~10 minutes on a laptop.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.bench.experiments import (
    bench_epochs,
    dynamic_scale,
    fig5_static_time,
    fig6_static_memory,
    fig7_dtdg_time,
    fig8_dtdg_memory,
    fig9_time_breakup,
    static_scale,
    table1_capabilities,
    table2_datasets,
    table3_summary,
)


def _micro_medians(repeats: int = 5) -> dict:
    """Median seconds for the snapshot-cache micro roundtrip, cached vs not.

    The same forward + LIFO-backward positioning walk the micro-benchmarks
    time under pytest-benchmark, repeated ``repeats`` times inline so the
    nightly JSON carries comparable medians without the pytest harness.
    """
    import statistics

    from repro.dataset import load_sx_mathoverflow
    from repro.device import Device, use_device
    from repro.graph import GPMAGraph

    ds = load_sx_mathoverflow(scale=0.02, feature_size=8, max_snapshots=12)

    def roundtrip(graph) -> None:
        for t in range(ds.num_timestamps):
            graph.get_graph(t)
            graph.forward_csr()
        for t in range(ds.num_timestamps - 1, -1, -1):
            graph.get_backward_graph(t)
            graph.forward_csr()

    out: dict = {}
    with use_device(Device(name="nightly-micro")):
        for label, kwargs in (
            ("backward_walk_cached", {"csr_cache_size": ds.num_timestamps}),
            ("backward_walk_uncached", {"enable_csr_cache": False}),
        ):
            graph = GPMAGraph(ds.dtdg, **kwargs)
            times = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                roundtrip(graph)
                times.append(time.perf_counter() - t0)
            out[f"{label}_median_s"] = round(statistics.median(times), 6)
    return out


def _nightly_reuse_counters() -> dict:
    """Snapshot/context reuse counters from one short DTDG training run."""
    from repro.bench import run_dynamic_experiment
    from repro.dataset import load_sx_mathoverflow

    r = run_dynamic_experiment(
        "gpma", load_sx_mathoverflow,
        scale=0.02, feature_size=8, max_snapshots=12,
        sequence_length=4, epochs=3, warmup=1,
    )
    return {
        "csr_cache_hits": r.csr_cache_hits,
        "csr_cache_misses": r.csr_cache_misses,
        "ctx_cache_hits": r.ctx_cache_hits,
        "ctx_cache_misses": r.ctx_cache_misses,
        "noop_updates_skipped": r.noop_updates_skipped,
        "csr_cache_hit_rate": round(r.csr_cache_hit_rate, 4),
        "reuse_rate": round(r.reuse_rate, 4),
    }


def _pipeline_ablation() -> tuple[list[dict], str]:
    """Pipeline on/off: the same GPMA training cell serial vs staleness 2.

    Numerics must be identical (the differential test gates that); what the
    ablation tracks nightly is the wall-clock delta, the staged-snapshot hit
    rate, and the main-thread prefetch-wait stall.
    """
    from repro.bench import run_dynamic_experiment
    from repro.bench.report import format_table
    from repro.dataset import load_sx_mathoverflow

    rows = []
    for pipeline in (0, 2):
        r = run_dynamic_experiment(
            "gpma", load_sx_mathoverflow,
            scale=0.02, feature_size=16, max_snapshots=12,
            sequence_length=4, epochs=3, warmup=1,
            pipeline=pipeline,
        )
        rows.append({
            "pipeline": pipeline,
            "epoch_s": round(r.per_epoch_seconds, 5),
            "loss": round(r.final_loss, 6),
            "prefetch_hits": r.prefetch_hits,
            "prefetch_misses": r.prefetch_misses,
            "prefetch_hit_%": round(100 * r.prefetch_hit_rate, 1),
            "prefetch_wait_s": round(r.prefetch_wait_seconds, 5),
        })
    return rows, format_table(rows, title="Pipeline ablation (GPMA, staleness 0 vs 2)")


def _compiled_ablation() -> tuple[list[dict], str]:
    """Engine ablation: the same GPMA training cell kernel vs compiled.

    Losses must be identical (the engine-axis differential tests gate
    that); what the ablation tracks nightly is the wall-clock delta, the
    one-time driver compile cost, and the cross-timestamp fusion hit rate.
    The backend column records which toolchain actually ran ("numba",
    "c", or "fallback" when the compiled engine delegated to kernel).
    """
    from repro.bench import run_dynamic_experiment
    from repro.bench.report import format_table
    from repro.compiler.native import native_backend
    from repro.dataset import load_sx_mathoverflow

    backend = native_backend()
    rows = []
    for engine in ("kernel", "compiled"):
        r = run_dynamic_experiment(
            "gpma", load_sx_mathoverflow,
            scale=0.02, feature_size=16, max_snapshots=12,
            sequence_length=4, epochs=3, warmup=1,
            engine=engine,
        )
        fh, fm = r.compiled_fusion_hits, r.compiled_fusion_misses
        rows.append({
            "engine": engine,
            "backend": (backend or "fallback") if engine == "compiled" else "-",
            "epoch_s": round(r.per_epoch_seconds, 5),
            "loss": round(r.final_loss, 6),
            "compile_s": round(r.compile_seconds, 5),
            "fusion_hits": fh,
            "fusion_misses": fm,
            "fusion_hit_%": round(100 * fh / (fh + fm), 1) if fh + fm else 0.0,
        })
    return rows, format_table(rows, title="Compiled-tier ablation (GPMA, kernel vs compiled engine)")


def _serving_ablation() -> tuple[list[dict], str]:
    """Serving ablation: request coalescing and k-hop invalidation on/off.

    The same traffic mix (closed-loop clients plus update-batch churn) runs
    through the :class:`~repro.serve.InferenceEngine` in three modes; every
    mode stays bitwise-equal to the serial reference (the serving tests
    gate that), so what the ablation tracks nightly is p50/p99 latency,
    throughput, and how much compute the two reuse mechanisms save.
    """
    from repro.bench.report import format_table
    from repro.dataset import load_sx_mathoverflow
    from repro.device import Device, use_device
    from repro.serve import InferenceEngine, ServingHarness, random_update_batches
    from repro.train import STGraphNodeRegressor

    ds = load_sx_mathoverflow(scale=0.02, feature_size=8, max_snapshots=8)
    feats = ds.features[-1]
    modes = (
        ("batched+inval", True, True),
        ("batched", True, False),
        ("unbatched", False, True),
    )
    rows = []
    for mode, batching, invalidation in modes:
        with use_device(Device(name="nightly-serve")):
            model = STGraphNodeRegressor(ds.feature_size, 16)
            engine = InferenceEngine(
                model, ds.build_gpma(), feats,
                batching=batching, invalidation=invalidation,
            )
            updates = random_update_batches(ds.dtdg, 6, seed=13)
            with engine:
                report = ServingHarness(
                    engine, clients=32, requests_per_client=12,
                    kinds=("embedding", "prediction"),
                    updates=updates, update_wait=True,
                    seed=13, collect=False,
                ).run(timeout=300.0)
        row = {"mode": mode, **report.row()}
        rows.append(row)
    return rows, format_table(
        rows, title="Serving ablation (coalescing / k-hop invalidation on vs off)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", action="store_true", help="refresh EXPERIMENTS.md measured data")
    parser.add_argument("--quick", action="store_true", help="smallest sweep (2 points per axis)")
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="also dump raw RunResult rows as JSON (for CI tracking)")
    args = parser.parse_args(argv)

    fs = (8, 32) if args.quick else (8, 16, 32, 64)
    seqs = (5, 10) if args.quick else (5, 10, 20)
    pcts = (1.0, 10.0) if args.quick else (1.0, 2.5, 5.0, 10.0)

    sections: list[tuple[str, str]] = []
    t_start = time.perf_counter()

    print(f"# scales: static={static_scale()} dynamic={dynamic_scale()} epochs={bench_epochs()}\n")

    _, t1 = table1_capabilities()
    print(t1, "\n")
    sections.append(("Table I", t1))

    _, t2 = table2_datasets()
    print(t2, "\n")
    sections.append(("Table II", t2))

    static_results, f5 = fig5_static_time(feature_sizes=fs)
    print(f5, "\n")
    sections.append(("Figure 5", f5))

    static_mem_results, f6 = fig6_static_memory(sequence_lengths=seqs)
    print(f6, "\n")
    sections.append(("Figure 6", f6))

    dyn_time_results, f7 = fig7_dtdg_time(feature_sizes=fs)
    print(f7, "\n")
    sections.append(("Figure 7", f7))

    dyn_mem_results, f8 = fig8_dtdg_memory(percent_changes=pcts)
    print(f8, "\n")
    sections.append(("Figure 8", f8))

    _, f9 = fig9_time_breakup(feature_sizes=fs)
    print(f9, "\n")
    sections.append(("Figure 9", f9))

    _, t3 = table3_summary(
        static_results + static_mem_results, dyn_time_results, dyn_mem_results
    )
    print(t3, "\n")
    sections.append(("Table III", t3))

    pipeline_rows, pipe_table = _pipeline_ablation()
    print(pipe_table, "\n")
    sections.append(("Pipeline ablation", pipe_table))

    compiled_rows, compiled_table = _compiled_ablation()
    print(compiled_table, "\n")
    sections.append(("Compiled-tier ablation", compiled_table))

    serving_rows, serving_table = _serving_ablation()
    print(serving_table, "\n")
    sections.append(("Serving ablation", serving_table))

    elapsed = time.perf_counter() - t_start
    print(f"# total harness time: {elapsed:.1f}s")

    if args.json is not None:
        import json

        rows = [
            r.row()
            for r in (static_results + static_mem_results + dyn_time_results + dyn_mem_results)
        ]
        payload = {
            "elapsed_s": elapsed,
            "rows": rows,
            "micro": _micro_medians(),
            "reuse_counters": _nightly_reuse_counters(),
            "pipeline_ablation": pipeline_rows,
            "compiled_ablation": compiled_rows,
            "serving_ablation": serving_rows,
        }
        args.json.write_text(json.dumps(payload, indent=2))
        print(f"wrote {args.json}")

    if args.write:
        path = pathlib.Path(__file__).parent.parent / "EXPERIMENTS.md"
        marker = "<!-- measured-data -->"
        text = path.read_text() if path.exists() else ""
        head = text.split(marker)[0] if marker in text else text
        body = [head.rstrip(), "", marker, ""]
        body.append(f"_Regenerated by `benchmarks/run_all.py` in {elapsed:.1f}s "
                    f"(static scale {static_scale()}, dynamic scale {dynamic_scale()}, "
                    f"{bench_epochs()} epochs)._\n")
        for name, block in sections:
            body.append(f"### {name} (measured)\n\n```\n{block}\n```\n")
        path.write_text("\n".join(body))
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
