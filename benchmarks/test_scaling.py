"""Scalability extension: per-epoch time vs dataset scale for the three
DTDG systems (backs the paper's closing scalability claim for GPMA)."""

from repro.bench.experiments import scaling_experiment


def test_scaling(benchmark):
    results, text = benchmark.pedantic(
        scaling_experiment,
        kwargs=dict(scales=(0.01, 0.03), feature_size=16, epochs=3),
        rounds=1, iterations=1,
    )
    print("\n" + text)

    def t(system, scale):
        return next(
            r for r in results if r.system == system and r.params["scale"] == scale
        ).per_epoch_seconds

    # times grow with scale for every system
    for system in ("naive", "gpma", "pygt"):
        assert t(system, 0.03) > t(system, 0.01)
    # PyG-T's growth factor is at least as large as GPMA's (edge-parallel
    # cost scales with E×F; the PMA update cost amortizes)
    gpma_growth = t("gpma", 0.03) / t("gpma", 0.01)
    pygt_growth = t("pygt", 0.03) / t("pygt", 0.01)
    assert pygt_growth > gpma_growth * 0.8  # allow noise; orderings checked in fig7
