"""Layer-zoo micro-benchmarks: one forward+backward per spatial layer.

Compares the compiled cost of every vertex-centric layer in the library on
the same graph — a quick way to see what attention (edge-scalar pipeline),
Chebyshev hops, diffusion walks, and relation masking each cost relative
to plain GCN.
"""

import networkx as nx
import numpy as np
import pytest

from repro.core import TemporalExecutor
from repro.graph import StaticGraph
from repro.nn import ChebConv, DConv, GATConv, GCNConv, RGCNConv, SAGEConv
from repro.tensor import Tensor, functional as F

N = 2000
P = 0.01
FIN, FOUT = 32, 32


@pytest.fixture(scope="module")
def graph():
    g = nx.gnp_random_graph(N, P, seed=9, directed=True)
    edges = np.array(list(g.edges()), dtype=np.int64).T
    return StaticGraph(edges[0], edges[1], N)


@pytest.fixture
def executor(graph):
    ex = TemporalExecutor(graph)
    ex.begin_timestamp(0)
    return ex


@pytest.fixture
def x(rng):
    return rng.standard_normal((N, FIN)).astype(np.float32)


def _fwd_bwd(layer_call):
    def op():
        xt = Tensor(op.x_np, requires_grad=True)
        out = layer_call(xt)
        F.sum(out).backward()
        return out

    return op


@pytest.mark.parametrize(
    "name,factory,extra",
    [
        ("gcn", lambda: GCNConv(FIN, FOUT), None),
        ("gat", lambda: GATConv(FIN, FOUT), None),
        ("sage", lambda: SAGEConv(FIN, FOUT), None),
        ("cheb_k3", lambda: ChebConv(FIN, FOUT, k=3), None),
        ("dconv_k2", lambda: DConv(FIN, FOUT, k=2), None),
        ("rgcn_r3", lambda: RGCNConv(FIN, FOUT, num_relations=3), "relations"),
    ],
)
def test_layer_forward_backward(benchmark, executor, graph, x, rng, name, factory, extra):
    layer = factory()
    relations = rng.integers(0, 3, graph.num_edges) if extra == "relations" else None

    def op():
        xt = Tensor(x, requires_grad=True)
        if relations is not None:
            out = layer(executor, xt, relations)
        else:
            out = layer(executor, xt)
        F.sum(out).backward()
        executor.check_drained()

    benchmark(op)
