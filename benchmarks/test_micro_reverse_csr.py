"""Algorithm 3 micro-benchmarks: literal transcription vs vectorized."""

import numpy as np
import pytest

from repro.graph import reverse_gpma_literal, reverse_gpma_vectorized


@pytest.fixture(scope="module")
def gapped_csr():
    rng = np.random.default_rng(3)
    n = 2000
    e = 20_000
    src = np.sort(rng.integers(0, n, e))
    dst = rng.integers(0, n, e)
    row = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=row[1:])
    eids = np.arange(e, dtype=np.int64)
    in_deg = np.bincount(dst, minlength=n)
    return row, dst.astype(np.int64), eids, in_deg, n


def test_reverse_vectorized(benchmark, gapped_csr):
    row, col, eids, in_deg, n = gapped_csr
    r_row, r_col, r_eid = benchmark(reverse_gpma_vectorized, row, col, eids, n)
    assert r_row[-1] == len(col)


def test_ablation_reverse_literal(benchmark, gapped_csr):
    """The as-written Algorithm 3 with a Python-level parallel-for; shows
    what the vectorized lowering buys on the simulated device."""
    row, col, eids, in_deg, n = gapped_csr
    r_row, r_col, r_eid = benchmark.pedantic(
        reverse_gpma_literal, args=(row, col, eids, in_deg), rounds=2, iterations=1
    )
    ref = reverse_gpma_vectorized(row, col, eids, n)
    assert np.array_equal(r_row, ref[0])
