"""Ablation: Algorithm 2's snapshot cache (lines 1-5 / 10).

Without the cache, moving from one training sequence to the next replays
every update of the previous sequence; with it, one restore + one batch.
"""

import pytest

from repro.dataset import load_sx_mathoverflow
from repro.device import Device, use_device
from repro.tensor import init
from repro.train import STGraphLinkPredictor, STGraphTrainer, make_link_prediction_samples


def _run(enable_cache: bool):
    device = Device(name="cache-ablation")
    with use_device(device):
        ds = load_sx_mathoverflow(scale=0.02, feature_size=8, max_snapshots=12)
        samples = make_link_prediction_samples(ds.dtdg, 64, seed=0)
        graph = ds.build_gpma(enable_cache=enable_cache)
        init.set_seed(0)
        model = STGraphLinkPredictor(8, 8)
        trainer = STGraphTrainer(
            model, graph, lr=1e-2, sequence_length=4,
            task="link_prediction", link_samples=samples,
        )
        losses = trainer.train(ds.features, epochs=3, warmup=1)
        return graph.update_batches_applied, graph.cache_restores, losses


def test_snapshot_cache_reduces_update_batches(benchmark):
    def run_both():
        return _run(True), _run(False)

    (with_cache, without_cache) = benchmark.pedantic(run_both, rounds=1, iterations=1)
    batches_on, restores_on, losses_on = with_cache
    batches_off, restores_off, losses_off = without_cache
    print(
        f"\nupdate batches over 3 epochs: cached={batches_on} "
        f"(restores={restores_on})  uncached={batches_off}"
    )
    assert restores_on > 0 and restores_off == 0
    assert batches_on < batches_off
    # identical training outcome either way
    assert losses_on == pytest.approx(losses_off, rel=1e-5)
