"""Gate: observability must add <2% to a training step.

Two always-on costs are gated with the same projection methodology: the
disabled (no-op) tracer that every hot path runs through, and the live
latency histograms (``device.metrics``) that every timestamp, optimizer
step, and kernel launch observes into.  A raw A/B epoch timing is too
noisy to gate on in CI, so each gate is computed:

1. count the instrumentation call sites one real epoch executes
   (spans + instants, from a kept-events tracer),
2. measure the per-call cost of the disabled path in a tight loop,
3. assert ``calls x cost < 2% of the measured epoch wall time``.

The A/B comparison is printed for the curious but not asserted.
"""

from __future__ import annotations

import time

from repro.dataset import load_sx_mathoverflow
from repro.obs.tracer import Tracer, current_tracer, use_tracer
from repro.tensor import init
from repro.train import STGraphLinkPredictor, STGraphTrainer, make_link_prediction_samples


def _build_trainer():
    ds = load_sx_mathoverflow(scale=0.02, feature_size=16, max_snapshots=10)
    samples = make_link_prediction_samples(ds.dtdg, 64, seed=5)
    init.set_seed(5)
    model = STGraphLinkPredictor(16, 16)
    trainer = STGraphTrainer(
        model, ds.build_gpma(), sequence_length=4,
        task="link_prediction", link_samples=samples,
    )
    return ds, trainer


def _null_path_cost_seconds(iterations: int = 200_000) -> tuple[float, float]:
    """Per-call seconds of the disabled span / instant paths."""
    tracer = current_tracer()
    assert not tracer.enabled  # the default NullTracer
    start = time.perf_counter()
    for _ in range(iterations):
        with tracer.span("x", "cat", t=0):
            pass
    span_cost = (time.perf_counter() - start) / iterations
    start = time.perf_counter()
    for _ in range(iterations):
        if tracer.enabled:
            tracer.instant("x", "cat", t=0)
    instant_cost = (time.perf_counter() - start) / iterations
    return span_cost, instant_cost


def test_noop_tracer_overhead_under_2_percent():
    ds, trainer = _build_trainer()
    trainer.train_epoch(ds.features)  # warm up: plan compile, caches

    # 1. instrumentation call sites per epoch
    counter = Tracer(name="count", keep_events=True)
    with use_tracer(counter):
        trainer.train_epoch(ds.features)
    span_calls = sum(v["calls"] for v in counter.aggregate_by_name().values())
    instant_calls = sum(1 for e in counter.events if e.dur is None)
    assert span_calls > 0

    # 2. per-call cost of the disabled path
    span_cost, instant_cost = _null_path_cost_seconds()

    # 3. the gate, against the untraced epoch time
    epoch_seconds = min(
        _timed_epoch(trainer, ds) for _ in range(3)
    )
    projected = span_calls * span_cost + instant_calls * instant_cost
    overhead_frac = projected / epoch_seconds
    print(
        f"\nno-op tracer: {span_calls} spans x {span_cost * 1e9:.0f}ns "
        f"+ {instant_calls} instants x {instant_cost * 1e9:.0f}ns "
        f"= {projected * 1e6:.1f}us projected over a {epoch_seconds * 1e3:.1f}ms epoch "
        f"({100 * overhead_frac:.3f}%)"
    )
    assert overhead_frac < 0.02, (
        f"no-op tracer projects {100 * overhead_frac:.2f}% overhead "
        f"(gate: 2%); the NullTracer fast path has regressed"
    )


def _timed_epoch(trainer, ds) -> float:
    start = time.perf_counter()
    trainer.train_epoch(ds.features)
    return time.perf_counter() - start


def test_histogram_observation_overhead_under_2_percent():
    """Gate: the always-on latency histograms must add <2% to an epoch.

    Unlike the tracer, ``device.metrics`` is enabled by default — every
    timestamp, optimizer step, kernel launch, and graph advance pays one
    ``perf_counter`` pair plus one ``Histogram.observe``.  Same
    methodology as the tracer gate: count the observations one epoch makes
    (from the live registry's ``_count`` totals), measure the per-observe
    cost in a tight loop, and assert the projection stays under 2%.
    """
    from repro.device import current_device
    from repro.obs.metrics import Histogram

    ds, trainer = _build_trainer()
    trainer.train_epoch(ds.features)  # warm up: plan compile, caches

    # 1. histogram observations per epoch, from the registry deltas
    metrics = current_device().metrics

    def _total_observations() -> int:
        total = 0
        for family in metrics.families():
            if family.kind != "histogram":
                continue
            for _, child in family.child_items():
                total += child.count
        return total

    before = _total_observations()
    trainer.train_epoch(ds.features)
    observations = _total_observations() - before
    assert observations > 0, "histograms-enabled path recorded nothing"

    # 2. per-call cost: perf_counter pair + observe (the full hot-path shape)
    hist = Histogram()
    iterations = 200_000
    start = time.perf_counter()
    for _ in range(iterations):
        t0 = time.perf_counter()
        hist.observe(time.perf_counter() - t0)
    observe_cost = (time.perf_counter() - start) / iterations

    # 3. the gate, against the measured epoch time
    epoch_seconds = min(_timed_epoch(trainer, ds) for _ in range(3))
    projected = observations * observe_cost
    overhead_frac = projected / epoch_seconds
    print(
        f"\nhistograms: {observations} observes x {observe_cost * 1e9:.0f}ns "
        f"= {projected * 1e6:.1f}us projected over a {epoch_seconds * 1e3:.1f}ms epoch "
        f"({100 * overhead_frac:.3f}%)"
    )
    assert overhead_frac < 0.02, (
        f"live histograms project {100 * overhead_frac:.2f}% overhead "
        f"(gate: 2%); the observe() hot path has regressed"
    )


def test_enabled_tracer_ab_comparison_informational():
    """Print (don't gate) the measured cost of a *enabled* tracer epoch."""
    ds, trainer = _build_trainer()
    trainer.train_epoch(ds.features)  # warm up
    plain = min(_timed_epoch(trainer, ds) for _ in range(2))
    with use_tracer(Tracer(name="ab", keep_events=True)):
        traced = min(_timed_epoch(trainer, ds) for _ in range(2))
    print(
        f"\nepoch: {plain * 1e3:.1f}ms untraced vs {traced * 1e3:.1f}ms traced "
        f"({100 * (traced - plain) / plain:+.1f}%)"
    )


def test_disabled_sanitizer_overhead_is_structurally_zero():
    """Gate: with no sanitizer active (the default), the lock factories hand
    out *raw* ``threading`` primitives — the instrumented acquire path does
    not exist, so the disabled overhead is zero by construction, not by
    measurement.  Pinned by type so a refactor that starts wrapping locks
    unconditionally fails loudly here."""
    import os
    import threading

    import pytest

    if os.environ.get("REPRO_TSAN", "") not in ("", "0"):
        pytest.skip("REPRO_TSAN active: locks are deliberately wrapped")

    from repro.analysis.sanitizer import (
        NullSanitizer,
        current_sanitizer,
        new_condition,
        new_lock,
        new_rlock,
    )

    assert isinstance(current_sanitizer(), NullSanitizer)
    assert type(new_lock("bench")) is type(threading.Lock())
    assert type(new_rlock("bench")) is type(threading.RLock())
    assert type(new_condition(name="bench")) is threading.Condition
    # and the framework's own hot-path structures got raw locks too
    from repro.device import current_device

    tracker = current_device().tracker
    assert type(tracker._lock) is type(threading.Lock())
