"""Figure 6: memory vs sequence length, static-temporal, feature size 8.

Expected shape: the PyG-T curve is much steeper (per-edge duplicates
retained over the whole sequence); dense graphs show the largest gap.
"""

from repro.bench.experiments import fig6_static_memory
from repro.dataset import STATIC_DATASETS

_DATASETS = {k: STATIC_DATASETS[k] for k in ("WO", "MB")}


def test_fig6(benchmark):
    results, text = benchmark.pedantic(
        fig6_static_memory,
        kwargs=dict(sequence_lengths=(4, 12), datasets=_DATASETS, num_timestamps=12),
        rounds=1, iterations=1,
    )
    print("\n" + text)
    wo = [r for r in results if "Windmill" in r.dataset]

    def mem(system, seq):
        return next(
            r for r in wo if r.system == system and r.params["seq"] == seq
        ).peak_memory_bytes

    slope_stg = mem("stgraph", 12) - mem("stgraph", 4)
    slope_pyg = mem("pygt", 12) - mem("pygt", 4)
    assert slope_pyg > 3 * max(slope_stg, 1)
    # dense graph: STGraph consumes less at every sequence length
    for seq in (4, 12):
        assert mem("stgraph", seq) < mem("pygt", seq)
