"""Table I: library capability matrix (documentation table)."""

from repro.bench.experiments import table1_capabilities


def test_table1(benchmark):
    rows, text = benchmark.pedantic(table1_capabilities, rounds=1, iterations=1)
    print("\n" + text)
    assert len(rows) == 7
    stgraph = rows[-1]
    assert stgraph["backend"] == "Agnostic"
    assert stgraph["static"] == "yes" and stgraph["temporal"] == "yes"
