"""Benchmark fixtures: isolated device per benchmark."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import Device, use_device


@pytest.fixture(autouse=True)
def fresh_device():
    device = Device(name="bench")
    with use_device(device):
        yield device


@pytest.fixture
def rng():
    return np.random.default_rng(2024)
