"""Diff two ``BENCH_nightly.json`` dumps from ``run_all.py --json``.

Usage::

    python benchmarks/diff_nightly.py previous/BENCH_nightly.json BENCH_nightly.json

Prints per-row epoch-time deltas (keyed by system/dataset/params), micro
median deltas, and reuse-counter changes.  Purely informational: timing on
shared CI runners is noisy, so the nightly workflow runs this step
non-gating — the exit status is 0 whenever both files parse, regardless of
how large the regressions look.  The *gating* companion is
``check_regression.py``, which applies a median±MAD sustained-slowdown
test over the payload series.

When ``PREVIOUS.json`` does not exist (first nightly, or the artifact
expired) the diff falls back to the committed
``benchmarks/BENCH_baseline.json`` next to this script, so every nightly
produces a comparison instead of silently skipping.
"""

from __future__ import annotations

import json
import pathlib
import sys

#: Timing fields are diffed as percentages; counter fields as raw deltas.
_TIMING_FIELDS = ("epoch_s", "compile_s", "prefetch_wait_s")
_COUNTER_FIELDS = ("csr_hits", "csr_misses", "noop_skipped", "prefetch_hits", "prefetch_misses")


def _row_key(row: dict) -> tuple:
    return tuple(
        (k, row[k]) for k in sorted(row)
        if k not in _TIMING_FIELDS + _COUNTER_FIELDS + ("peak_MB", "loss", "update_frac")
    )


def _pct(old: float, new: float) -> str:
    if not old:
        return "n/a"
    delta = 100.0 * (new - old) / old
    return f"{delta:+.1f}%"


def diff(prev: dict, curr: dict) -> list[str]:
    """Human-readable diff lines between two nightly payloads."""
    lines = [f"elapsed: {prev.get('elapsed_s', 0):.1f}s -> {curr.get('elapsed_s', 0):.1f}s "
             f"({_pct(prev.get('elapsed_s', 0), curr.get('elapsed_s', 0))})"]

    prev_rows = {_row_key(r): r for r in prev.get("rows", [])}
    matched = 0
    for row in curr.get("rows", []):
        before = prev_rows.get(_row_key(row))
        if before is None:
            continue
        matched += 1
        label = f"{row.get('system', '?')}/{row.get('dataset', '?')}"
        known = set(_TIMING_FIELDS) | set(_COUNTER_FIELDS) | {
            "system", "dataset", "peak_MB", "loss", "update_frac",
        }
        extras = [f"{k}={v}" for k, v in row.items() if k not in known]
        changes = [f"{f} {_pct(before.get(f, 0), row.get(f, 0))}"
                   for f in _TIMING_FIELDS if f in row]
        counter_moves = [f"{f} {row.get(f, 0) - before.get(f, 0):+d}"
                         for f in _COUNTER_FIELDS
                         if f in row and row.get(f, 0) != before.get(f, 0)]
        lines.append(f"  {label} [{' '.join(extras)}]: "
                     f"{', '.join(changes + counter_moves) or 'unchanged'}")
    lines.append(f"rows matched: {matched}/{len(curr.get('rows', []))}")

    for section in ("micro", "reuse_counters"):
        before, after = prev.get(section, {}), curr.get(section, {})
        for key in after:
            old, new = before.get(key), after[key]
            if old is None:
                lines.append(f"  {section}.{key}: (new) {new}")
            elif isinstance(new, float) and key.endswith("_s"):
                lines.append(f"  {section}.{key}: {old} -> {new} ({_pct(old, new)})")
            elif old != new:
                lines.append(f"  {section}.{key}: {old} -> {new}")

    # Pipeline on/off ablation rows, keyed by the staleness knob.
    prev_pipe = {r.get("pipeline"): r for r in prev.get("pipeline_ablation", [])}
    for row in curr.get("pipeline_ablation", []):
        label = f"pipeline_ablation[pipeline={row.get('pipeline')}]"
        before = prev_pipe.get(row.get("pipeline"))
        if before is None:
            lines.append(f"  {label}: (new) epoch_s={row.get('epoch_s')} "
                         f"hit%={row.get('prefetch_hit_%')}")
            continue
        changes = [f"{f} {_pct(before.get(f, 0), row.get(f, 0))}"
                   for f in ("epoch_s", "prefetch_wait_s") if f in row]
        counter_moves = [f"{f} {row.get(f, 0) - before.get(f, 0):+d}"
                         for f in ("prefetch_hits", "prefetch_misses")
                         if row.get(f, 0) != before.get(f, 0)]
        lines.append(f"  {label}: {', '.join(changes + counter_moves) or 'unchanged'}")

    # Engine on/off ablation rows, keyed by the engine name.
    prev_eng = {r.get("engine"): r for r in prev.get("compiled_ablation", [])}
    for row in curr.get("compiled_ablation", []):
        label = f"compiled_ablation[engine={row.get('engine')}]"
        before = prev_eng.get(row.get("engine"))
        if before is None:
            lines.append(f"  {label}: (new) epoch_s={row.get('epoch_s')} "
                         f"backend={row.get('backend')} "
                         f"fusion%={row.get('fusion_hit_%')}")
            continue
        changes = [f"{f} {_pct(before.get(f, 0), row.get(f, 0))}"
                   for f in ("epoch_s", "compile_s") if f in row]
        counter_moves = [f"{f} {row.get(f, 0) - before.get(f, 0):+d}"
                         for f in ("fusion_hits", "fusion_misses")
                         if row.get(f, 0) != before.get(f, 0)]
        if before.get("backend") != row.get("backend"):
            counter_moves.append(f"backend {before.get('backend')} -> {row.get('backend')}")
        lines.append(f"  {label}: {', '.join(changes + counter_moves) or 'unchanged'}")

    # Serving ablation rows, keyed by mode (coalescing/invalidation on-off).
    prev_serve = {r.get("mode"): r for r in prev.get("serving_ablation", [])}
    for row in curr.get("serving_ablation", []):
        label = f"serving_ablation[mode={row.get('mode')}]"
        before = prev_serve.get(row.get("mode"))
        if before is None:
            lines.append(f"  {label}: (new) p50_ms={row.get('p50_ms')} "
                         f"p99_ms={row.get('p99_ms')} qps={row.get('qps')}")
            continue
        changes = [f"{f} {_pct(before.get(f, 0), row.get(f, 0))}"
                   for f in ("p50_ms", "p99_ms") if f in row]
        counter_moves = [f"{f} {row.get(f, 0) - before.get(f, 0):+d}"
                         for f in ("forwards", "row_cache_hits", "updates")
                         if row.get(f, 0) != before.get(f, 0)]
        lines.append(f"  {label}: {', '.join(changes + counter_moves) or 'unchanged'}")
    return lines


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print("usage: diff_nightly.py PREVIOUS.json CURRENT.json", file=sys.stderr)
        return 2
    prev_path = pathlib.Path(argv[0])
    if not prev_path.exists():
        # First nightly run (or the artifact expired): fall back to the
        # committed baseline so the diff still runs.  Only if that is also
        # missing do we skip — succeed with a clear note instead of
        # tracebacking in CI.
        fallback = pathlib.Path(__file__).resolve().parent / "BENCH_baseline.json"
        if fallback.exists():
            print(f"no previous nightly at {prev_path}; diffing against committed {fallback.name}")
            prev_path = fallback
        else:
            print(f"no baseline yet: {prev_path} does not exist; skipping diff")
            return 0
    prev = json.loads(prev_path.read_text())
    curr = json.loads(pathlib.Path(argv[1]).read_text())
    print("\n".join(diff(prev, curr)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
