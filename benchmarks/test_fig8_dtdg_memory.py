"""Figure 8: memory vs percent change between snapshots, DTDG.

Expected shape: GPMA up to ~1.9× leaner than PyG-T and ~1.7× leaner than
Naive, and *flat* across the sweep, while snapshot-storing systems blow up
at small percent changes (more snapshots over the same stream).
"""

from repro.bench.experiments import fig8_dtdg_memory
from repro.dataset import DYNAMIC_DATASETS

_DATASETS = {"sx-mathoverflow": DYNAMIC_DATASETS["sx-mathoverflow"]}


def test_fig8(benchmark):
    results, text = benchmark.pedantic(
        fig8_dtdg_memory,
        kwargs=dict(percent_changes=(1.0, 10.0), datasets=_DATASETS, epochs=2, scale=0.008),
        rounds=1, iterations=1,
    )
    print("\n" + text)

    def mem(system, pct):
        return next(
            r for r in results if r.system == system and r.params["pct"] == pct
        ).peak_memory_bytes

    # GPMA leanest at the small-% end (the paper's headline: up to 1.91×)
    assert mem("gpma", 1.0) < mem("naive", 1.0)
    assert mem("gpma", 1.0) < mem("pygt", 1.0)
    # GPMA flat, others steep as % shrinks
    gpma_growth = mem("gpma", 1.0) / mem("gpma", 10.0)
    naive_growth = mem("naive", 1.0) / mem("naive", 10.0)
    pygt_growth = mem("pygt", 1.0) / mem("pygt", 10.0)
    assert gpma_growth < naive_growth
    assert gpma_growth < pygt_growth
