"""Gate sustained benchmark slowdowns across a series of nightly payloads.

Usage::

    python benchmarks/check_regression.py BASELINE.json [HIST.json ...] CURRENT.json

Arguments are ``run_all.py --json`` payloads in chronological order —
oldest first (typically the committed ``benchmarks/BENCH_baseline.json``),
newest last (tonight's ``BENCH_nightly.json``).  For every timing metric
(per-row ``epoch_s``, the micro medians, and the ablation timings) the
detector computes a **robust baseline** over the historical values:

    median ± max(MAD_K * MAD * 1.4826,  REL_THRESHOLD * median)

where 1.4826 scales the median absolute deviation to a normal-equivalent
sigma.  A metric is **flagged** only when the slowdown is *sustained*: the
last ``--sustain`` payloads (default 2, clamped to what exists) must all
exceed the bound.  One noisy nightly on a shared runner therefore never
trips the gate, but a real regression does on the second night — and a 3×
jump trips it immediately even with a single current payload, because the
current value alone satisfies the sustain window of 1.

Exit status: 0 when nothing is flagged, 1 on any sustained slowdown,
2 on usage/parse errors.  Unlike ``diff_nightly.py`` (informational),
this script is meant to be a **gating** nightly step.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys

#: MAD-to-sigma scale for normally distributed noise.
_MAD_SCALE = 1.4826


def _row_key(row: dict) -> str:
    """Stable identity of one benchmark row across payloads."""
    skip = {
        "epoch_s", "compile_s", "prefetch_wait_s", "peak_MB", "loss",
        "update_frac", "csr_hits", "csr_misses", "noop_skipped",
        "prefetch_hits", "prefetch_misses",
    }
    parts = [f"{k}={row[k]}" for k in sorted(row) if k not in skip]
    return "rows[" + ",".join(parts) + "].epoch_s"


def extract_metrics(payload: dict) -> dict[str, float]:
    """Flatten one nightly payload into ``{metric_name: seconds}``.

    Covers per-row ``epoch_s``, the ``micro`` medians, the pipeline/
    compiled ablation timings, and the serving-ablation p50/p99 latencies —
    every field the nightly diff treats as a timing.  Counters and losses
    are deliberately excluded: correctness is gated elsewhere (the
    differential tests), this detector is time-only.
    """
    out: dict[str, float] = {}
    for row in payload.get("rows", []):
        if isinstance(row.get("epoch_s"), (int, float)):
            out[_row_key(row)] = float(row["epoch_s"])
    for key, value in payload.get("micro", {}).items():
        if isinstance(value, (int, float)):
            out[f"micro.{key}"] = float(value)
    for row in payload.get("pipeline_ablation", []):
        for f in ("epoch_s", "prefetch_wait_s"):
            if isinstance(row.get(f), (int, float)):
                out[f"pipeline_ablation[pipeline={row.get('pipeline')}].{f}"] = float(row[f])
    for row in payload.get("compiled_ablation", []):
        for f in ("epoch_s", "compile_s"):
            if isinstance(row.get(f), (int, float)):
                out[f"compiled_ablation[engine={row.get('engine')}].{f}"] = float(row[f])
    for row in payload.get("serving_ablation", []):
        for f in ("p50_ms", "p99_ms"):
            if isinstance(row.get(f), (int, float)):
                out[f"serving_ablation[mode={row.get('mode')}].{f}"] = float(row[f])
    return out


def check(
    histories: list[dict[str, float]],
    sustain: int = 2,
    rel_threshold: float = 0.5,
    mad_k: float = 3.0,
) -> tuple[list[str], list[str]]:
    """Return ``(flagged, lines)`` over chronological metric snapshots.

    ``histories[:-sustain]`` (at least the first entry) forms the baseline
    window; a metric is flagged when every value in the sustain window
    exceeds ``median + max(mad_k * MAD * 1.4826, rel_threshold * median)``.
    Metrics missing from any payload are skipped for that payload (a new
    benchmark has no history to regress against).
    """
    if sustain < 1:
        raise ValueError("sustain must be >= 1")
    lines: list[str] = []
    flagged: list[str] = []
    names = sorted({name for h in histories for name in h})
    for name in names:
        series = [h[name] for h in histories if name in h]
        if len(series) < 2:
            lines.append(f"  {name}: only {len(series)} sample(s); skipped")
            continue
        window = min(sustain, len(series) - 1)
        baseline, recent = series[:-window], series[-window:]
        med = statistics.median(baseline)
        mad = statistics.median(abs(x - med) for x in baseline)
        bound = med + max(mad_k * mad * _MAD_SCALE, rel_threshold * med)
        worst = max(recent)
        if med > 0 and all(v > bound for v in recent):
            flagged.append(name)
            lines.append(
                f"  REGRESSION {name}: last {window} value(s) all > {bound:.6f} "
                f"(baseline median {med:.6f}, worst {worst:.6f}, "
                f"{100 * (worst - med) / med:+.0f}%)"
            )
        else:
            lines.append(
                f"  ok {name}: median {med:.6f}, bound {bound:.6f}, "
                f"latest {series[-1]:.6f}"
            )
    return flagged, lines


def _load(path: pathlib.Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("payloads", nargs="+", type=pathlib.Path,
                        help="run_all.py --json payloads, oldest first, current last")
    parser.add_argument("--sustain", type=int, default=2,
                        help="consecutive elevated payloads required to flag (default 2)")
    parser.add_argument("--rel-threshold", type=float, default=0.5,
                        help="relative slowdown floor, e.g. 0.5 = 50%% over median (default 0.5)")
    parser.add_argument("--mad-k", type=float, default=3.0,
                        help="MAD multiplier for the noise bound (default 3.0)")
    args = parser.parse_args(argv)

    if len(args.payloads) < 2:
        print("only one payload given: nothing to compare yet (gate passes)")
        return 0
    histories = [extract_metrics(_load(p)) for p in args.payloads]
    try:
        flagged, lines = check(
            histories, sustain=args.sustain,
            rel_threshold=args.rel_threshold, mad_k=args.mad_k,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"regression check over {len(histories)} payload(s), "
          f"sustain={args.sustain}, rel>{args.rel_threshold:.0%}, mad_k={args.mad_k}")
    print("\n".join(lines))
    if flagged:
        print(f"\nFAIL: {len(flagged)} sustained slowdown(s): {', '.join(flagged)}")
        return 1
    print("\nPASS: no sustained slowdowns")
    return 0


if __name__ == "__main__":
    sys.exit(main())
