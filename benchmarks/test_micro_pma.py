"""Micro-benchmarks: PMA batch updates vs full CSR rebuild (ablation).

The design question GPMAGraph answers: is applying a small update batch to
gapped storage cheaper than rebuilding the snapshot's CSR from scratch?
"""

import numpy as np
import pytest

from repro.graph.csr import build_csr
from repro.pma import PackedMemoryArray

N_EDGES = 50_000
BATCH = 500  # ~1% update, the paper's "<10% change" regime


@pytest.fixture(scope="module")
def edge_keys():
    rng = np.random.default_rng(0)
    return np.unique(rng.integers(0, 10**9, N_EDGES * 2))[:N_EDGES]


def test_pma_batch_insert(benchmark, edge_keys, rng):
    pma = PackedMemoryArray()
    pma.insert_batch(edge_keys, edge_keys)
    fresh = np.unique(rng.integers(0, 10**9, BATCH * 2))[:BATCH]

    def op():
        pma.insert_batch(fresh, fresh)
        pma.delete_batch(fresh)

    benchmark(op)
    pma.check_invariants()


def test_pma_batch_delete_reinsert(benchmark, edge_keys):
    pma = PackedMemoryArray()
    pma.insert_batch(edge_keys, edge_keys)
    doomed = edge_keys[:BATCH]

    def op():
        pma.delete_batch(doomed)
        pma.insert_batch(doomed, doomed)

    benchmark(op)
    assert len(pma) == N_EDGES


def test_ablation_full_csr_rebuild(benchmark, edge_keys):
    """The alternative GPMAGraph avoids: rebuild everything per timestamp."""
    n = 1 << 15
    src = (edge_keys % n).astype(np.int64)
    dst = ((edge_keys // n) % n).astype(np.int64)

    def op():
        return build_csr(src, dst, np.arange(len(src), dtype=np.int64), n)

    benchmark(op)


def test_pma_point_lookup(benchmark, edge_keys):
    pma = PackedMemoryArray()
    pma.insert_batch(edge_keys, edge_keys)
    key = int(edge_keys[N_EDGES // 2])
    benchmark(lambda: pma.get(key))


def test_pma_export_items(benchmark, edge_keys):
    pma = PackedMemoryArray()
    pma.insert_batch(edge_keys, edge_keys)
    benchmark(pma.export_items)
