"""End-to-end per-epoch micro-benchmarks of the three DTDG systems and the
two static systems (the numbers behind Figures 5 and 7, one configuration)."""

import pytest

from repro.bench.measure import run_dynamic_experiment, run_static_experiment
from repro.dataset import load_sx_mathoverflow, load_windmill_output


@pytest.mark.parametrize("system", ["stgraph", "pygt"])
def test_static_epoch(benchmark, system):
    def run():
        return run_static_experiment(
            system, load_windmill_output, feature_size=16,
            scale=0.3, num_timestamps=10, epochs=2, warmup=1,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{system}: {result.per_epoch_seconds:.4f}s/epoch, {result.peak_memory_bytes/1e6:.1f}MB")


@pytest.mark.parametrize("system", ["naive", "gpma", "pygt"])
def test_dynamic_epoch(benchmark, system):
    def run():
        return run_dynamic_experiment(
            system, load_sx_mathoverflow, feature_size=16,
            scale=0.02, epochs=2, warmup=1,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{system}: {result.per_epoch_seconds:.4f}s/epoch, {result.peak_memory_bytes/1e6:.1f}MB")
