"""Figure 7: per-epoch time vs feature size, DTDG, 5% change.

Expected shape: STGraph-Naive fastest throughout; STGraph-GPMA slower than
PyG-T at small feature sizes but crossing over as GNN processing grows to
dominate graph-update time; crossover earlier on denser graphs.
"""

from repro.bench.experiments import fig7_dtdg_time
from repro.dataset import DYNAMIC_DATASETS

_DATASETS = {"sx-mathoverflow": DYNAMIC_DATASETS["sx-mathoverflow"]}


def test_fig7(benchmark):
    results, text = benchmark.pedantic(
        fig7_dtdg_time,
        kwargs=dict(feature_sizes=(8, 64), datasets=_DATASETS, scale=0.05),
        rounds=1, iterations=1,
    )
    print("\n" + text)

    def t(system, fs):
        return next(
            r for r in results if r.system == system and r.params["F"] == fs
        ).per_epoch_seconds

    # Naive fastest at every feature size
    for fs in (8, 64):
        assert t("naive", fs) < t("pygt", fs)
        assert t("naive", fs) < t("gpma", fs)
    # GPMA crossover: behind (or close) at F=8, ahead at F=64
    assert t("gpma", 64) < t("pygt", 64)
    # losses agree across systems
    losses = [r.final_loss for r in results if r.params["F"] == 8]
    assert max(losses) - min(losses) < 1e-3 * max(1.0, abs(losses[0]))
