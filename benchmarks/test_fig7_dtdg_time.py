"""Figure 7: per-epoch time vs feature size, DTDG, 5% change.

Expected shape: STGraph-Naive fastest throughout; STGraph-GPMA slower than
PyG-T at small feature sizes but crossing over as GNN processing grows to
dominate graph-update time; crossover earlier on denser graphs.
"""

from repro.bench.experiments import fig7_dtdg_time
from repro.dataset import DYNAMIC_DATASETS

_DATASETS = {"sx-mathoverflow": DYNAMIC_DATASETS["sx-mathoverflow"]}


def test_fig7(benchmark):
    results, text = benchmark.pedantic(
        fig7_dtdg_time,
        kwargs=dict(feature_sizes=(8, 64), datasets=_DATASETS, scale=0.05),
        rounds=1, iterations=1,
    )
    print("\n" + text)

    def t(system, fs):
        return next(
            r for r in results if r.system == system and r.params["F"] == fs
        ).per_epoch_seconds

    # Naive fastest at every feature size
    for fs in (8, 64):
        assert t("naive", fs) < t("pygt", fs)
        assert t("naive", fs) < t("gpma", fs)
    # GPMA crossover: behind (or close) at F=8, ahead at F=64
    assert t("gpma", 64) < t("pygt", 64)
    # losses agree across systems
    losses = [r.final_loss for r in results if r.params["F"] == 8]
    assert max(losses) - min(losses) < 1e-3 * max(1.0, abs(losses[0]))


def test_fig7_pipeline_overlap(benchmark):
    """Pipelined GPMA on the quick fig7 config: identical numerics, staged
    snapshots serving ≥90% of prefetch-eligible builds, and the serial-vs-
    pipelined wall clock reported.

    With deferred positioning the training thread does no structural graph
    work on a prefetch hit (no update replay, no build), so the pipelined
    run should be no slower than serial — typically ~1.2-1.3x faster here —
    but the *gated* bound is kept loose (1.15x) because build/compute
    overlap on shared CI runners is noisy.
    """
    from repro.bench.measure import run_dynamic_experiment

    loader = _DATASETS["sx-mathoverflow"]
    kwargs = dict(feature_size=32, scale=0.05, epochs=4, warmup=1)

    def both():
        serial = run_dynamic_experiment("gpma", loader, pipeline=0, **kwargs)
        piped = run_dynamic_experiment("gpma", loader, pipeline=2, **kwargs)
        return serial, piped

    serial, piped = benchmark.pedantic(both, rounds=1, iterations=1)

    # Numerics: pipelining must not move the loss at all.
    assert piped.final_loss == serial.final_loss
    # Effectiveness: ≥90% of prefetch-eligible builds came from the worker.
    assert piped.prefetch_hits > 0
    assert piped.prefetch_hit_rate >= 0.90, (
        f"prefetch hit rate {piped.prefetch_hit_rate:.2%} "
        f"({piped.prefetch_hits} hits / {piped.prefetch_misses} misses)"
    )
    speedup = serial.per_epoch_seconds / piped.per_epoch_seconds
    print(
        f"\npipeline ablation: serial {serial.per_epoch_seconds * 1e3:.2f} ms/epoch, "
        f"pipelined {piped.per_epoch_seconds * 1e3:.2f} ms/epoch "
        f"({speedup:.2f}x), wait {piped.prefetch_wait_seconds * 1e3:.2f} ms"
    )
    # Pipelining must never make the run materially slower than serial
    # (locally it is ~1.25x faster; the margin absorbs runner noise).
    assert piped.per_epoch_seconds < 1.15 * serial.per_epoch_seconds
