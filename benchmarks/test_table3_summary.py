"""Table III: max/avg improvement of STGraph variants over PyG-T.

Aggregates a compact version of the Figure 5-8 sweeps.  Expected shape
(paper: Static 1.69×/2.14×, Naive 1.65×, GPMA 1.20×/1.91× as maxima):
Static and Naive beat PyG-T on time; GPMA beats PyG-T on memory.  Absolute
factors differ on the simulated device; orderings must hold.
"""

from repro.bench.experiments import (
    fig5_static_time,
    fig7_dtdg_time,
    fig8_dtdg_memory,
    table3_summary,
)
from repro.dataset import DYNAMIC_DATASETS, STATIC_DATASETS


def _parse(cell: str) -> float:
    return float(cell.rstrip("x"))


def test_table3(benchmark):
    def run():
        static, _ = fig5_static_time(
            feature_sizes=(8, 32),
            datasets={k: STATIC_DATASETS[k] for k in ("WO", "HC")},
            num_timestamps=10,
        )
        dyn_t, _ = fig7_dtdg_time(
            feature_sizes=(8, 64),
            datasets={"sx-mathoverflow": DYNAMIC_DATASETS["sx-mathoverflow"]},
            scale=0.03,
        )
        dyn_m, _ = fig8_dtdg_memory(
            percent_changes=(2.0, 10.0),
            datasets={"sx-mathoverflow": DYNAMIC_DATASETS["sx-mathoverflow"]},
            epochs=2,
            scale=0.01,
        )
        return table3_summary(static, dyn_t, dyn_m)

    rows, text = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + text)
    by_metric = {r["metric"]: r for r in rows}
    assert _parse(by_metric["Time/epoch (max)"]["Static"]) > 1.0
    assert _parse(by_metric["Time/epoch (max)"]["Naive"]) > 1.0
    assert _parse(by_metric["Time/epoch (max)"]["GPMA"]) > 1.0  # post-crossover cell
    assert _parse(by_metric["Memory (max)"]["Static"]) > 1.0
    assert _parse(by_metric["Memory (max)"]["GPMA"]) > 1.0
