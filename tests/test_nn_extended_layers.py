"""ChebConv, DConv/DCRNN, RGCN, and out-direction aggregation."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.compiler import compile_vertex_program
from repro.compiler.lower import CompileError
from repro.compiler.symbols import trace, vfn
from repro.core import TemporalExecutor
from repro.graph import StaticGraph
from repro.nn import DCRNN, ChebConv, DConv, RGCNConv
from repro.tensor import Tensor, functional as F, optim


@pytest.fixture
def setup(rng):
    n = 16
    g = nx.gnp_random_graph(n, 0.3, seed=41, directed=True)
    sg = StaticGraph.from_networkx(g)
    ex = TemporalExecutor(sg)
    ex.begin_timestamp(0)
    A_out = nx.to_numpy_array(g).astype(np.float64)  # A[u,v]=1 iff u->v
    x = rng.standard_normal((n, 4)).astype(np.float32)
    return n, g, sg, ex, A_out, x


# ---------------------------------------------------------------------------
# Out-direction aggregation (compiler level)
# ---------------------------------------------------------------------------
def test_agg_sum_out_matches_dense(setup, rng):
    n, g, sg, ex, A_out, x = setup
    prog = compile_vertex_program(
        lambda v: v.agg_sum_out(lambda nb: nb.h),
        feature_widths={"h": "v"}, grad_features={"h"}, name="t_osum",
    )
    ctx = ex.current_context()
    out, saved = prog.forward(ctx, {"h": x})
    assert np.allclose(out, A_out @ x, atol=1e-4)
    gout = rng.standard_normal((n, 4)).astype(np.float32)
    grads = prog.backward(ctx, gout, saved)
    assert np.allclose(grads["h"], A_out.T @ gout, atol=1e-4)


def test_agg_mean_out_matches_dense(setup):
    n, g, sg, ex, A_out, x = setup
    prog = compile_vertex_program(
        lambda v: v.agg_mean_out(lambda nb: nb.h),
        feature_widths={"h": "v"}, name="t_omean",
    )
    out, _ = prog.forward(ex.current_context(), {"h": x})
    deg = np.maximum(A_out.sum(1), 1)[:, None]
    assert np.allclose(out, (A_out @ x) / deg, atol=1e-4)


def test_out_direction_rejects_computed_edge_scores():
    with pytest.raises(CompileError, match="out-neighbor"):
        compile_vertex_program(
            lambda v: v.agg_sum_out(lambda nb: nb.h * vfn.tanh(nb.el + v.er)),
            feature_widths={"h": "v", "el": "s", "er": "s"}, name="t_bad",
        )


def test_out_direction_max_rejected():
    from repro.compiler.ir import VNode

    with pytest.raises(CompileError, match="max aggregation over out"):
        compile_vertex_program(
            lambda v: VNode.agg("max", v._tracer.nb.h, direction="out"),
            feature_widths={"h": "v"}, name="t_badmax",
        )


def test_out_in_signatures_differ():
    a = trace(lambda v: v.agg_sum(lambda nb: nb.h))
    b = trace(lambda v: v.agg_sum_out(lambda nb: nb.h))
    assert a.signature() != b.signature()


# ---------------------------------------------------------------------------
# ChebConv
# ---------------------------------------------------------------------------
def test_cheb_k1_is_plain_linear(setup):
    n, g, sg, ex, A_out, x = setup
    conv = ChebConv(4, 3, k=1)
    out = conv(ex, Tensor(x))
    assert np.allclose(out.data, x @ conv.weight_0.data + conv.bias.data, atol=1e-5)


def test_cheb_matches_dense_recurrence(setup):
    n, g, sg, ex, A_out, x = setup
    conv = ChebConv(4, 3, k=3)
    out = conv(ex, Tensor(x))
    # dense reference: L̂ = -D^{-1/2} A_in D^{-1/2} with in-degree norm
    A_in = A_out.T
    d = np.maximum(A_in.sum(1), 1)
    norm = 1 / np.sqrt(d)
    L = -(norm[:, None] * A_in * norm[None, :])
    t0, t1 = x.astype(np.float64), L @ x
    t2 = 2 * L @ t1 - t0
    ref = (
        t0 @ conv.weight_0.data
        + t1 @ conv.weight_1.data
        + t2 @ conv.weight_2.data
        + conv.bias.data
    )
    assert np.allclose(out.data, ref, atol=1e-3)


def test_cheb_gradients_flow(setup):
    n, g, sg, ex, A_out, x = setup
    conv = ChebConv(4, 3, k=3)
    out = conv(ex, Tensor(x, requires_grad=True))
    F.sum(out).backward()
    ex.check_drained()
    for i in range(3):
        assert getattr(conv, f"weight_{i}").grad is not None


def test_cheb_invalid_order():
    with pytest.raises(ValueError):
        ChebConv(4, 3, k=0)


# ---------------------------------------------------------------------------
# DConv / DCRNN
# ---------------------------------------------------------------------------
def test_dconv_matches_dense(setup):
    n, g, sg, ex, A_out, x = setup
    conv = DConv(4, 3, k=2, bias=False)
    out = conv(ex, Tensor(x))
    d_out = np.maximum(A_out.sum(1), 1)[:, None]
    d_in = np.maximum(A_out.sum(0), 1)[:, None]
    walk_fwd = (A_out @ x) / d_out  # mean over out-neighbors
    walk_bwd = (A_out.T @ x) / d_in  # mean over in-neighbors
    ref = (
        x @ conv.weight_self.data
        + walk_fwd @ conv.weight_fwd_1.data
        + walk_bwd @ conv.weight_bwd_1.data
    )
    assert np.allclose(out.data, ref, atol=1e-3)


def test_dconv_k1_self_only(setup):
    n, g, sg, ex, A_out, x = setup
    conv = DConv(4, 3, k=1, bias=False)
    out = conv(ex, Tensor(x))
    assert np.allclose(out.data, x @ conv.weight_self.data, atol=1e-5)


def test_dcrnn_trains(setup, rng):
    n, g, sg, ex, A_out, x = setup
    model = DCRNN(4, 6, k=2)
    ys = [rng.standard_normal((n, 6)).astype(np.float32) for _ in range(4)]
    xs = [Tensor(rng.standard_normal((n, 4)).astype(np.float32)) for _ in range(4)]
    opt = optim.Adam(model.parameters(), lr=1e-2)
    losses = []
    for _ in range(4):
        opt.zero_grad()
        h, total = None, None
        for t in range(4):
            ex.begin_timestamp(t)
            h = model(ex, xs[t], h)
            l = F.mse_loss(h, ys[t])
            total = l if total is None else F.add(total, l)
        total.backward()
        ex.check_drained()
        opt.step()
        losses.append(total.item())
    assert losses[-1] < losses[0]


def test_dconv_invalid_k():
    with pytest.raises(ValueError):
        DConv(4, 3, k=0)


# ---------------------------------------------------------------------------
# RGCN
# ---------------------------------------------------------------------------
def test_rgcn_matches_dense(setup, rng):
    n, g, sg, ex, A_out, x = setup
    R = 3
    conv = RGCNConv(4, 3, num_relations=R, bias=False)
    relations = rng.integers(0, R, sg.num_edges)
    out = conv(ex, Tensor(x), relations)

    # dense reference per relation over the labelled edge list
    bwd = sg.backward_csr()
    ref = x.astype(np.float64) @ conv.weight_self.data
    for r in range(R):
        msg = np.zeros((n, 3))
        counts = np.zeros(n)
        for u in range(n):
            for vv, l in zip(bwd.neighbors(u), bwd.edge_ids(u)):
                if relations[l] == r:
                    msg[vv] += x[u] @ getattr(conv, f"weight_rel_{r}").data
                    counts[vv] += 1
        ref += msg / np.maximum(counts, 1)[:, None]
    assert np.allclose(out.data, ref, atol=1e-3)


def test_rgcn_single_relation_reduces_to_masked_gcn(setup):
    n, g, sg, ex, A_out, x = setup
    conv = RGCNConv(4, 3, num_relations=1, bias=False)
    relations = np.zeros(sg.num_edges, dtype=np.int64)
    out = conv(ex, Tensor(x), relations)
    d_in = np.maximum(A_out.sum(0), 1)[:, None]
    ref = x @ conv.weight_self.data + ((A_out.T @ x) / d_in) @ conv.weight_rel_0.data
    assert np.allclose(out.data, ref, atol=1e-3)


def test_rgcn_gradients_flow(setup, rng):
    n, g, sg, ex, A_out, x = setup
    conv = RGCNConv(4, 3, num_relations=2)
    relations = rng.integers(0, 2, sg.num_edges)
    out = conv(ex, Tensor(x, requires_grad=True), relations)
    F.sum(out).backward()
    ex.check_drained()
    assert conv.weight_rel_0.grad is not None
    assert conv.weight_rel_1.grad is not None


def test_rgcn_relation_length_mismatch(setup):
    n, g, sg, ex, A_out, x = setup
    conv = RGCNConv(4, 3, num_relations=2)
    with pytest.raises(ValueError, match="entries"):
        conv(ex, Tensor(x), np.zeros(3, dtype=np.int64))


def test_rgcn_invalid_relations():
    with pytest.raises(ValueError):
        RGCNConv(4, 3, num_relations=0)
