"""Checkpoint save/load for models and optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import load_hungary_chickenpox
from repro.tensor import functional as F, init, nn, optim
from repro.tensor.tensor import Tensor
from repro.train import (
    CheckpointIntegrityError,
    STGraphNodeRegressor,
    STGraphTrainer,
    load_checkpoint,
    load_training_checkpoint,
    save_checkpoint,
    save_training_checkpoint,
)


def test_model_roundtrip(tmp_path):
    init.set_seed(1)
    a = nn.Linear(3, 4)
    init.set_seed(2)
    b = nn.Linear(3, 4)
    path = tmp_path / "ckpt.npz"
    save_checkpoint(path, a, extra={"epoch": 7})
    extra = load_checkpoint(path, b)
    assert extra == {"epoch": 7}
    assert np.allclose(a.weight.data, b.weight.data)
    assert np.allclose(a.bias.data, b.bias.data)


def test_adam_state_roundtrip(tmp_path, rng):
    init.set_seed(0)
    model = nn.Linear(4, 2)
    opt = optim.Adam(model.parameters(), lr=0.05)
    x = rng.standard_normal((10, 4)).astype(np.float32)
    y = rng.standard_normal((10, 2)).astype(np.float32)

    def train_steps(m, o, n):
        for _ in range(n):
            o.zero_grad()
            F.mse_loss(m(Tensor(x)), y).backward()
            o.step()

    train_steps(model, opt, 5)
    path = tmp_path / "opt.npz"
    save_checkpoint(path, model, opt)

    # resumed run must bit-match a continuous run
    init.set_seed(0)
    model2 = nn.Linear(4, 2)
    opt2 = optim.Adam(model2.parameters(), lr=0.05)
    load_checkpoint(path, model2, opt2)
    train_steps(model, opt, 3)
    train_steps(model2, opt2, 3)
    assert np.allclose(model.weight.data, model2.weight.data, atol=1e-7)


def test_sgd_momentum_state_roundtrip(tmp_path, rng):
    model = nn.Linear(3, 3)
    opt = optim.SGD(model.parameters(), lr=0.1, momentum=0.9)
    x = rng.standard_normal((5, 3)).astype(np.float32)
    for _ in range(3):
        opt.zero_grad()
        F.sum(model(Tensor(x))).backward()
        opt.step()
    path = tmp_path / "sgd.npz"
    save_checkpoint(path, model, opt)
    model2 = nn.Linear(3, 3)
    opt2 = optim.SGD(model2.parameters(), lr=0.1, momentum=0.9)
    load_checkpoint(path, model2, opt2)
    assert all(
        (a is None and b is None) or np.allclose(a, b)
        for a, b in zip(opt._velocity, opt2._velocity)
    )


def test_optimizer_class_mismatch(tmp_path):
    model = nn.Linear(2, 2)
    opt = optim.Adam(model.parameters())
    path = tmp_path / "a.npz"
    save_checkpoint(path, model, opt)
    with pytest.raises(ValueError, match="Adam"):
        load_checkpoint(path, model, optim.SGD(model.parameters(), lr=0.1))


def test_missing_optimizer_state(tmp_path):
    model = nn.Linear(2, 2)
    path = tmp_path / "noopt.npz"
    save_checkpoint(path, model)
    with pytest.raises(ValueError, match="no optimizer"):
        load_checkpoint(path, model, optim.Adam(model.parameters()))


def test_architecture_mismatch_fails(tmp_path):
    a = nn.Linear(3, 4)
    path = tmp_path / "arch.npz"
    save_checkpoint(path, a)
    with pytest.raises((KeyError, ValueError)):
        load_checkpoint(path, nn.Linear(3, 5))


def test_integrity_hash_mismatch_rejected(tmp_path):
    """A tampered archive (bit rot, torn copy, hand edit) must not load."""
    init.set_seed(0)
    path = save_checkpoint(tmp_path / "c.npz", nn.Linear(3, 3))
    with np.load(path, allow_pickle=False) as data:
        arrays = {name: data[name].copy() for name in data.files}
    victim = next(n for n in arrays if n.startswith("param/"))
    arrays[victim] = arrays[victim] + 1.0  # flip content, keep recorded hash
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)
    target = nn.Linear(3, 3)
    before = target.weight.data.copy()
    with pytest.raises(CheckpointIntegrityError, match="does not match"):
        load_checkpoint(path, target)
    # The hash is checked before any state is touched.
    assert np.array_equal(target.weight.data, before)


def test_crash_during_replace_preserves_previous(tmp_path, monkeypatch):
    """A crash at the rename leaves the old checkpoint intact and loadable."""
    init.set_seed(0)
    model = nn.Linear(2, 2)
    path = save_checkpoint(tmp_path / "c.npz", model, extra={"version": 1})

    import repro.train.checkpoint as ckpt_mod

    def crash(src, dst):
        raise OSError("simulated crash mid-replace")

    monkeypatch.setattr(ckpt_mod.os, "replace", crash)
    with pytest.raises(OSError, match="mid-replace"):
        save_checkpoint(path, model, extra={"version": 2})
    monkeypatch.undo()

    assert load_checkpoint(path, nn.Linear(2, 2)) == {"version": 1}
    assert not list(tmp_path.glob("*.tmp-*"))  # no half-written temp left


def test_crash_during_archive_write_preserves_previous(tmp_path, monkeypatch):
    """Same guarantee when the crash hits mid-serialization, not mid-rename."""
    init.set_seed(0)
    model = nn.Linear(2, 2)
    path = save_checkpoint(tmp_path / "c.npz", model, extra={"version": 1})

    import repro.train.checkpoint as ckpt_mod

    def crash(*args, **kwargs):
        raise OSError("simulated crash mid-savez")

    monkeypatch.setattr(ckpt_mod.np, "savez", crash)
    with pytest.raises(OSError, match="mid-savez"):
        save_checkpoint(path, model, extra={"version": 2})
    monkeypatch.undo()

    assert load_checkpoint(path, nn.Linear(2, 2)) == {"version": 1}
    assert not list(tmp_path.glob("*.tmp-*"))


def test_training_checkpoint_roundtrip_and_bare_rejection(tmp_path):
    init.set_seed(0)
    model = nn.Linear(2, 2)
    opt = optim.Adam(model.parameters())
    state = {"epoch": 2, "sequence": 1, "losses": [3.25, 3.0], "rng_state": None}
    path = save_training_checkpoint(tmp_path / "t.npz", model, opt, state)
    model2 = nn.Linear(2, 2)
    restored = load_training_checkpoint(path, model2, optim.Adam(model2.parameters()))
    assert restored == state
    bare = save_checkpoint(tmp_path / "bare.npz", model, opt)
    model3 = nn.Linear(2, 2)
    with pytest.raises(ValueError, match="bare model checkpoint"):
        load_training_checkpoint(bare, model3, optim.Adam(model3.parameters()))


def test_full_trainer_resume(tmp_path):
    """Checkpoint mid-training; resumed trajectory matches continuous one."""
    ds = load_hungary_chickenpox(lags=4, scale=1.0, num_timestamps=10)
    graph = ds.build_graph()

    init.set_seed(3)
    model = STGraphNodeRegressor(4, 8)
    trainer = STGraphTrainer(model, ds.build_graph(), lr=1e-2)
    trainer.train(ds.features, ds.targets, epochs=3)
    path = tmp_path / "mid.npz"
    save_checkpoint(path, model, trainer.optimizer, extra={"epoch": 3})
    continuous = trainer.train(ds.features, ds.targets, epochs=2)

    init.set_seed(99)  # different init, fully overwritten by the checkpoint
    model2 = STGraphNodeRegressor(4, 8)
    trainer2 = STGraphTrainer(model2, graph, lr=1e-2)
    extra = load_checkpoint(path, model2, trainer2.optimizer)
    assert extra["epoch"] == 3
    resumed = trainer2.train(ds.features, ds.targets, epochs=2)
    assert np.allclose(continuous, resumed, rtol=1e-5)
