"""Tracing: proxies, stages, signatures."""

from __future__ import annotations

import pytest

from repro.compiler.ir import Stage, combine_stages
from repro.compiler.symbols import trace, vfn


def test_stage_algebra():
    assert combine_stages(Stage.SRC, Stage.SRC) == Stage.SRC
    assert combine_stages(Stage.SRC, Stage.CONST) == Stage.SRC
    assert combine_stages(Stage.CONST, Stage.DST) == Stage.DST
    assert combine_stages(Stage.SRC, Stage.DST) == Stage.EDGE
    assert combine_stages(Stage.EDGE, Stage.SRC) == Stage.EDGE


def test_trace_gcn_shape():
    traced = trace(lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm)
    root = traced.root
    assert root.op == "mul" and root.stage == Stage.DST
    agg = root.args[0]
    assert agg.op == "agg" and agg.attrs["agg_op"] == "sum"
    assert traced.node_feature_names == ["h", "norm"]
    assert traced.edge_feature_names == []


def test_generator_sum_syntax():
    t1 = trace(lambda v: sum(nb.h for nb in v.innbs))
    assert t1.root.op == "agg"
    t2 = trace(lambda v: v.agg_sum(lambda nb: nb.h))
    assert t1.signature() == t2.signature()


def test_generator_sum_with_expression():
    """With generator syntax, a trailing ``* v.norm`` folds *inside* the
    aggregation body (sum() returns the bare body); the root becomes
    agg(mul(..., dst)) and lowering's dst-hoisting restores the math —
    Σ(h·n_u·n_v) = n_v·Σ(h·n_u)."""
    t = trace(lambda v: sum(nb.h * nb.norm for nb in v.innbs) * v.norm)
    assert t.root.op == "agg"
    body = t.root.args[0]
    assert body.op == "mul" and body.stage == Stage.EDGE


def test_same_feature_both_stages_distinct_leaves():
    t = trace(lambda v: v.agg_sum(lambda nb: nb.norm) * v.norm)
    leaves = t.root.leaves()
    stages = {(n.name, n.stage) for n in leaves}
    assert ("norm", Stage.SRC) in stages and ("norm", Stage.DST) in stages


def test_edge_feature_access():
    t = trace(lambda v: v.agg_sum(lambda nb: nb.h * nb.edge.w))
    assert t.edge_feature_names == ["w"]


def test_edge_softmax_stage():
    def fn(v):
        alpha = v.edge_softmax(lambda nb: nb.el + v.er)
        return v.agg_sum(lambda nb: nb.ft * alpha)

    t = trace(fn)
    assert t.root.op == "agg"


def test_vfn_unary_ops():
    t = trace(lambda v: vfn.tanh(v.agg_sum(lambda nb: vfn.relu(nb.h))))
    assert t.root.op == "tanh"
    assert t.root.args[0].args[0].op == "relu"


def test_vfn_rejects_non_expression():
    with pytest.raises(TypeError):
        vfn.tanh(3.0)


def test_trace_rejects_non_expression_return():
    with pytest.raises(TypeError):
        trace(lambda v: 42)


def test_agg_of_pure_dst_rejected():
    with pytest.raises(ValueError, match="destination-stage"):
        trace(lambda v: v.agg_sum(lambda nb: v.h))


def test_operator_sugar_on_vnodes():
    t = trace(lambda v: v.agg_sum(lambda nb: (nb.h + 1.0) * 2.0 - nb.h / 2.0))
    assert t.root.op == "agg"


def test_neg_operator():
    t = trace(lambda v: -v.agg_sum(lambda nb: nb.h))
    assert t.root.op == "neg"


def test_signature_stable_across_traces():
    fn = lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm  # noqa: E731
    assert trace(fn).signature() == trace(fn).signature()


def test_signature_differs_for_different_programs():
    a = trace(lambda v: v.agg_sum(lambda nb: nb.h))
    b = trace(lambda v: v.agg_mean(lambda nb: nb.h))
    assert a.signature() != b.signature()


def test_pretty_dump_contains_ops():
    t = trace(lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm)
    dump = t.root.pretty()
    assert "agg" in dump and "mul" in dump and "feat" in dump


def test_non_dst_root_wrapped_in_sum():
    t = trace(lambda v: v.agg_mean(lambda nb: nb.h) + 0)
    assert t.root.stage == Stage.DST


def test_vnode_coerce_rejects_strings():
    t = trace(lambda v: v.agg_sum(lambda nb: nb.h))
    with pytest.raises(TypeError):
        _ = t.root + "nope"
