"""Synthetic generators: determinism, sizes, structure."""

from __future__ import annotations

import numpy as np

from repro.dataset import gnp_edges, powerlaw_edges, smooth_signal, temporal_edge_stream


def test_gnp_exact_edge_count():
    src, dst = gnp_edges(100, 500, seed=1)
    assert len(src) == len(dst) == 500


def test_gnp_no_self_loops_no_duplicates():
    src, dst = gnp_edges(50, 400, seed=2)
    assert np.all(src != dst)
    pairs = set(zip(src.tolist(), dst.tolist()))
    assert len(pairs) == 400


def test_gnp_deterministic():
    a = gnp_edges(60, 200, seed=7)
    b = gnp_edges(60, 200, seed=7)
    assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
    c = gnp_edges(60, 200, seed=8)
    assert not np.array_equal(a[0], c[0])


def test_gnp_near_complete():
    n = 12
    src, dst = gnp_edges(n, n * (n - 1), seed=3)
    assert len(src) == n * (n - 1)


def test_powerlaw_heavy_tail():
    src, dst = powerlaw_edges(500, 3000, seed=4, exponent=1.3)
    deg = np.bincount(np.concatenate([src, dst]), minlength=500)
    top = np.sort(deg)[-25:].sum()
    assert top / deg.sum() > 0.3  # top 5% of nodes carry >30% of endpoints


def test_powerlaw_valid_edges():
    src, dst = powerlaw_edges(100, 500, seed=5)
    assert np.all(src != dst)
    assert src.max() < 100 and dst.max() < 100 and src.min() >= 0


def test_smooth_signal_shape_and_standardization():
    sig = smooth_signal(20, 100, seed=6)
    assert sig.shape == (100, 20)
    assert np.allclose(sig.mean(axis=0), 0.0, atol=1e-5)
    assert np.allclose(sig.std(axis=0), 1.0, atol=1e-2)


def test_smooth_signal_temporally_correlated():
    """Consecutive timesteps must correlate far more than distant ones."""
    sig = smooth_signal(30, 200, seed=7).astype(np.float64)
    near = np.mean([np.corrcoef(sig[t], sig[t + 1])[0, 1] for t in range(0, 150, 10)])
    far = np.mean([abs(np.corrcoef(sig[t], sig[t + 97])[0, 1]) for t in range(0, 100, 10)])
    assert near > 0.5
    assert near > far


def test_smooth_signal_deterministic():
    assert np.array_equal(smooth_signal(5, 20, seed=1), smooth_signal(5, 20, seed=1))


def test_temporal_stream_shapes():
    src, dst, times = temporal_edge_stream(200, 1000, seed=8)
    assert len(src) == len(dst) == len(times) == 1000
    assert np.all(src != dst)
    assert np.all(np.diff(times) >= 0)  # chronological


def test_temporal_stream_has_repeats():
    src, dst, _ = temporal_edge_stream(500, 5000, seed=9, repeat_prob=0.4)
    pairs = list(zip(src.tolist(), dst.tolist()))
    assert len(set(pairs)) < len(pairs)  # bursty re-fires create duplicates


def test_temporal_stream_deterministic():
    a = temporal_edge_stream(100, 500, seed=10)
    b = temporal_edge_stream(100, 500, seed=10)
    assert all(np.array_equal(x, y) for x, y in zip(a, b))
