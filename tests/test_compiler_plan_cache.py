"""The process-wide PlanCache: hit/miss semantics, key stability, sharing.

The cache is process-wide while every test runs on a fresh device, so all
assertions are *deltas* against counter snapshots — never assumptions about
a cold cache.
"""

from __future__ import annotations

import pytest

from repro.compiler import compile_vertex_program, plan_cache, plan_key
from repro.compiler.plan import PlanCache
from repro.compiler.symbols import trace
from repro.device import current_device
from repro.nn import (
    A3TGCN,
    DCRNN,
    ChebConv,
    EvolveGCNO,
    GATConv,
    GConvGRU,
    GConvLSTM,
    GCNConv,
    RGCNConv,
    SAGEConv,
    TGCN,
)


def test_miss_then_hit_counters():
    # A structure no layer uses, so the first request this process is a miss.
    fn = lambda v: v.agg_sum(lambda nb: nb.pcq * nb.edge.pcw) * v.pcq  # noqa: E731
    stats = plan_cache().stats()
    p1 = compile_vertex_program(fn, feature_widths={"pcq": "v"}, name="pc1")
    after_miss = plan_cache().stats()
    assert after_miss["misses"] == stats["misses"] + 1
    assert after_miss["size"] == stats["size"] + 1
    p2 = compile_vertex_program(fn, feature_widths={"pcq": "v"}, name="pc2")
    after_hit = plan_cache().stats()
    assert after_hit["hits"] == after_miss["hits"] + 1
    assert after_hit["misses"] == after_miss["misses"]
    assert after_hit["size"] == after_miss["size"]
    assert p1.plan is p2.plan


def test_key_stable_across_identical_retraces():
    # Two distinct function objects, identical structure → identical key.
    def first(v):
        return v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm

    def second(v):
        return v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm

    widths = {"h": "v", "norm": "s"}
    k1 = plan_key(trace(first).signature(), widths, {"h"}, True, True, True)
    k2 = plan_key(trace(second).signature(), widths, {"h"}, True, True, True)
    assert k1 == k2
    p1 = compile_vertex_program(first, feature_widths=widths, grad_features={"h"})
    p2 = compile_vertex_program(second, feature_widths=widths, grad_features={"h"})
    assert p1.plan_id == p2.plan_id == k1
    assert p1.plan is p2.plan


@pytest.mark.parametrize(
    "variant",
    [
        {"fused": False},
        {"state_stack_opt": False},
        {"optimize": False},
        {"dtype": "float64"},
        {"grad_features": None},
    ],
)
def test_key_invalidation_on_option_change(variant):
    fn = lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm  # noqa: E731
    widths = {"h": "v", "norm": "s"}
    base = compile_vertex_program(fn, feature_widths=widths, grad_features={"h"})
    misses = plan_cache().misses
    kwargs = {"grad_features": {"h"}, **variant}
    other = compile_vertex_program(fn, feature_widths=widths, **kwargs)
    assert other.plan_id != base.plan_id
    # Re-requesting the variant is a hit, not another build.
    again = compile_vertex_program(fn, feature_widths=widths, **kwargs)
    assert again.plan is other.plan
    assert plan_cache().misses <= misses + 1


def test_name_does_not_partition_the_cache():
    """Structurally identical programs share one plan across display names —
    and across layer widths, since declared widths are symbolic."""
    assert GCNConv(5, 3).plan_id == GCNConv(7, 11, bias=False).plan_id


def test_gate_convolutions_share_one_plan():
    """TGCN/A3TGCN/GConvGRU/GConvLSTM gates and EvolveGCN-O all run the same
    self-loop GCN vertex program → one plan id, compiled once per process."""
    reference = GCNConv(4, 4).plan_id
    tgcn = TGCN(4, 4)
    gru = GConvGRU(4, 4)
    lstm = GConvLSTM(4, 4)
    a3 = A3TGCN(4, 4, periods=2)
    evolve = EvolveGCNO(4, 4)
    gate_ids = {
        tgcn.conv_z.plan_id,
        tgcn.conv_r.plan_id,
        tgcn.conv_h.plan_id,
        gru.conv_xz.plan_id,
        gru.conv_hh.plan_id,
        lstm.conv_xi.plan_id,
        lstm.conv_ho.plan_id,
        a3.tgcn.conv_z.plan_id,
        evolve.program.plan_id,
    }
    assert gate_ids == {reference}


def test_model_construction_after_warm_gcn_builds_nothing():
    GCNConv(4, 4)  # warm the shared gate plan
    misses = plan_cache().misses
    TGCN(4, 4)
    GConvGRU(4, 4)
    assert plan_cache().misses == misses


ZOO = [
    ("gcn", lambda: GCNConv(4, 4)),
    ("gcn_plain", lambda: GCNConv(4, 4, add_self_loops=False)),
    ("gcn_weighted", lambda: GCNConv(4, 4, edge_weighted=True, add_self_loops=False)),
    ("gat", lambda: GATConv(4, 4)),
    ("sage", lambda: SAGEConv(4, 4)),
    ("cheb", lambda: ChebConv(4, 4, k=3)),
    ("rgcn", lambda: RGCNConv(4, 4, num_relations=2)),
    ("tgcn", lambda: TGCN(4, 4)),
    ("gconv_gru", lambda: GConvGRU(4, 4)),
    ("gconv_lstm", lambda: GConvLSTM(4, 4)),
    ("a3tgcn", lambda: A3TGCN(4, 4, periods=2)),
    ("evolve_gcn", lambda: EvolveGCNO(4, 4)),
    ("dcrnn", lambda: DCRNN(4, 4, k=2)),
]


@pytest.mark.parametrize("name,factory", ZOO, ids=[n for n, _ in ZOO])
def test_second_instance_compiles_nothing(name, factory):
    """The acceptance criterion: re-instantiating any layer with an identical
    configuration performs zero new plan builds and zero kernel compiles."""
    factory()  # first instance may warm the cache
    launcher = current_device().launcher
    misses, compiles = plan_cache().misses, launcher.compile_count
    factory()
    assert plan_cache().misses == misses
    assert launcher.compile_count == compiles


def test_launcher_dedups_identical_source_across_caches():
    """Rebuilding a plan (e.g. in another cache instance) regenerates
    byte-identical source; the launcher hands back the existing kernel."""
    fn = lambda v: v.agg_sum(lambda nb: nb.ddq) * v.ddq  # noqa: E731
    launcher = current_device().launcher
    private1, private2 = PlanCache(), PlanCache()
    p1 = private1.get_or_build(fn, feature_widths={"ddq": "v"}, name="dd1")
    compiles, dedups = launcher.compile_count, launcher.source_dedup_hits
    p2 = private2.get_or_build(fn, feature_widths={"ddq": "v"}, name="dd2")
    assert p2.plan_id == p1.plan_id
    assert launcher.compile_count == compiles  # nothing recompiled …
    assert launcher.source_dedup_hits == dedups + 2  # … fwd + bwd deduped
    assert p2.fwd_kernel is p1.fwd_kernel
    assert p2.bwd_kernel is p1.bwd_kernel


def test_plans_snapshot_and_get():
    p = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h), feature_widths={"h": "v"}
    )
    assert plan_cache().get(p.plan_id) is p.plan
    assert p.plan in plan_cache().plans()
    assert len(plan_cache()) == plan_cache().stats()["size"]


def test_misses_time_the_compile_phase():
    """A cache miss runs under the profiler's "compile" phase; hits don't."""
    profiler = current_device().profiler
    fn = lambda v: v.agg_sum(lambda nb: nb.tmq * nb.tmr)  # noqa: E731
    widths = {"tmq": "v", "tmr": "s"}
    compile_vertex_program(fn, feature_widths=widths)
    assert profiler.seconds("compile") > 0
    assert profiler.calls("compile") == 1
    warm = profiler.seconds("compile")
    compile_vertex_program(fn, feature_widths=widths)
    assert profiler.seconds("compile") == warm


def test_signature_name_attr_collision_resolved():
    """Distinct DAGs must never share a structural signature.

    The old ``{name}{attrs}`` concatenation let a leaf literally named
    ``"xslope=0.01"`` collide with a leaf ``"x"`` carrying
    ``attrs={"slope": 0.01}`` — same cache key, wrong plan served.
    """
    from repro.compiler import Stage, VNode

    plain = VNode("feat", (), Stage.SRC, name="xslope=0.01")
    attred = VNode("feat", (), Stage.SRC, name="x", attrs={"slope": 0.01})
    assert plain.signature() != attred.signature()
    assert "name=" in plain.signature() and "|attrs=" in plain.signature()
