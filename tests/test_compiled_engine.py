"""The compiled (native) execution tier: fallback, fusion, ladder, CLI.

The CompiledEngine must be a perfect drop-in sibling of the kernel and
interpreter engines: bitwise-identical numerics (gated by the engine-axis
differential tests), transparent delegation when no toolchain exists,
cross-timestamp fusion that is purely a structural-reuse optimization, and
a degradation ladder that walks compiled → kernel → interpreter under
injected faults.
"""

from __future__ import annotations

import subprocess
import sys

import networkx as nx
import numpy as np
import pytest

from repro.compiler import compile_vertex_program
from repro.compiler.native import native_backend, native_graph, reset_native_backend
from repro.compiler.runtime import GraphContext
from repro.core import CompiledEngine, TemporalExecutor, get_engine
from repro.device import current_device
from repro.graph import StaticGraph
from repro.nn import GCNConv
from repro.resilience import FaultPlan, FaultSite, use_fault_plan
from repro.resilience.faults import FaultInjector
from repro.tensor import Tensor, functional as F, init

N, F_IN = 16, 4


def _static_executor(engine=None, seed=3):
    sg = StaticGraph.from_networkx(
        nx.gnp_random_graph(N, 0.3, seed=seed, directed=True)
    )
    return TemporalExecutor(sg, engine=engine)


def _gcn_forward_backward(ex, seed=11):
    ex.begin_timestamp(0)
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal((N, F_IN)).astype(np.float32), requires_grad=True)
    init.set_seed(21)
    out = GCNConv(F_IN, 3)(ex, x)
    F.sum(out).backward()
    return out.data, x.grad


# ---------------------------------------------------------------------------
# Toolchain resolution / fallback
# ---------------------------------------------------------------------------
def test_backend_resolved_in_this_container():
    """The CI image ships cc (and CI's compiled job installs numba), so a
    backend must resolve here; the engine records which one."""
    engine = get_engine("compiled")
    assert isinstance(engine, CompiledEngine)
    assert engine.backend == native_backend()


def test_no_toolchain_falls_back_to_kernel(monkeypatch):
    """REPRO_NATIVE=none simulates a machine with neither numba nor cc: the
    compiled engine must transparently delegate to the kernel engine and
    still produce the exact same numbers."""
    out_ref, grad_ref = _gcn_forward_backward(_static_executor(engine="kernel"))

    monkeypatch.setenv("REPRO_NATIVE", "none")
    reset_native_backend()
    try:
        assert native_backend() is None
        engine = CompiledEngine()  # fresh instance: the singleton has a backend
        assert engine.backend is None
        out_c, grad_c = _gcn_forward_backward(_static_executor(engine=engine))
        assert np.array_equal(out_ref, out_c)
        assert np.array_equal(grad_ref, grad_c)
    finally:
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        reset_native_backend()


# ---------------------------------------------------------------------------
# Cross-timestamp fusion
# ---------------------------------------------------------------------------
def test_fusion_cache_hits_on_unchanged_snapshot():
    """Same GraphContext across timestamps → one packing miss, then hits;
    both sides reach the device profiler's fusion counters."""
    if native_backend() is None:
        pytest.skip("no native toolchain")
    profiler = current_device().profiler
    sg = StaticGraph.from_networkx(nx.gnp_random_graph(N, 0.3, seed=5, directed=True))
    ctx = GraphContext(sg)
    h0, m0 = profiler.counter("compiled_fusion_hits"), profiler.counter("compiled_fusion_misses")
    g1 = native_graph(ctx)
    g2 = native_graph(ctx)
    assert g1 is g2
    assert profiler.counter("compiled_fusion_misses") == m0 + 1
    assert profiler.counter("compiled_fusion_hits") == h0 + 1


def test_fusion_invisible_in_numerics_across_contexts():
    """A fresh context (fusion miss) and a reused one (hit) agree bitwise."""
    if native_backend() is None:
        pytest.skip("no native toolchain")
    prog = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm,
        {"h": "v", "norm": "s"},
        {"h"},
        name="fuse_eq",
        engine="compiled",
    )
    sg = StaticGraph.from_networkx(nx.gnp_random_graph(N, 0.3, seed=5, directed=True))
    rng = np.random.default_rng(1)
    h = rng.standard_normal((N, F_IN)).astype(np.float32)
    norm = rng.standard_normal(N).astype(np.float32)
    ctx_a = GraphContext(sg)
    out_miss, _ = prog.forward(ctx_a, {"h": h, "norm": norm})
    out_hit, _ = prog.forward(ctx_a, {"h": h, "norm": norm})
    out_fresh, _ = prog.forward(GraphContext(sg), {"h": h, "norm": norm})
    assert np.array_equal(out_miss, out_hit)
    assert np.array_equal(out_miss, out_fresh)


# ---------------------------------------------------------------------------
# Launch-tier recording
# ---------------------------------------------------------------------------
def test_compiled_launches_recorded_as_native_tier():
    if native_backend() is None:
        pytest.skip("no native toolchain")
    launcher = current_device().launcher
    _gcn_forward_backward(_static_executor(engine="compiled"))
    assert launcher.launches_by_tier.get("native", 0) >= 2  # fwd + bwd
    before = launcher.launches_by_tier.get("native", 0)
    _gcn_forward_backward(_static_executor(engine="kernel"))
    assert launcher.launches_by_tier.get("native", 0) == before
    assert launcher.launches_by_tier.get("python", 0) >= 2


# ---------------------------------------------------------------------------
# Degradation ladder: compiled -> kernel -> interpreter
# ---------------------------------------------------------------------------
def test_fault_ladder_walks_compiled_kernel_interpreter():
    """A kernel fault firing 3 times eats the compiled retry and the kernel
    fallback launch, so recovery requires both ladder steps; the result
    still matches the clean run bitwise (the interpreter is the oracle)."""
    if native_backend() is None:
        pytest.skip("no native toolchain")
    out_ref, grad_ref = _gcn_forward_backward(_static_executor(engine="kernel"))

    plan = FaultPlan(
        name="ladder3",
        sites=[FaultSite(kind="kernel", times=3)],
    )
    ex = _static_executor(engine="compiled")
    with use_fault_plan(FaultInjector(plan)):
        out, grad = _gcn_forward_backward(ex)
    assert np.array_equal(out_ref, out)
    assert np.array_equal(grad_ref, grad)
    assert ex.kernel_retries == 1
    assert ex.engine_fallbacks == 2  # compiled -> kernel, kernel -> interpreter
    profiler = current_device().profiler
    assert profiler.counter("engine_fallbacks") >= 2


def test_fault_ladder_single_extra_fault_lands_on_kernel():
    """times=2: the retry faults, the first fallback (kernel) completes —
    the interpreter is never needed."""
    if native_backend() is None:
        pytest.skip("no native toolchain")
    out_ref, grad_ref = _gcn_forward_backward(_static_executor(engine="kernel"))
    plan = FaultPlan(name="ladder2", sites=[FaultSite(kind="kernel", times=2)])
    ex = _static_executor(engine="compiled")
    with use_fault_plan(FaultInjector(plan)):
        out, grad = _gcn_forward_backward(ex)
    assert np.array_equal(out_ref, out)
    assert np.array_equal(grad_ref, grad)
    assert ex.kernel_retries == 1
    assert ex.engine_fallbacks == 1


# ---------------------------------------------------------------------------
# Executor stats / CLI surface
# ---------------------------------------------------------------------------
def test_executor_stats_name_engine():
    ex = _static_executor(engine="compiled")
    assert ex.stats()["engine"] == "compiled"
    assert _static_executor().stats()["engine"] == "default"


def test_cli_unknown_engine_exits_nonzero_with_message():
    """``repro train --engine copiled`` must exit non-zero with the engine
    list on stderr — not a traceback."""
    import os
    import pathlib

    src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
    env = dict(os.environ, PYTHONPATH=src + os.pathsep + os.environ.get("PYTHONPATH", ""))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "train",
         "--dataset", "HC", "--engine", "copiled"],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode != 0
    assert "unknown engine" in proc.stderr
    assert "compiled" in proc.stderr  # the available list names the real one
    assert "Traceback" not in proc.stderr
