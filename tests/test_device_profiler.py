"""Profiler phase accounting (Figure 9's instrument)."""

from __future__ import annotations

import time

import pytest

from repro.device import COUNTERS, Profiler


def test_single_phase_accumulates():
    p = Profiler()
    with p.phase("a"):
        time.sleep(0.01)
    with p.phase("a"):
        time.sleep(0.01)
    assert p.seconds("a") >= 0.02
    assert p.calls("a") == 2


def test_unknown_phase_zero():
    p = Profiler()
    assert p.seconds("nope") == 0.0
    assert p.calls("nope") == 0


def test_nested_phases_attributed_once():
    """Inner phase time must not be double counted in the outer phase."""
    p = Profiler()
    with p.phase("outer"):
        time.sleep(0.02)
        with p.phase("inner"):
            time.sleep(0.04)
        time.sleep(0.02)
    outer = p.seconds("outer")
    inner = p.seconds("inner")
    assert inner >= 0.04
    assert outer >= 0.04 * 0.9  # own time only (two 0.02 sleeps)
    # The key invariant: outer does NOT include inner's 0.04s.
    assert outer < 0.04 + 0.04 + 0.02
    total = outer + inner
    assert total == pytest.approx(0.08, abs=0.04)


def test_breakdown_sums_to_one():
    p = Profiler()
    with p.phase("a"):
        time.sleep(0.01)
    with p.phase("b"):
        time.sleep(0.03)
    frac = p.breakdown()
    assert abs(sum(frac.values()) - 1.0) < 1e-9
    assert frac["b"] > frac["a"]


def test_disabled_profiler_is_noop():
    p = Profiler()
    p.enabled = False
    with p.phase("a"):
        pass
    assert p.calls("a") == 0
    assert p.breakdown() == {}


def test_reset():
    p = Profiler()
    with p.phase("a"):
        pass
    p.reset()
    assert p.seconds("a") == 0.0
    assert p.breakdown() == {}


def test_exception_inside_phase_still_recorded():
    p = Profiler()
    with pytest.raises(ValueError):
        with p.phase("a"):
            raise ValueError("boom")
    assert p.calls("a") == 1


def test_event_counters():
    p = Profiler()
    p.count("csr_cache_hits")
    p.count("csr_cache_hits", 2)
    assert p.counter("csr_cache_hits") == 3
    assert p.counter("never_counted") == 0
    snapshot = p.counters()
    assert set(snapshot) == set(COUNTERS)
    assert snapshot["csr_cache_hits"] == 3


def test_counters_respect_enabled_and_reset():
    p = Profiler()
    p.enabled = False
    p.count("csr_cache_hits")
    assert p.counter("csr_cache_hits") == 0
    p.enabled = True
    p.count("ctx_cache_misses")
    p.reset()
    assert p.counter("ctx_cache_misses") == 0


def test_sibling_phases_inside_outer():
    p = Profiler()
    with p.phase("outer"):
        with p.phase("x"):
            time.sleep(0.01)
        with p.phase("y"):
            time.sleep(0.01)
    assert p.calls("x") == 1 and p.calls("y") == 1
    assert p.calls("outer") == 1


def test_reset_clears_adhoc_counters_and_timers():
    """Regression: reset() must clear *every* counter, including ad-hoc
    event names outside COUNTERS, and the phase timers with them."""
    p = Profiler()
    with p.phase("gnn"):
        pass
    p.count("csr_cache_hits", 2)
    p.count("my_adhoc_event", 5)
    assert p.counters_snapshot() == {"csr_cache_hits": 2, "my_adhoc_event": 5}
    p.reset()
    assert p.counters_snapshot() == {}
    assert p.counter("csr_cache_hits") == 0
    assert p.counter("my_adhoc_event") == 0
    assert p.seconds("gnn") == 0.0 and p.calls("gnn") == 0


def test_reset_inside_open_phase_does_not_crash():
    """Regression: reset() while a phase() context is still open used to
    leave the context's finally popping an empty stack (IndexError)."""
    p = Profiler()
    with p.phase("outer"):
        with p.phase("inner"):
            p.reset()
    # The discarded intervals are dropped, not recorded.
    assert p.calls("inner") == 0 and p.calls("outer") == 0
    # The profiler is fully usable afterwards.
    with p.phase("after"):
        pass
    assert p.calls("after") == 1
