"""Differential testing: generated kernels vs the tensor-IR interpreter.

The interpreter executes the IR directly; codegen must agree bit-for-bit
on forward outputs, saved buffers, and every gradient — for hand-written
programs and for randomly generated ones.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.compiler import compile_vertex_program
from repro.compiler.interp import interpret_program, trace_execution
from repro.compiler.runtime import GraphContext
from repro.compiler.symbols import vfn
from repro.graph import StaticGraph


@pytest.fixture
def ctx(rng):
    g = nx.gnp_random_graph(15, 0.3, seed=12, directed=True)
    return GraphContext(StaticGraph.from_networkx(g))


def _bindings(prog, ctx, rng, f=3):
    out = {}
    for buf, (kind, _feat) in prog.fwd_prog.inputs.items():
        width = prog._widths[buf]
        if kind == "edge":
            out[buf] = rng.standard_normal(ctx.num_edges).astype(np.float32)
        elif width == "s":
            out[buf] = rng.standard_normal(ctx.num_nodes).astype(np.float32)
        else:
            out[buf] = rng.standard_normal((ctx.num_nodes, f)).astype(np.float32)
    return out


PROGRAMS = {
    "gcn": (
        lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm,
        {"h": "v", "norm": "s"},
    ),
    "mean_tanh": (
        lambda v: vfn.tanh(v.agg_mean(lambda nb: nb.h)),
        {"h": "v"},
    ),
    "two_terms": (
        lambda v: v.agg_sum(lambda nb: nb.a * 2.0 + nb.b * nb.s),
        {"a": "v", "b": "v", "s": "s"},
    ),
    "gat": (
        lambda v: v.agg_sum(
            lambda nb: nb.ft * v.edge_softmax(lambda nb2: vfn.leaky_relu(nb2.el + v.er))
        ),
        {"ft": "v", "el": "s", "er": "s"},
    ),
    "bidirectional": (
        lambda v: v.agg_mean(lambda nb: nb.h) + v.agg_mean_out(lambda nb: nb.h),
        {"h": "v"},
    ),
    "maxpool": (
        lambda v: v.agg_max(lambda nb: nb.h),
        {"h": "v"},
    ),
}


@pytest.mark.parametrize("name", list(PROGRAMS))
def test_forward_matches_interpreter(name, ctx, rng):
    fn, widths = PROGRAMS[name]
    prog = compile_vertex_program(fn, widths, name=f"diff_{name}")
    binds = _bindings(prog, ctx, rng)
    compiled_out, _ = prog.forward(
        ctx,
        {feat: binds[buf] for buf, (k, feat) in prog.fwd_prog.inputs.items() if k == "node"},
        {
            feat: ctx.edge_grad_to_labels(binds[buf])
            for buf, (k, feat) in prog.fwd_prog.inputs.items()
            if k == "edge"
        }
        or None,
    )
    interp_out = interpret_program(prog.fwd_prog, ctx, binds)[0]
    assert np.allclose(compiled_out, interp_out, atol=1e-6), name


@pytest.mark.parametrize("name", list(PROGRAMS))
def test_backward_matches_interpreter(name, ctx, rng):
    fn, widths = PROGRAMS[name]
    prog = compile_vertex_program(fn, widths, name=f"diffb_{name}")
    binds = _bindings(prog, ctx, rng)
    node_feats = {feat: binds[buf] for buf, (k, feat) in prog.fwd_prog.inputs.items() if k == "node"}
    edge_feats = {
        feat: ctx.edge_grad_to_labels(binds[buf])
        for buf, (k, feat) in prog.fwd_prog.inputs.items()
        if k == "edge"
    } or None
    out, saved = prog.forward(ctx, node_feats, edge_feats)
    gout = rng.standard_normal(np.asarray(out).shape).astype(np.float32)
    compiled_grads = prog.backward(ctx, gout, saved)

    # interpreter path: run fwd trace for saved values, then bwd program
    fwd_env = trace_execution(prog.fwd_prog, ctx, binds)
    bwd_binds = {"g_out": gout}
    for name_, (kind, ref) in prog.bwd_prog.inputs.items():
        if kind == "saved":
            bwd_binds[name_] = fwd_env[ref]
    interp_out = interpret_program(prog.bwd_prog, ctx, bwd_binds)
    interp_by_buf = dict(zip(prog.bwd_prog.outputs, interp_out))
    for buf, gbuf in prog.grad_map.items():
        kind, feat = prog.fwd_prog.inputs[buf]
        expected = interp_by_buf[gbuf]
        if kind == "edge":
            expected = ctx.edge_grad_to_labels(np.asarray(expected))
        assert np.allclose(compiled_grads[feat], expected, atol=1e-6), (name, feat)


@pytest.mark.parametrize("engine", ["interpreter", "compiled"])
@pytest.mark.parametrize("name", list(PROGRAMS))
def test_engine_axis_matches_kernel_bitwise(name, engine, ctx, rng):
    """Engine axis: every registered engine agrees with ``kernel`` bitwise.

    Stronger than the interpreter differentials above (allclose): engines
    execute the same op order against the same runtime/native primitives,
    so outputs, saved buffers, and gradients must be bit-for-bit equal.
    Without a native toolchain the compiled engine delegates to kernel,
    which keeps this axis meaningful on every machine.
    """
    fn, widths = PROGRAMS[name]
    prog = compile_vertex_program(fn, widths, name=f"diffe_{name}")
    binds = _bindings(prog, ctx, rng)
    node_feats = {
        feat: binds[buf] for buf, (k, feat) in prog.fwd_prog.inputs.items() if k == "node"
    }
    edge_feats = {
        feat: ctx.edge_grad_to_labels(binds[buf])
        for buf, (k, feat) in prog.fwd_prog.inputs.items()
        if k == "edge"
    } or None
    out_k, saved_k = prog.forward(ctx, node_feats, edge_feats)
    gout = rng.standard_normal(np.asarray(out_k).shape).astype(np.float32)
    grads_k = prog.backward(ctx, gout, saved_k)

    other = prog.with_engine(engine)
    out_o, saved_o = other.forward(ctx, node_feats, edge_feats)
    grads_o = other.backward(ctx, gout, saved_o)

    assert np.array_equal(np.asarray(out_k), np.asarray(out_o)), name
    assert sorted(saved_k) == sorted(saved_o)
    for buf in saved_k:
        assert np.array_equal(saved_k[buf], saved_o[buf]), (name, buf)
    assert sorted(grads_k) == sorted(grads_o)
    for feat in grads_k:
        assert np.array_equal(grads_k[feat], grads_o[feat]), (name, feat)


_term = st.tuples(
    st.floats(-2.0, 2.0).filter(lambda c: abs(c) > 0.05),
    st.booleans(),
    st.booleans(),
    st.booleans(),
)


@given(terms=st.lists(_term, min_size=1, max_size=3), seed=st.integers(0, 10**5))
@settings(max_examples=25, deadline=None)
def test_random_programs_differential(terms, seed):
    """Property: compiled == interpreted on random sum-of-products bodies."""
    assume(any(h or s for _, h, s, _ in terms))
    from repro.compiler.ir import VNode

    def fn(v):
        def body(nb):
            expr = None
            for coef, use_h, use_s, use_d in terms:
                t = None
                if use_h:
                    t = nb.h
                if use_s:
                    t = nb.s if t is None else t * nb.s
                if use_d:
                    t = v.d if t is None else t * v.d
                t = VNode.const(coef) if t is None else t * coef
                expr = t if expr is None else expr + t
            return expr

        return v.agg_sum(body)

    g = nx.gnp_random_graph(12, 0.3, seed=seed, directed=True)
    ctx = GraphContext(StaticGraph.from_networkx(g))
    rng = np.random.default_rng(seed)
    prog = compile_vertex_program(fn, {"h": "v", "s": "s", "d": "s"}, name="diff_rand")
    binds = _bindings(prog, ctx, rng)
    node_feats = {feat: binds[buf] for buf, (k, feat) in prog.fwd_prog.inputs.items()}
    compiled, _ = prog.forward(ctx, node_feats)
    interp = interpret_program(prog.fwd_prog, ctx, binds)[0]
    assert np.allclose(compiled, interp, atol=1e-6)
