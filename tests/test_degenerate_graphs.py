"""Degenerate graphs: empty, single-node, edgeless, fully-isolated.

Production frameworks meet these at dataset boundaries; nothing may crash
and aggregations over missing neighbors must be exactly zero.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import compile_vertex_program
from repro.compiler.runtime import GraphContext
from repro.core import TemporalExecutor
from repro.graph import DTDG, GPMAGraph, NaiveGraph, StaticGraph
from repro.nn import GCNConv, TGCN
from repro.tensor import Tensor, functional as F, optim


_E = np.empty(0, dtype=np.int64)


@pytest.fixture
def sum_prog():
    return compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h),
        feature_widths={"h": "v"}, grad_features={"h"}, name="deg_sum",
    )


def test_edgeless_graph_aggregates_to_zero(sum_prog, rng):
    sg = StaticGraph(_E, _E, 5)
    ctx = GraphContext(sg)
    h = rng.standard_normal((5, 3)).astype(np.float32)
    out, saved = sum_prog.forward(ctx, {"h": h})
    assert np.allclose(out, 0.0)
    grads = sum_prog.backward(ctx, np.ones((5, 3), dtype=np.float32), saved)
    assert np.allclose(grads["h"], 0.0)


def test_single_node_graph(sum_prog, rng):
    sg = StaticGraph(_E, _E, 1)
    ctx = GraphContext(sg)
    out, _ = sum_prog.forward(ctx, {"h": rng.standard_normal((1, 2)).astype(np.float32)})
    assert out.shape == (1, 2) and np.allclose(out, 0.0)


def test_mean_on_edgeless_graph_no_nan(rng):
    prog = compile_vertex_program(
        lambda v: v.agg_mean(lambda nb: nb.h), feature_widths={"h": "v"}, name="deg_mean"
    )
    ctx = GraphContext(StaticGraph(_E, _E, 4))
    out, _ = prog.forward(ctx, {"h": rng.standard_normal((4, 2)).astype(np.float32)})
    assert np.all(np.isfinite(out)) and np.allclose(out, 0.0)


def test_gcn_with_self_loops_on_edgeless_graph(rng):
    """With self-loops, an edgeless graph is pure per-node scaling."""
    sg = StaticGraph(_E, _E, 6)
    ex = TemporalExecutor(sg)
    ex.begin_timestamp(0)
    conv = GCNConv(3, 2, bias=False)
    x = rng.standard_normal((6, 3)).astype(np.float32)
    out = conv(ex, Tensor(x))
    # deg~=1 everywhere → norm=1 → out = xW
    assert np.allclose(out.data, x @ conv.weight.data, atol=1e-5)


def test_tgcn_trains_on_edgeless_graph(rng):
    sg = StaticGraph(_E, _E, 6)
    ex = TemporalExecutor(sg)
    model = TGCN(3, 4)
    opt = optim.Adam(model.parameters(), lr=1e-2)
    h = None
    total = None
    for t in range(3):
        ex.begin_timestamp(t)
        h = model(ex, Tensor(rng.standard_normal((6, 3)).astype(np.float32)), h)
        l = F.mse_loss(h, np.zeros((6, 4), dtype=np.float32))
        total = l if total is None else F.add(total, l)
    total.backward()
    ex.check_drained()
    opt.step()
    assert np.isfinite(total.item())


def test_dtdg_snapshot_becomes_empty(rng):
    """A DTDG whose middle snapshot deletes every edge."""
    snaps = [
        (np.array([0, 1]), np.array([1, 2])),
        (_E, _E),
        (np.array([2]), np.array([0])),
    ]
    dtdg = DTDG(snaps, 3)
    for graph in (NaiveGraph(dtdg), GPMAGraph(dtdg)):
        for t in (0, 1, 2, 1, 0):
            graph.get_graph(t)
            expected = dtdg.snapshot_edge_count(t)
            assert graph.num_edges == expected, (type(graph).__name__, t)
        if isinstance(graph, GPMAGraph):
            graph.pma.check_invariants()


def test_edge_softmax_program_on_edgeless_graph(rng):
    from repro.compiler.symbols import vfn

    prog = compile_vertex_program(
        lambda v: v.agg_sum(
            lambda nb: nb.ft * v.edge_softmax(lambda nb2: vfn.tanh(nb2.el + v.er))
        ),
        feature_widths={"ft": "v", "el": "s", "er": "s"},
        name="deg_gat",
    )
    ctx = GraphContext(StaticGraph(_E, _E, 3))
    out, _ = prog.forward(
        ctx,
        {
            "ft": rng.standard_normal((3, 2)).astype(np.float32),
            "el": np.zeros(3, dtype=np.float32),
            "er": np.zeros(3, dtype=np.float32),
        },
    )
    assert np.all(np.isfinite(out)) and np.allclose(out, 0.0)


def test_graph_where_every_vertex_isolated_except_one_pair(sum_prog, rng):
    sg = StaticGraph(np.array([7]), np.array([3]), 10)
    ctx = GraphContext(sg)
    h = rng.standard_normal((10, 2)).astype(np.float32)
    out, _ = sum_prog.forward(ctx, {"h": h})
    assert np.allclose(out[3], h[7], atol=1e-6)
    mask = np.ones(10, dtype=bool)
    mask[3] = False
    assert np.allclose(out[mask], 0.0)
