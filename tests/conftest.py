"""Shared fixtures: every test runs on a fresh simulated device so memory
accounting and kernel caches never leak between tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import Device, use_device


@pytest.fixture(autouse=True)
def fresh_device():
    device = Device(name="test")
    with use_device(device):
        yield device


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


def pytest_sessionfinish(session, exitstatus):
    """The ``REPRO_TSAN=1`` CI gate: any runtime lock-discipline violation
    observed during the run fails the session, even if every test passed."""
    from repro.analysis.sanitizer import current_sanitizer

    sanitizer = current_sanitizer()
    if not getattr(sanitizer, "enabled", False):
        return
    cycles = sanitizer.order_cycles()
    print("\n" + sanitizer.report())
    if sanitizer.violations or cycles:
        session.exitstatus = 1
