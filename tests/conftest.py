"""Shared fixtures: every test runs on a fresh simulated device so memory
accounting and kernel caches never leak between tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import Device, use_device


@pytest.fixture(autouse=True)
def fresh_device():
    device = Device(name="test")
    with use_device(device):
        yield device


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
