"""Temporal models: TGCN, GConvGRU, GConvLSTM, A3TGCN, EvolveGCN-O."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core import TemporalExecutor
from repro.graph import StaticGraph
from repro.nn import A3TGCN, EvolveGCNO, GConvGRU, GConvLSTM, TGCN
from repro.tensor import Tensor, functional as F, init, optim


@pytest.fixture
def setup(rng):
    n = 15
    g = nx.gnp_random_graph(n, 0.25, seed=21, directed=True)
    sg = StaticGraph.from_networkx(g)
    ex = TemporalExecutor(sg)
    xs = [Tensor(rng.standard_normal((n, 4)).astype(np.float32)) for _ in range(5)]
    ys = [rng.standard_normal((n, 6)).astype(np.float32) for _ in range(5)]
    return n, sg, ex, xs, ys


def _train_sequence(model_step, params, ex, xs, ys, epochs=4):
    opt = optim.Adam(params, lr=1e-2)
    losses = []
    for _ in range(epochs):
        opt.zero_grad()
        state, total = None, None
        for t, (x, y) in enumerate(zip(xs, ys)):
            ex.begin_timestamp(t)
            out, state = model_step(ex, x, state)
            l = F.mse_loss(out, y)
            total = l if total is None else F.add(total, l)
        total.backward()
        ex.check_drained()
        opt.step()
        losses.append(total.item())
    return losses


def test_tgcn_trains(setup):
    n, sg, ex, xs, ys = setup
    m = TGCN(4, 6)

    def step(ex_, x, s):
        h = m(ex_, x, s)
        return h, h

    losses = _train_sequence(step, list(m.parameters()), ex, xs, ys)
    assert losses[-1] < losses[0]


def test_tgcn_initial_state_zero(setup):
    n, sg, ex, xs, ys = setup
    m = TGCN(4, 6)
    h0 = m.initial_state(n)
    assert h0.shape == (n, 6) and not h0.data.any()


def test_tgcn_hidden_state_changes_output(setup):
    n, sg, ex, xs, ys = setup
    m = TGCN(4, 6)
    ex.begin_timestamp(0)
    with_zero = m(ex, xs[0], None).data
    warm = Tensor(np.ones((n, 6), dtype=np.float32))
    with_warm = m(ex, xs[0], warm).data
    assert not np.allclose(with_zero, with_warm)


def test_tgcn_has_three_convs_three_linears():
    m = TGCN(4, 6)
    # 3 convs (W+b each) + 3 linears (W+b each) = 12 parameters
    assert len(list(m.parameters())) == 12


def test_gconv_gru_trains(setup):
    n, sg, ex, xs, ys = setup
    m = GConvGRU(4, 6)

    def step(ex_, x, s):
        h = m(ex_, x, s)
        return h, h

    losses = _train_sequence(step, list(m.parameters()), ex, xs, ys)
    assert losses[-1] < losses[0]


def test_gconv_lstm_trains(setup):
    n, sg, ex, xs, ys = setup
    m = GConvLSTM(4, 6)

    def step(ex_, x, s):
        h, c = m(ex_, x, *(s if s else (None, None)))
        return h, (h, c)

    losses = _train_sequence(step, list(m.parameters()), ex, xs, ys)
    assert losses[-1] < losses[0]


def test_a3tgcn_attention_combines_periods(setup):
    n, sg, ex, xs, ys = setup
    m = A3TGCN(4, 6, periods=3)
    ex.begin_timestamp(0)
    out = m(ex, xs[:3])
    assert out.shape == (n, 6)
    F.sum(out).backward()
    ex.check_drained()
    assert m.attention.grad is not None


def test_a3tgcn_wrong_period_count(setup):
    n, sg, ex, xs, ys = setup
    m = A3TGCN(4, 6, periods=3)
    ex.begin_timestamp(0)
    with pytest.raises(ValueError, match="period"):
        m(ex, xs[:2])


def test_evolve_gcn_weight_evolves(setup):
    n, sg, ex, xs, ys = setup
    m = EvolveGCNO(4, 4)
    ex.begin_timestamp(0)
    m(ex, xs[0])
    w1 = m._weight.data.copy()
    ex.begin_timestamp(1)
    m(ex, xs[1])
    w2 = m._weight.data.copy()
    assert not np.allclose(w1, w2)  # the GRU evolved the weight
    ex.reset()


def test_evolve_gcn_reset_state(setup):
    n, sg, ex, xs, ys = setup
    m = EvolveGCNO(4, 4)
    ex.begin_timestamp(0)
    out1 = m(ex, xs[0]).data.copy()
    m.reset_state()
    ex.reset()
    ex.begin_timestamp(0)
    out2 = m(ex, xs[0]).data.copy()
    assert np.allclose(out1, out2)
    ex.reset()


def test_evolve_gcn_trains(setup):
    n, sg, ex, xs, ys4 = setup
    ys = [y[:, :4] for y in ys4]
    m = EvolveGCNO(4, 4)

    def step(ex_, x, s):
        out = m(ex_, x)
        return out, None

    opt = optim.Adam(m.parameters(), lr=1e-2)
    losses = []
    for _ in range(4):
        opt.zero_grad()
        m.reset_state()
        total = None
        for t, (x, y) in enumerate(zip(xs, ys)):
            ex.begin_timestamp(t)
            out, _ = step(ex, x, None)
            l = F.mse_loss(out, y)
            total = l if total is None else F.add(total, l)
        total.backward()
        ex.check_drained()
        opt.step()
        losses.append(total.item())
    assert losses[-1] < losses[0]


def test_temporal_models_share_kernel_cache(setup, fresh_device):
    """All GCN-based temporal cells reuse the same compiled GCN kernels."""
    fresh_device.launcher.clear()
    TGCN(4, 6)
    count_after_first = len(fresh_device.launcher)
    GConvGRU(4, 6)
    GConvLSTM(4, 6)
    assert len(fresh_device.launcher) == count_after_first
