"""Failure injection: corrupted state and misuse must fail loudly.

A framework that silently mis-trains is worse than one that crashes; these
tests pin the error behaviour of every layer of the stack.
"""

from __future__ import annotations

import threading

import networkx as nx
import numpy as np
import pytest

from repro.compiler import compile_vertex_program
from repro.core import TemporalExecutor
from repro.core.module import graph_aggregate
from repro.graph import DTDG, GPMAGraph, NaiveGraph, StaticGraph
from repro.pma import PackedMemoryArray, SPACE_KEY
from repro.tensor import Tensor, functional as F


# ---------------------------------------------------------------------------
# PMA corruption detection
# ---------------------------------------------------------------------------
def test_pma_detects_gap_in_prefix():
    pma = PackedMemoryArray()
    pma.insert_batch(np.arange(30), np.arange(30))
    seg = int(np.flatnonzero(pma.segment_counts() > 1)[0])
    pma.keys[seg * pma.seg_size] = SPACE_KEY  # punch a hole in a prefix
    with pytest.raises(AssertionError, match="SPACE inside prefix"):
        pma.check_invariants()


def test_pma_detects_unsorted_prefix():
    pma = PackedMemoryArray()
    pma.insert_batch(np.arange(30), np.arange(30))
    seg = int(np.flatnonzero(pma.segment_counts() > 1)[0])
    base = seg * pma.seg_size
    pma.keys[base], pma.keys[base + 1] = pma.keys[base + 1], pma.keys[base]
    with pytest.raises(AssertionError, match="sorted"):
        pma.check_invariants()


def test_pma_detects_count_drift():
    pma = PackedMemoryArray()
    pma.insert_batch(np.arange(10), np.arange(10))
    pma.n_items += 1
    with pytest.raises(AssertionError, match="n_items"):
        pma.check_invariants()


# ---------------------------------------------------------------------------
# Executor misuse
# ---------------------------------------------------------------------------
@pytest.fixture
def simple_setup(rng):
    g = nx.gnp_random_graph(10, 0.3, seed=1, directed=True)
    sg = StaticGraph.from_networkx(g)
    ex = TemporalExecutor(sg)
    prog = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h),
        feature_widths={"h": "v"}, grad_features={"h"}, name="fi_sum",
    )
    return sg, ex, prog


def test_aggregate_before_begin_timestamp(simple_setup, rng):
    sg, ex, prog = simple_setup
    x = Tensor(rng.standard_normal((10, 2)).astype(np.float32), requires_grad=True)
    with pytest.raises(RuntimeError):
        graph_aggregate(prog, ex, {"h": x})


def test_double_backward_on_same_tape(simple_setup, rng):
    """The tape frees state during backward; a second sweep must raise (the
    PyTorch behaviour) and leave grads and the executor's stacks intact."""
    sg, ex, prog = simple_setup
    ex.begin_timestamp(0)
    x = Tensor(rng.standard_normal((10, 2)).astype(np.float32), requires_grad=True)
    out = F.sum(graph_aggregate(prog, ex, {"h": x}))
    out.backward()
    ex.check_drained()
    before = x.grad.copy()
    with pytest.raises(RuntimeError):
        out.backward()
    ex.check_drained()
    assert np.allclose(x.grad, before)


def test_forward_without_backward_leaves_stack_detectable(simple_setup, rng):
    sg, ex, prog = simple_setup
    ex.begin_timestamp(0)
    x = Tensor(rng.standard_normal((10, 2)).astype(np.float32), requires_grad=True)
    graph_aggregate(prog, ex, {"h": x})
    with pytest.raises(RuntimeError, match="not drained"):
        ex.check_drained()
    ex.reset()  # documented recovery path
    ex.check_drained()


def test_feature_shape_mismatch_fails(simple_setup, rng):
    sg, ex, prog = simple_setup
    ex.begin_timestamp(0)
    bad = Tensor(rng.standard_normal((7, 2)).astype(np.float32))  # 7 != 10 nodes
    with pytest.raises((ValueError, IndexError)):
        graph_aggregate(prog, ex, {"h": bad})


# ---------------------------------------------------------------------------
# Dynamic-graph misuse
# ---------------------------------------------------------------------------
def _tiny_dtdg():
    return DTDG(
        [
            (np.array([0, 1]), np.array([1, 2])),
            (np.array([0, 1, 2]), np.array([1, 2, 0])),
        ],
        4,
    )


def test_naive_graph_bad_timestamp():
    ng = NaiveGraph(_tiny_dtdg())
    with pytest.raises(IndexError):
        ng.get_graph(5)
        ng.forward_csr()


def test_gpma_graph_recovers_after_bad_timestamp():
    gg = GPMAGraph(_tiny_dtdg())
    with pytest.raises(IndexError):
        gg.get_graph(99)
    gg.get_graph(1)  # still usable
    gg.pma.check_invariants()
    assert gg.num_edges == 3


def test_executor_backward_without_forward_graph_stack():
    gg = GPMAGraph(_tiny_dtdg())
    ex = TemporalExecutor(gg)
    with pytest.raises(RuntimeError, match="underflow"):
        ex.backward_context(0)


# ---------------------------------------------------------------------------
# NaN / Inf propagation is visible, not masked
# ---------------------------------------------------------------------------
def test_nan_features_propagate_to_loss(simple_setup):
    sg, ex, prog = simple_setup
    ex.begin_timestamp(0)
    x = np.full((10, 2), np.nan, dtype=np.float32)
    out, _ = prog.forward(ex.current_context(), {"h": x})
    assert np.isnan(out).any()  # no silent zeroing of bad inputs


# ---------------------------------------------------------------------------
# Allocator thread safety
# ---------------------------------------------------------------------------
def test_memory_tracker_concurrent_accounting():
    from repro.device import MemoryTracker

    tracker = MemoryTracker()
    errors = []

    def worker():
        try:
            for _ in range(200):
                arr = tracker.track(np.zeros(16, dtype=np.float32))
                del arr
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    import gc

    gc.collect()
    assert tracker.current_bytes == 0
    assert tracker.total_allocated_bytes == 8 * 200 * 64
