"""Lowering: sum-of-products decomposition and tensor-IR structure."""

from __future__ import annotations

import pytest

from repro.compiler.lower import CompileError, lower_trace
from repro.compiler.symbols import trace, vfn


def ops_of(prog, kind=None):
    return [op for op in prog.ops if kind is None or op.kind == kind]


def lower(fn, widths=None):
    return lower_trace(trace(fn), widths or {"h": "v", "norm": "s"}, name="t")


def test_gcn_lowers_to_single_spmm():
    prog, _ = lower(lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm)
    spmms = ops_of(prog, "spmm")
    assert len(spmms) == 1
    assert spmms[0].ins[0] == "__ones__"  # norms folded into the payload, not edge weights
    prog.validate()


def test_payload_stays_in_node_space():
    prog, _ = lower(lambda v: v.agg_sum(lambda nb: nb.h * nb.norm))
    assert not ops_of(prog, "gather_src")  # no E-space materialization for GCN


def test_sum_of_terms_distributes():
    """Σ(a + b) becomes two SpMMs added together (linearity)."""
    prog, _ = lower(
        lambda v: v.agg_sum(lambda nb: nb.h * nb.norm + nb.h),
        widths={"h": "v", "norm": "s"},
    )
    assert len(ops_of(prog, "spmm")) == 2
    adds = [op for op in prog.ops if op.kind == "ew" and op.attrs.get("op") == "add"]
    assert adds


def test_dst_factor_hoisted():
    """Σ(h_u · norm_v) = norm_v · Σ(h_u): dst factor multiplies after spmm."""
    prog, _ = lower(lambda v: v.agg_sum(lambda nb: nb.h * v.norm))
    spmm = ops_of(prog, "spmm")[0]
    post = [op for op in prog.ops if spmm.out in op.ins and op.kind == "ew"]
    assert post and post[0].attrs["op"] == "mul"


def test_constant_folded_into_coefficient():
    prog, _ = lower(lambda v: v.agg_sum(lambda nb: nb.h * 3.0))
    # coefficient multiplies the payload; no edge-space ops at all
    assert not ops_of(prog, "gather_src")
    assert 3.0 in prog.consts.values()


def test_division_by_constant():
    prog, _ = lower(lambda v: v.agg_sum(lambda nb: nb.h / 2.0))
    assert 0.5 in prog.consts.values()


def test_mean_divides_by_clamped_degree():
    prog, _ = lower(lambda v: v.agg_mean(lambda nb: nb.h))
    assert ops_of(prog, "in_deg_clamped")
    divs = [op for op in prog.ops if op.kind == "ew" and op.attrs.get("op") == "div"]
    assert divs


def test_max_lowering():
    prog, _ = lower(lambda v: v.agg_max(lambda nb: nb.h))
    assert ops_of(prog, "agg_max")


def test_max_with_edge_weight_rejected():
    with pytest.raises(CompileError, match="max aggregation"):
        lower(
            lambda v: v.agg_max(lambda nb: nb.h * nb.edge.w),
            widths={"h": "v"},
        )


def test_max_of_sum_rejected():
    with pytest.raises(CompileError):
        lower(lambda v: v.agg_max(lambda nb: nb.h + nb.h2), widths={"h": "v", "h2": "v"})


def test_edge_feature_becomes_spmm_weight():
    prog, _ = lower(lambda v: v.agg_sum(lambda nb: nb.h * nb.edge.w), widths={"h": "v"})
    spmm = ops_of(prog, "spmm")[0]
    assert spmm.ins[0] == "e_w"
    assert prog.inputs["e_w"] == ("edge", "w")


def test_pure_edge_weight_uses_segment_sum():
    prog, _ = lower(lambda v: v.agg_sum(lambda nb: nb.edge.w), widths={})
    assert ops_of(prog, "segment_sum")
    assert not ops_of(prog, "spmm")


def test_constant_only_body_uses_in_degree():
    prog, _ = lower(lambda v: v.agg_sum(lambda nb: nb.h * 0.0 + 2.0), widths={"h": "v"})
    assert ops_of(prog, "in_deg")


def test_vector_width_edge_computation_rejected():
    """A feature-wide per-edge value (src+dst of vectors) must be refused."""
    with pytest.raises(CompileError, match="scalar"):
        lower(
            lambda v: v.agg_sum(lambda nb: vfn.tanh(nb.h + v.h)),
            widths={"h": "v"},
        )


def test_distributable_edge_expression_avoids_gathers():
    """Σ s_u·(el_u + er_v) distributes to Σ(s·el) + er·Σ(s): the compiler
    keeps everything in node space — two SpMMs, zero per-edge buffers."""
    prog, _ = lower(
        lambda v: v.agg_sum(lambda nb: nb.s * (nb.el + v.er)),
        widths={"s": "v", "el": "s", "er": "s"},
    )
    assert not ops_of(prog, "gather_src") and not ops_of(prog, "gather_dst")
    assert len(ops_of(prog, "spmm")) == 2


def test_non_distributable_edge_computation_uses_gathers():
    """tanh(el_u + er_v) cannot distribute: it lowers to per-edge scalars."""
    prog, _ = lower(
        lambda v: v.agg_sum(lambda nb: nb.s * vfn.tanh(nb.el + v.er)),
        widths={"s": "v", "el": "s", "er": "s"},
    )
    assert ops_of(prog, "gather_src") and ops_of(prog, "gather_dst")
    spmm = ops_of(prog, "spmm")[0]
    assert spmm.ins[0] != "__ones__"  # the tanh score is the edge weight


def test_edge_softmax_lowering():
    def fn(v):
        alpha = v.edge_softmax(lambda nb: vfn.leaky_relu(nb.el + v.er))
        return v.agg_sum(lambda nb: nb.ft * alpha)

    prog, _ = lower(fn, widths={"el": "s", "er": "s", "ft": "v"})
    assert ops_of(prog, "edge_softmax")
    spmm = ops_of(prog, "spmm")[0]
    softmax_out = ops_of(prog, "edge_softmax")[0].out
    assert spmm.ins[0] == softmax_out


def test_nested_agg_is_dst_factor():
    """An inner aggregation used inside an outer body hoists as a dst factor."""
    def fn(v):
        inner = v.agg_sum(lambda nb: nb.h)
        return v.agg_sum(lambda nb: nb.h) * 1.0 + inner * 0.0

    prog, _ = lower(fn)
    prog.validate()


def test_bad_width_declaration_rejected():
    with pytest.raises(CompileError, match="width"):
        lower(lambda v: v.agg_sum(lambda nb: nb.h), widths={"h": "wide"})


def test_unary_const_folding():
    prog, _ = lower(lambda v: v.agg_sum(lambda nb: nb.h) * vfn.exp(trace_const()))
    # exp(0) folds to the constant 1.0
    assert any(abs(v - 1.0) < 1e-9 for v in prog.consts.values())


def trace_const():
    from repro.compiler.ir import VNode

    return VNode.const(0.0)


def test_program_render_readable():
    prog, _ = lower(lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm)
    text = prog.render()
    assert "spmm" in text and "input n_h" in text and "return" in text


def test_redefinition_caught_by_validate():
    from repro.compiler.tir import TOp, TProgram

    prog = TProgram("bad")
    prog.inputs["x"] = ("node", "x")
    prog.spaces["x"] = "node"
    prog.ops = [TOp("ew", "t0", ("x",), {"op": "neg"}), TOp("ew", "t0", ("x",), {"op": "neg"})]
    prog.outputs = ["t0"]
    with pytest.raises(ValueError, match="redefined"):
        prog.validate()


def test_undefined_read_caught_by_validate():
    from repro.compiler.tir import TOp, TProgram

    prog = TProgram("bad")
    prog.ops = [TOp("ew", "t0", ("ghost",), {"op": "neg"})]
    prog.outputs = ["t0"]
    with pytest.raises(ValueError, match="undefined"):
        prog.validate()
