"""The ten Table II dataset loaders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import (
    DYNAMIC_DATASETS,
    STATIC_DATASETS,
    load_hungary_chickenpox,
    load_montevideo_bus,
    load_pedalme,
    load_sx_mathoverflow,
    load_wikimaths,
    load_windmill_output,
)


@pytest.mark.parametrize("name", list(STATIC_DATASETS))
def test_static_loaders_smoke(name):
    ds = STATIC_DATASETS[name](lags=4, scale=0.5, num_timestamps=10)
    assert ds.num_timestamps == 10
    assert ds.feature_size == 4
    assert all(f.shape == (ds.num_nodes, 4) for f in ds.features)
    assert all(t.shape == (ds.num_nodes, 1) for t in ds.targets)
    assert ds.num_edges > 0
    row = ds.summary_row()
    assert row["type"] == "Static"


@pytest.mark.parametrize("name", list(DYNAMIC_DATASETS))
def test_dynamic_loaders_smoke(name):
    ds = DYNAMIC_DATASETS[name](scale=0.005, feature_size=6, max_snapshots=5)
    assert ds.num_timestamps <= 5
    assert ds.feature_size == 6
    assert ds.summary_row()["type"] == "Dynamic"
    assert ds.dtdg.max_percent_change() <= 5.0 + 1e-9  # default bound


def test_table2_full_scale_small_datasets():
    """HC / PM / MB are small enough to verify at Table II's exact sizes."""
    hc = load_hungary_chickenpox(scale=1.0, num_timestamps=10)
    assert hc.num_nodes == 20 and hc.num_edges == 102
    pm = load_pedalme(scale=1.0, num_timestamps=10)
    assert pm.num_nodes == 15 and pm.num_edges == 210  # 225 capped at n(n-1)
    mb = load_montevideo_bus(scale=1.0, num_timestamps=10)
    assert mb.num_nodes == 675 and mb.num_edges == 690


def test_density_regimes_match_paper():
    """HC is moderately dense, MB very sparse, WVM sparse (§VII-A)."""
    hc = load_hungary_chickenpox(scale=1.0, num_timestamps=5)
    mb = load_montevideo_bus(scale=1.0, num_timestamps=5)
    assert 0.2 < hc.density() < 0.35  # paper: 0.255
    assert mb.density() < 0.005  # paper: 0.0015
    wo = load_windmill_output(scale=0.3, num_timestamps=5)
    assert wo.density() > 0.5  # near-complete


def test_lag_features_shift_correctly():
    ds = load_wikimaths(lags=3, scale=0.1, num_timestamps=8)
    # feature column -1 at time t equals the target at time t-1
    for t in range(1, ds.num_timestamps):
        assert np.allclose(ds.features[t][:, -1], ds.targets[t - 1][:, 0], atol=1e-6)


def test_loaders_deterministic():
    a = load_sx_mathoverflow(scale=0.005, max_snapshots=4)
    b = load_sx_mathoverflow(scale=0.005, max_snapshots=4)
    for t in range(a.num_timestamps):
        sa, da = a.dtdg.snapshot_edges(t)
        sb, db = b.dtdg.snapshot_edges(t)
        assert np.array_equal(sa, sb) and np.array_equal(da, db)


def test_build_graph_variants():
    ds = load_sx_mathoverflow(scale=0.005, max_snapshots=4)
    naive = ds.build_naive()
    gpma = ds.build_gpma()
    assert naive.num_nodes == gpma.num_nodes == ds.num_nodes
    sig = ds.to_pygt_signal()
    assert len(sig) == ds.num_timestamps


def test_static_to_pygt_signal():
    ds = load_hungary_chickenpox(lags=4, scale=1.0, num_timestamps=6)
    sig = ds.to_pygt_signal()
    assert sig.edge_index.shape == (2, ds.num_edges)
    assert len(sig) == 6


def test_feature_size_parameter_sweepable():
    for fs in (2, 8, 16):
        ds = load_hungary_chickenpox(lags=fs, scale=1.0, num_timestamps=5)
        assert ds.feature_size == fs
