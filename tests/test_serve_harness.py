"""End-to-end serving smoke (the CI ``serving-smoke`` gate).

~1k point queries from concurrent closed-loop clients interleaved with
GPMA update batches, checked three ways:

1. **Bitwise serial equivalence** — every response equals the serial
   query-after-every-update reference at the timestamp it reports.
2. **Zero thread leak** — no ``repro-serve*`` thread survives the run.
3. **Live observability** — a real HTTP scrape of ``/metrics`` during the
   run exposes ``repro_serve_request_seconds`` with the Prometheus
   histogram invariant ``bucket{le="+Inf"} == _count``.
"""

from __future__ import annotations

import re
import threading
import urllib.request

import numpy as np
import pytest

from repro.graph import DTDG, GPMAGraph
from repro.obs.server import TelemetryServer
from repro.serve import (
    InferenceEngine,
    ServingHarness,
    random_update_batches,
    serial_reference,
)
from repro.train import STGraphNodeRegressor

N, F, HIDDEN = 96, 8, 16
CLIENTS, REQUESTS = 16, 64  # 1024 queries
UPDATES = 10


@pytest.fixture
def setup(rng):
    src = rng.integers(0, N, 500)
    dst = rng.integers(0, N, 500)
    keep = src != dst
    dtdg = DTDG([(src[keep], dst[keep])], num_nodes=N)
    feats = rng.standard_normal((N, F)).astype(np.float32)
    model = STGraphNodeRegressor(F, HIDDEN)
    return dtdg, feats, model


def _scrape(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10.0) as resp:
        return resp.read().decode()


def test_serving_smoke_1k_queries(setup, fresh_device):
    dtdg, feats, model = setup
    updates = random_update_batches(dtdg, UPDATES, num_adds=10, num_deletes=5, seed=3)
    engine = InferenceEngine(model, GPMAGraph(dtdg), feats, freshness=1)
    server = TelemetryServer(fresh_device)
    port = server.start()
    try:
        with engine:
            harness = ServingHarness(
                engine,
                clients=CLIENTS,
                requests_per_client=REQUESTS,
                kinds=("embedding", "prediction"),
                updates=updates,
                update_wait=False,
                seed=7,
                collect=True,
            )
            report = harness.run(timeout=120.0)
            text = _scrape(f"http://127.0.0.1:{port}/metrics")
    finally:
        server.stop()

    # 1. full traffic, all updates landed
    assert report.requests == CLIENTS * REQUESTS
    assert report.updates_applied == UPDATES
    stats = report.engine_stats
    assert stats["queries_served"] == CLIENTS * REQUESTS
    # coalescing really happened under 16 concurrent clients
    assert int(stats["max_batch_observed"]) > 1
    assert int(stats["forwards"]) < CLIENTS * REQUESTS

    # 2. zero thread leak
    leaked = [t.name for t in threading.enumerate() if t.name.startswith("repro-serve")]
    assert not leaked, leaked

    # 3. live scrape exposes the serving histogram with +Inf == _count
    assert "repro_serve_request_seconds" in text
    counts = {
        m.group(1): int(m.group(2))
        for m in re.finditer(
            r'repro_serve_request_seconds_count\{([^}]*)\} (\d+)', text
        )
    }
    infs = {
        m.group(1): int(m.group(2))
        for m in re.finditer(
            r'repro_serve_request_seconds_bucket\{([^}]*?),?le="\+Inf"[^}]*\} (\d+)',
            text,
        )
    }
    assert counts, "no repro_serve_request_seconds samples in /metrics"
    total = sum(counts.values())
    assert total == CLIENTS * REQUESTS
    for labels, count in counts.items():
        inf_key = next((k for k in infs if set(labels.split(",")) <= set(k.split(","))), None)
        assert inf_key is not None, f"no +Inf bucket for {{{labels}}}"
        assert infs[inf_key] == count, f"+Inf != _count for {{{labels}}}"
    assert "repro_serve_pending_updates" in text
    assert "repro_serve_batch_size" in text

    # 4. bitwise serial equivalence at every served timestamp
    ref = serial_reference(
        model, engine.graph.dtdg, feats, sorted({r.timestamp for r in report.results})
    )
    mismatches = 0
    for res in report.results:
        h, pred = ref[res.timestamp]
        expect = (h if res.kind == "embedding" else pred)[res.vertex]
        if not np.array_equal(res.value, expect):
            mismatches += 1
    assert mismatches == 0, f"{mismatches}/{report.requests} responses diverged"


def test_report_row_shape(setup):
    dtdg, feats, model = setup
    engine = InferenceEngine(model, GPMAGraph(dtdg), feats)
    with engine:
        report = ServingHarness(
            engine, clients=2, requests_per_client=4, collect=False
        ).run(timeout=60.0)
    row = report.row()
    assert set(row) == {
        "requests", "qps", "p50_ms", "p99_ms", "forwards", "row_cache_hits", "updates",
    }
    assert row["requests"] == 8
    assert report.results == []  # collect=False keeps the report lean
    assert report.p50_ms <= report.p99_ms <= report.max_ms


def test_serve_cli_smoke(tmp_path, capsys):
    """``repro serve --verify`` end to end, including the JSON report."""
    import json

    from repro.cli import main

    out = tmp_path / "serve.json"
    rc = main([
        "serve", "--clients", "4", "--requests", "8", "--updates", "3",
        "--timestamps", "4", "--scale", "0.02", "--verify",
        "--json", str(out),
    ])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "bitwise-equal" in printed
    payload = json.loads(out.read_text())
    assert payload["mismatches"] == 0
    assert payload["report"]["requests"] == 32
    assert payload["config"]["invalidation"] is True
