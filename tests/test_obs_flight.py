"""Flight recorder: bounded rings, JSONL drains, and failure-edge wiring.

The recorder must capture the last-N-events window at every failure edge
(``abort_sequence``, engine fallback, simulated kill), write an append-mode
JSONL artifact whose windows are self-describing, stay bounded under event
pressure, and surface its accounting through the chaos report and the run
manifest.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.dataset import load_sx_mathoverflow
from repro.device import current_device
from repro.obs import (
    NULL_FLIGHT_RECORDER,
    FlightRecorder,
    build_run_manifest,
    current_flight_recorder,
    use_flight_recorder,
)
from repro.resilience import FaultPlan, FaultSite, run_chaos
from repro.tensor import init
from repro.train import (
    STGraphLinkPredictor,
    STGraphTrainer,
    make_link_prediction_samples,
)


@pytest.fixture(scope="module")
def dynamic_ds():
    return load_sx_mathoverflow(scale=0.01, feature_size=4, max_snapshots=6)


# ---------------------------------------------------------------------------
# Ring mechanics
# ---------------------------------------------------------------------------
def test_null_recorder_is_default_and_inert():
    assert current_flight_recorder() is NULL_FLIGHT_RECORDER
    assert not NULL_FLIGHT_RECORDER.enabled
    NULL_FLIGHT_RECORDER.record("mark", "x")
    assert NULL_FLIGHT_RECORDER.drain("whatever") == 0
    assert NULL_FLIGHT_RECORDER.events() == []


def test_ring_is_bounded_per_thread():
    rec = FlightRecorder(capacity=8)
    for i in range(100):
        rec.record("mark", "tick", i=i)
    events = rec.events()
    assert len(events) == 8, "ring must drop old events, not grow"
    assert [e["i"] for e in events] == list(range(92, 100))
    assert rec.total_recorded == 100


def test_events_merge_across_threads_sorted():
    rec = FlightRecorder(capacity=16)
    rec.record("mark", "main-0")

    def worker():
        rec.record("mark", "worker-0")
        rec.record("mark", "worker-1")

    t = threading.Thread(target=worker)
    t.start()
    t.join()
    events = rec.events()
    assert {e["name"] for e in events} == {"main-0", "worker-0", "worker-1"}
    assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
    assert len({e["tid"] for e in events}) == 2


def test_drain_writes_appendable_jsonl(tmp_path):
    out = tmp_path / "flight.jsonl"
    rec = FlightRecorder(capacity=4, path=out)
    rec.record("mark", "a")
    rec.record("fault", "fault.kernel", t=3)
    assert rec.drain("abort_sequence") == 2
    rec.record("mark", "b")
    assert rec.drain("simulated_kill") == 3  # window still holds a + fault + b

    lines = [json.loads(ln) for ln in out.read_text().splitlines()]
    headers = [ln for ln in lines if "flight_drain" in ln]
    assert [h["flight_drain"] for h in headers] == ["abort_sequence", "simulated_kill"]
    assert headers[0]["events"] == 2 and headers[0]["capacity"] == 4
    # Header + its events, then the second window appended after.
    assert len(lines) == 1 + 2 + 1 + 3
    event_lines = [ln for ln in lines if "flight_drain" not in ln]
    assert all({"ts", "tid", "kind", "name"} <= set(ln) for ln in event_lines)
    assert rec.drain_count() == 2


def test_drain_without_path_is_accounted_not_written():
    rec = FlightRecorder(capacity=4)
    rec.record("mark", "a")
    assert rec.drain("engine_fallback") == 1
    assert rec.drain_count() == 1
    assert rec.drains[0]["path"] is None


# ---------------------------------------------------------------------------
# Failure-edge wiring
# ---------------------------------------------------------------------------
def test_abort_sequence_drains_recorder(dynamic_ds):
    samples = make_link_prediction_samples(dynamic_ds.dtdg, 32, seed=3)
    init.set_seed(3)
    model = STGraphLinkPredictor(4, 4)
    trainer = STGraphTrainer(
        model, dynamic_ds.build_gpma(), sequence_length=3,
        task="link_prediction", link_samples=samples,
    )
    rec = FlightRecorder(capacity=64)

    bad = list(dynamic_ds.features)
    bad[2] = None  # trips inside timestamp 2, after 0 and 1 recorded marks

    with use_flight_recorder(rec):
        with pytest.raises(Exception):
            trainer.train_epoch(bad)

    assert rec.drain_count() == 1
    assert rec.drains[0]["reason"] == "abort_sequence"
    names = [e["name"] for e in rec.events()]
    assert "timestamp" in names, "breadcrumbs should precede the abort"
    assert "executor.abort_sequence" in names


def test_chaos_with_flight_recorder_captures_kill_window(tmp_path):
    out = tmp_path / "chaos-flight.jsonl"
    plan = FaultPlan(
        name="flight-kill",
        sites=[FaultSite(kind="kill", epoch=1, timestamp=1)],
    )
    report = run_chaos(plan, epochs=2, max_snapshots=4,
                       workdir=tmp_path, flight_recorder=out)
    assert report.ok
    assert report.kills == 1
    fr = report.flight_recorder
    assert fr is not None and fr["captured_fault_window"]
    assert fr["drains"] >= 1 and fr["events_recorded"] > 0

    lines = [json.loads(ln) for ln in out.read_text().splitlines()]
    headers = [ln for ln in lines if "flight_drain" in ln]
    assert any(h["flight_drain"] == "simulated_kill" for h in headers)
    fault_events = [ln for ln in lines
                    if "flight_drain" not in ln and ln["kind"] == "fault"]
    assert any(e["name"] == "fault.kill" for e in fault_events)
    assert "flight recorder" in report.render()


def test_manifest_records_flight_recorder_accounting(dynamic_ds):
    rec = FlightRecorder(capacity=32)
    with use_flight_recorder(rec):
        rec.record("mark", "one")
        rec.record("mark", "two")
        rec.drain("run_end")
        manifest = build_run_manifest(current_device(), run_name="flight-test")
    assert manifest.flight_recorder_events == 2
    assert manifest.flight_recorder_drains == 1

    # Without a recorder the fields stay zero.
    manifest = build_run_manifest(current_device())
    assert manifest.flight_recorder_events == 0
    assert manifest.flight_recorder_drains == 0
