"""Module system, Linear, recurrent cells."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F, init, nn


def test_parameter_registration():
    class M(nn.Module):
        def __init__(self):
            super().__init__()
            self.w = nn.Parameter(np.zeros((2, 2)))
            self.sub = nn.Linear(2, 3)

    m = M()
    names = dict(m.named_parameters())
    assert "w" in names
    assert "sub.weight" in names and "sub.bias" in names
    assert len(list(m.parameters())) == 3


def test_parameter_requires_grad():
    p = nn.Parameter(np.ones(3))
    assert p.requires_grad and p.dtype == np.float32


def test_zero_grad():
    lin = nn.Linear(2, 2)
    out = F.sum(lin(Tensor(np.ones((1, 2), dtype=np.float32))))
    out.backward()
    assert lin.weight.grad is not None
    lin.zero_grad()
    assert lin.weight.grad is None


def test_train_eval_mode():
    m = nn.Sequential(nn.Linear(2, 2), nn.Linear(2, 2))
    assert m.training
    m.eval()
    assert all(not mod.training for mod in m.modules())
    m.train()
    assert all(mod.training for mod in m.modules())


def test_state_dict_roundtrip():
    init.set_seed(0)
    a = nn.Linear(3, 4)
    init.set_seed(99)
    b = nn.Linear(3, 4)
    assert not np.allclose(a.weight.data, b.weight.data)
    b.load_state_dict(a.state_dict())
    assert np.allclose(a.weight.data, b.weight.data)


def test_state_dict_mismatch_raises():
    a = nn.Linear(3, 4)
    b = nn.Linear(3, 5)
    with pytest.raises((KeyError, ValueError)):
        b.load_state_dict(a.state_dict())
    sd = a.state_dict()
    sd["extra"] = np.zeros(1)
    with pytest.raises(KeyError):
        a.load_state_dict(sd)


def test_linear_math(rng):
    lin = nn.Linear(3, 2)
    x = rng.standard_normal((5, 3)).astype(np.float32)
    out = lin(Tensor(x))
    assert np.allclose(out.data, x @ lin.weight.data + lin.bias.data, atol=1e-6)


def test_linear_no_bias():
    lin = nn.Linear(3, 2, bias=False)
    assert lin.bias is None
    assert len(list(lin.parameters())) == 1


def test_parameter_count():
    lin = nn.Linear(3, 4)
    assert lin.parameter_count() == 3 * 4 + 4


def test_gru_cell_shapes_and_range(rng):
    cell = nn.GRUCell(4, 6)
    x = Tensor(rng.standard_normal((7, 4)).astype(np.float32))
    h = Tensor(np.zeros((7, 6), dtype=np.float32))
    h2 = cell(x, h)
    assert h2.shape == (7, 6)
    assert np.abs(h2.data).max() <= 1.0 + 1e-5  # outputs bounded by tanh convexity


def test_gru_identity_when_update_gate_saturated(rng):
    """Forcing z≈1 makes the GRU copy its hidden state."""
    cell = nn.GRUCell(2, 3)
    cell.b_z.data[:] = 100.0  # sigmoid -> 1
    x = Tensor(rng.standard_normal((4, 2)).astype(np.float32))
    h = Tensor(rng.standard_normal((4, 3)).astype(np.float32))
    h2 = cell(x, h)
    assert np.allclose(h2.data, h.data, atol=1e-4)


def test_gru_grad_flows_through_time(rng):
    cell = nn.GRUCell(2, 3)
    x = Tensor(rng.standard_normal((4, 2)).astype(np.float32))
    h = Tensor(np.zeros((4, 3), dtype=np.float32))
    for _ in range(3):
        h = cell(x, h)
    F.sum(h).backward()
    for p in cell.parameters():
        assert p.grad is not None


def test_lstm_cell(rng):
    cell = nn.LSTMCell(4, 5)
    x = Tensor(rng.standard_normal((3, 4)).astype(np.float32))
    h = Tensor(np.zeros((3, 5), dtype=np.float32))
    c = Tensor(np.zeros((3, 5), dtype=np.float32))
    h2, c2 = cell(x, h, c)
    assert h2.shape == (3, 5) and c2.shape == (3, 5)
    F.sum(h2).backward()
    assert cell.w_xi.grad is not None


def test_lstm_forget_gate_saturated_keeps_cell(rng):
    cell = nn.LSTMCell(2, 3)
    cell.b_f.data[:] = 100.0  # forget ≈ 1
    cell.b_i.data[:] = -100.0  # input ≈ 0
    x = Tensor(rng.standard_normal((2, 2)).astype(np.float32))
    c = Tensor(rng.standard_normal((2, 3)).astype(np.float32))
    h = Tensor(np.zeros((2, 3), dtype=np.float32))
    _, c2 = cell(x, h, c)
    assert np.allclose(c2.data, c.data, atol=1e-4)


def test_module_list():
    ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
    ml.append(nn.Linear(2, 2))
    assert len(ml) == 3
    assert isinstance(ml[0], nn.Linear)
    m = nn.Sequential(*list(ml))
    assert len(list(m.parameters())) == 6


def test_sequential_forward(rng):
    m = nn.Sequential(nn.Linear(3, 4), nn.Linear(4, 2))
    out = m(Tensor(rng.standard_normal((5, 3)).astype(np.float32)))
    assert out.shape == (5, 2)


def test_init_seeding_deterministic():
    init.set_seed(5)
    a = init.glorot_uniform((3, 3))
    init.set_seed(5)
    b = init.glorot_uniform((3, 3))
    assert np.array_equal(a.data, b.data)


def test_glorot_bounds():
    w = init.glorot_uniform((100, 100))
    bound = np.sqrt(6.0 / 200)
    assert np.abs(w.data).max() <= bound + 1e-6
