"""Memory stability: training must not leak across epochs.

A leak in the State/Graph stack discipline, the kernel cache, or the
GPMA cache would show up as monotonically growing device residency; these
tests pin steady-state behaviour.
"""

from __future__ import annotations

import gc

import numpy as np

from repro.dataset import load_hungary_chickenpox, load_sx_mathoverflow
from repro.device import Device, use_device
from repro.tensor import init
from repro.train import (
    STGraphLinkPredictor,
    STGraphNodeRegressor,
    STGraphTrainer,
    make_link_prediction_samples,
)


def _residency_after_epochs(build, epochs: int) -> int:
    gc.collect()
    device = Device(name="leak-test")
    with use_device(device):
        trainer, features, targets = build()
        for _ in range(epochs):
            trainer.train_epoch(features, targets)
        gc.collect()
        return device.tracker.current_bytes


def test_static_training_residency_steady():
    def build():
        ds = load_hungary_chickenpox(lags=4, scale=1.0, num_timestamps=15)
        init.set_seed(0)
        model = STGraphNodeRegressor(4, 8)
        return STGraphTrainer(model, ds.build_graph(), lr=1e-2), ds.features, ds.targets

    short = _residency_after_epochs(build, 2)
    long = _residency_after_epochs(build, 10)
    # steady state: more epochs must not mean more resident memory
    assert long <= short * 1.2 + 50_000, (short, long)


def test_gpma_training_residency_steady():
    def build():
        ds = load_sx_mathoverflow(scale=0.01, feature_size=4, max_snapshots=6)
        samples = make_link_prediction_samples(ds.dtdg, 32, seed=0)
        init.set_seed(0)
        model = STGraphLinkPredictor(4, 8)
        trainer = STGraphTrainer(
            model, ds.build_gpma(), lr=1e-2, sequence_length=3,
            task="link_prediction", link_samples=samples,
        )
        return trainer, ds.features, None

    short = _residency_after_epochs(build, 2)
    long = _residency_after_epochs(build, 8)
    assert long <= short * 1.2 + 100_000, (short, long)


def test_stacks_empty_after_training():
    ds = load_hungary_chickenpox(lags=4, scale=1.0, num_timestamps=10)
    init.set_seed(0)
    model = STGraphNodeRegressor(4, 8)
    trainer = STGraphTrainer(model, ds.build_graph(), lr=1e-2, sequence_length=4)
    trainer.train(ds.features, ds.targets, epochs=3)
    assert trainer.executor.state_stack.is_empty
    assert trainer.executor.graph_stack.is_empty
    assert trainer.executor.state_stack.current_bytes() == 0


def test_long_training_numerically_stable():
    """100-epoch run (the paper's epoch count): loss stays finite and
    decreasing overall."""
    ds = load_hungary_chickenpox(lags=4, scale=1.0, num_timestamps=12)
    init.set_seed(0)
    model = STGraphNodeRegressor(4, 8)
    trainer = STGraphTrainer(model, ds.build_graph(), lr=1e-2)
    losses = trainer.train(ds.features, ds.targets, epochs=100)
    assert all(np.isfinite(l) for l in losses)
    assert losses[-1] < losses[0] * 0.8
    assert min(losses) > 0
