"""Tracing subsystem: span semantics, exporters, manifests, non-interference.

Covers the observability acceptance criteria: matched B/E pairs in the
Chrome export, spans closed even when a timestep raises mid-sequence,
bitwise-identical training losses with the tracer disabled, and the
Figure 9 span-aggregate/profiler consistency that lets the bench table be
rendered from one code path.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.dataset import load_sx_mathoverflow
from repro.device import current_device
from repro.obs import (
    NULL_TRACER,
    RunManifest,
    Tracer,
    build_run_manifest,
    chrome_trace,
    current_tracer,
    prometheus_text,
    use_tracer,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.tensor import init
from repro.train import (
    STGraphLinkPredictor,
    STGraphTrainer,
    make_link_prediction_samples,
)


@pytest.fixture(scope="module")
def dynamic_ds():
    return load_sx_mathoverflow(scale=0.01, feature_size=4, max_snapshots=6)


def _make_trainer(ds, seed: int = 7) -> tuple[STGraphTrainer, list]:
    samples = make_link_prediction_samples(ds.dtdg, 32, seed=seed)
    init.set_seed(seed)
    model = STGraphLinkPredictor(4, 4)
    trainer = STGraphTrainer(
        model, ds.build_gpma(), sequence_length=3,
        task="link_prediction", link_samples=samples,
    )
    return trainer, samples


# ---------------------------------------------------------------------------
# Core span semantics
# ---------------------------------------------------------------------------
def test_null_tracer_is_default_and_inert():
    assert current_tracer() is NULL_TRACER
    assert not NULL_TRACER.enabled
    with NULL_TRACER.span("anything", "cat", t=3):
        pass
    NULL_TRACER.instant("nothing")
    assert NULL_TRACER.open_span_count == 0


def test_use_tracer_nests_and_restores():
    t1, t2 = Tracer(name="one"), Tracer(name="two")
    with use_tracer(t1):
        assert current_tracer() is t1
        with use_tracer(t2):
            assert current_tracer() is t2
        with use_tracer(None):  # None keeps tracing disabled
            assert current_tracer() is NULL_TRACER
        assert current_tracer() is t1
    assert current_tracer() is NULL_TRACER


def test_self_time_aggregation_no_double_count():
    tr = Tracer()
    with tr.span("outer", "work"):
        time.sleep(0.02)
        with tr.span("inner", "work"):
            time.sleep(0.02)
    by_cat = tr.aggregate_by_cat()
    by_name = tr.aggregate_by_name()
    # Self time per cat: outer's self excludes inner, so the "work" total
    # equals outer's inclusive duration (both spans share the category).
    assert by_cat["work"] == pytest.approx(by_name["outer"]["seconds"], rel=0.2)
    assert by_name["outer"]["calls"] == 1
    assert by_name["inner"]["calls"] == 1
    assert by_name["inner"]["seconds"] < by_name["outer"]["seconds"]
    # Event depths are recorded.
    events = {e.name: e for e in tr.span_events()}
    assert events["inner"].depth == 1 and events["outer"].depth == 0


def test_span_captures_memory_and_counter_deltas():
    device = current_device()
    tr = Tracer()
    with use_tracer(tr):
        with tr.span("alloc-span", "test"):
            keep = device.alloc.zeros(1024, dtype=np.float32, tag="obs-test")
            device.profiler.count("obs_test_events", 3)
    (event,) = tr.span_events()
    assert event.args["mem_delta_bytes"] == 4096
    assert event.args["d_obs_test_events"] == 3
    assert event.args["mem_bytes"] >= 4096
    del keep


def test_span_closed_and_tagged_on_exception():
    tr = Tracer()
    with pytest.raises(ValueError):
        with tr.span("failing", "test"):
            raise ValueError("boom")
    assert tr.open_span_count == 0
    (event,) = tr.span_events()
    assert event.args["error"] == "ValueError"


def test_max_events_cap_keeps_aggregates():
    tr = Tracer(max_events=2)
    for i in range(5):
        with tr.span(f"s{i}", "capped"):
            pass
    assert len(tr.events) == 2
    assert tr.dropped_events == 3
    assert sum(v["calls"] for v in tr.aggregate_by_name().values()) == 5


# ---------------------------------------------------------------------------
# Failure injection: no dangling spans when a timestep raises mid-sequence
# ---------------------------------------------------------------------------
class _FailingTrainer(STGraphTrainer):
    def _loss_at(self, t, pred, targets):
        if t == 1:
            raise RuntimeError("injected mid-sequence failure")
        return super()._loss_at(t, pred, targets)


def test_tracing_survives_mid_sequence_failure(dynamic_ds):
    samples = make_link_prediction_samples(dynamic_ds.dtdg, 32, seed=3)
    init.set_seed(3)
    model = STGraphLinkPredictor(4, 4)
    trainer = _FailingTrainer(
        model, dynamic_ds.build_gpma(), sequence_length=3,
        task="link_prediction", link_samples=samples,
    )
    tr = Tracer(name="failure-injection")
    with use_tracer(tr):
        with pytest.raises(RuntimeError, match="injected"):
            trainer.train_epoch(dynamic_ds.features)
    # Every span closed on the way out of the raise...
    assert tr.open_span_count == 0
    # ...the failing timestamp (and its ancestors) carry the error tag...
    tagged = [e for e in tr.span_events() if e.args.get("error") == "RuntimeError"]
    assert any(e.name == "timestamp[1]" for e in tagged)
    assert any(e.name == "epoch" for e in tagged)
    # ...and the Chrome export still has matched, well-nested B/E pairs.
    _assert_balanced(chrome_trace(tr)["traceEvents"])


def _assert_balanced(trace_events: list[dict]) -> None:
    stack: list[str] = []
    for e in trace_events:
        if e["ph"] == "B":
            stack.append(e["name"])
        elif e["ph"] == "E":
            assert stack and stack[-1] == e["name"], (
                f"unmatched E for {e['name']!r}; stack top: {stack[-1] if stack else None}"
            )
            stack.pop()
    assert not stack, f"dangling B events: {stack}"


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
def test_chrome_trace_structure(dynamic_ds):
    trainer, _ = _make_trainer(dynamic_ds)
    tr = Tracer(name="chrome")
    with use_tracer(tr):
        trainer.train_epoch(dynamic_ds.features)
    trace = chrome_trace(tr)
    events = trace["traceEvents"]
    assert trace["displayTimeUnit"] == "ms"
    assert events[0]["ph"] == "M"  # process_name metadata first
    _assert_balanced(events)
    # Timestamps non-decreasing (the format's required ordering).
    ts = [e["ts"] for e in events if e["ph"] in ("B", "E", "i")]
    assert ts == sorted(ts)
    # The taxonomy is present: per-timestamp spans with graph_update vs
    # per-layer forward/backward splits, plus state-stack instants.
    names = {e["name"] for e in events}
    assert {"epoch", "sequence", "graph_update", "backward", "optimizer"} <= names
    assert any(n.startswith("timestamp[") for n in names)
    assert any(n.startswith("forward/") for n in names)
    assert any(n.startswith("backward/") for n in names)
    assert any(e["ph"] == "i" and e["name"] == "state_stack.push" for e in events)
    # Kernel spans embed the plan id in their name.
    assert any(n.startswith("plan_") and n.endswith("_fwd") for n in names)
    # Allocator byte deltas ride on span args.
    assert any("mem_delta_bytes" in e.get("args", {}) for e in events if e["ph"] == "B")


def test_write_exporters_roundtrip(tmp_path, dynamic_ds):
    trainer, _ = _make_trainer(dynamic_ds)
    tr = Tracer(name="files")
    with use_tracer(tr):
        trainer.train_epoch(dynamic_ds.features)
    chrome_path = write_chrome_trace(tr, str(tmp_path / "out" / "run.json"))
    with open(chrome_path) as fh:
        assert json.load(fh)["otherData"]["tracer"] == "files"
    jsonl_path = write_jsonl(tr.events, str(tmp_path / "run.events.jsonl"))
    rows = [json.loads(line) for line in open(jsonl_path)]
    assert len(rows) == len(tr.events)
    assert all("name" in r and "ts_us" in r for r in rows)
    prom_path = write_prometheus(current_device(), str(tmp_path / "run.prom"), tr)
    text = open(prom_path).read()
    assert 'repro_span_self_seconds_total{cat="gnn"}' in text
    assert "repro_memory_peak_bytes" in text
    assert "repro_kernel_launches_total" in text


def test_prometheus_text_without_tracer():
    text = prometheus_text(current_device())
    assert "repro_phase_seconds_total" in text
    assert "repro_span_self_seconds_total" not in text


# ---------------------------------------------------------------------------
# Run manifest
# ---------------------------------------------------------------------------
def test_manifest_collects_and_roundtrips(tmp_path, dynamic_ds):
    trainer, _ = _make_trainer(dynamic_ds)
    tr = Tracer(name="manifest-run")
    with use_tracer(tr):
        trainer.train_epoch(dynamic_ds.features)
    manifest = build_run_manifest(
        current_device(), tracer=tr, graph=trainer.graph,
        system="gpma", dataset=dynamic_ds.name,
        command="pytest", results={"final_loss": 1.0},
    )
    assert manifest.graph_kind == "gpma"
    assert manifest.plan_ids and all(p.startswith("plan_") for p in manifest.plan_ids)
    assert manifest.span_seconds.get("gnn", 0) > 0
    assert manifest.cache_config["enable_cache"] is True
    assert manifest.kernel_launches > 0
    assert manifest.counters["ctx_cache_hits"] >= 0
    path = manifest.write(str(tmp_path / "m" / "manifest.json"))
    loaded = RunManifest.load(path)
    assert loaded.plan_ids == manifest.plan_ids
    assert loaded.span_seconds == manifest.span_seconds
    assert loaded.results == {"final_loss": 1.0}
    # Unknown keys from future schemas are ignored on load.
    data = json.load(open(path))
    data["from_the_future"] = True
    with open(path, "w") as fh:
        json.dump(data, fh)
    assert RunManifest.load(path).run_name == "manifest-run"


# ---------------------------------------------------------------------------
# Non-interference: tracing must not change training
# ---------------------------------------------------------------------------
def test_losses_bitwise_identical_with_and_without_tracer(dynamic_ds):
    trainer_a, _ = _make_trainer(dynamic_ds, seed=11)
    losses_plain = trainer_a.train(dynamic_ds.features, epochs=3)

    trainer_b, _ = _make_trainer(dynamic_ds, seed=11)
    with use_tracer(Tracer(name="traced")):
        losses_traced = trainer_b.train(dynamic_ds.features, epochs=3)

    assert losses_plain == losses_traced  # bitwise, not approx


# ---------------------------------------------------------------------------
# Figure 9 single code path: span aggregates vs profiler phases
# ---------------------------------------------------------------------------
def test_fig9_span_aggregates_consistent_with_profiler(dynamic_ds):
    from repro.bench.measure import run_dynamic_experiment

    r = run_dynamic_experiment(
        "gpma", lambda **kw: dynamic_ds, epochs=2, warmup=0,
        feature_size=4, sequence_length=3,
        tracer=Tracer(name="fig9-consistency", keep_events=False),
    )
    gnn_span, upd_span = r.time_split()
    assert r.span_seconds, "traced run must fill span_seconds"
    # The spans wrap exactly the profiler's gnn/graph_update phase regions,
    # so the two attributions agree up to context-manager overhead.
    for span_s, phase_s in ((gnn_span, r.gnn_seconds), (upd_span, r.graph_update_seconds)):
        assert phase_s > 0
        assert abs(span_s - phase_s) <= max(0.3 * phase_s, 5e-3)


def test_fig9_rows_use_span_aggregates():
    from repro.bench.measure import RunResult
    from repro.bench.report import fig9_rows, format_fig9_table

    r = RunResult(
        system="gpma", dataset="d", params={"F": 8},
        gnn_seconds=999.0, graph_update_seconds=999.0,  # must be ignored
        span_seconds={"gnn": 3.0, "graph_update": 1.0},
    )
    (row,) = fig9_rows([r])
    assert row["gnn_%"] == 75.0 and row["update_%"] == 25.0
    assert "gnn_%" in format_fig9_table([r])
    # Untraced runs fall back to the profiler fields through the same path.
    r2 = RunResult(system="gpma", dataset="d", params={"F": 8},
                   gnn_seconds=1.0, graph_update_seconds=3.0)
    (row2,) = fig9_rows([r2])
    assert row2["update_%"] == 75.0


def test_manifest_aggregates_lint_warnings():
    """Per-code warning totals from every cached plan's lint report."""
    from repro.compiler import compile_vertex_program, plan_cache
    from repro.compiler.diagnostics import LintReport

    compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.mlw), feature_widths={"mlw": "v"}
    )
    plan = plan_cache().plans()[0]
    clean = build_run_manifest(current_device())
    doctored = LintReport(subject=plan.name)
    doctored.add("STG005", "synthetic warning one")
    doctored.add("STG005", "synthetic warning two")
    original = plan.lint
    object.__setattr__(plan, "lint", doctored)  # frozen dataclass, test-only
    try:
        manifest = build_run_manifest(current_device())
    finally:
        object.__setattr__(plan, "lint", original)
    assert manifest.lint_warnings.get("STG005", 0) == clean.lint_warnings.get("STG005", 0) + 2
    loaded = RunManifest(**{"lint_warnings": manifest.lint_warnings})
    assert loaded.lint_warnings == manifest.lint_warnings
