"""Property-based graph-layer tests: GPMA ≡ Naive under arbitrary walks."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import DTDG, GPMAGraph, NaiveGraph
from repro.graph.labels import encode_edges


def _random_dtdg(seed: int, n: int = 20, e0: int = 50, timestamps: int = 5) -> DTDG:
    rng = np.random.default_rng(seed)
    keys: set[tuple[int, int]] = set()
    while len(keys) < e0:
        s, d = rng.integers(0, n, 2)
        if s != d:
            keys.add((int(s), int(d)))
    snaps = []
    for t in range(timestamps):
        if t:
            doomed = rng.integers(0, 2, len(keys)).astype(bool)
            survivors = {k for k, dead in zip(sorted(keys), doomed[: len(keys)]) if not dead}
            keys = survivors if survivors else keys
            while len(keys) < e0:
                s, d = rng.integers(0, n, 2)
                if s != d:
                    keys.add((int(s), int(d)))
        arr = np.array(sorted(keys), dtype=np.int64)
        snaps.append((arr[:, 0].copy(), arr[:, 1].copy()))
    return DTDG(snaps, n)


def _edge_keys(graph, n):
    bwd = graph.backward_csr()
    keys = []
    for u in range(n):
        for v in bwd.neighbors(u):
            keys.append(int(u) * n + int(v))
    return sorted(keys)


@given(
    seed=st.integers(0, 10**5),
    walk=st.lists(st.integers(0, 4), min_size=1, max_size=12),
)
@settings(max_examples=25, deadline=None)
def test_gpma_equals_naive_under_any_walk(seed, walk):
    """Whatever order timestamps are visited in (forward jumps, rewinds,
    repeats), GPMA's on-demand snapshot must equal Naive's pre-built one."""
    dtdg = _random_dtdg(seed)
    naive = NaiveGraph(dtdg)
    gpma = GPMAGraph(dtdg)
    n = dtdg.num_nodes
    for t in walk:
        naive.get_graph(t)
        gpma.get_graph(t)
        gpma.pma.check_invariants()
        assert _edge_keys(gpma, n) == _edge_keys(naive, n)
        assert np.array_equal(gpma.in_degrees(), naive.in_degrees())


@given(seed=st.integers(0, 10**5), cache=st.booleans())
@settings(max_examples=15, deadline=None)
def test_gpma_sequence_protocol_with_cache(seed, cache):
    """The Algorithm-1 access pattern (forward seq, cache, LIFO backward,
    next seq) lands on correct snapshots with and without the cache."""
    dtdg = _random_dtdg(seed, timestamps=6)
    gpma = GPMAGraph(dtdg, enable_cache=cache)
    naive = NaiveGraph(dtdg)
    n = dtdg.num_nodes
    for seq in ([0, 1, 2], [3, 4, 5]):
        for t in seq:
            gpma.get_graph(t)
        gpma.cache_snapshot()
        for t in reversed(seq):
            gpma.get_backward_graph(t)
            naive.get_graph(t)
            assert _edge_keys(gpma, n) == _edge_keys(naive, n)


@given(seed=st.integers(0, 10**5))
@settings(max_examples=20, deadline=None)
def test_dtdg_update_replay_reconstructs(seed):
    dtdg = _random_dtdg(seed)
    n = dtdg.num_nodes
    current = set(encode_edges(*dtdg.snapshot_edges(0), n).tolist())
    for t in range(1, dtdg.num_timestamps):
        up = dtdg.updates[t]
        current -= set(encode_edges(up.del_src, up.del_dst, n).tolist())
        current |= set(encode_edges(up.add_src, up.add_dst, n).tolist())
        assert current == set(encode_edges(*dtdg.snapshot_edges(t), n).tolist())
