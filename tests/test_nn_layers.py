"""Spatial layers: GCNConv, GATConv, SAGEConv against dense references."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core import TemporalExecutor
from repro.graph import StaticGraph
from repro.nn import GATConv, GCNConv, SAGEConv
from repro.nn.gcn import gcn_norm
from repro.tensor import Tensor, functional as F, init


@pytest.fixture
def setup(rng):
    n = 18
    g = nx.gnp_random_graph(n, 0.25, seed=13, directed=True)
    sg = StaticGraph.from_networkx(g)
    ex = TemporalExecutor(sg)
    ex.begin_timestamp(0)
    A = nx.to_numpy_array(g).T.astype(np.float32)
    x = rng.standard_normal((n, 5)).astype(np.float32)
    return n, g, sg, ex, A, x


def test_gcn_matches_dense_reference(setup):
    n, g, sg, ex, A, x = setup
    conv = GCNConv(5, 3, add_self_loops=True)
    out = conv(ex, Tensor(x))
    deg = A.sum(1) + 1
    norm = 1 / np.sqrt(deg)
    A_hat = (A + np.eye(n)) * norm[:, None] * norm[None, :]
    # note: symmetric norm uses dest-in-degree for both endpoints in our
    # in-degree formulation: Â[v,u] = n_v·n_u
    ref = A_hat @ (x @ conv.weight.data) + conv.bias.data
    assert np.allclose(out.data, ref, atol=1e-4)


def test_gcn_without_self_loops(setup):
    n, g, sg, ex, A, x = setup
    conv = GCNConv(5, 3, add_self_loops=False)
    out = conv(ex, Tensor(x))
    deg = np.maximum(A.sum(1), 1)
    norm = 1 / np.sqrt(deg)
    ref = (A * norm[:, None] * norm[None, :]) @ (x @ conv.weight.data) + conv.bias.data
    assert np.allclose(out.data, ref, atol=1e-4)


def test_gcn_norm_cached_on_context(setup):
    n, g, sg, ex, A, x = setup
    ctx = ex.current_context()
    n1 = gcn_norm(ctx, True)
    n2 = gcn_norm(ctx, True)
    assert n1 is n2
    n3 = gcn_norm(ctx, False)
    assert n3 is not n1


def test_gcn_gradients_flow_to_params(setup):
    n, g, sg, ex, A, x = setup
    conv = GCNConv(5, 3)
    out = conv(ex, Tensor(x, requires_grad=True))
    F.sum(out).backward()
    assert conv.weight.grad is not None and conv.bias.grad is not None
    assert np.abs(conv.weight.grad).sum() > 0


def test_gcn_state_stack_spec_minimal():
    conv = GCNConv(4, 4)
    assert set(conv.program.saved_spec) == {"n_norm"}


def test_gcn_generated_source_accessible():
    conv = GCNConv(4, 4)
    assert "spmm" in conv.generated_forward_source
    assert "spmm_T" in conv.generated_backward_source


def test_sage_matches_dense(setup):
    n, g, sg, ex, A, x = setup
    conv = SAGEConv(5, 3)
    out = conv(ex, Tensor(x))
    deg = np.maximum(A.sum(1), 1)[:, None]
    ref = x @ conv.weight_self.data + ((A @ x) / deg) @ conv.weight_nb.data + conv.bias.data
    assert np.allclose(out.data, ref, atol=1e-4)


def test_gat_rows_attend(setup):
    n, g, sg, ex, A, x = setup
    conv = GATConv(5, 4)
    out = conv(ex, Tensor(x))
    assert out.shape == (n, 4)
    # attention output is a convex combination of transformed neighbors:
    ft = x @ conv.weight.data
    for v in range(n):
        preds = list(g.predecessors(v))
        if preds:
            lo = ft[preds].min(0) + conv.bias.data
            hi = ft[preds].max(0) + conv.bias.data
            assert np.all(out.data[v] >= lo - 1e-4)
            assert np.all(out.data[v] <= hi + 1e-4)


def test_gat_gradients_flow(setup):
    n, g, sg, ex, A, x = setup
    conv = GATConv(5, 4)
    out = conv(ex, Tensor(x, requires_grad=True))
    F.sum(out).backward()
    for p in (conv.weight, conv.attn_l, conv.attn_r):
        assert p.grad is not None
        assert np.isfinite(p.grad).all()


def test_layers_deterministic_given_seed(setup):
    n, g, sg, ex, A, x = setup
    init.set_seed(3)
    c1 = GCNConv(5, 3)
    init.set_seed(3)
    c2 = GCNConv(5, 3)
    o1 = c1(ex, Tensor(x))
    o2 = c2(ex, Tensor(x))
    assert np.array_equal(o1.data, o2.data)


def test_isolated_vertices_get_zero_aggregate(rng):
    """A vertex with no in-edges aggregates to its self-loop only."""
    sg = StaticGraph(np.array([0]), np.array([1]), 3)  # node 2 isolated
    ex = TemporalExecutor(sg)
    ex.begin_timestamp(0)
    conv = GCNConv(2, 2, add_self_loops=False, bias=False)
    x = rng.standard_normal((3, 2)).astype(np.float32)
    out = conv(ex, Tensor(x))
    assert np.allclose(out.data[2], 0.0)
    assert np.allclose(out.data[0], 0.0)  # 0 has no in-edges either


def test_parameter_counts():
    assert GCNConv(4, 8).parameter_count() == 4 * 8 + 8
    assert SAGEConv(4, 8).parameter_count() == 2 * 4 * 8 + 8
    assert GATConv(4, 8).parameter_count() == 4 * 8 + 8 + 8 + 8
