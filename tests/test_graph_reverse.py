"""Algorithm 3: reverse-CSR construction (literal and vectorized)."""

from __future__ import annotations

import networkx as nx
import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import (
    StaticGraph,
    reverse_csr_arrays,
    reverse_gpma_literal,
    reverse_gpma_vectorized,
)
from repro.pma.pma import SPACE_KEY


def _compact_inputs(src, dst, n):
    """Compact (gap-free) CSR keyed on src, labels = positions."""
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    row = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=row[1:])
    eids = np.arange(len(src), dtype=np.int64)
    return row, dst.astype(np.int64), eids


def _as_sets(row, col, eid, n):
    return [
        set(zip(col[row[v] : row[v + 1]].tolist(), eid[row[v] : row[v + 1]].tolist()))
        for v in range(n)
    ]


def test_reverse_small_example():
    # edges: 0->1, 0->2, 1->2
    row = np.array([0, 2, 3, 3])
    col = np.array([1, 2, 2])
    eid = np.array([0, 1, 2])
    r_row, r_col, r_eid = reverse_csr_arrays(row, col, eid, 3)
    assert r_row.tolist() == [0, 0, 1, 3]
    assert _as_sets(r_row, r_col, r_eid, 3) == [set(), {(0, 0)}, {(0, 1), (1, 2)}]


def test_reverse_empty_graph():
    r_row, r_col, r_eid = reverse_csr_arrays(np.zeros(5, dtype=np.int64), np.array([], dtype=np.int64), np.array([], dtype=np.int64), 4)
    assert r_row.tolist() == [0, 0, 0, 0, 0]
    assert r_col.size == 0


def test_literal_matches_vectorized_random(rng):
    n = 40
    g = nx.gnp_random_graph(n, 0.15, seed=7, directed=True)
    edges = np.array(list(g.edges()), dtype=np.int64)
    row, col, eid = _compact_inputs(edges[:, 0], edges[:, 1], n)
    in_deg = np.bincount(col, minlength=n)
    r1 = reverse_gpma_literal(row, col, eid, in_deg)
    r2 = reverse_gpma_vectorized(row, col, eid, n)
    assert np.array_equal(r1[0], r2[0])
    assert _as_sets(*r1, n) == _as_sets(*r2, n)


def test_literal_order_independent(rng):
    """The atomic-decrement discipline makes the result independent of
    thread scheduling: any node_order gives the same set per reverse row."""
    n = 30
    g = nx.gnp_random_graph(n, 0.2, seed=3, directed=True)
    edges = np.array(list(g.edges()), dtype=np.int64)
    row, col, eid = _compact_inputs(edges[:, 0], edges[:, 1], n)
    in_deg = np.bincount(col, minlength=n)
    base = reverse_gpma_literal(row, col, eid, in_deg)
    for _ in range(5):
        other = reverse_gpma_literal(row, col, eid, in_deg, node_order=rng.permutation(n))
        assert np.array_equal(base[0], other[0])
        assert _as_sets(*base, n) == _as_sets(*other, n)


def test_gapped_input_skips_spaces():
    """SPACE slots inside windows must be ignored (the Alg. 3 line-10 check)."""
    # node 0 window has a gap; edges 0->1 (eid 0), 1->0 (eid 1)
    row = np.array([0, 3, 5])
    col = np.array([1, SPACE_KEY, SPACE_KEY, 0, SPACE_KEY])
    eid = np.array([0, -1, -1, 1, -1])
    r_row, r_col, r_eid = reverse_gpma_vectorized(row, col, eid, 2)
    assert r_row.tolist() == [0, 1, 2]
    assert (r_col[0], r_eid[0]) == (1, 1)  # 0's in-edge comes from 1
    assert (r_col[1], r_eid[1]) == (0, 0)
    lit = reverse_gpma_literal(row, col, eid, np.array([1, 1]))
    assert np.array_equal(lit[0], r_row)
    assert _as_sets(*lit, 2) == _as_sets(r_row, r_col, r_eid, 2)


def test_reverse_of_reverse_is_identity(rng):
    n = 25
    g = nx.gnp_random_graph(n, 0.2, seed=11, directed=True)
    edges = np.array(list(g.edges()), dtype=np.int64)
    row, col, eid = _compact_inputs(edges[:, 0], edges[:, 1], n)
    r = reverse_gpma_vectorized(row, col, eid, n)
    rr = reverse_gpma_vectorized(*r, n)
    assert np.array_equal(rr[0], row)
    assert _as_sets(*rr, n) == _as_sets(row, col, eid, n)


def test_reverse_matches_networkx_predecessors():
    n = 35
    g = nx.gnp_random_graph(n, 0.18, seed=23, directed=True)
    sg = StaticGraph.from_networkx(g)
    fwd = sg.forward_csr()
    for v in range(n):
        assert sorted(fwd.neighbors(v).tolist()) == sorted(g.predecessors(v))


@given(seed=st.integers(0, 10**6), n=st.integers(2, 30), p=st.floats(0.05, 0.5))
@settings(max_examples=30, deadline=None)
def test_reverse_preserves_edge_multiset(seed, n, p):
    g = nx.gnp_random_graph(n, p, seed=seed, directed=True)
    edges = np.array(list(g.edges()), dtype=np.int64).reshape(-1, 2)
    row, col, eid = _compact_inputs(edges[:, 0], edges[:, 1], n)
    r_row, r_col, r_eid = reverse_gpma_vectorized(row, col, eid, n)
    # every (u, v, label) appears exactly once flipped
    fwd_edges = set()
    for u in range(n):
        for v, l in zip(col[row[u] : row[u + 1]], eid[row[u] : row[u + 1]]):
            fwd_edges.add((int(u), int(v), int(l)))
    rev_edges = set()
    for v in range(n):
        for u, l in zip(r_col[r_row[v] : r_row[v + 1]], r_eid[r_row[v] : r_row[v + 1]]):
            rev_edges.add((int(u), int(v), int(l)))
    assert fwd_edges == rev_edges
