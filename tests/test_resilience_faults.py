"""Deterministic fault injection: plans, sites, and injector semantics."""

from __future__ import annotations

import pytest

from repro.resilience import (
    BOUNDARY,
    FAULT_KINDS,
    NULL_INJECTOR,
    FaultInjector,
    FaultPlan,
    FaultSite,
    InjectedCacheCorruption,
    InjectedFault,
    InjectedKernelFault,
    InjectedOOM,
    SimulatedKill,
    current_injector,
    named_plan,
    use_fault_plan,
)


def _armed(site: FaultSite, name: str = "t") -> FaultInjector:
    return FaultInjector(FaultPlan(name=name, sites=[site]))


def test_plan_json_roundtrip(tmp_path):
    plan = FaultPlan(
        name="roundtrip", seed=42,
        sites=[
            FaultSite(kind="kernel", epoch=0, sequence=1, timestamp=4, times=2),
            FaultSite(kind="kill", epoch=None, sequence=None, timestamp=BOUNDARY),
            FaultSite(kind="oom"),  # full wildcard
        ],
    )
    path = plan.to_json(tmp_path / "plan.json")
    restored = FaultPlan.from_json(path)
    assert restored.to_dict() == plan.to_dict()
    # fired counters are runtime state, never serialized
    assert all(s.fired == 0 for s in restored.sites)


def test_unknown_site_fields_rejected():
    with pytest.raises(ValueError, match="unknown fault-site fields"):
        FaultSite.from_dict({"kind": "oom", "after_step": 3})
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSite(kind="meteor")
    with pytest.raises(ValueError, match="times"):
        FaultSite(kind="oom", times=0)


def test_random_plan_is_deterministic():
    a = FaultPlan.random(seed=7)
    b = FaultPlan.random(seed=7)
    assert a.to_dict() == b.to_dict()
    assert FaultPlan.random(seed=8).to_dict() != a.to_dict()


def test_each_kind_raises_its_exception():
    expected = {
        "oom": InjectedOOM,
        "kernel": InjectedKernelFault,
        "cache": InjectedCacheCorruption,
        "kill": SimulatedKill,
    }
    assert set(expected) == set(FAULT_KINDS)
    for kind, exc in expected.items():
        injector = _armed(FaultSite(kind=kind))
        with pytest.raises(exc):
            injector.fire(kind)
    # OOM doubles as MemoryError so generic OOM handling catches it...
    assert issubclass(InjectedOOM, MemoryError)
    assert issubclass(InjectedKernelFault, InjectedFault)
    # ...while a kill, like SIGKILL, escapes `except Exception` recovery.
    assert not issubclass(SimulatedKill, Exception)
    assert issubclass(SimulatedKill, BaseException)


def test_take_consumes_without_raising():
    injector = _armed(FaultSite(kind="cache"))
    site = injector.take("cache")
    assert site is not None and site.fired == 1
    assert injector.take("cache") is None  # consumed
    assert injector.faults_injected() == {"cache": 1}
    assert injector.exhausted()


def test_cursor_matching_and_wildcards():
    injector = _armed(FaultSite(kind="oom", epoch=1, sequence=None, timestamp=3))
    injector.at_epoch(0)
    injector.at_sequence(0)
    injector.at_timestamp(3)
    assert injector.take("oom") is None  # wrong epoch
    injector.at_epoch(1)
    injector.at_sequence(7)  # wildcard sequence: any value matches
    injector.at_timestamp(2)
    assert injector.take("oom") is None  # wrong timestamp
    injector.at_timestamp(3)
    assert injector.take("oom") is not None
    assert injector.fired == [{"kind": "oom", "epoch": 1, "sequence": 7, "timestamp": 3}]


def test_at_epoch_resets_inner_cursor():
    injector = _armed(FaultSite(kind="oom", timestamp=3))
    injector.at_epoch(0)
    injector.at_sequence(1)
    injector.at_timestamp(3)
    injector.at_epoch(1)  # new epoch: sequence/timestamp cursors cleared
    assert injector.sequence is None and injector.timestamp is None
    assert injector.take("oom") is None  # timestamp=3 does not match None


def test_boundary_sentinel_matches_only_boundary():
    injector = _armed(FaultSite(kind="kill", timestamp=BOUNDARY))
    injector.at_epoch(0)
    injector.at_sequence(0)
    for t in range(4):
        injector.at_timestamp(t)
        injector.fire("kill")  # never armed mid-sequence
    injector.at_timestamp(BOUNDARY)
    with pytest.raises(SimulatedKill):
        injector.fire("kill")


def test_times_bounds_firings():
    injector = _armed(FaultSite(kind="kernel", times=2))
    with pytest.raises(InjectedKernelFault):
        injector.fire("kernel")
    assert not injector.exhausted()
    with pytest.raises(InjectedKernelFault):
        injector.fire("kernel")
    injector.fire("kernel")  # out of charges: silent no-op
    assert injector.faults_injected() == {"kernel": 2}
    assert injector.exhausted()


def test_firings_count_on_device_profiler(fresh_device):
    injector = _armed(FaultSite(kind="cache", times=3))
    with use_fault_plan(injector):
        injector.take("cache")
        injector.take("cache")
    assert fresh_device.profiler.counter("faults_injected") == 2


def test_context_stack_mirrors_tracer_pattern():
    assert current_injector() is NULL_INJECTOR
    plan = FaultPlan(name="outer", sites=[FaultSite(kind="oom")])
    with use_fault_plan(plan) as outer:
        assert current_injector() is outer and outer.enabled
        with use_fault_plan(None):  # explicit None keeps injection off
            assert current_injector() is NULL_INJECTOR
        assert current_injector() is outer
        # A prepared injector passes through (resume keeps consumed sites).
        with use_fault_plan(outer) as again:
            assert again is outer
    assert current_injector() is NULL_INJECTOR


def test_null_injector_is_inert():
    assert not NULL_INJECTOR.enabled
    NULL_INJECTOR.fire("kill")  # never raises
    assert NULL_INJECTOR.take("oom") is None
    assert NULL_INJECTOR.faults_injected() == {}


def test_named_plans_resolve():
    smoke = named_plan("smoke")
    assert smoke.name == "smoke"
    assert any(s.kind == "kernel" and s.times >= 2 for s in smoke.sites)
    assert any(s.kind == "kill" for s in smoke.sites)
    matrix = named_plan("kill-matrix")
    kills = [s for s in matrix.sites if s.kind == "kill"]
    assert len(kills) >= 3 and all(s.timestamp == BOUNDARY for s in kills)
    with pytest.raises(KeyError, match="smoke"):
        named_plan("nope")
