"""Edge-stream discretization (paper §VII-B preprocessing)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataset import discretize_edge_stream, temporal_edge_stream


def _stream(n=300, m=4000, seed=0):
    src, dst, _ = temporal_edge_stream(n, m, seed=seed)
    return src, dst, n


def test_first_snapshot_is_first_half():
    src, dst, n = _stream()
    dtdg = discretize_edge_stream(src, dst, n, percent_change=5.0)
    half_keys = np.unique(src[:2000] * n + dst[:2000])
    s0, d0 = dtdg.snapshot_edges(0)
    assert np.array_equal(np.sort(s0 * n + d0), half_keys)


def test_percent_change_bound_respected():
    src, dst, n = _stream()
    for target in (2.0, 5.0, 10.0):
        dtdg = discretize_edge_stream(src, dst, n, percent_change=target)
        for t in range(1, dtdg.num_timestamps):
            assert dtdg.percent_change(t) <= target + 1e-9, (target, t)


def test_sweep_changes_spread():
    """Larger targets must produce materially larger realized changes."""
    src, dst, n = _stream()
    lo = discretize_edge_stream(src, dst, n, percent_change=1.0, max_snapshots=8)
    hi = discretize_edge_stream(src, dst, n, percent_change=10.0, max_snapshots=8)
    lo_avg = np.mean([lo.percent_change(t) for t in range(1, lo.num_timestamps)])
    hi_avg = np.mean([hi.percent_change(t) for t in range(1, hi.num_timestamps)])
    assert hi_avg > 3 * lo_avg


def test_max_snapshots_cap():
    src, dst, n = _stream()
    dtdg = discretize_edge_stream(src, dst, n, percent_change=5.0, max_snapshots=4)
    assert dtdg.num_timestamps == 4


def test_window_fraction():
    src, dst, n = _stream()
    small = discretize_edge_stream(src, dst, n, window_fraction=0.25, max_snapshots=3)
    big = discretize_edge_stream(src, dst, n, window_fraction=0.5, max_snapshots=3)
    assert small.snapshot_edge_count(0) < big.snapshot_edge_count(0)


def test_short_stream_rejected():
    with pytest.raises(ValueError):
        discretize_edge_stream(np.array([0]), np.array([1]), 2)


@given(seed=st.integers(0, 10**5), pct=st.floats(1.0, 15.0))
@settings(max_examples=20, deadline=None)
def test_property_bound_always_holds(seed, pct):
    src, dst, _ = temporal_edge_stream(150, 1500, seed=seed)
    dtdg = discretize_edge_stream(src, dst, 150, percent_change=pct, max_snapshots=6)
    for t in range(1, dtdg.num_timestamps):
        assert dtdg.percent_change(t) <= pct + 1e-9
