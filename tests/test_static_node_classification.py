"""Static-graph node classification: GNNStack + cross-entropy on an SBM.

The plain-GNN workload of Table I: a 2-layer GCN must recover planted
communities from noisy features, beating both chance and a structure-blind
MLP on the same features.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TemporalExecutor
from repro.dataset.generators import sbm_edges
from repro.graph import StaticGraph
from repro.nn import GATConv, GNNStack
from repro.tensor import Tensor, functional as F, init, nn, optim


@pytest.fixture(scope="module")
def sbm():
    n, c = 90, 3
    src, dst, labels = sbm_edges(n, c, p_in=0.2, p_out=0.01, seed=3)
    rng = np.random.default_rng(0)
    # noisy features: community one-hot + large noise
    x = np.eye(c, dtype=np.float32)[labels] + rng.standard_normal((n, c)).astype(np.float32) * 1.2
    return n, c, src, dst, labels, x


def _accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    return float((logits.argmax(1) == labels).mean())


def test_cross_entropy_value_and_grad(rng):
    logits = rng.standard_normal((6, 4)).astype(np.float32)
    labels = rng.integers(0, 4, 6)
    t = Tensor(logits, requires_grad=True)
    loss = F.cross_entropy_loss(t, labels)
    # reference
    e = np.exp(logits - logits.max(1, keepdims=True))
    soft = e / e.sum(1, keepdims=True)
    ref = -np.log(soft[np.arange(6), labels]).mean()
    assert loss.item() == pytest.approx(ref, abs=1e-5)
    loss.backward()
    grad_ref = soft.copy()
    grad_ref[np.arange(6), labels] -= 1
    assert np.allclose(t.grad, grad_ref / 6, atol=1e-5)


def test_cross_entropy_extreme_logits_stable():
    t = Tensor(np.array([[1000.0, -1000.0]], dtype=np.float32), requires_grad=True)
    loss = F.cross_entropy_loss(t, np.array([0]))
    assert np.isfinite(loss.item()) and loss.item() < 1e-5
    loss.backward()
    assert np.all(np.isfinite(t.grad))


def test_cross_entropy_rejects_1d():
    with pytest.raises(ValueError):
        F.cross_entropy_loss(Tensor(np.zeros(3, dtype=np.float32)), np.array([0, 1, 0]))


def test_gnn_stack_shapes(sbm):
    n, c, src, dst, labels, x = sbm
    ex = TemporalExecutor(StaticGraph(src, dst, n))
    ex.begin_timestamp(0)
    model = GNNStack(c, 16, c, num_layers=3, dropout=0.2)
    out = model(ex, Tensor(x))
    assert out.shape == (n, c)
    assert len(model.layers) == 3


def test_gnn_stack_invalid_layers():
    with pytest.raises(ValueError):
        GNNStack(3, 8, 3, num_layers=0)


def test_gcn_stack_beats_mlp_on_sbm(sbm):
    """Structure helps: 2-layer GCN > feature-only MLP > chance."""
    n, c, src, dst, labels, x = sbm
    ex = TemporalExecutor(StaticGraph(src, dst, n))
    ex.begin_timestamp(0)

    def train(model, use_graph):
        opt = optim.Adam(model.parameters(), lr=5e-2)
        for _ in range(80):
            opt.zero_grad()
            logits = model(ex, Tensor(x)) if use_graph else model(Tensor(x))
            F.cross_entropy_loss(logits, labels).backward()
            if use_graph:
                ex.check_drained()
            opt.step()
        logits = model(ex, Tensor(x)) if use_graph else model(Tensor(x))
        return _accuracy(logits.data, labels)

    init.set_seed(1)
    gcn_acc = train(GNNStack(c, 16, c, num_layers=2), use_graph=True)
    init.set_seed(1)
    mlp_acc = train(nn.Sequential(nn.Linear(c, 16), nn.Linear(16, c)), use_graph=False)
    assert gcn_acc > 1.0 / c + 0.15  # well above chance
    assert gcn_acc > mlp_acc  # the graph carries signal the MLP can't see


def test_gat_stack_trains(sbm):
    n, c, src, dst, labels, x = sbm
    ex = TemporalExecutor(StaticGraph(src, dst, n))
    ex.begin_timestamp(0)
    init.set_seed(2)
    model = GNNStack(c, 8, c, num_layers=2, layer_factory=lambda i, o: GATConv(i, o))
    opt = optim.Adam(model.parameters(), lr=2e-2)
    first = last = None
    for i in range(20):
        opt.zero_grad()
        loss = F.cross_entropy_loss(model(ex, Tensor(x)), labels)
        loss.backward()
        ex.check_drained()
        opt.step()
        first = first if first is not None else loss.item()
        last = loss.item()
    assert last < first


def test_dropout_only_in_training_mode(sbm):
    n, c, src, dst, labels, x = sbm
    ex = TemporalExecutor(StaticGraph(src, dst, n))
    ex.begin_timestamp(0)
    model = GNNStack(c, 8, c, num_layers=2, dropout=0.5)
    model.eval()
    a = model(ex, Tensor(x)).data
    b = model(ex, Tensor(x)).data
    assert np.allclose(a, b)  # eval: deterministic
    model.train()
    c1 = model(ex, Tensor(x)).data
    c2 = model(ex, Tensor(x)).data
    assert not np.allclose(c1, c2)  # train: stochastic


def test_sbm_generator_properties():
    src, dst, labels = sbm_edges(60, 3, p_in=0.3, p_out=0.02, seed=9)
    assert np.all(src != dst)
    same = labels[src] == labels[dst]
    # most edges are intra-community by construction
    assert same.mean() > 0.6


def test_networkx_roundtrip(sbm):
    n, c, src, dst, labels, x = sbm
    sg = StaticGraph(src, dst, n)
    g = sg.to_networkx()
    assert g.number_of_nodes() == n
    assert g.number_of_edges() == sg.num_edges
    sg2 = StaticGraph.from_networkx(g)
    assert sg2.num_edges == sg.num_edges


def test_dtdg_snapshot_to_networkx():
    from repro.graph import DTDG

    dtdg = DTDG([(np.array([0, 1]), np.array([1, 2]))], 3)
    g = dtdg.snapshot_to_networkx(0)
    assert set(g.edges()) == {(0, 1), (1, 2)}
