"""Dirty-set computation (``repro.graph.dirty``) and live DTDG appends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import DTDG, EdgeUpdate, k_hop_neighborhood, touched_vertices
from repro.graph.labels import encode_edges


def _path_csr(n):
    """Out-edge CSR of the path 0 -> 1 -> ... -> n-1 (rows = src)."""
    row_offset = np.concatenate(
        [np.arange(n, dtype=np.int64), np.array([n - 1], dtype=np.int64)]
    )
    col_indices = np.arange(1, n, dtype=np.int64)
    return row_offset, col_indices


class TestTouchedVertices:
    def test_union_of_all_endpoints(self):
        up = EdgeUpdate(
            np.array([1, 2]), np.array([3, 4]), np.array([5]), np.array([2])
        )
        assert touched_vertices(up).tolist() == [1, 2, 3, 4, 5]

    def test_empty_update(self):
        empty = np.empty(0, dtype=np.int64)
        up = EdgeUpdate(empty, empty, empty, empty)
        assert touched_vertices(up).size == 0


class TestKHopNeighborhood:
    def test_path_graph_expands_one_hop_per_step(self):
        n = 10
        row_offset, col_indices = _path_csr(n)
        for hops in range(4):
            mask = k_hop_neighborhood(row_offset, col_indices, [0], hops, n)
            assert np.flatnonzero(mask).tolist() == list(range(hops + 1))

    def test_hops_zero_is_seeds_only(self):
        n = 6
        row_offset, col_indices = _path_csr(n)
        mask = k_hop_neighborhood(row_offset, col_indices, [2, 4], 0, n)
        assert np.flatnonzero(mask).tolist() == [2, 4]

    def test_no_seeds(self):
        n = 4
        row_offset, col_indices = _path_csr(n)
        mask = k_hop_neighborhood(row_offset, col_indices, [], 2, n)
        assert not mask.any()

    def test_saturates_at_full_reach(self):
        n = 5
        row_offset, col_indices = _path_csr(n)
        mask = k_hop_neighborhood(row_offset, col_indices, [0], 100, n)
        assert mask.all()

    def test_out_of_range_seed_raises(self):
        n = 4
        row_offset, col_indices = _path_csr(n)
        with pytest.raises(ValueError):
            k_hop_neighborhood(row_offset, col_indices, [n], 1, n)
        with pytest.raises(ValueError):
            k_hop_neighborhood(row_offset, col_indices, [-1], 1, n)


class TestAppendUpdate:
    def _dtdg(self):
        src = np.array([0, 1, 2], dtype=np.int64)
        dst = np.array([1, 2, 3], dtype=np.int64)
        return DTDG([(src, dst)], num_nodes=5)

    def test_append_grows_timestamps_and_applies_edges(self):
        dtdg = self._dtdg()
        t = dtdg.append_update(
            EdgeUpdate(np.array([3]), np.array([4]), np.array([0]), np.array([1]))
        )
        assert t == 1 and dtdg.num_timestamps == 2
        src, dst = dtdg.snapshot_edges(1)
        keys = set(encode_edges(src, dst, 5).tolist())
        assert 3 * 5 + 4 in keys and 0 * 5 + 1 not in keys
        # first snapshot untouched
        src0, dst0 = dtdg.snapshot_edges(0)
        assert 0 * 5 + 1 in set(encode_edges(src0, dst0, 5).tolist())

    def test_normalizes_duplicate_and_existing_adds(self):
        dtdg = self._dtdg()
        # (0,1) already exists; (3,4) listed twice — effective add is one edge
        t = dtdg.append_update(
            EdgeUpdate(
                np.array([0, 3, 3]), np.array([1, 4, 4]),
                np.empty(0, np.int64), np.empty(0, np.int64),
            )
        )
        eff = dtdg.updates[t]
        assert len(eff.add_src) == 1
        assert (int(eff.add_src[0]), int(eff.add_dst[0])) == (3, 4)

    def test_normalizes_missing_deletes(self):
        dtdg = self._dtdg()
        t = dtdg.append_update(
            EdgeUpdate(
                np.empty(0, np.int64), np.empty(0, np.int64),
                np.array([4, 0]), np.array([0, 1]),  # (4,0) does not exist
            )
        )
        eff = dtdg.updates[t]
        assert len(eff.del_src) == 1
        assert (int(eff.del_src[0]), int(eff.del_dst[0])) == (0, 1)

    def test_fully_redundant_batch_is_a_noop_timestamp(self):
        dtdg = self._dtdg()
        t = dtdg.append_update(
            EdgeUpdate(
                np.array([0]), np.array([1]),      # already present
                np.array([4]), np.array([0]),      # not present
            )
        )
        eff = dtdg.updates[t]
        assert len(eff.add_src) == 0 and len(eff.del_src) == 0
        a, b = dtdg.snapshot_edges(0), dtdg.snapshot_edges(t)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_out_of_range_vertex_raises(self):
        dtdg = self._dtdg()
        before = dtdg.num_timestamps
        with pytest.raises(ValueError):
            dtdg.append_update(
                EdgeUpdate(
                    np.array([0]), np.array([5]),
                    np.empty(0, np.int64), np.empty(0, np.int64),
                )
            )
        assert dtdg.num_timestamps == before
