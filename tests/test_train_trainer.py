"""Algorithm 1 training loops on all graph kinds + the baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import load_hungary_chickenpox, load_sx_mathoverflow
from repro.tensor import init
from repro.train import (
    BaselineTrainer,
    PyGTLinkPredictor,
    PyGTNodeRegressor,
    STGraphLinkPredictor,
    STGraphNodeRegressor,
    STGraphTrainer,
    make_link_prediction_samples,
)


@pytest.fixture(scope="module")
def static_ds():
    return load_hungary_chickenpox(lags=4, scale=1.0, num_timestamps=12)


@pytest.fixture(scope="module")
def dynamic_ds():
    return load_sx_mathoverflow(scale=0.01, feature_size=4, max_snapshots=6)


def test_regression_training_converges(static_ds):
    init.set_seed(0)
    model = STGraphNodeRegressor(4, 8)
    trainer = STGraphTrainer(model, static_ds.build_graph(), lr=1e-2)
    losses = trainer.train(static_ds.features, static_ds.targets, epochs=8)
    assert losses[-1] < losses[0]
    assert len(trainer.epoch_times) == 8


def test_sequence_chunking_same_direction(static_ds):
    init.set_seed(0)
    model = STGraphNodeRegressor(4, 8)
    trainer = STGraphTrainer(model, static_ds.build_graph(), lr=1e-2, sequence_length=4)
    losses = trainer.train(static_ds.features, static_ds.targets, epochs=6)
    assert losses[-1] < losses[0]


def test_warmup_drops_epoch_times(static_ds):
    init.set_seed(0)
    model = STGraphNodeRegressor(4, 8)
    trainer = STGraphTrainer(model, static_ds.build_graph(), lr=1e-2)
    trainer.train(static_ds.features, static_ds.targets, epochs=5, warmup=2)
    assert len(trainer.epoch_times) == 3
    assert np.isfinite(trainer.mean_epoch_time)


def test_naive_and_gpma_identical_trajectories(dynamic_ds):
    samples = make_link_prediction_samples(dynamic_ds.dtdg, 64, seed=1)

    def train(graph):
        init.set_seed(3)
        model = STGraphLinkPredictor(4, 8)
        trainer = STGraphTrainer(
            model, graph, lr=1e-2, sequence_length=3,
            task="link_prediction", link_samples=samples,
        )
        return trainer.train(dynamic_ds.features, epochs=4)

    ln = train(dynamic_ds.build_naive())
    lg = train(dynamic_ds.build_gpma())
    assert np.allclose(ln, lg, atol=1e-3)
    assert ln[-1] < ln[0]


def test_stgraph_matches_baseline_losses(static_ds):
    """Paper: 'The loss for models compiled with PyG-T and STGraph are
    similar over all tests' — here identical, same weights and math."""
    init.set_seed(9)
    m1 = STGraphNodeRegressor(4, 8)
    init.set_seed(9)
    m2 = PyGTNodeRegressor(4, 8)
    t1 = STGraphTrainer(m1, static_ds.build_graph(), lr=1e-2)
    t2 = BaselineTrainer(m2, static_ds.to_pygt_signal().edge_index, lr=1e-2)
    l1 = t1.train(static_ds.features, static_ds.targets, epochs=4)
    l2 = t2.train(static_ds.features, static_ds.targets, epochs=4)
    assert np.allclose(l1, l2, rtol=1e-4)


def test_link_prediction_baseline_parity(dynamic_ds):
    samples = make_link_prediction_samples(dynamic_ds.dtdg, 64, seed=2)
    init.set_seed(21)
    ms = STGraphLinkPredictor(4, 8)
    init.set_seed(21)
    mp = PyGTLinkPredictor(4, 8)
    ts = STGraphTrainer(ms, dynamic_ds.build_naive(), lr=1e-2, sequence_length=3,
                        task="link_prediction", link_samples=samples)
    sig = dynamic_ds.to_pygt_signal()
    tp = BaselineTrainer(mp, sig.edge_indices, lr=1e-2, sequence_length=3,
                         task="link_prediction", link_samples=samples)
    ls = ts.train(dynamic_ds.features, epochs=3)
    lp = tp.train(dynamic_ds.features, epochs=3)
    assert np.allclose(ls, lp, rtol=1e-3)


def test_link_prediction_needs_samples(dynamic_ds):
    model = STGraphLinkPredictor(4, 8)
    with pytest.raises(ValueError, match="link_samples"):
        STGraphTrainer(model, dynamic_ds.build_naive(), task="link_prediction")


def test_unknown_task_rejected(static_ds):
    model = STGraphNodeRegressor(4, 8)
    with pytest.raises(ValueError, match="unknown task"):
        STGraphTrainer(model, static_ds.build_graph(), task="clustering")


def test_executor_drained_after_every_epoch(static_ds):
    init.set_seed(0)
    model = STGraphNodeRegressor(4, 8)
    trainer = STGraphTrainer(model, static_ds.build_graph(), lr=1e-2, sequence_length=5)
    trainer.train(static_ds.features, static_ds.targets, epochs=2)
    trainer.executor.check_drained()


def test_gpma_ends_at_sequence_start_after_epoch(dynamic_ds):
    samples = make_link_prediction_samples(dynamic_ds.dtdg, 32, seed=0)
    graph = dynamic_ds.build_gpma()
    init.set_seed(0)
    model = STGraphLinkPredictor(4, 8)
    trainer = STGraphTrainer(model, graph, lr=1e-2, sequence_length=3,
                             task="link_prediction", link_samples=samples)
    trainer.train_epoch(dynamic_ds.features)
    # after the LIFO backward of the last sequence, the graph sits at the
    # last sequence's first timestamp
    assert graph.curr_time == 3


def test_gpma_cache_used_across_sequences(dynamic_ds):
    samples = make_link_prediction_samples(dynamic_ds.dtdg, 32, seed=0)
    graph = dynamic_ds.build_gpma(enable_cache=True)
    init.set_seed(0)
    model = STGraphLinkPredictor(4, 8)
    trainer = STGraphTrainer(model, graph, lr=1e-2, sequence_length=3,
                             task="link_prediction", link_samples=samples)
    trainer.train(dynamic_ds.features, epochs=2)
    assert graph.cache_restores > 0
