"""Telemetry server: live scrape correctness and zero numeric interference.

The acceptance criteria for the live-telemetry PR: a ``GET /metrics``
against a *running* training job returns well-formed Prometheus text that
includes the ``repro_timestamp_seconds`` histogram labeled by engine with
``+Inf`` bucket == ``_count``; ``/healthz`` and ``/progress`` answer JSON;
the port is closed after shutdown; and training losses are bitwise
identical with telemetry on vs off.
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.dataset import load_sx_mathoverflow
from repro.device import current_device, use_device
from repro.obs import TelemetryServer, TrainingProgress
from repro.tensor import init
from repro.train import (
    STGraphLinkPredictor,
    STGraphTrainer,
    make_link_prediction_samples,
)


@pytest.fixture(scope="module")
def dynamic_ds():
    return load_sx_mathoverflow(scale=0.01, feature_size=4, max_snapshots=6)


def _make_trainer(ds, seed: int = 7, telemetry_port: int | None = None) -> STGraphTrainer:
    samples = make_link_prediction_samples(ds.dtdg, 32, seed=seed)
    init.set_seed(seed)
    model = STGraphLinkPredictor(4, 4)
    return STGraphTrainer(
        model, ds.build_gpma(), sequence_length=3,
        task="link_prediction", link_samples=samples,
        telemetry_port=telemetry_port,
    )


def _get(url: str, timeout: float = 5.0) -> tuple[int, str]:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode("utf-8")


# ---------------------------------------------------------------------------
# Server mechanics against the current device (no training needed)
# ---------------------------------------------------------------------------
def test_server_endpoints_and_clean_shutdown():
    server = TelemetryServer(current_device(), port=0)
    port = server.start()
    assert port and server.running
    try:
        status, text = _get(f"http://127.0.0.1:{port}/metrics")
        assert status == 200
        assert "# TYPE repro_phase_seconds_total counter" in text

        status, body = _get(f"http://127.0.0.1:{port}/healthz")
        health = json.loads(body)
        assert status == 200 and health["status"] == "ok"
        assert health["uptime_seconds"] >= 0

        status, body = _get(f"http://127.0.0.1:{port}/progress")
        assert status == 200 and isinstance(json.loads(body), dict)

        with pytest.raises(urllib.error.HTTPError):
            _get(f"http://127.0.0.1:{port}/nope")
    finally:
        server.stop()
    assert not server.running
    # The port must actually be closed, not just the thread joined.
    with pytest.raises(OSError):
        sock = socket.create_connection(("127.0.0.1", port), timeout=0.5)
        sock.close()


def test_progress_updates_are_visible():
    progress = TrainingProgress()
    server = TelemetryServer(current_device(), port=0, progress=progress)
    port = server.start()
    try:
        progress.update(epoch=2, loss=0.125)
        _, body = _get(f"http://127.0.0.1:{port}/progress")
        snap = json.loads(body)
        assert snap["epoch"] == 2 and snap["loss"] == 0.125
    finally:
        server.stop()


# ---------------------------------------------------------------------------
# Live scrape of a running training job
# ---------------------------------------------------------------------------
class _GatedFeatures:
    """Sequence wrapper that parks the training thread at one timestamp.

    When the trainer asks for ``features[gate_at]`` the wrapper signals
    ``reached`` and blocks on ``resume`` — by then every earlier timestamp
    has completed and been observed, so the main thread can scrape a
    guaranteed mid-run, non-empty ``/metrics`` without any polling race.
    """

    def __init__(self, features, gate_at: int,
                 reached: threading.Event, resume: threading.Event) -> None:
        self._features = features
        self._gate_at = gate_at
        self._reached = reached
        self._resume = resume
        self._fired = False

    def __len__(self) -> int:
        return len(self._features)

    def __getitem__(self, index: int):
        if index == self._gate_at and not self._fired:
            self._fired = True
            self._reached.set()
            assert self._resume.wait(60.0), "main thread never resumed training"
        return self._features[index]


def test_live_scrape_during_training(dynamic_ds):
    device = current_device()
    trainer = _make_trainer(dynamic_ds, telemetry_port=0)
    port = trainer.start_telemetry()
    assert port

    reached, resume, done = threading.Event(), threading.Event(), threading.Event()
    gated = _GatedFeatures(dynamic_ds.features, 2, reached, resume)
    errors: list[BaseException] = []

    def run() -> None:
        # ContextStack is thread-local: the worker must install the test
        # device itself before training.
        try:
            with use_device(device):
                trainer.train(gated, epochs=2)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            done.set()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    try:
        assert reached.wait(60.0), "training thread never reached the gate"
        # Timestamps 0 and 1 are complete and observed; the job is parked
        # mid-epoch — this scrape is mid-run by construction.
        _, text = _get(f"http://127.0.0.1:{port}/metrics")
        assert "repro_timestamp_seconds_bucket" in text
        assert 'engine="default"' in text
        # Well-formed histogram: +Inf bucket equals _count for every child.
        inf = {}
        counts = {}
        for line in text.splitlines():
            if line.startswith("repro_timestamp_seconds_bucket{") and 'le="+Inf"' in line:
                labels, value = line.rsplit(" ", 1)
                inf[labels.replace(',le="+Inf"', "").replace('le="+Inf"', "")] = int(value)
            elif line.startswith("repro_timestamp_seconds_count{"):
                labels, value = line.rsplit(" ", 1)
                counts[labels.replace("_count", "_bucket")] = int(value)
        assert inf and inf == counts
        _, body = _get(f"http://127.0.0.1:{port}/healthz")
        assert json.loads(body)["status"] == "ok"
    finally:
        resume.set()
        done.wait(60.0)
        thread.join(60.0)
    assert not errors, f"training thread failed: {errors}"
    # train()'s finally stopped the server and closed the port.
    assert trainer.telemetry_server is None
    with pytest.raises((OSError, urllib.error.URLError)):
        _get(f"http://127.0.0.1:{port}/healthz", timeout=0.5)


# ---------------------------------------------------------------------------
# Non-interference
# ---------------------------------------------------------------------------
def test_losses_bitwise_identical_with_and_without_telemetry(dynamic_ds):
    plain = _make_trainer(dynamic_ds).train(dynamic_ds.features, epochs=3)

    from repro.device import Device
    with use_device(Device(name="telemetry")):
        telemetered = _make_trainer(dynamic_ds, telemetry_port=0)
        with_server = telemetered.train(dynamic_ds.features, epochs=3)

    assert len(plain) == len(with_server)
    assert all(np.float64(a) == np.float64(b) for a, b in zip(plain, with_server))
