"""Generated kernels vs dense-matrix references (forward + backward).

The canonical compiler-correctness suite: every supported vertex-program
shape is compiled, run on a random graph, and compared against an explicit
dense-adjacency computation; gradients are checked with central differences.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.compiler import compile_vertex_program
from repro.compiler.runtime import GraphContext
from repro.compiler.symbols import vfn
from repro.graph import StaticGraph


@pytest.fixture
def setup(rng):
    n = 20
    g = nx.gnp_random_graph(n, 0.25, seed=77, directed=True)
    sg = StaticGraph.from_networkx(g)
    ctx = GraphContext(sg)
    A = nx.to_numpy_array(g).T.astype(np.float32)  # A[v,u] = 1 iff u->v
    return n, g, sg, ctx, A


def _numeric_grad(fwd_fn, feats, name, gout, eps=1e-2):
    arr = feats[name]
    num = np.zeros_like(arr, dtype=np.float64)
    flat = arr.reshape(-1)
    nf = num.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float((fwd_fn(feats) * gout).sum())
        flat[i] = orig - eps
        lo = float((fwd_fn(feats) * gout).sum())
        flat[i] = orig
        nf[i] = (hi - lo) / (2 * eps)
    return num


def check_program(prog, ctx, feats, dense_ref, gout, grad_names, edge_feats=None, atol=1e-4):
    out, saved = prog.forward(ctx, feats, edge_feats)
    assert np.allclose(out, dense_ref, atol=atol), np.abs(out - dense_ref).max()
    grads = prog.backward(ctx, gout, saved)

    def fwd_fn(f):
        o, _ = prog.forward(ctx, f, edge_feats)
        return o

    for name in grad_names:
        num = _numeric_grad(fwd_fn, feats, name, gout)
        assert np.allclose(grads[name], num, atol=5e-2), (
            name,
            np.abs(grads[name] - num).max(),
        )


def test_plain_sum(setup, rng):
    n, g, sg, ctx, A = setup
    prog = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h),
        feature_widths={"h": "v"}, grad_features={"h"}, name="k_sum",
    )
    h = rng.standard_normal((n, 3)).astype(np.float32)
    gout = rng.standard_normal((n, 3)).astype(np.float32)
    check_program(prog, ctx, {"h": h}, A @ h, gout, ["h"])


def test_gcn_with_self_loops(setup, rng):
    n, g, sg, ctx, A = setup
    prog = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm + v.h * v.norm * v.norm,
        feature_widths={"h": "v", "norm": "s"}, grad_features={"h"}, name="k_gcn_sl",
    )
    h = rng.standard_normal((n, 4)).astype(np.float32)
    norm = (1.0 / np.sqrt(ctx.in_deg + 1)).astype(np.float32)
    A_hat = A + np.eye(n, dtype=np.float32)
    ref = norm[:, None] * (A_hat @ (h * norm[:, None]))
    gout = rng.standard_normal((n, 4)).astype(np.float32)
    check_program(prog, ctx, {"h": h, "norm": norm}, ref, gout, ["h"])


def test_mean_aggregation(setup, rng):
    n, g, sg, ctx, A = setup
    prog = compile_vertex_program(
        lambda v: v.agg_mean(lambda nb: nb.h),
        feature_widths={"h": "v"}, grad_features={"h"}, name="k_mean",
    )
    h = rng.standard_normal((n, 3)).astype(np.float32)
    deg = np.maximum(A.sum(1), 1)[:, None]
    gout = rng.standard_normal((n, 3)).astype(np.float32)
    check_program(prog, ctx, {"h": h}, (A @ h) / deg, gout, ["h"])


def test_post_activation(setup, rng):
    n, g, sg, ctx, A = setup
    prog = compile_vertex_program(
        lambda v: vfn.tanh(v.agg_sum(lambda nb: nb.h)),
        feature_widths={"h": "v"}, grad_features={"h"}, name="k_tanh",
    )
    h = rng.standard_normal((n, 2)).astype(np.float32)
    gout = rng.standard_normal((n, 2)).astype(np.float32)
    check_program(prog, ctx, {"h": h}, np.tanh(A @ h), gout, ["h"])


def test_pre_activation_on_source(setup, rng):
    n, g, sg, ctx, A = setup
    prog = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: vfn.relu(nb.h)),
        feature_widths={"h": "v"}, grad_features={"h"}, name="k_prerelu",
    )
    h = rng.standard_normal((n, 3)).astype(np.float32)
    h += np.sign(h) * 0.05  # keep off the kink for the numeric check
    gout = rng.standard_normal((n, 3)).astype(np.float32)
    check_program(prog, ctx, {"h": h}, A @ np.maximum(h, 0), gout, ["h"])


def test_sum_of_terms(setup, rng):
    n, g, sg, ctx, A = setup
    prog = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.a * 2.0 + nb.b),
        feature_widths={"a": "v", "b": "v"}, grad_features={"a", "b"}, name="k_terms",
    )
    a = rng.standard_normal((n, 2)).astype(np.float32)
    b = rng.standard_normal((n, 2)).astype(np.float32)
    gout = rng.standard_normal((n, 2)).astype(np.float32)
    check_program(prog, ctx, {"a": a, "b": b}, A @ (2 * a) + A @ b, gout, ["a", "b"])


def test_edge_feature_weights(setup, rng):
    n, g, sg, ctx, A = setup
    prog = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h * nb.edge.w),
        feature_widths={"h": "v"}, grad_features={"h", "w"}, name="k_ew",
    )
    h = rng.standard_normal((n, 3)).astype(np.float32)
    w = rng.standard_normal(sg.num_edges).astype(np.float32)
    bwd = sg.backward_csr()
    ref = np.zeros((n, 3), dtype=np.float32)
    for u in range(n):
        for vv, l in zip(bwd.neighbors(u), bwd.edge_ids(u)):
            ref[vv] += h[u] * w[l]
    out, saved = prog.forward(ctx, {"h": h}, {"w": w})
    assert np.allclose(out, ref, atol=1e-4)
    gout = rng.standard_normal((n, 3)).astype(np.float32)
    grads = prog.backward(ctx, gout, saved)
    # numeric grads for one node-feature entry and one edge weight
    eps = 1e-2
    for (arr, g_arr, idx) in ((h, grads["h"], (2, 1)), (w, grads["w"], (0,))):
        p = arr.copy(); p[idx] += eps
        m = arr.copy(); m[idx] -= eps
        fp = {"h": p if arr is h else h}
        fm = {"h": m if arr is h else h}
        wp = {"w": p if arr is w else w}
        wm = {"w": m if arr is w else w}
        op_, _ = prog.forward(ctx, fp, wp)
        om_, _ = prog.forward(ctx, fm, wm)
        num = float(((op_ - om_) / (2 * eps) * gout).sum())
        assert abs(num - g_arr[idx]) < 5e-2


def test_gat_attention(setup, rng):
    n, g, sg, ctx, A = setup

    def gat(v):
        alpha = v.edge_softmax(lambda nb: vfn.tanh(nb.el + v.er))
        return v.agg_sum(lambda nb: nb.ft * alpha)

    prog = compile_vertex_program(
        gat, feature_widths={"el": "s", "er": "s", "ft": "v"},
        grad_features={"el", "er", "ft"}, name="k_gat",
    )
    el = rng.standard_normal(n).astype(np.float32)
    er = rng.standard_normal(n).astype(np.float32)
    ft = rng.standard_normal((n, 2)).astype(np.float32)
    ref = np.zeros((n, 2), dtype=np.float32)
    for v in range(n):
        preds = list(g.predecessors(v))
        if not preds:
            continue
        z = np.tanh(el[preds] + er[v])
        a = np.exp(z - z.max())
        a /= a.sum()
        ref[v] = (a[:, None] * ft[preds]).sum(0)
    gout = rng.standard_normal((n, 2)).astype(np.float32)
    check_program(prog, ctx, {"el": el, "er": er, "ft": ft}, ref, gout, ["el", "er", "ft"])


def test_max_aggregation_forward_backward(setup, rng):
    n, g, sg, ctx, A = setup
    prog = compile_vertex_program(
        lambda v: v.agg_max(lambda nb: nb.h),
        feature_widths={"h": "v"}, grad_features={"h"}, name="k_max",
    )
    h = rng.standard_normal((n, 3)).astype(np.float32)
    ref = np.zeros((n, 3), dtype=np.float32)
    for v in range(n):
        preds = list(g.predecessors(v))
        if preds:
            ref[v] = h[preds].max(0)
    gout = rng.standard_normal((n, 3)).astype(np.float32)
    check_program(prog, ctx, {"h": h}, ref, gout, ["h"])


def test_missing_feature_raises(setup):
    n, g, sg, ctx, A = setup
    prog = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h), feature_widths={"h": "v"}, name="k_missing"
    )
    with pytest.raises(KeyError, match="missing node feature"):
        prog.forward(ctx, {})


def test_missing_edge_feature_raises(setup):
    n, g, sg, ctx, A = setup
    prog = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h * nb.edge.w),
        feature_widths={"h": "v"}, name="k_missing_e",
    )
    with pytest.raises(KeyError, match="missing edge feature"):
        prog.forward(ctx, {"h": np.zeros((n, 2), dtype=np.float32)})
