"""profile_training reports."""

from __future__ import annotations

import pytest

from repro.bench import profile_training
from repro.dataset import load_hungary_chickenpox, load_sx_mathoverflow
from repro.tensor import init
from repro.train import (
    STGraphLinkPredictor,
    STGraphNodeRegressor,
    STGraphTrainer,
    make_link_prediction_samples,
)


def test_profile_static_training():
    ds = load_hungary_chickenpox(lags=4, scale=1.0, num_timestamps=10)

    def build():
        init.set_seed(0)
        return STGraphTrainer(STGraphNodeRegressor(4, 8), ds.build_graph(), lr=1e-2)

    report = profile_training(build, ds.features, ds.targets, epochs=2)
    assert report.epochs == 2
    assert report.total_seconds > 0
    assert report.gnn_seconds > 0
    assert report.graph_update_seconds == 0.0  # static graph
    assert report.kernel_launches > 0
    assert report.state_stack_peak_depth > 0
    assert report.graph_stack_peak_depth == 0
    text = report.render()
    assert "gnn kernels" in text and "peak memory" in text


def test_profile_gpma_training_shows_updates():
    ds = load_sx_mathoverflow(scale=0.01, feature_size=4, max_snapshots=5)
    samples = make_link_prediction_samples(ds.dtdg, 32, seed=0)

    def build():
        init.set_seed(0)
        return STGraphTrainer(
            STGraphLinkPredictor(4, 8), ds.build_gpma(), lr=1e-2,
            sequence_length=3, task="link_prediction", link_samples=samples,
        )

    report = profile_training(build, ds.features, epochs=2)
    assert report.graph_update_seconds > 0  # GPMA pays update time
    assert report.graph_stack_peak_depth > 0
    assert 0 <= report.other_seconds <= report.total_seconds
    # shares add to ~100%
    share = (
        report.compile_seconds + report.gnn_seconds + report.graph_update_seconds
        + report.preprocess_seconds + report.other_seconds
    )
    assert share == pytest.approx(report.total_seconds, rel=0.02)
