"""Temporal splits, early stopping, evaluation rollout."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import load_hungary_chickenpox
from repro.tensor import init, nn
from repro.train import (
    EarlyStopping,
    STGraphNodeRegressor,
    STGraphTrainer,
    evaluate_regression,
    temporal_train_test_split,
)


def test_split_is_chronological():
    feats = [np.full((2, 2), t, dtype=np.float32) for t in range(10)]
    targs = [np.full((2, 1), t, dtype=np.float32) for t in range(10)]
    tr_x, te_x, tr_y, te_y = temporal_train_test_split(feats, targs, train_ratio=0.7)
    assert len(tr_x) == 7 and len(te_x) == 3
    assert tr_x[-1][0, 0] == 6 and te_x[0][0, 0] == 7  # no shuffling
    assert tr_y[-1][0, 0] == 6


def test_split_without_targets():
    feats = [np.zeros((2, 2)) for _ in range(5)]
    tr, te = temporal_train_test_split(feats, train_ratio=0.6)
    assert len(tr) == 3 and len(te) == 2


def test_split_always_leaves_both_sides():
    feats = [np.zeros((1, 1)) for _ in range(3)]
    tr, te = temporal_train_test_split(feats, train_ratio=0.99)
    assert len(tr) >= 1 and len(te) >= 1


def test_split_bad_ratio():
    with pytest.raises(ValueError):
        temporal_train_test_split([np.zeros(1)], train_ratio=1.5)


def test_split_length_mismatch():
    with pytest.raises(ValueError):
        temporal_train_test_split([np.zeros(1)] * 3, [np.zeros(1)] * 2)


def test_early_stopping_triggers():
    es = EarlyStopping(patience=3)
    assert not es.step(1.0)
    assert not es.step(0.9)
    assert not es.step(0.95)
    assert not es.step(0.95)
    assert es.step(0.95)  # third epoch without improvement
    assert es.best_loss == pytest.approx(0.9)


def test_early_stopping_min_delta():
    es = EarlyStopping(patience=2, min_delta=0.1)
    es.step(1.0)
    assert not es.step(0.95)  # improvement below min_delta doesn't reset
    assert es.step(0.94)
    assert es.best_loss == pytest.approx(1.0)


def test_early_stopping_restores_best_weights():
    lin = nn.Linear(2, 2)
    es = EarlyStopping(patience=5)
    es.step(1.0, lin)
    best = lin.weight.data.copy()
    lin.weight.data[:] = 99.0
    es.step(2.0, lin)  # worse: best state unchanged
    es.restore_best(lin)
    assert np.allclose(lin.weight.data, best)


def test_early_stopping_restore_without_model_raises():
    es = EarlyStopping()
    es.step(1.0)
    with pytest.raises(RuntimeError):
        es.restore_best(nn.Linear(1, 1))


def test_evaluate_regression_rollout():
    ds = load_hungary_chickenpox(lags=4, scale=1.0, num_timestamps=20)
    tr_x, te_x, tr_y, te_y = temporal_train_test_split(ds.features, ds.targets, 0.75)
    init.set_seed(0)
    model = STGraphNodeRegressor(4, 8)
    trainer = STGraphTrainer(model, ds.build_graph(), lr=1e-2)
    trainer.train(tr_x, tr_y, epochs=10)
    metrics = evaluate_regression(model, trainer.executor, te_x, te_y, start_timestamp=len(tr_x))
    assert set(metrics) == {"mse", "rmse", "mae"}
    assert metrics["rmse"] == pytest.approx(np.sqrt(metrics["mse"]), rel=1e-6)
    assert all(np.isfinite(v) for v in metrics.values())
    # training should beat the trivial zero predictor on standardized data
    baseline_mse = float(np.mean([np.mean(y**2) for y in te_y]))
    assert metrics["mse"] < baseline_mse * 1.5
