"""Thread-safety of the structures the prefetch worker touches.

Pipelined execution puts a second thread inside the framework: the
PrefetchScheduler's worker builds snapshots while the training thread
computes.  These tests hammer the shared structures directly — the plan
cache's hit/miss counters, the tracer's per-thread span stacks, the
profiler's counters — and exercise the lifecycle edge that matters for
resilience: a simulated kill arriving mid-prefetch must drain the queue
and leave no dangling thread.
"""

from __future__ import annotations

import threading

import pytest

from repro.compiler.plan import PlanCache
from repro.core.executor import TemporalExecutor
from repro.dataset import load_sx_mathoverflow
from repro.device import Device, use_device
from repro.obs.tracer import Tracer, use_tracer
from repro.resilience import FaultPlan, FaultSite, SimulatedKill, use_fault_plan
from repro.tensor import init
from repro.train import STGraphLinkPredictor, STGraphTrainer, make_link_prediction_samples


def _prefetch_threads() -> list[threading.Thread]:
    return [t for t in threading.enumerate() if t.name.startswith("repro-prefetch")]


# ---------------------------------------------------------------------------
# PlanCache under contention
# ---------------------------------------------------------------------------
def test_plan_cache_exact_counters_under_thread_hammer():
    """N threads requesting the same plan: one build, exact hit/miss totals."""
    cache = PlanCache()
    n_threads, n_iters = 8, 25
    barrier = threading.Barrier(n_threads)
    errors: list[BaseException] = []

    def prog(v):
        return v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm

    def hammer():
        try:
            barrier.wait()
            for _ in range(n_iters):
                cache.get_or_build(
                    prog, feature_widths={"h": "v", "norm": "s"}, name="hammer"
                )
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    total = n_threads * n_iters
    # Identical requests share one structural key: exactly one miss (the
    # single build, done under the lock) and hits for everything else.
    assert cache.misses == 1
    assert cache.hits == total - 1
    assert len(cache) == 1


def test_plan_cache_distinct_keys_partition_counters():
    """Disjoint keys from concurrent threads: misses == unique keys, exact sums."""
    cache = PlanCache()
    n_threads, n_iters = 6, 10
    barrier = threading.Barrier(n_threads)

    def make_prog(n: int):
        # n extra multiplications → n structurally distinct trace signatures.
        def prog(v):
            out = v.agg_sum(lambda nb: nb.h)
            for _ in range(n + 1):
                out = out * v.norm
            return out
        return prog

    progs = [make_prog(i) for i in range(n_threads)]

    def hammer(i: int):
        barrier.wait()
        for _ in range(n_iters):
            cache.get_or_build(
                progs[i], feature_widths={"h": "v", "norm": "s"}, name=f"p{i}"
            )

    threads = [threading.Thread(target=hammer, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert cache.misses == n_threads
    assert cache.hits == n_threads * (n_iters - 1)
    assert cache.hits + cache.misses == n_threads * n_iters


# ---------------------------------------------------------------------------
# Tracer: per-thread span stacks
# ---------------------------------------------------------------------------
def test_worker_thread_spans_never_corrupt_main_stack():
    """Spans opened/closed on a worker interleave with an open main-thread
    span without touching the main thread's stack, and land on their own
    Chrome lane (tid 2)."""
    tracer = Tracer(name="threaded")
    device = Device(name="threaded")
    done = threading.Event()
    go = threading.Event()

    def worker():
        with use_device(device), use_tracer(tracer):
            go.wait()
            for i in range(50):
                with tracer.span("worker.op", "prefetch", i=i):
                    pass
        done.set()

    t = threading.Thread(target=worker)
    t.start()
    with use_device(device), use_tracer(tracer):
        with tracer.span("main.outer", "train"):
            assert tracer.open_span_count == 1
            go.set()
            done.wait()
            # The worker opened and closed 50 spans; this thread's stack
            # must still hold exactly its own open span.
            assert tracer.open_span_count == 1
    t.join()
    assert tracer.open_span_count == 0
    by_name = tracer.aggregate_by_name()
    assert by_name["worker.op"]["calls"] == 50
    assert by_name["main.outer"]["calls"] == 1
    tids = {e.tid for e in tracer.events if e.name == "worker.op"}
    assert tids == {2}
    assert {e.tid for e in tracer.events if e.name == "main.outer"} == {1}


def test_tracer_aggregates_exact_under_concurrent_spans():
    """Span-name call counts stay exact when many threads record at once."""
    tracer = Tracer(name="hammer", keep_events=False)
    device = Device(name="hammer")
    n_threads, n_spans = 8, 100
    barrier = threading.Barrier(n_threads)

    def worker():
        with use_device(device), use_tracer(tracer):
            barrier.wait()
            for _ in range(n_spans):
                with tracer.span("op", "cat"):
                    pass

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert tracer.aggregate_by_name()["op"]["calls"] == n_threads * n_spans


def test_profiler_counters_exact_under_concurrent_counts():
    """Profiler event counters accumulate exactly across threads."""
    device = Device(name="counters")
    n_threads, n_counts = 8, 200
    barrier = threading.Barrier(n_threads)

    def worker():
        barrier.wait()
        for _ in range(n_counts):
            device.profiler.count("hammered")

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert device.profiler.counter("hammered") == n_threads * n_counts


# ---------------------------------------------------------------------------
# Kill mid-prefetch: queue drained, no dangling thread
# ---------------------------------------------------------------------------
@pytest.fixture()
def dynamic_workload():
    ds = load_sx_mathoverflow(scale=0.02, feature_size=8, max_snapshots=8)
    samples = make_link_prediction_samples(ds.dtdg, samples_per_timestamp=32, seed=0)
    return ds, samples


def test_kill_mid_prefetch_drains_and_joins_worker(dynamic_workload):
    """A planned kill during a pipelined run unwinds the executor AND fully
    stops the prefetch worker: queue drained, thread joined, no leak."""
    ds, samples = dynamic_workload
    plan = FaultPlan(
        name="kill-pipelined",
        sites=[FaultSite(kind="kill", epoch=0, sequence=1, timestamp=4)],
    )
    with use_device(Device(name="kill-pipe")), use_fault_plan(plan):
        init.set_seed(0)
        model = STGraphLinkPredictor(ds.feature_size, 8)
        trainer = STGraphTrainer(
            model, ds.build_gpma(), lr=1e-2, sequence_length=3,
            task="link_prediction", link_samples=samples, pipeline=2,
        )
        with pytest.raises(SimulatedKill):
            trainer.train(ds.features, epochs=2)
        trainer.executor.check_drained()
    assert _prefetch_threads() == []
    prefetcher = trainer.executor.prefetcher
    if prefetcher is not None:
        assert not prefetcher.running
        assert prefetcher.stats()["prefetch_pending"] == 0
    # The graph is back in strictly-serial accounting mode.
    assert trainer.graph._prefetch_active is False


def test_abort_sequence_stops_worker_directly(dynamic_workload):
    """Executor-level abort (no trainer) also joins the worker."""
    ds, _ = dynamic_workload
    with use_device(Device(name="abort-pipe")):
        graph = ds.build_gpma()
        ex = TemporalExecutor(graph, pipeline=3)
        for t in range(3):
            ex.begin_timestamp(t)
        assert ex.prefetcher is not None and ex.prefetcher.running
        ex.abort_sequence()
        assert not ex.prefetcher.running
        assert ex.prefetcher.stats()["prefetch_pending"] == 0
        assert _prefetch_threads() == []
        # Pipelining resumes lazily after the abort.
        ex.reset()
        ex.begin_timestamp(0)
        assert ex.prefetcher.running
        ex.shutdown()
        assert ex.prefetcher is None
        assert _prefetch_threads() == []


def test_trainer_shutdown_never_leaks_worker(dynamic_workload):
    """A successful pipelined train() leaves no prefetch thread behind."""
    ds, samples = dynamic_workload
    with use_device(Device(name="clean-pipe")):
        init.set_seed(0)
        model = STGraphLinkPredictor(ds.feature_size, 8)
        trainer = STGraphTrainer(
            model, ds.build_gpma(), lr=1e-2, sequence_length=3,
            task="link_prediction", link_samples=samples, pipeline=2,
        )
        trainer.train(ds.features, epochs=1)
    assert _prefetch_threads() == []


# ---------------------------------------------------------------------------
# Builder failure while a snapshot is in flight: waiters must wake
# ---------------------------------------------------------------------------
class _GatedExplodingBuilder:
    """A builder that blocks on a gate, then raises — never stages anything."""

    def __init__(self, gate: threading.Event) -> None:
        self.gate = gate
        self.builds = 0

    def build(self, ts: int):
        self.gate.wait(timeout=10.0)
        raise RuntimeError(f"builder exploded at t={ts}")


class _FakeGraph:
    """The minimal graph surface a PrefetchScheduler drives."""

    def __init__(self, cache, builder) -> None:
        self._csr_cache = cache
        self._versions: dict[int, int] = {}
        self.dtdg = type("DTDG", (), {"num_timestamps": 4})()
        self._builder = builder
        self.prefetcher_attached = False

    def snapshot_builder(self):
        return self._builder

    def attach_prefetcher(self, flag: bool) -> None:
        self.prefetcher_attached = flag


def test_builder_exception_while_inflight_wakes_condvar_waiters():
    """Regression: a builder crash between ``mark_inflight`` and ``stage``
    must still wake every ``wait_not_inflight`` waiter (via the ``finally``
    ``clear_inflight``) and surface the error on ``worker_error`` — not
    strand the main thread until its timeout expires."""
    from repro.core.prefetch import PrefetchScheduler
    from repro.graph.snapshot_builder import SnapshotCache

    cache = SnapshotCache(capacity=4)
    gate = threading.Event()
    graph = _FakeGraph(cache, _GatedExplodingBuilder(gate))
    sched = PrefetchScheduler(graph, staleness=1)
    try:
        assert sched.schedule_ahead(0) == 1  # queues t=1
        deadline = 50
        while not cache.inflight(1) and deadline:  # worker inside build()
            threading.Event().wait(0.02)
            deadline -= 1
        assert cache.inflight(1), "worker never marked t=1 in flight"

        woke: list[bool] = []
        waiter = threading.Thread(
            target=lambda: woke.append(cache.wait_not_inflight(1, timeout=10.0))
        )
        waiter.start()
        gate.set()  # builder now raises inside the in-flight window
        waiter.join(timeout=5.0)
        assert not waiter.is_alive(), "waiter stranded after builder crash"
        assert woke == [True]
        assert not cache.inflight(1)
        assert isinstance(sched.worker_error, RuntimeError)
        assert cache.contains((1, 0)) is False  # nothing was staged
    finally:
        gate.set()
        sched.stop()
    assert _prefetch_threads() == []
    assert graph.prefetcher_attached is False
