"""Optimizer update rules checked against hand-computed steps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import functional as F, nn, optim
from repro.tensor.tensor import Tensor


def make_param(value):
    return nn.Parameter(np.array(value, dtype=np.float32))


def test_sgd_step():
    p = make_param([1.0, 2.0])
    p.grad = np.array([0.5, -1.0], dtype=np.float32)
    optim.SGD([p], lr=0.1).step()
    assert np.allclose(p.data, [0.95, 2.1])


def test_sgd_momentum():
    p = make_param([0.0])
    opt = optim.SGD([p], lr=1.0, momentum=0.9)
    p.grad = np.array([1.0], dtype=np.float32)
    opt.step()  # v=1, p=-1
    p.grad = np.array([1.0], dtype=np.float32)
    opt.step()  # v=1.9, p=-2.9
    assert np.allclose(p.data, [-2.9])


def test_sgd_weight_decay():
    p = make_param([1.0])
    p.grad = np.array([0.0], dtype=np.float32)
    optim.SGD([p], lr=0.1, weight_decay=0.5).step()
    assert np.allclose(p.data, [1.0 - 0.1 * 0.5])


def test_adam_first_step_magnitude():
    """Adam's bias correction makes the first step ≈ lr regardless of grad size."""
    for gval in (0.001, 1.0, 1000.0):
        p = make_param([0.0])
        opt = optim.Adam([p], lr=0.01)
        p.grad = np.array([gval], dtype=np.float32)
        opt.step()
        assert abs(p.data[0] + 0.01) < 1e-4, gval


def test_adam_converges_quadratic():
    p = make_param([5.0])
    opt = optim.Adam([p], lr=0.1)
    for _ in range(300):
        opt.zero_grad()
        loss = F.mul(p, p)
        F.sum(loss).backward()
        opt.step()
    assert abs(p.data[0]) < 0.05


def test_rmsprop_step_direction():
    p = make_param([1.0])
    opt = optim.RMSprop([p], lr=0.01)
    p.grad = np.array([2.0], dtype=np.float32)
    opt.step()
    assert p.data[0] < 1.0


def test_skip_none_grads():
    p1, p2 = make_param([1.0]), make_param([1.0])
    p1.grad = np.array([1.0], dtype=np.float32)
    optim.Adam([p1, p2], lr=0.1).step()
    assert p2.data[0] == 1.0 and p1.data[0] != 1.0


def test_zero_grad():
    p = make_param([1.0])
    p.grad = np.array([1.0], dtype=np.float32)
    opt = optim.SGD([p], lr=0.1)
    opt.zero_grad()
    assert p.grad is None


def test_empty_params_raises():
    with pytest.raises(ValueError):
        optim.SGD([], lr=0.1)


def test_bad_lr_raises():
    with pytest.raises(ValueError):
        optim.Adam([make_param([1.0])], lr=-1)


def test_clip_grad_norm():
    p1, p2 = make_param([0.0]), make_param([0.0])
    p1.grad = np.array([3.0], dtype=np.float32)
    p2.grad = np.array([4.0], dtype=np.float32)
    total = optim.clip_grad_norm([p1, p2], max_norm=1.0)
    assert total == pytest.approx(5.0)
    new_norm = np.sqrt(p1.grad[0] ** 2 + p2.grad[0] ** 2)
    assert new_norm == pytest.approx(1.0, abs=1e-5)


def test_clip_grad_norm_below_threshold_noop():
    p = make_param([0.0])
    p.grad = np.array([0.5], dtype=np.float32)
    optim.clip_grad_norm([p], max_norm=1.0)
    assert p.grad[0] == pytest.approx(0.5)


def test_linear_regression_convergence(rng):
    """Full loop: Linear + MSE + Adam recovers a planted linear map."""
    true_w = rng.standard_normal((3, 2)).astype(np.float32)
    x = rng.standard_normal((200, 3)).astype(np.float32)
    y = x @ true_w
    lin = nn.Linear(3, 2)
    opt = optim.Adam(lin.parameters(), lr=0.05)
    for _ in range(200):
        opt.zero_grad()
        loss = F.mse_loss(lin(Tensor(x)), y)
        loss.backward()
        opt.step()
    assert np.abs(lin.weight.data - true_w).max() < 0.05
    assert np.abs(lin.bias.data).max() < 0.05
