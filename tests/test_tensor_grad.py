"""Gradient checks for every differentiable op (central differences)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F, no_grad


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``fn`` at ``x``."""
    g = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gf = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gf[i] = (hi - lo) / (2 * eps)
    return g


def check_unary(op, x: np.ndarray, atol: float = 2e-2, **kwargs):
    t = Tensor(x.astype(np.float32), requires_grad=True)
    out = F.sum(op(t, **kwargs) if kwargs else op(t))
    out.backward()
    num = numeric_grad(lambda v: float(op(Tensor(v.astype(np.float32)), **kwargs).data.sum()), x.copy())
    assert t.grad is not None
    assert np.allclose(t.grad, num, atol=atol), f"{op}: {np.abs(t.grad - num).max()}"


@pytest.mark.parametrize(
    "op,domain",
    [
        (F.tanh, "any"),
        (F.sigmoid, "any"),
        (F.exp, "any"),
        (F.relu, "offzero"),
        (F.neg, "any"),
        (F.log, "pos"),
        (F.sqrt, "pos"),
    ],
)
def test_unary_grads(op, domain, rng):
    x = rng.standard_normal((3, 4))
    if domain == "pos":
        x = np.abs(x) + 0.5
    if domain == "offzero":
        x = x + np.sign(x) * 0.1  # keep away from the kink
    check_unary(op, x)


def test_leaky_relu_grad(rng):
    x = rng.standard_normal((3, 4))
    x = x + np.sign(x) * 0.1
    check_unary(lambda t: F.leaky_relu(t, 0.1), x)


def test_pow_grad(rng):
    x = np.abs(rng.standard_normal((3, 3))) + 0.5
    check_unary(lambda t: F.pow(t, 3.0), x)


@pytest.mark.parametrize("op", [F.add, F.sub, F.mul])
def test_binary_grads(op, rng):
    x = rng.standard_normal((3, 4))
    y = rng.standard_normal((3, 4))
    tx = Tensor(x.astype(np.float32), requires_grad=True)
    ty = Tensor(y.astype(np.float32), requires_grad=True)
    F.sum(op(tx, ty)).backward()
    nx = numeric_grad(lambda v: float(op(Tensor(v.astype(np.float32)), Tensor(y.astype(np.float32))).data.sum()), x.copy())
    ny = numeric_grad(lambda v: float(op(Tensor(x.astype(np.float32)), Tensor(v.astype(np.float32))).data.sum()), y.copy())
    assert np.allclose(tx.grad, nx, atol=1e-2)
    assert np.allclose(ty.grad, ny, atol=1e-2)


def test_div_grad(rng):
    x = rng.standard_normal((3, 4))
    y = np.abs(rng.standard_normal((3, 4))) + 1.0
    tx = Tensor(x.astype(np.float32), requires_grad=True)
    ty = Tensor(y.astype(np.float32), requires_grad=True)
    F.sum(F.div(tx, ty)).backward()
    assert np.allclose(tx.grad, 1.0 / y, atol=1e-3)
    assert np.allclose(ty.grad, -x / y**2, atol=1e-3)


def test_broadcast_grad_unbroadcasts(rng):
    """(4,5) * (5,) — the (5,) grad must be column-summed."""
    x = rng.standard_normal((4, 5)).astype(np.float32)
    r = rng.standard_normal(5).astype(np.float32)
    tx = Tensor(x, requires_grad=True)
    tr = Tensor(r, requires_grad=True)
    F.sum(F.mul(tx, tr)).backward()
    assert tr.grad.shape == (5,)
    assert np.allclose(tr.grad, x.sum(0), atol=1e-4)
    assert np.allclose(tx.grad, np.broadcast_to(r, x.shape), atol=1e-6)


def test_scalar_broadcast_grad(rng):
    x = rng.standard_normal((3, 3)).astype(np.float32)
    tx = Tensor(x, requires_grad=True)
    F.sum(F.mul(tx, 3.0)).backward()
    assert np.allclose(tx.grad, 3.0)


def test_matmul_grad(rng):
    x = rng.standard_normal((3, 4)).astype(np.float32)
    w = rng.standard_normal((4, 2)).astype(np.float32)
    g = rng.standard_normal((3, 2)).astype(np.float32)
    tx = Tensor(x, requires_grad=True)
    tw = Tensor(w, requires_grad=True)
    out = F.matmul(tx, tw)
    F.sum(F.mul(out, g)).backward()
    assert np.allclose(tx.grad, g @ w.T, atol=1e-5)
    assert np.allclose(tw.grad, x.T @ g, atol=1e-5)


def test_getitem_grad_accumulates_duplicates(rng):
    x = Tensor(rng.standard_normal((5, 2)).astype(np.float32), requires_grad=True)
    idx = np.array([1, 1, 3])
    F.sum(F.getitem(x, idx)).backward()
    expect = np.zeros((5, 2), dtype=np.float32)
    expect[1] = 2.0
    expect[3] = 1.0
    assert np.allclose(x.grad, expect)


def test_index_select_scatter_grads(rng):
    x = Tensor(rng.standard_normal((6, 3)).astype(np.float32), requires_grad=True)
    idx = np.array([0, 0, 4])
    tgt = np.array([2, 1, 1])
    out = F.scatter_add(F.index_select(x, idx), tgt, 3)
    F.sum(out).backward()
    expect = np.zeros((6, 3), dtype=np.float32)
    expect[0] = 2.0
    expect[4] = 1.0
    assert np.allclose(x.grad, expect)


def test_concat_grad_splits(rng):
    a = Tensor(rng.standard_normal((2, 3)).astype(np.float32), requires_grad=True)
    b = Tensor(rng.standard_normal((2, 3)).astype(np.float32), requires_grad=True)
    out = F.concat([a, b], axis=1)
    w = np.concatenate([np.ones((2, 3)), 2 * np.ones((2, 3))], axis=1).astype(np.float32)
    F.sum(F.mul(out, w)).backward()
    assert np.allclose(a.grad, 1.0)
    assert np.allclose(b.grad, 2.0)


def test_stack_grad(rng):
    a = Tensor(rng.standard_normal((2, 2)).astype(np.float32), requires_grad=True)
    b = Tensor(rng.standard_normal((2, 2)).astype(np.float32), requires_grad=True)
    F.sum(F.mul(F.stack([a, b]), 2.0)).backward()
    assert np.allclose(a.grad, 2.0) and np.allclose(b.grad, 2.0)


def test_softmax_grad(rng):
    x = rng.standard_normal((3, 4))
    w = rng.standard_normal((3, 4)).astype(np.float32)

    def f(v):
        return float((F.softmax(Tensor(v.astype(np.float32)), axis=1).data * w).sum())

    t = Tensor(x.astype(np.float32), requires_grad=True)
    F.sum(F.mul(F.softmax(t, axis=1), w)).backward()
    num = numeric_grad(f, x.copy())
    assert np.allclose(t.grad, num, atol=2e-2)


def test_mean_max_grads(rng):
    x = Tensor(rng.standard_normal((3, 4)).astype(np.float32), requires_grad=True)
    F.mean(x).backward()
    assert np.allclose(x.grad, 1.0 / 12)
    y = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]], dtype=np.float32), requires_grad=True)
    F.sum(F.max(y, axis=1)).backward()
    assert np.allclose(y.grad, [[0, 1], [1, 0]])


def test_grad_accumulates_across_backwards(rng):
    x = Tensor(rng.standard_normal((2, 2)).astype(np.float32), requires_grad=True)
    F.sum(F.mul(x, 1.0)).backward()
    F.sum(F.mul(x, 1.0)).backward()
    assert np.allclose(x.grad, 2.0)


def test_shared_subexpression_grad(rng):
    """y = x*x used twice in the graph: grads sum correctly."""
    x = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
    y = F.mul(x, x)
    z = F.add(y, y)
    z.backward()
    assert np.allclose(x.grad, 8.0)  # d(2x^2)/dx = 4x = 8


def test_no_grad_disables_tape():
    x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    with no_grad():
        y = F.mul(x, 2.0)
    assert y._ctx is None
    with pytest.raises(RuntimeError):
        y.backward(np.ones(3, dtype=np.float32))


def test_backward_nonscalar_needs_grad():
    x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
    y = F.mul(x, 2.0)
    with pytest.raises(RuntimeError, match="non-scalar"):
        y.backward()
    y.backward(np.ones((2, 2), dtype=np.float32))
    assert np.allclose(x.grad, 2.0)


def test_long_chain_no_recursion_error():
    """Backward over a 5000-op chain must not hit Python's recursion limit."""
    x = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
    y = x
    for _ in range(5000):
        y = F.add(y, 0.0)
    F.sum(y).backward()
    assert np.allclose(x.grad, 1.0)


def test_deep_bptt_chain(rng):
    """Multiplicative hidden-state chain (mini BPTT): grad = product rule."""
    h = Tensor(np.ones(1, dtype=np.float32), requires_grad=True)
    scale = Tensor(np.array([0.9], dtype=np.float32), requires_grad=True)
    state = h
    for _ in range(20):
        state = F.mul(state, scale)
    F.sum(state).backward()
    assert np.allclose(h.grad, 0.9**20, atol=1e-5)
    assert np.allclose(scale.grad, 20 * 0.9**19, atol=1e-4)
