"""Interpreter edge cases and VNode/TIR robustness."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.compiler import compile_vertex_program, interpret_program, trace_execution
from repro.compiler.runtime import GraphContext
from repro.compiler.tir import TOp, TProgram
from repro.graph import StaticGraph


@pytest.fixture
def ctx():
    g = nx.gnp_random_graph(8, 0.4, seed=1, directed=True)
    return GraphContext(StaticGraph.from_networkx(g))


def test_interpreter_missing_binding(ctx):
    prog = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h), feature_widths={"h": "v"}, name="ie1"
    )
    with pytest.raises(KeyError, match="missing binding"):
        interpret_program(prog.fwd_prog, ctx, {})


def test_interpreter_unknown_op(ctx):
    prog = TProgram("bad")
    prog.inputs["x"] = ("node", "x")
    prog.spaces["x"] = "node"
    prog.ops = [TOp("warp_shuffle", "t0", ("x",))]
    prog.outputs = ["t0"]
    with pytest.raises(ValueError, match="unknown op"):
        interpret_program(prog, ctx, {"x": np.zeros((8, 2), dtype=np.float32)})


def test_trace_execution_exposes_intermediates(ctx, rng):
    prog = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm,
        feature_widths={"h": "v", "norm": "s"}, name="ie2",
    )
    binds = {
        "n_h": rng.standard_normal((8, 2)).astype(np.float32),
        "n_norm": np.ones(8, dtype=np.float32),
    }
    env = trace_execution(prog.fwd_prog, ctx, binds)
    # every op output is present and inspectable
    for op in prog.fwd_prog.ops:
        assert op.out in env
    assert env[prog.fwd_prog.outputs[0]].shape == (8, 2)


def test_interpreter_handles_consts(ctx, rng):
    prog = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h * 3.0), feature_widths={"h": "v"}, name="ie3"
    )
    binds = {"n_h": rng.standard_normal((8, 2)).astype(np.float32)}
    out = interpret_program(prog.fwd_prog, ctx, binds)[0]
    plain = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h), feature_widths={"h": "v"}, name="ie4"
    )
    base = interpret_program(plain.fwd_prog, ctx, {"n_h": binds["n_h"]})[0]
    assert np.allclose(out, 3.0 * base, atol=1e-5)
