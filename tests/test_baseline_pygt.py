"""The PyG-T baseline: edge-parallel mechanics and parity with STGraph."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.baselines.pygt import (
    DynamicGraphTemporalSignal,
    MessagePassing,
    PyGGCNConv,
    PyGTTGCN,
    SnapshotStore,
    StaticGraphTemporalSignal,
)
from repro.baselines.pygt.gcn_conv import gcn_norm_coo
from repro.core import TemporalExecutor
from repro.graph import DTDG, StaticGraph
from repro.nn import GCNConv, TGCN
from repro.tensor import Tensor, functional as F, init


@pytest.fixture
def graph(rng):
    g = nx.gnp_random_graph(16, 0.3, seed=31, directed=True)
    edges = np.array(list(g.edges()), dtype=np.int64).T
    return g, edges


def test_message_passing_matches_dense(graph, rng):
    g, edges = graph
    n = 16
    mp = MessagePassing()
    x = Tensor(rng.standard_normal((n, 3)).astype(np.float32))
    out = mp.propagate(edges, x)
    A = nx.to_numpy_array(g).T.astype(np.float32)
    assert np.allclose(out.data, A @ x.data, atol=1e-5)


def test_message_passing_with_weights(graph, rng):
    g, edges = graph
    n = 16
    mp = MessagePassing()
    x = Tensor(rng.standard_normal((n, 3)).astype(np.float32))
    w = rng.standard_normal(edges.shape[1]).astype(np.float32)
    out = mp.propagate(edges, x, edge_weight=w)
    ref = np.zeros((n, 3), dtype=np.float32)
    for (s, d), wi in zip(edges.T, w):
        ref[d] += x.data[s] * wi
    assert np.allclose(out.data, ref, atol=1e-4)


def test_message_passing_bad_edge_index(rng):
    mp = MessagePassing()
    with pytest.raises(ValueError):
        mp.propagate(np.zeros((3, 5), dtype=np.int64), Tensor(np.zeros((4, 2), dtype=np.float32)))


def test_message_passing_materializes_exf(graph, rng, fresh_device):
    """The defining cost: an E×F gather retained until backward."""
    g, edges = graph
    E = edges.shape[1]
    Fdim = 8
    x = Tensor(rng.standard_normal((16, Fdim)).astype(np.float32), requires_grad=True)
    before = fresh_device.tracker.current_bytes
    out = MessagePassing().propagate(edges, x, edge_weight=np.ones(E, dtype=np.float32))
    grown = fresh_device.tracker.current_bytes - before
    assert grown >= E * Fdim * 4  # the duplicated message tensor is resident
    F.sum(out).backward()


def test_gcn_norm_coo_self_loops():
    edges = np.array([[0, 1], [1, 2]])
    ei, norm = gcn_norm_coo(edges, 3, add_self_loops=True)
    assert ei.shape[1] == 2 + 3
    assert norm.shape == (5,)
    assert np.all(norm > 0)


def test_pyg_gcn_matches_stgraph_gcn(graph, rng):
    """Same math, different execution: outputs and grads must coincide."""
    g, edges = graph
    n = 16
    init.set_seed(11)
    stg = GCNConv(5, 3)
    init.set_seed(11)
    pyg = PyGGCNConv(5, 3)
    assert np.array_equal(stg.weight.data, pyg.weight.data)

    x_np = rng.standard_normal((n, 5)).astype(np.float32)
    sg = StaticGraph(edges[0], edges[1], n)
    ex = TemporalExecutor(sg)
    ex.begin_timestamp(0)

    xs = Tensor(x_np, requires_grad=True)
    xp = Tensor(x_np.copy(), requires_grad=True)
    out_s = stg(ex, xs)
    out_p = pyg(xp, edges)
    assert np.allclose(out_s.data, out_p.data, atol=1e-4)

    gout = rng.standard_normal((n, 3)).astype(np.float32)
    F.sum(F.mul(out_s, gout)).backward()
    F.sum(F.mul(out_p, gout)).backward()
    assert np.allclose(xs.grad, xp.grad, atol=1e-4)
    assert np.allclose(stg.weight.grad, pyg.weight.grad, atol=1e-4)


def test_pyg_gcn_cached_mode(graph, rng):
    g, edges = graph
    conv = PyGGCNConv(4, 2, cached=True)
    x = Tensor(rng.standard_normal((16, 4)).astype(np.float32))
    o1 = conv(x, edges)
    o2 = conv(x, edges)
    assert np.allclose(o1.data, o2.data)
    assert conv._cache is not None


def test_pygt_tgcn_matches_stgraph_tgcn(graph, rng):
    g, edges = graph
    n = 16
    init.set_seed(5)
    m_stg = TGCN(4, 6)
    init.set_seed(5)
    m_pyg = PyGTTGCN(4, 6)
    sg = StaticGraph(edges[0], edges[1], n)
    ex = TemporalExecutor(sg)
    xs = [rng.standard_normal((n, 4)).astype(np.float32) for _ in range(4)]
    ys = [rng.standard_normal((n, 6)).astype(np.float32) for _ in range(4)]

    def run_stg():
        h, total = None, None
        for t, (x, y) in enumerate(zip(xs, ys)):
            ex.begin_timestamp(t)
            h = m_stg(ex, Tensor(x), h)
            l = F.mse_loss(h, y)
            total = l if total is None else F.add(total, l)
        total.backward()
        return total.item()

    def run_pyg():
        h, total = None, None
        for x, y in zip(xs, ys):
            h = m_pyg(Tensor(x), edges, h)
            l = F.mse_loss(h, y)
            total = l if total is None else F.add(total, l)
        total.backward()
        return total.item()

    l1, l2 = run_stg(), run_pyg()
    assert l1 == pytest.approx(l2, abs=1e-5)
    g1 = m_stg.conv_h.weight.grad
    g2 = m_pyg.conv_h.weight.grad
    assert np.allclose(g1, g2, atol=1e-4)


def test_snapshot_store(rng):
    snaps = [
        (np.array([0, 1]), np.array([1, 2])),
        (np.array([0, 2]), np.array([1, 0])),
    ]
    dtdg = DTDG(snaps, 3)
    store = SnapshotStore(dtdg)
    assert len(store) == 2
    assert store[0].num_edges == 2
    assert store.storage_bytes() == sum(s.nbytes() for s in store.snapshots)
    # snapshots resident simultaneously — the paper's memory critique
    assert store.storage_bytes() == 2 * 2 * 2 * 8


def test_static_signal_iteration(rng):
    ei = np.array([[0, 1], [1, 0]])
    feats = [rng.standard_normal((2, 3)).astype(np.float32) for _ in range(4)]
    targs = [rng.standard_normal((2, 1)).astype(np.float32) for _ in range(4)]
    sig = StaticGraphTemporalSignal(ei, feats, targs)
    assert len(sig) == 4
    snaps = list(sig)
    assert all(np.array_equal(s.edge_index, ei) for s in snaps)
    assert np.array_equal(snaps[2].x, feats[2])


def test_static_signal_length_mismatch():
    with pytest.raises(ValueError):
        StaticGraphTemporalSignal(np.zeros((2, 1)), [np.zeros((2, 2))], [])


def test_dynamic_signal_iteration(rng):
    eis = [np.array([[0], [1]]), np.array([[1], [0]])]
    feats = [rng.standard_normal((2, 2)).astype(np.float32) for _ in range(2)]
    sig = DynamicGraphTemporalSignal(eis, feats, [None, None])
    assert len(sig) == 2
    assert np.array_equal(sig[1].edge_index, eis[1])
