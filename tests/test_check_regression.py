"""Benchmark regression gate: robust detection, sustained-only flagging.

The acceptance criteria: ``check_regression.py`` must flag an injected 3×
slowdown in a synthetic nightly history (exit 1) while passing the real
baseline compared against itself (exit 0), and one noisy night must never
trip a ``--sustain 2`` gate.
"""

from __future__ import annotations

import copy
import importlib.util
import json
import pathlib
import sys

import pytest

_SCRIPT = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
sys.modules["check_regression"] = check_regression
_spec.loader.exec_module(check_regression)

_BASE = {
    "elapsed_s": 12.0,
    "rows": [
        {"system": "stgraph", "dataset": "wikitalk", "T": 10,
         "epoch_s": 1.00, "loss": 0.5, "csr_hits": 7},
        {"system": "pygt", "dataset": "wikitalk", "T": 10,
         "epoch_s": 2.00, "loss": 0.5},
    ],
    "micro": {"gpma_advance_s": 0.010, "spmm_s": 0.005, "launches": 42},
    "pipeline_ablation": [
        {"pipeline": "off", "epoch_s": 1.2, "prefetch_wait_s": 0.30, "prefetch_hits": 3},
    ],
    "compiled_ablation": [
        {"engine": "compiled", "epoch_s": 0.80, "compile_s": 0.20, "backend": "numba"},
    ],
    "serving_ablation": [
        {"mode": "batched+inval", "p50_ms": 0.25, "p99_ms": 2.5, "qps": 4000,
         "forwards": 7, "row_cache_hits": 300, "updates": 6},
        {"mode": "unbatched", "p50_ms": 1.50, "p99_ms": 9.0, "qps": 600,
         "forwards": 384, "row_cache_hits": 0, "updates": 6},
    ],
}


def _payload(scale: float = 1.0) -> dict:
    p = copy.deepcopy(_BASE)
    for row in p["rows"]:
        row["epoch_s"] *= scale
    p["micro"]["gpma_advance_s"] *= scale
    return p


def _write(tmp_path, name: str, payload: dict) -> str:
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


@pytest.fixture
def history(tmp_path):
    """Three quiet nights with realistic jitter."""
    return [_write(tmp_path, f"n{i}.json", _payload(s))
            for i, s in enumerate((1.00, 1.03, 0.97))]


def test_extract_metrics_covers_all_timing_sections():
    metrics = check_regression.extract_metrics(_BASE)
    assert any(k.startswith("rows[") and "system=stgraph" in k for k in metrics)
    assert metrics["micro.gpma_advance_s"] == 0.010
    assert metrics["pipeline_ablation[pipeline=off].prefetch_wait_s"] == 0.30
    assert metrics["compiled_ablation[engine=compiled].compile_s"] == 0.20
    assert metrics["serving_ablation[mode=batched+inval].p50_ms"] == 0.25
    assert metrics["serving_ablation[mode=unbatched].p99_ms"] == 9.0
    # Counters/losses are excluded; only numbers survive.
    assert "rows[T=10,dataset=wikitalk,system=stgraph].loss" not in metrics
    assert all(isinstance(v, float) for v in metrics.values())


def test_three_x_slowdown_is_flagged(tmp_path, history):
    slow = _write(tmp_path, "slow.json", _payload(3.0))
    rc = check_regression.main([*history, slow, "--sustain", "1"])
    assert rc == 1


def test_baseline_against_itself_passes(tmp_path, history):
    again = _write(tmp_path, "again.json", _payload(1.0))
    assert check_regression.main([*history, again, "--sustain", "1"]) == 0


def test_single_spike_not_sustained(tmp_path, history):
    spike = _write(tmp_path, "spike.json", _payload(3.0))
    recovered = _write(tmp_path, "rec.json", _payload(1.01))
    assert check_regression.main([*history, spike, recovered, "--sustain", "2"]) == 0


def test_two_slow_nights_are_sustained(tmp_path, history):
    slow1 = _write(tmp_path, "s1.json", _payload(3.0))
    slow2 = _write(tmp_path, "s2.json", _payload(2.8))
    assert check_regression.main([*history, slow1, slow2, "--sustain", "2"]) == 1


def test_single_payload_passes_with_note(tmp_path, capsys):
    only = _write(tmp_path, "only.json", _payload())
    assert check_regression.main([only]) == 0
    assert "nothing to compare" in capsys.readouterr().out


def test_new_metric_without_history_is_skipped(tmp_path, history):
    curr = _payload()
    curr["micro"]["brand_new_s"] = 99.0
    path = _write(tmp_path, "new.json", curr)
    assert check_regression.main([*history, path, "--sustain", "1"]) == 0


def test_check_rejects_bad_sustain():
    with pytest.raises(ValueError):
        check_regression.check([{"a": 1.0}, {"a": 1.0}], sustain=0)


def test_committed_baseline_passes_against_itself():
    baseline = _SCRIPT.parent / "BENCH_baseline.json"
    if not baseline.exists():
        pytest.skip("no committed baseline yet")
    assert check_regression.main([str(baseline), str(baseline), "--sustain", "1"]) == 0
