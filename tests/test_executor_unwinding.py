"""Exception-safe unwinding: a failure in any phase of Algorithm 1's
sequence loop must drain the State/Graph Stacks (via ``abort_sequence``)
so the executor is immediately reusable for the next epoch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import load_sx_mathoverflow
from repro.resilience import FaultPlan, FaultSite, SimulatedKill, use_fault_plan
from repro.tensor import init
from repro.tensor.tensor import Tensor
from repro.train import STGraphLinkPredictor, STGraphTrainer, make_link_prediction_samples


def _make_trainer(seed: int = 0):
    ds = load_sx_mathoverflow(scale=0.02, feature_size=8, max_snapshots=6)
    samples = make_link_prediction_samples(ds.dtdg, samples_per_timestamp=32, seed=seed)
    init.set_seed(seed)
    model = STGraphLinkPredictor(ds.feature_size, 8)
    trainer = STGraphTrainer(
        model, ds.build_gpma(), lr=1e-2, sequence_length=3,
        task="link_prediction", link_samples=samples,
    )
    return ds, trainer


def _assert_clean(trainer, fresh_device, aborts: int = 1) -> None:
    trainer.executor.check_drained()  # stacks drained by abort_sequence
    with pytest.raises(RuntimeError):
        trainer.executor.current_context()  # context cleared by reset
    stats = trainer.executor.stats()
    assert stats["sequence_aborts"] == aborts
    assert fresh_device.profiler.counter("sequence_aborts") == aborts


def _assert_recovers(ds, trainer) -> None:
    loss = trainer.train_epoch(ds.features)
    assert np.isfinite(loss)
    trainer.executor.check_drained()


def test_graph_update_failure_unwinds(fresh_device):
    ds, trainer = _make_trainer()
    calls = {"n": 0}
    orig = trainer.graph.get_graph

    def flaky(t):
        calls["n"] += 1
        if calls["n"] == 4:  # fail mid-sequence, not on the first snapshot
            raise RuntimeError("injected graph_update failure")
        return orig(t)

    trainer.graph.get_graph = flaky
    with pytest.raises(RuntimeError, match="graph_update"):
        trainer.train_epoch(ds.features)
    _assert_clean(trainer, fresh_device)
    trainer.graph.get_graph = orig
    _assert_recovers(ds, trainer)


def test_forward_oom_unwinds(fresh_device):
    ds, trainer = _make_trainer()
    plan = FaultPlan(name="oom", sites=[FaultSite(kind="oom", epoch=0, sequence=1, timestamp=4)])
    with use_fault_plan(plan), pytest.raises(MemoryError):
        trainer.train_epoch(ds.features)
    _assert_clean(trainer, fresh_device)
    _assert_recovers(ds, trainer)


def test_backward_failure_unwinds(fresh_device, monkeypatch):
    ds, trainer = _make_trainer()

    def boom(self, *args, **kwargs):
        raise RuntimeError("injected backward failure")

    monkeypatch.setattr(Tensor, "backward", boom)
    with pytest.raises(RuntimeError, match="backward"):
        trainer.train_epoch(ds.features)
    monkeypatch.undo()
    _assert_clean(trainer, fresh_device)
    _assert_recovers(ds, trainer)


def test_optimizer_failure_unwinds(fresh_device):
    ds, trainer = _make_trainer()
    orig = trainer.optimizer.step

    def boom():
        raise RuntimeError("injected optimizer failure")

    trainer.optimizer.step = boom
    with pytest.raises(RuntimeError, match="optimizer"):
        trainer.train_epoch(ds.features)
    # Backward already drained the stacks; abort after the optimizer phase
    # must still be safe (it resets an already-clean executor).
    _assert_clean(trainer, fresh_device)
    trainer.optimizer.step = orig
    _assert_recovers(ds, trainer)


def test_kill_escapes_except_exception_but_still_unwinds(fresh_device):
    ds, trainer = _make_trainer()
    plan = FaultPlan(name="kill", sites=[FaultSite(kind="kill", epoch=0, sequence=0, timestamp=1)])
    with use_fault_plan(plan):
        try:
            trainer.train_epoch(ds.features)
            pytest.fail("planned kill never fired")
        except Exception:  # noqa: BLE001 - the point: kill is NOT an Exception
            pytest.fail("SimulatedKill must escape `except Exception`")
        except SimulatedKill:
            pass
    _assert_clean(trainer, fresh_device)
    _assert_recovers(ds, trainer)


def test_cache_stats_stay_consistent_after_abort(fresh_device):
    """The reuse counters partition positionings even across an abort."""
    ds, trainer = _make_trainer()
    plan = FaultPlan(name="oom", sites=[FaultSite(kind="oom", epoch=0, sequence=1, timestamp=5)])
    with use_fault_plan(plan), pytest.raises(MemoryError):
        trainer.train_epoch(ds.features)
    _assert_recovers(ds, trainer)
    p = fresh_device.profiler
    served = p.counter("ctx_cache_hits") + p.counter("csr_cache_hits")
    rebuilt = p.counter("csr_cache_misses")
    # Every CSR-level event maps to a real positioning; an aborted sequence
    # must not leave phantom hits or misses behind.
    assert served + rebuilt > 0
    assert trainer.graph.csr_cache_hits + trainer.graph.csr_cache_misses <= served + rebuilt
