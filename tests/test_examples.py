"""Smoke-run every example script end-to-end (subprocess)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # deliverable: at least three runnable examples


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{script.name} failed:\n{proc.stdout}\n{proc.stderr}"
    assert proc.stdout.strip(), f"{script.name} produced no output"
