"""CSE / DCE / saved-tensor analysis + codegen modes + kernel cache."""

from __future__ import annotations

import numpy as np
import networkx as nx
import pytest

from repro.compiler import compile_vertex_program
from repro.compiler.lower import lower_trace
from repro.compiler.passes import cse, dce, saved_analysis
from repro.compiler.runtime import GraphContext
from repro.compiler.symbols import trace
from repro.compiler.tir import TOp, TProgram
from repro.device import current_device
from repro.graph import StaticGraph


@pytest.fixture
def ctx(rng):
    g = nx.gnp_random_graph(15, 0.3, seed=5, directed=True)
    return GraphContext(StaticGraph.from_networkx(g))


def test_cse_merges_identical_ops():
    prog = TProgram("p")
    prog.inputs["x"] = ("node", "x")
    prog.spaces["x"] = "node"
    prog.ops = [
        TOp("ew", "a", ("x",), {"op": "neg"}),
        TOp("ew", "b", ("x",), {"op": "neg"}),  # duplicate
        TOp("ew", "c", ("a", "b"), {"op": "add"}),
    ]
    prog.outputs = ["c"]
    removed = cse(prog)
    assert removed == 1
    assert prog.ops[-1].ins == ("a", "a")


def test_cse_respects_attrs():
    prog = TProgram("p")
    prog.inputs["x"] = ("node", "x")
    prog.spaces["x"] = "node"
    prog.ops = [
        TOp("ew", "a", ("x",), {"op": "neg"}),
        TOp("ew", "b", ("x",), {"op": "relu"}),
    ]
    prog.outputs = ["b"]
    assert cse(prog) == 0


def test_dce_removes_unreachable():
    prog = TProgram("p")
    prog.inputs["x"] = ("node", "x")
    prog.inputs["y"] = ("node", "y")
    prog.spaces.update({"x": "node", "y": "node"})
    prog.ops = [
        TOp("ew", "used", ("x",), {"op": "neg"}),
        TOp("ew", "dead", ("y",), {"op": "neg"}),
    ]
    prog.outputs = ["used"]
    assert dce(prog) == 1
    assert "y" not in prog.inputs


def test_gcn_shared_norm_is_cse_candidate():
    """v.norm * v.norm in the self-loop term computes norm² once."""
    traced = trace(
        lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm + v.h * v.norm * v.norm
    )
    prog, _ = lower_trace(traced, {"h": "v", "norm": "s"}, name="g")
    before = len(prog.ops)
    cse(prog)
    dce(prog)
    prog.validate()
    assert len(prog.ops) <= before


def test_saved_analysis_prunes_when_grads_restricted():
    """The State Stack optimization: wrt={h} saves only norm; wrt=all saves more."""
    fn = lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm  # noqa: E731
    slim = compile_vertex_program(
        fn, feature_widths={"h": "v", "norm": "s"}, grad_features={"h"}, name="slim"
    )
    fat = compile_vertex_program(
        fn, feature_widths={"h": "v", "norm": "s"}, name="fat"
    )
    assert set(slim.saved_spec) == {"n_norm"}
    assert len(fat.saved_spec) > len(slim.saved_spec)
    analysis = saved_analysis(slim.fwd_prog, slim.bwd_prog)
    assert "n_h" in analysis.pruned  # h itself is never retained
    assert "state stack keeps" in analysis.summary()


def test_state_stack_opt_off_saves_everything():
    fn = lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm  # noqa: E731
    off = compile_vertex_program(
        fn, feature_widths={"h": "v", "norm": "s"}, grad_features={"h"},
        name="off", state_stack_opt=False,
    )
    assert set(off.saved_spec) == set(off.analysis.all_forward_buffers)


def test_kernel_cache_reuses_compiled_kernels():
    from repro.compiler import plan_cache

    launcher = current_device().launcher
    fn = lambda v: v.agg_sum(lambda nb: nb.h)  # noqa: E731
    p1 = compile_vertex_program(fn, feature_widths={"h": "v"}, name="c1")
    hits, compiles = plan_cache().hits, launcher.compile_count
    p2 = compile_vertex_program(fn, feature_widths={"h": "v"}, name="c2")
    assert plan_cache().hits == hits + 1  # plan-cache hit
    assert launcher.compile_count == compiles  # nothing new compiled
    assert p1.plan is p2.plan
    assert p1.fwd_kernel is p2.fwd_kernel


def test_kernel_cache_distinguishes_options():
    fn = lambda v: v.agg_sum(lambda nb: nb.h)  # noqa: E731
    p1 = compile_vertex_program(fn, feature_widths={"h": "v"}, name="a")
    p2 = compile_vertex_program(fn, feature_widths={"h": "v"}, name="b", state_stack_opt=False)
    assert p1.plan_id != p2.plan_id  # different plan key …
    assert p1.fwd_kernel is not p2.fwd_kernel  # … and a different saved set/kernel


def test_generated_source_is_inspectable():
    p = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm,
        feature_widths={"h": "v", "norm": "s"}, grad_features={"h"}, name="srcchk",
    )
    # Entry points are content-addressed (plan id), so cached source is
    # deterministic no matter which layer compiled the plan first.
    assert f"def {p.plan_id}_fwd(ctx, env):" in p.forward_source
    assert "spmm(ctx, None," in p.forward_source
    assert "spmm_T(ctx, None," in p.backward_source
    assert "return" in p.backward_source


def test_unfused_equals_fused(ctx, rng):
    fn = lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm  # noqa: E731
    widths = {"h": "v", "norm": "s"}
    fused = compile_vertex_program(fn, widths, {"h"}, name="fu", fused=True)
    unfused = compile_vertex_program(fn, widths, {"h"}, name="un", fused=False)
    h = rng.standard_normal((ctx.num_nodes, 3)).astype(np.float32)
    norm = (1 / np.sqrt(np.maximum(ctx.in_deg, 1))).astype(np.float32)
    o1, s1 = fused.forward(ctx, {"h": h, "norm": norm})
    o2, s2 = unfused.forward(ctx, {"h": h, "norm": norm})
    assert np.allclose(o1, o2)
    gout = rng.standard_normal(o1.shape).astype(np.float32)
    g1 = fused.backward(ctx, gout, s1)
    g2 = unfused.backward(ctx, gout, s2)
    assert np.allclose(g1["h"], g2["h"])


def test_unfused_launches_more_kernels(ctx, rng):
    launcher = current_device().launcher
    fn = lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm  # noqa: E731
    widths = {"h": "v", "norm": "s"}
    fused = compile_vertex_program(fn, widths, {"h"}, name="fl", fused=True)
    unfused = compile_vertex_program(fn, widths, {"h"}, name="ul", fused=False)
    h = rng.standard_normal((ctx.num_nodes, 3)).astype(np.float32)
    norm = np.ones(ctx.num_nodes, dtype=np.float32)
    before = launcher.launch_count
    fused.forward(ctx, {"h": h, "norm": norm})
    fused_launches = launcher.launch_count - before
    before = launcher.launch_count
    unfused.forward(ctx, {"h": h, "norm": norm})
    unfused_launches = launcher.launch_count - before
    assert fused_launches == 1
    assert unfused_launches > 1


def test_grad_features_unknown_rejected():
    from repro.compiler.lower import CompileError

    with pytest.raises(CompileError, match="not read"):
        compile_vertex_program(
            lambda v: v.agg_sum(lambda nb: nb.h),
            feature_widths={"h": "v"}, grad_features={"ghost"}, name="bad",
        )


def test_required_features_reported():
    p = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h * nb.edge.w) * v.norm,
        feature_widths={"h": "v", "norm": "s"}, name="req",
    )
    node, edge = p.required_features()
    assert node == {"h", "norm"} and edge == {"w"}


def test_describe_is_complete():
    p = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h), feature_widths={"h": "v"}, name="desc"
    )
    text = p.describe()
    assert "vertex IR" in text and "forward" in text and "backward" in text and "state stack" in text
