"""Backend interface + factory (paper §VI-1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backend import (
    BackendInterface,
    available_backends,
    get_backend,
    register_backend,
)
from repro.tensor import Tensor, functional as F


def test_repro_backend_registered():
    assert "repro" in available_backends()


def test_get_backend_singleton():
    assert get_backend("repro") is get_backend("repro")


def test_unknown_backend_raises():
    with pytest.raises(KeyError, match="unknown backend"):
        get_backend("tensorflow")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError):
        register_backend("repro", lambda: None)


def test_tensor_bridge(rng):
    be = get_backend("repro")
    arr = rng.standard_normal((3, 3)).astype(np.float32)
    t = be.from_array(arr, requires_grad=True)
    assert be.is_tensor(t)
    assert not be.is_tensor(arr)
    assert np.array_equal(be.to_array(t), arr)


def test_attach_tape_node_backward_called(rng):
    be = get_backend("repro")
    x = Tensor(rng.standard_normal((2, 2)).astype(np.float32), requires_grad=True)
    calls = []

    def backward_cb(grad):
        calls.append(grad)
        return (grad * 3.0,)

    out = be.attach_tape_node(x.data * 2.0, (x,), backward_cb)
    F.sum(out).backward()
    assert len(calls) == 1
    assert np.allclose(x.grad, 3.0)


def test_parameters_of_module():
    from repro.tensor import nn

    be = get_backend("repro")
    lin = nn.Linear(2, 3)
    params = list(be.parameters_of(lin))
    assert len(params) == 2


def test_custom_backend_registration():
    class Dummy(BackendInterface):
        name = "dummy-test"

        def is_tensor(self, value):
            return False

        def to_array(self, tensor):
            return tensor

        def from_array(self, array, requires_grad=False):
            return array

        def attach_tape_node(self, output_array, inputs, backward_cb):
            return output_array

        def parameters_of(self, module):
            return []

    register_backend("dummy-test", Dummy)
    assert isinstance(get_backend("dummy-test"), Dummy)
