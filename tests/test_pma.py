"""Packed Memory Array unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pma import PackedMemoryArray, SPACE_KEY
from repro.pma.segment import (
    MIN_CAPACITY,
    DensityBounds,
    segment_size_for_capacity,
    window_bounds,
)


# ---------------------------------------------------------------------------
# Geometry / thresholds
# ---------------------------------------------------------------------------
def test_segment_size_power_of_two():
    for cap in (64, 256, 1024, 1 << 20):
        s = segment_size_for_capacity(cap)
        assert s >= 8 and (s & (s - 1)) == 0
        assert cap % s == 0


def test_segment_size_grows_with_capacity():
    assert segment_size_for_capacity(1 << 22) >= segment_size_for_capacity(64)


def test_segment_size_rejects_tiny():
    with pytest.raises(ValueError):
        segment_size_for_capacity(16)


def test_density_bounds_monotone():
    b = DensityBounds(num_segments=16)
    uppers = [b.upper(d) for d in range(b.height + 1)]
    lowers = [b.lower(d) for d in range(b.height + 1)]
    assert all(x >= y for x, y in zip(uppers, uppers[1:]))  # decreasing to root
    assert all(x <= y for x, y in zip(lowers, lowers[1:]))  # increasing to root
    assert uppers[0] == pytest.approx(0.92)
    assert uppers[-1] == pytest.approx(0.70)
    assert all(lo < up for lo, up in zip(lowers, uppers))


def test_window_bounds_aligned():
    assert window_bounds(5, 1, 8) == (4, 6)
    assert window_bounds(5, 2, 8) == (4, 8)
    assert window_bounds(5, 3, 8) == (0, 8)
    assert window_bounds(0, 1, 8) == (0, 2)


# ---------------------------------------------------------------------------
# Basic operations
# ---------------------------------------------------------------------------
def test_empty_pma():
    pma = PackedMemoryArray()
    assert len(pma) == 0
    assert pma.get(5) is None
    assert not pma.contains(5)
    pma.check_invariants()


def test_insert_and_get():
    pma = PackedMemoryArray()
    pma.insert_batch(np.array([10, 5, 30]), np.array([100, 50, 300]))
    assert len(pma) == 3
    assert pma.get(5) == 50
    assert pma.get(10) == 100
    assert pma.get(30) == 300
    assert pma.get(7) is None
    pma.check_invariants()


def test_insert_sorted_export():
    pma = PackedMemoryArray()
    keys = np.array([9, 1, 7, 3, 5])
    pma.insert_batch(keys, keys * 10)
    ek, ev = pma.export_items()
    assert ek.tolist() == [1, 3, 5, 7, 9]
    assert ev.tolist() == [10, 30, 50, 70, 90]


def test_upsert_overwrites_value():
    pma = PackedMemoryArray()
    pma.insert_batch(np.array([1, 2]), np.array([10, 20]))
    added = pma.insert_batch(np.array([2, 3]), np.array([99, 30]))
    assert added == 1  # only key 3 is new
    assert pma.get(2) == 99
    assert len(pma) == 3


def test_intra_batch_duplicates_last_wins():
    pma = PackedMemoryArray()
    pma.insert_batch(np.array([4, 4, 4]), np.array([1, 2, 3]))
    assert len(pma) == 1
    assert pma.get(4) == 3


def test_space_key_rejected():
    pma = PackedMemoryArray()
    with pytest.raises(ValueError, match="SPACE"):
        pma.insert_batch(np.array([-1]), np.array([0]))


def test_mismatched_lengths_rejected():
    pma = PackedMemoryArray()
    with pytest.raises(ValueError):
        pma.insert_batch(np.array([1, 2]), np.array([1]))


def test_empty_batch_noop():
    pma = PackedMemoryArray()
    assert pma.insert_batch(np.array([], dtype=np.int64), np.array([], dtype=np.int64)) == 0
    assert pma.delete_batch(np.array([], dtype=np.int64)) == 0


def test_delete_existing_and_missing():
    pma = PackedMemoryArray()
    pma.insert_batch(np.arange(10), np.arange(10))
    removed = pma.delete_batch(np.array([3, 4, 100]))
    assert removed == 2
    assert len(pma) == 8
    assert pma.get(3) is None
    pma.check_invariants()


def test_delete_everything():
    pma = PackedMemoryArray()
    pma.insert_batch(np.arange(50), np.arange(50))
    pma.delete_batch(np.arange(50))
    assert len(pma) == 0
    pma.check_invariants()
    assert pma.export_items()[0].size == 0


def test_contains_batch(rng):
    pma = PackedMemoryArray()
    keys = np.array([2, 4, 6, 8])
    pma.insert_batch(keys, keys)
    res = pma.contains_batch(np.array([1, 2, 3, 4, 9]))
    assert res.tolist() == [False, True, False, True, False]


def test_contains_batch_empty_pma():
    pma = PackedMemoryArray()
    assert not pma.contains_batch(np.array([1, 2])).any()


# ---------------------------------------------------------------------------
# Growth / shrink / gaps
# ---------------------------------------------------------------------------
def test_capacity_grows_under_load():
    pma = PackedMemoryArray(capacity=64)
    pma.insert_batch(np.arange(1000), np.arange(1000))
    assert pma.capacity > 64
    assert pma.density <= 0.71
    pma.check_invariants()


def test_capacity_shrinks_after_drain():
    pma = PackedMemoryArray()
    pma.insert_batch(np.arange(5000), np.arange(5000))
    big = pma.capacity
    pma.delete_batch(np.arange(4990))
    assert pma.capacity < big
    assert len(pma) == 10
    pma.check_invariants()


def test_capacity_never_below_minimum():
    pma = PackedMemoryArray()
    pma.insert_batch(np.arange(5), np.arange(5))
    pma.delete_batch(np.arange(5))
    assert pma.capacity >= MIN_CAPACITY


def test_gapped_arrays_have_spaces():
    pma = PackedMemoryArray()
    pma.insert_batch(np.arange(20), np.arange(20))
    keys, values = pma.gapped_arrays()
    assert (keys == SPACE_KEY).sum() > 0  # the defining PMA property
    valid = keys != SPACE_KEY
    assert np.array_equal(keys[valid], np.arange(20))


def test_monotone_ascending_inserts():
    pma = PackedMemoryArray()
    for chunk in np.array_split(np.arange(2000), 40):
        pma.insert_batch(chunk, chunk)
        pma.check_invariants()
    assert len(pma) == 2000


def test_monotone_descending_inserts():
    pma = PackedMemoryArray()
    for chunk in np.array_split(np.arange(2000)[::-1].copy(), 40):
        pma.insert_batch(chunk, chunk)
        pma.check_invariants()
    ek, _ = pma.export_items()
    assert np.array_equal(ek, np.arange(2000))


def test_interleaved_inserts_land_between():
    pma = PackedMemoryArray()
    pma.insert_batch(np.arange(0, 100, 2), np.arange(0, 100, 2))
    pma.insert_batch(np.arange(1, 100, 2), np.arange(1, 100, 2))
    ek, _ = pma.export_items()
    assert np.array_equal(ek, np.arange(100))
    pma.check_invariants()


def test_segment_counts_sum_to_items():
    pma = PackedMemoryArray()
    pma.insert_batch(np.arange(777), np.arange(777))
    assert int(pma.segment_counts().sum()) == 777


def test_reinsert_after_delete():
    pma = PackedMemoryArray()
    pma.insert_batch(np.arange(100), np.arange(100))
    pma.delete_batch(np.arange(0, 100, 2))
    pma.insert_batch(np.arange(0, 100, 2), np.full(50, 777))
    assert len(pma) == 100
    assert pma.get(4) == 777
    assert pma.get(5) == 5
    pma.check_invariants()


def test_pma_memory_is_tracked(fresh_device):
    before = fresh_device.tracker.current_bytes
    pma = PackedMemoryArray(capacity=1024)
    assert fresh_device.tracker.current_bytes > before
    tags = fresh_device.tracker.live_by_tag()
    assert any(t.startswith("pma.") for t in tags)
    del pma
