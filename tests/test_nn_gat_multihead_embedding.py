"""Multi-head GAT and the Embedding module."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core import TemporalExecutor
from repro.graph import StaticGraph
from repro.nn import GATConv
from repro.tensor import Tensor, functional as F, init, nn, optim


@pytest.fixture
def setup(rng):
    g = nx.gnp_random_graph(14, 0.3, seed=8, directed=True)
    sg = StaticGraph.from_networkx(g)
    ex = TemporalExecutor(sg)
    ex.begin_timestamp(0)
    x = rng.standard_normal((14, 5)).astype(np.float32)
    return sg, ex, x


def test_multihead_concat_shape(setup):
    sg, ex, x = setup
    conv = GATConv(5, 4, heads=3, concat=True)
    out = conv(ex, Tensor(x))
    assert out.shape == (14, 12)


def test_multihead_average_shape(setup):
    sg, ex, x = setup
    conv = GATConv(5, 4, heads=3, concat=False)
    out = conv(ex, Tensor(x))
    assert out.shape == (14, 4)


def test_single_head_aliases(setup):
    conv = GATConv(5, 4, heads=2)
    assert conv.weight is conv.weight_0
    assert conv.attn_l is conv.attn_l_0
    assert conv.attn_r is conv.attn_r_0


def test_heads_are_independent(setup):
    """Zeroing one head's projection must not affect the others' columns."""
    sg, ex, x = setup
    conv = GATConv(5, 4, heads=2, concat=True, bias=False)
    base = conv(ex, Tensor(x)).data.copy()
    conv.weight_1.data[:] = 0.0
    out = conv(ex, Tensor(x)).data
    assert np.allclose(out[:, :4], base[:, :4])
    assert np.allclose(out[:, 4:], 0.0)


def test_multihead_gradients_flow(setup):
    sg, ex, x = setup
    conv = GATConv(5, 4, heads=2)
    out = conv(ex, Tensor(x, requires_grad=True))
    F.sum(out).backward()
    ex.check_drained()
    for h in range(2):
        assert getattr(conv, f"weight_{h}").grad is not None
        assert getattr(conv, f"attn_l_{h}").grad is not None


def test_invalid_heads():
    with pytest.raises(ValueError):
        GATConv(5, 4, heads=0)


def test_multihead_kernel_shared(setup, fresh_device):
    """All heads (and all GAT layers) reuse the same compiled kernels."""
    fresh_device.launcher.clear()
    GATConv(5, 4, heads=1)
    count = len(fresh_device.launcher)
    GATConv(5, 4, heads=4)
    assert len(fresh_device.launcher) == count


# ---------------------------------------------------------------------------
# Embedding
# ---------------------------------------------------------------------------
def test_embedding_lookup(rng):
    emb = nn.Embedding(10, 4)
    idx = np.array([1, 1, 7])
    out = emb(idx)
    assert out.shape == (3, 4)
    assert np.allclose(out.data, emb.weight.data[idx])


def test_embedding_all():
    emb = nn.Embedding(6, 3)
    assert np.allclose(emb.all().data, emb.weight.data)


def test_embedding_out_of_range():
    emb = nn.Embedding(5, 2)
    with pytest.raises(IndexError):
        emb(np.array([5]))
    with pytest.raises(IndexError):
        emb(np.array([-1]))


def test_embedding_gradient_accumulates_duplicates():
    emb = nn.Embedding(5, 2)
    out = emb(np.array([2, 2, 0]))
    F.sum(out).backward()
    assert np.allclose(emb.weight.grad[2], 2.0)
    assert np.allclose(emb.weight.grad[0], 1.0)
    assert np.allclose(emb.weight.grad[1], 0.0)


def test_embedding_trains_link_predictor(setup):
    """Featureless link prediction: embeddings + GNN learn real edges."""
    sg, ex, x = setup
    init.set_seed(0)
    emb = nn.Embedding(14, 8)
    from repro.nn import GCNConv

    conv = GCNConv(8, 8)
    params = list(emb.parameters()) + list(conv.parameters())
    opt = optim.Adam(params, lr=5e-2)
    bwd = sg.backward_csr()
    pos = np.stack([
        np.repeat(np.arange(14), np.diff(bwd.row_offset)),
        bwd.col_indices,
    ])
    rng = np.random.default_rng(0)
    neg = rng.integers(0, 14, pos.shape)
    pairs = np.concatenate([pos, neg], axis=1)
    labels = np.concatenate([np.ones(pos.shape[1]), np.zeros(neg.shape[1])]).astype(np.float32)

    first = last = None
    for i in range(30):
        opt.zero_grad()
        h = conv(ex, emb.all())
        logits = F.sum(F.mul(F.index_select(h, pairs[0]), F.index_select(h, pairs[1])), axis=1)
        loss = F.bce_with_logits_loss(logits, labels)
        loss.backward()
        ex.check_drained()
        opt.step()
        if i == 0:
            first = loss.item()
        last = loss.item()
    assert last < first * 0.9
