"""Runtime lock-order sanitizer: violations are caught live, off costs zero.

Mirrors the seeded-bug discipline of the static suite
(``tests/test_analysis_lockcheck.py``): each violation kind is provoked
with a tiny real interleaving and must be detected, and the disabled path
is pinned to return *raw* ``threading`` primitives so the framework's hot
paths pay nothing when ``REPRO_TSAN`` is off.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.analysis.sanitizer import (
    NULL_SANITIZER,
    LockOrderSanitizer,
    LockOrderViolation,
    NullSanitizer,
    SanitizedCondition,
    SanitizedLock,
    current_sanitizer,
    new_condition,
    new_lock,
    new_rlock,
    use_sanitizer,
)
from repro.obs.flight import FlightRecorder, use_flight_recorder

_RAW_LOCK_TYPE = type(threading.Lock())
_RAW_RLOCK_TYPE = type(threading.RLock())

#: Under the ``REPRO_TSAN=1`` CI job the *process default* is a real
#: sanitizer, so the disabled-path contract deliberately does not hold.
_TSAN_ACTIVE = os.environ.get("REPRO_TSAN", "") not in ("", "0")
_needs_disabled_default = pytest.mark.skipif(
    _TSAN_ACTIVE, reason="REPRO_TSAN active: the process default sanitizer is real"
)


# ---------------------------------------------------------------------------
# Disabled path: zero overhead by construction
# ---------------------------------------------------------------------------
@_needs_disabled_default
def test_default_sanitizer_is_null():
    assert isinstance(current_sanitizer(), NullSanitizer)
    assert current_sanitizer() is NULL_SANITIZER


@_needs_disabled_default
def test_disabled_factories_return_raw_primitives():
    assert type(new_lock("X")) is _RAW_LOCK_TYPE
    assert type(new_rlock("X")) is _RAW_RLOCK_TYPE
    assert type(new_condition(name="X")) is threading.Condition
    # A condition over an existing raw lock shares that exact mutex.
    raw = threading.Lock()
    cond = new_condition(raw, "X")
    assert type(cond) is threading.Condition
    assert cond._lock is raw  # noqa: SLF001 - pinning the sharing contract


def test_use_sanitizer_scopes_instrumentation_to_the_block():
    outer = current_sanitizer()
    san = LockOrderSanitizer()
    with use_sanitizer(san):
        assert current_sanitizer() is san
        assert isinstance(new_lock("A"), SanitizedLock)
        assert isinstance(new_condition(name="C"), SanitizedCondition)
    assert current_sanitizer() is outer


# ---------------------------------------------------------------------------
# Seeded violations are detected
# ---------------------------------------------------------------------------
def test_strict_abba_raises_at_the_closing_acquire():
    san = LockOrderSanitizer(strict=True)
    a, b = san.lock("A"), san.lock("B")
    with a:
        with b:
            pass  # establishes A -> B
    with b:
        with pytest.raises(LockOrderViolation) as exc:
            a.acquire()  # B -> A closes the cycle *before* blocking
    assert exc.value.details["kind"] == "lock-order-cycle"
    assert set(exc.value.details["cycle"]) >= {"A", "B"}


def test_nonstrict_abba_records_violation_and_flight_event():
    san = LockOrderSanitizer(strict=False)
    recorder = FlightRecorder(capacity=16)
    with use_flight_recorder(recorder):
        a, b = san.lock("A"), san.lock("B")
        with a:
            with b:
                pass
        with b:
            with a:  # recorded, not raised: execution continues
                pass
    kinds = [v["kind"] for v in san.violations]
    assert kinds == ["lock-order-cycle"]
    cycles = san.order_cycles()
    assert cycles and set(cycles[0]) == {"A", "B"}
    tsan_events = [e for e in recorder.events() if e["kind"] == "tsan"]
    assert tsan_events and tsan_events[0]["name"] == "lock-order-cycle"


def test_consistent_order_is_clean():
    san = LockOrderSanitizer(strict=True)
    a, b = san.lock("A"), san.lock("B")
    for _ in range(3):
        with a:
            with b:
                pass
    assert san.violations == []
    assert san.order_cycles() == []
    assert san.order_graph() == {"A": {"B"}}


def test_rlock_reentry_is_not_an_ordering_event():
    san = LockOrderSanitizer(strict=True)
    r = san.rlock("R")
    with r:
        with r:  # reentry must not self-edge or double-count the held-set
            assert san.held_sites() == ["R"]
    assert san.held_sites() == []
    assert san.violations == []


def test_wait_while_holding_foreign_lock_is_flagged():
    san = LockOrderSanitizer(strict=False)
    outer = san.lock("outer")
    cv = san.condition(name="cv")
    with outer:
        with cv:
            cv.wait(timeout=0.01)
    assert [v["kind"] for v in san.violations] == ["wait-while-holding"]
    assert san.violations[0]["holding"] == ["outer"]


def test_wait_holding_only_the_conditions_own_lock_is_clean():
    san = LockOrderSanitizer(strict=True)
    mutex = san.lock("SnapshotCache._lock")
    cv = san.condition(mutex, "SnapshotCache._cond")
    with cv:
        cv.wait(timeout=0.01)
    assert san.violations == []
    assert san.held_sites() == []  # wait's release/re-acquire stayed exact


def test_condvar_wakeup_across_threads_keeps_held_sets_exact():
    san = LockOrderSanitizer(strict=True)
    mutex = san.lock("M")
    cv = san.condition(mutex, "C")
    ready = []

    def waiter():
        with cv:
            cv.wait_for(lambda: bool(ready), timeout=5.0)

    t = threading.Thread(target=waiter)
    t.start()
    with cv:
        ready.append(1)
        cv.notify_all()
    t.join(timeout=5.0)
    assert not t.is_alive()
    assert san.violations == []


def test_condition_over_raw_preactivation_lock_degrades_gracefully():
    san = LockOrderSanitizer()
    raw = threading.Lock()
    cond = san.condition(raw, "legacy")
    assert type(cond) is threading.Condition  # correct, just uninstrumented


def test_release_of_preinstrumentation_lock_is_tolerated():
    san = LockOrderSanitizer(strict=True)
    lock = san.lock("L")
    lock._inner.acquire()  # acquired before the wrapper was watching
    lock.release()  # must not KeyError or underflow the held-set
    assert san.held_sites() == []


def test_report_summarizes_counts_and_violations():
    san = LockOrderSanitizer(strict=False, name="t")
    a, b = san.lock("A"), san.lock("B")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    text = san.report()
    assert "1 violation(s)" in text
    assert "lock-order-cycle" in text
    assert san.acquisitions == 4


# ---------------------------------------------------------------------------
# Process-start activation via REPRO_TSAN
# ---------------------------------------------------------------------------
_SRC = str(Path(__file__).resolve().parents[1] / "src")


def _probe(env_value: str, code: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=_SRC, REPRO_TSAN=env_value)
    return subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )


def test_repro_tsan_env_installs_process_wide_sanitizer():
    proc = _probe("1", (
        "from repro.analysis.sanitizer import current_sanitizer, new_lock, SanitizedLock\n"
        "san = current_sanitizer()\n"
        "assert type(san).__name__ == 'LockOrderSanitizer', san\n"
        "assert not san.strict\n"
        "assert isinstance(new_lock('x'), SanitizedLock)\n"
        "import threading\n"
        "def worker(out):\n"
        "    out.append(isinstance(new_lock('y'), SanitizedLock))\n"
        "out = []\n"
        "t = threading.Thread(target=worker, args=(out,)); t.start(); t.join()\n"
        "assert out == [True]  # default is process-wide, not thread-local\n"
    ))
    assert proc.returncode == 0, proc.stderr


def test_repro_tsan_strict_mode_raises_in_subprocess():
    proc = _probe("strict", (
        "from repro.analysis.sanitizer import current_sanitizer, LockOrderViolation\n"
        "san = current_sanitizer()\n"
        "assert san.strict\n"
        "a, b = san.lock('A'), san.lock('B')\n"
        "with a:\n"
        "    with b: pass\n"
        "try:\n"
        "    with b:\n"
        "        a.acquire()\n"
        "except LockOrderViolation:\n"
        "    raise SystemExit(0)\n"
        "raise SystemExit(1)\n"
    ))
    assert proc.returncode == 0, proc.stderr


def test_repro_tsan_off_keeps_null_default():
    proc = _probe("0", (
        "from repro.analysis.sanitizer import current_sanitizer, NullSanitizer\n"
        "assert isinstance(current_sanitizer(), NullSanitizer)\n"
    ))
    assert proc.returncode == 0, proc.stderr


# ---------------------------------------------------------------------------
# Framework integration: instrumented SnapshotCache stays correct
# ---------------------------------------------------------------------------
def test_snapshot_cache_runs_instrumented_without_violations():
    from repro.graph.snapshot_builder import SnapshotCache

    san = LockOrderSanitizer(strict=True)
    with use_sanitizer(san):
        cache = SnapshotCache(capacity=4)
    key = (0, 1)
    cache.mark_inflight(0)

    def producer():
        cache.stage(key, "snapshot")
        cache.clear_inflight(0)

    t = threading.Thread(target=producer)
    t.start()
    assert cache.wait_not_inflight(0, timeout=5.0)
    t.join(timeout=5.0)
    snap, hit = cache.get(key)
    assert hit and snap == "snapshot"
    assert san.violations == []
    assert san.acquisitions > 0
