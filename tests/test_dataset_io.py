"""Dataset serialization round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import (
    load_dataset,
    load_hungary_chickenpox,
    load_sx_mathoverflow,
    save_dataset,
)


def test_static_roundtrip(tmp_path):
    ds = load_hungary_chickenpox(lags=4, scale=1.0, num_timestamps=8)
    path = save_dataset(tmp_path / "hc.npz", ds)
    loaded = load_dataset(path)
    assert loaded.name == ds.name
    assert loaded.num_nodes == ds.num_nodes
    assert loaded.num_timestamps == ds.num_timestamps
    assert np.array_equal(loaded.src, ds.src) and np.array_equal(loaded.dst, ds.dst)
    for a, b in zip(loaded.features, ds.features):
        assert np.array_equal(a, b)
    for a, b in zip(loaded.targets, ds.targets):
        assert np.array_equal(a, b)


def test_dynamic_roundtrip(tmp_path):
    ds = load_sx_mathoverflow(scale=0.005, feature_size=4, max_snapshots=4)
    path = save_dataset(tmp_path / "mo.npz", ds)
    loaded = load_dataset(path)
    assert loaded.num_timestamps == ds.num_timestamps
    for t in range(ds.num_timestamps):
        sa, da = loaded.dtdg.snapshot_edges(t)
        sb, db = ds.dtdg.snapshot_edges(t)
        assert np.array_equal(sa, sb) and np.array_equal(da, db)
        assert np.array_equal(loaded.features[t], ds.features[t])
    # derived updates must also agree (recomputed from snapshots)
    for t in range(1, ds.num_timestamps):
        assert loaded.dtdg.updates[t].num_changes == ds.dtdg.updates[t].num_changes


def test_loaded_dataset_trains(tmp_path):
    from repro.tensor import init
    from repro.train import STGraphNodeRegressor, STGraphTrainer

    ds = load_hungary_chickenpox(lags=4, scale=1.0, num_timestamps=8)
    loaded = load_dataset(save_dataset(tmp_path / "hc.npz", ds))
    init.set_seed(0)
    trainer = STGraphTrainer(STGraphNodeRegressor(4, 8), loaded.build_graph(), lr=1e-2)
    losses = trainer.train(loaded.features, loaded.targets, epochs=3)
    assert losses[-1] < losses[0]


def test_bad_type_rejected(tmp_path):
    with pytest.raises(TypeError):
        save_dataset(tmp_path / "x.npz", object())
