"""Metric registry: Prometheus exposition correctness and histogram math.

Covers the live-telemetry acceptance criteria: label escaping survives a
round trip through the exposition format, histogram buckets are cumulative
and monotone with ``+Inf`` equal to ``_count``, ``_sum`` tracks observed
values, quantile estimates land within one bucket width of the truth, and
the unified renderer emits the legacy metric names unchanged.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.device import current_device
from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricRegistry,
    log_buckets,
    prometheus_text,
    snapshot_registry,
)
from repro.obs.metrics import prom_escape


# ---------------------------------------------------------------------------
# Escaping
# ---------------------------------------------------------------------------
def test_label_escaping_round_trip():
    raw = 'line1\nline2 "quoted" back\\slash'
    escaped = prom_escape(raw)
    assert "\n" not in escaped
    # Prometheus unescape: \\ -> \, \" -> ", \n -> newline.
    unescaped = (
        escaped.replace("\\\\", "\x00")
        .replace('\\"', '"')
        .replace("\\n", "\n")
        .replace("\x00", "\\")
    )
    assert unescaped == raw


def test_escaped_labels_render_on_one_line():
    reg = MetricRegistry()
    reg.counter("repro_test_total", "help").labels(tag='a"b\nc\\d').inc(2)
    rendered = reg.render()
    line = [ln for ln in rendered.splitlines() if ln.startswith("repro_test_total{")]
    assert len(line) == 1
    assert line[0].endswith(" 2")


# ---------------------------------------------------------------------------
# Histogram math
# ---------------------------------------------------------------------------
def test_log_buckets_shape():
    bounds = log_buckets(1e-6, 2.0, 26)
    assert len(bounds) == 26
    assert bounds[0] == pytest.approx(1e-6)
    assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))
    assert DEFAULT_BUCKETS == bounds


def test_histogram_cumulative_monotone_and_inf_equals_count():
    h = Histogram()
    rng = np.random.default_rng(0)
    values = rng.uniform(1e-6, 10.0, size=500)
    for v in values:
        h.observe(float(v))
    cum = h.cumulative()
    counts = [c for _, c in cum]
    assert counts == sorted(counts), "cumulative buckets must be monotone"
    assert cum[-1][0] == math.inf
    assert cum[-1][1] == h.count == 500
    assert h.sum == pytest.approx(values.sum())


def test_histogram_overflow_lands_in_inf_bucket():
    h = Histogram(bounds=[1.0, 2.0])
    h.observe(100.0)
    cum = h.cumulative()
    assert cum == [(1.0, 0), (2.0, 0), (math.inf, 1)]


def test_quantile_within_one_bucket_width():
    h = Histogram()
    rng = np.random.default_rng(7)
    values = np.sort(rng.uniform(1e-4, 1.0, size=2000))
    for v in values:
        h.observe(float(v))
    for q in (0.5, 0.95, 0.99):
        true = float(values[int(q * len(values)) - 1])
        est = h.quantile(q)
        # The estimate must land in the true value's bucket or a neighbour:
        # error bounded by one (log-scale) bucket width.
        import bisect
        idx = bisect.bisect_left(h.bounds, true)
        lo = h.bounds[idx - 1] if idx > 0 else 0.0
        hi = h.bounds[min(idx + 1, len(h.bounds) - 1)]
        assert lo <= est <= hi, f"q={q}: est {est} not within ({lo}, {hi}) around {true}"


def test_quantile_empty_is_nan_and_inf_clamps():
    h = Histogram(bounds=[1.0, 2.0])
    assert math.isnan(h.quantile(0.5))
    h.observe(50.0)  # +Inf bucket only
    assert h.quantile(0.99) == 2.0  # clamped to last finite bound


def test_histogram_merge():
    a, b = Histogram(), Histogram()
    for v in (0.001, 0.01):
        a.observe(v)
    for v in (0.1, 1.0, 10.0):
        b.observe(v)
    a.merge(b)
    assert a.count == 5
    assert a.sum == pytest.approx(11.111)
    with pytest.raises(ValueError):
        a.merge(Histogram(bounds=[1.0]))


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------
def test_registry_kind_and_bucket_mismatch_rejected():
    reg = MetricRegistry()
    reg.counter("x_total", "h")
    with pytest.raises(ValueError):
        reg.gauge("x_total", "h")
    reg.histogram("y_seconds", "h")
    with pytest.raises(ValueError):
        reg.histogram("y_seconds", "h", buckets=[1.0])


def test_registry_reset_keeps_cached_children_live():
    reg = MetricRegistry()
    child = reg.counter("x_total", "h").labels(tier="cpu")
    child.inc(3)
    reg.reset()
    assert "x_total" in reg.render() or child.value == 0
    assert child.value == 0
    child.inc(1)  # cached reference must still feed the registry
    assert 'x_total{tier="cpu"} 1' in reg.render()


def test_counter_rejects_negative():
    reg = MetricRegistry()
    with pytest.raises(ValueError):
        reg.counter("x_total", "h").labels().inc(-1)


def test_histogram_render_has_inf_bucket_and_sum_count():
    reg = MetricRegistry()
    h = reg.histogram("repro_lat_seconds", "h", buckets=[0.1, 1.0]).labels(op="f")
    h.observe(0.05)
    h.observe(5.0)
    lines = reg.render().splitlines()
    bucket_lines = [ln for ln in lines if "repro_lat_seconds_bucket" in ln]
    assert any('le="+Inf"' in ln and ln.endswith(" 2") for ln in bucket_lines)
    assert any('repro_lat_seconds_count{op="f"} 2' == ln for ln in lines)
    assert any(ln.startswith('repro_lat_seconds_sum{op="f"} ') for ln in lines)
    inf_value = next(int(ln.rsplit(" ", 1)[1]) for ln in bucket_lines if 'le="+Inf"' in ln)
    count_value = next(int(ln.rsplit(" ", 1)[1]) for ln in lines if "_count{" in ln)
    assert inf_value == count_value


# ---------------------------------------------------------------------------
# Unified renderer: one code path for post-hoc dump and live scrape
# ---------------------------------------------------------------------------
def test_prometheus_text_preserves_legacy_names():
    text = prometheus_text(current_device())
    for name in (
        "repro_phase_seconds_total",
        "repro_events_total",
        "repro_memory_current_bytes",
        "repro_memory_peak_bytes",
        "repro_kernel_launches_total",
        "repro_kernel_seconds_total",
    ):
        assert f"# TYPE {name}" in text, f"legacy family {name} missing"
    # Legacy formatting: integers render as bare "0", not "0.0".
    assert 'repro_phase_seconds_total{phase="compile"} 0' in text


def test_snapshot_registry_includes_live_device_metrics():
    device = current_device()
    device.metrics.observe("repro_timestamp_seconds", 0.01, "h", engine="default")
    text = snapshot_registry(device).render()
    assert 'repro_timestamp_seconds_bucket{engine="default"' in text
    assert text == prometheus_text(device)
