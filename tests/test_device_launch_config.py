"""Feature-adaptive launch configuration (Seastar's kernel-tuning model)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.device import LaunchConfig, estimated_occupancy, feature_adaptive_config
from repro.device.launch_config import BLOCK_THREADS, WARP_SIZE


def test_tiny_feature_groups():
    cfg = feature_adaptive_config(1000, 4)
    assert cfg.threads_per_group == 4
    assert cfg.groups_per_block == BLOCK_THREADS // 4
    assert cfg.feature_stride == 1


def test_group_size_rounds_to_power_of_two():
    cfg = feature_adaptive_config(1000, 5)
    assert cfg.threads_per_group == 8


def test_group_size_saturates_at_warp():
    for f in (32, 64, 200):
        cfg = feature_adaptive_config(1000, f)
        assert cfg.threads_per_group == WARP_SIZE
        assert cfg.feature_stride == -(-f // WARP_SIZE)


def test_blocks_cover_all_vertices():
    for n in (1, 7, 255, 256, 257, 100_000):
        for f in (1, 8, 64):
            cfg = feature_adaptive_config(n, f)
            assert cfg.vertices_per_launch() >= min(n, cfg.num_blocks * cfg.groups_per_block)
            assert cfg.num_blocks * cfg.groups_per_block >= min(n, 65_535 * cfg.groups_per_block)


def test_block_fully_packed():
    for f in (1, 2, 8, 16, 32, 64):
        cfg = feature_adaptive_config(5000, f)
        assert cfg.threads_per_block == BLOCK_THREADS


def test_invalid_arguments():
    with pytest.raises(ValueError):
        feature_adaptive_config(0, 8)
    with pytest.raises(ValueError):
        feature_adaptive_config(10, 0)


def test_occupancy_perfect_for_power_of_two_features():
    n = 256 * 10  # exact multiple of groups per block
    cfg = feature_adaptive_config(n, 32)
    assert estimated_occupancy(cfg, n, 32) == pytest.approx(1.0)


def test_occupancy_degrades_with_rounding():
    n = 2560
    perfect = estimated_occupancy(feature_adaptive_config(n, 8), n, 8)
    rounded = estimated_occupancy(feature_adaptive_config(n, 5), n, 5)
    assert rounded < perfect  # 5 of 8 lanes useful


def test_launch_config_attached_to_kernel(rng):
    from repro.compiler import compile_vertex_program
    from repro.compiler.runtime import GraphContext
    from repro.graph import StaticGraph

    g = nx.gnp_random_graph(30, 0.2, seed=2, directed=True)
    ctx = GraphContext(StaticGraph.from_networkx(g))
    prog = compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h),
        feature_widths={"h": "v"}, name="lc_test",
    )
    h = rng.standard_normal((30, 12)).astype(np.float32)
    prog.forward(ctx, {"h": h})
    cfg = prog.fwd_kernel.meta["launch_config"]
    assert isinstance(cfg, LaunchConfig)
    assert cfg.threads_per_group == 16  # 12 rounded up to a power of two
    assert cfg.num_blocks == -(-30 // cfg.groups_per_block)
