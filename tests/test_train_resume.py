"""Checkpoint/resume and graceful degradation, end to end.

The determinism gate: kill a training run at planned sites (mid-sequence
and at sequence boundaries), resume from the boundary checkpoint in a
fresh process stand-in (new device, new trainer, new graph), and require
**bitwise-identical** final losses versus the uninterrupted run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.dataset import load_sx_mathoverflow
from repro.device import Device, use_device
from repro.obs import build_run_manifest, write_chrome_trace
from repro.obs.tracer import Tracer, use_tracer
from repro.resilience import (
    BOUNDARY,
    FaultPlan,
    FaultSite,
    SimulatedKill,
    named_plan,
    run_chaos,
    use_fault_plan,
)
from repro.tensor import init
from repro.train import STGraphLinkPredictor, STGraphTrainer, make_link_prediction_samples

_EPOCHS = 3
_SEED = 0


@pytest.fixture(scope="module")
def workload():
    ds = load_sx_mathoverflow(scale=0.02, feature_size=8, max_snapshots=6)
    samples = make_link_prediction_samples(ds.dtdg, samples_per_timestamp=32, seed=_SEED)
    return ds, samples


def _fresh_trainer(workload) -> STGraphTrainer:
    ds, samples = workload
    init.set_seed(_SEED)
    model = STGraphLinkPredictor(ds.feature_size, 8)
    return STGraphTrainer(
        model, ds.build_gpma(), lr=1e-2, sequence_length=3,
        task="link_prediction", link_samples=samples,
    )


def _reference_losses(workload) -> list[float]:
    ds, _ = workload
    with use_device(Device(name="reference")):
        return _fresh_trainer(workload).train(ds.features, epochs=_EPOCHS)


# Three kill sites for the determinism gate: mid-sequence in the first and
# last epoch, and a boundary kill (fires right after the checkpoint write).
_KILL_SITES = [
    FaultSite(kind="kill", epoch=0, sequence=1, timestamp=4),
    FaultSite(kind="kill", epoch=1, sequence=0, timestamp=BOUNDARY),
    FaultSite(kind="kill", epoch=2, sequence=1, timestamp=5),
]


@pytest.mark.parametrize(
    "site", _KILL_SITES, ids=["mid-seq-epoch0", "boundary-epoch1", "mid-seq-epoch2"]
)
def test_resume_is_bitwise_identical_across_fresh_devices(tmp_path, workload, site):
    ds, _ = workload
    reference = _reference_losses(workload)
    ckpt = tmp_path / "resume.npz"

    # Attempt 1: train under the kill plan until the simulated process death.
    plan = FaultPlan(name="one-kill", sites=[site])
    with use_device(Device(name="doomed")), use_fault_plan(plan):
        doomed = _fresh_trainer(workload)
        with pytest.raises(SimulatedKill):
            doomed.train(ds.features, epochs=_EPOCHS, checkpoint_path=ckpt)
        doomed.executor.check_drained()  # the kill still unwound the stacks
    assert ckpt.exists()

    # Attempt 2: a brand-new "process" — fresh device, trainer, graph — picks
    # up from the checkpoint and must land on the exact same trajectory.
    with use_device(Device(name="resumed")):
        trainer = _fresh_trainer(workload)
        losses = trainer.train(ds.features, epochs=_EPOCHS, checkpoint_path=ckpt, resume=True)
    assert trainer.resumed_from == str(ckpt)
    assert len(losses) == len(reference) == _EPOCHS
    assert all(np.float64(a) == np.float64(b) for a, b in zip(losses, reference))


def test_kernel_fault_walks_retry_then_fallback(tmp_path, workload):
    """times=2 exhausts launch + retry → interpreter fallback; the run still
    completes and the ladder is visible in the manifest and Chrome trace."""
    ds, _ = workload
    reference = _reference_losses(workload)
    plan = FaultPlan(
        name="ladder",
        sites=[FaultSite(kind="kernel", epoch=0, sequence=0, timestamp=1, times=2)],
    )
    tracer = Tracer(name="ladder")
    device = Device(name="ladder")
    with use_device(device), use_fault_plan(plan), use_tracer(tracer):
        trainer = _fresh_trainer(workload)
        losses = trainer.train(ds.features, epochs=_EPOCHS)
        manifest = build_run_manifest(
            device, tracer=tracer, graph=trainer.graph,
            run_name="ladder", command="pytest", system="stgraph", dataset=ds.name,
        )

    # Exactly one retry, then exactly one fallback to the interpreter engine.
    assert trainer.executor.kernel_retries == 1
    assert trainer.executor.engine_fallbacks == 1
    assert manifest.retries == 1
    assert manifest.engine_fallbacks == 1
    assert manifest.faults_injected == {"kernel": 2}
    # Training completed, and the interpreter fallback is bitwise-equal.
    assert all(np.float64(a) == np.float64(b) for a, b in zip(losses, reference))

    trace_path = write_chrome_trace(tracer, str(tmp_path / "ladder.json"))
    events = json.loads(open(trace_path).read())["traceEvents"]
    by_name = {e["name"] for e in events}
    assert {"fault.kernel", "fault.retry", "fault.engine_fallback"} <= by_name
    fallback = next(e for e in events if e["name"] == "fault.engine_fallback")
    assert fallback["ph"] == "i" and fallback["cat"] == "fault"


def test_single_kernel_fault_retries_once_and_succeeds(workload):
    """times=1 lets the retry succeed: no fallback, differential check passes."""
    ds, _ = workload
    reference = _reference_losses(workload)
    plan = FaultPlan(
        name="retry",
        sites=[FaultSite(kind="kernel", epoch=1, sequence=1, timestamp=3, times=1)],
    )
    with use_device(Device(name="retry")), use_fault_plan(plan):
        trainer = _fresh_trainer(workload)
        losses = trainer.train(ds.features, epochs=_EPOCHS)
    assert trainer.executor.kernel_retries == 1
    assert trainer.executor.engine_fallbacks == 0
    assert all(np.float64(a) == np.float64(b) for a, b in zip(losses, reference))


def test_cache_fault_rebuilds_and_preserves_losses(workload):
    ds, _ = workload
    reference = _reference_losses(workload)
    # Fire at the second sequence's first context build: the caches seq 0
    # populated are all flagged corrupt mid-run, not trivially while empty.
    # (Later epochs may serve every context from the executor's keyed LRU
    # without ever consulting the graph's build path, so the site targets
    # the first epoch, where fresh snapshot keys force a build.)
    plan = FaultPlan(name="cache", sites=[FaultSite(kind="cache", epoch=0, sequence=1)])
    device = Device(name="cache-fault")
    with use_device(device), use_fault_plan(plan) as injector:
        trainer = _fresh_trainer(workload)
        losses = trainer.train(ds.features, epochs=_EPOCHS)
    assert injector.exhausted()
    assert trainer.graph.cache_fault_rebuilds == 1
    assert device.profiler.counter("cache_fault_rebuilds") == 1
    # The Algorithm-3 rebuild path is a pure re-derivation: same losses.
    assert all(np.float64(a) == np.float64(b) for a, b in zip(losses, reference))


def test_resume_rejects_epoch_count_mismatch(tmp_path, workload):
    ds, _ = workload
    ckpt = tmp_path / "mismatch.npz"
    with use_device(Device(name="a")):
        _fresh_trainer(workload).train(ds.features, epochs=2, checkpoint_path=ckpt)
    with use_device(Device(name="b")):
        trainer = _fresh_trainer(workload)
        with pytest.raises(ValueError, match="2-epoch"):
            trainer.train(ds.features, epochs=5, checkpoint_path=ckpt, resume=True)


def test_resume_without_checkpoint_file_starts_fresh(tmp_path, workload):
    """A kill before the first boundary leaves no checkpoint; resume=True
    must then behave like a fresh start (the chaos harness relies on it)."""
    ds, _ = workload
    reference = _reference_losses(workload)
    ckpt = tmp_path / "never-written.npz"
    with use_device(Device(name="fresh")):
        trainer = _fresh_trainer(workload)
        losses = trainer.train(ds.features, epochs=_EPOCHS, checkpoint_path=ckpt, resume=True)
    assert trainer.resumed_from is None
    assert all(np.float64(a) == np.float64(b) for a, b in zip(losses, reference))


def test_chaos_smoke_plan_passes():
    report = run_chaos(named_plan("smoke"))
    assert report.ok, report.render()
    assert report.kills == 1
    assert report.counters["kernel_retries"] >= 1
    assert report.counters["engine_fallbacks"] >= 1
    assert report.manifest.resumed_from is not None
    assert report.manifest.faults_injected.get("kernel", 0) >= 2


def test_chaos_kill_matrix_passes():
    report = run_chaos(named_plan("kill-matrix"))
    assert report.ok, report.render()
    assert report.kills == 3  # one resume per planned boundary kill
