"""Benchmark reporting utilities and Table III aggregation."""

from __future__ import annotations

import pytest

from repro.bench import ascii_series, format_table, improvement
from repro.bench.report import format_reuse_counters
from repro.bench.measure import RunResult
from repro.bench.experiments import table1_capabilities, table3_summary


def test_format_table_alignment():
    rows = [{"a": 1, "bb": "xy"}, {"a": 222, "bb": "z"}]
    text = format_table(rows, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # all rows aligned


def test_format_table_empty():
    assert "(no rows)" in format_table([], title="x")


def test_format_reuse_counters():
    text = format_reuse_counters(
        {"csr_cache_hits": 3, "csr_cache_misses": 1, "noop_updates_skipped": 2}
    )
    assert "csr_cache" in text and "75.0%" in text
    assert "noop updates skipped: 2" in text
    # No events at all: rates degrade to "-" instead of dividing by zero.
    assert "-" in format_reuse_counters({})


def test_ascii_series_renders_markers():
    text = ascii_series(
        {"A": [(1, 1), (2, 2)], "B": [(1, 2), (2, 4)]},
        title="demo", xlabel="x", ylabel="y",
    )
    assert "demo" in text
    assert "* = A" in text and "o = B" in text
    assert any("*" in line for line in text.splitlines()[2:-3])


def test_ascii_series_empty():
    assert "(no data)" in ascii_series({}, title="t")


def test_ascii_series_constant_series_no_crash():
    text = ascii_series({"flat": [(1, 5), (2, 5), (3, 5)]})
    assert "flat" in text


def test_improvement_ratio():
    assert improvement(2.0, 1.0) == pytest.approx(2.0)
    assert improvement(1.0, 2.0) == pytest.approx(0.5)
    assert improvement(1.0, 0.0) == float("inf")


def test_table1_shape():
    rows, text = table1_capabilities()
    assert len(rows) == 7
    assert rows[-1]["temporal"] == "yes"
    assert "STGraph" in text


def _rr(system, dataset, params, t, m):
    return RunResult(system=system, dataset=dataset, params=params,
                     per_epoch_seconds=t, peak_memory_bytes=m)


def test_table3_aggregation():
    static = [
        _rr("stgraph", "d1", {"F": 8}, 1.0, 100),
        _rr("pygt", "d1", {"F": 8}, 2.0, 300),
        _rr("stgraph", "d1", {"F": 16}, 1.0, 100),
        _rr("pygt", "d1", {"F": 16}, 1.5, 150),
    ]
    dynamic = [
        _rr("naive", "d2", {"F": 8}, 1.0, 400),
        _rr("gpma", "d2", {"F": 8}, 2.0, 100),
        _rr("pygt", "d2", {"F": 8}, 1.8, 200),
    ]
    rows, text = table3_summary(static, dynamic)
    by_metric = {r["metric"]: r for r in rows}
    assert by_metric["Time/epoch (max)"]["Static"] == "2.00x"
    assert by_metric["Time/epoch (avg)"]["Static"] == "1.75x"
    assert by_metric["Time/epoch (max)"]["Naive"] == "1.80x"
    assert by_metric["Memory (max)"]["GPMA"] == "2.00x"
    assert by_metric["Memory (max)"]["Naive"] == "0.50x"
    assert "Table III" in text


def test_table3_unmatched_cells_dash():
    rows, _ = table3_summary([_rr("stgraph", "d", {"F": 8}, 1, 1)], [])
    assert rows[0]["Static"] == "-"
