"""State Stack and Graph Stack discipline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GraphStack, StateStack


def test_state_stack_push_pop():
    s = StateStack()
    t1 = s.push(0, {"a": np.zeros(4)})
    t2 = s.push(0, {"b": np.zeros(4)})
    assert len(s) == 2
    assert "b" in s.pop(t2)
    assert "a" in s.pop(t1)
    assert s.is_empty


def test_state_stack_underflow():
    s = StateStack()
    with pytest.raises(RuntimeError, match="underflow"):
        s.pop(0)


def test_state_stack_same_timestamp_any_order():
    """Gate branches inside one timestamp may drain in any order."""
    s = StateStack()
    t1 = s.push(3, {"z": 1})
    t2 = s.push(3, {"r": 2})
    t3 = s.push(3, {"h": 3})
    assert s.pop(t1) == {"z": 1}  # buried under same-timestamp entries: OK
    assert s.pop(t3) == {"h": 3}
    assert s.pop(t2) == {"r": 2}


def test_state_stack_cross_timestamp_violation():
    s = StateStack()
    t1 = s.push(0, {"a": 1})
    s.push(1, {"b": 2})
    with pytest.raises(RuntimeError, match="LIFO violation"):
        s.pop(t1)


def test_state_stack_unknown_token():
    s = StateStack()
    s.push(0, {"a": 1})
    with pytest.raises(KeyError):
        s.pop(99999)


def test_state_stack_byte_accounting():
    s = StateStack()
    tok = s.push(0, {"x": np.zeros(1000, dtype=np.float32)})
    assert s.current_bytes() == 4000
    assert s.peak_bytes == 4000
    s.pop(tok)
    assert s.current_bytes() == 0
    assert s.peak_bytes == 4000


def test_state_stack_peak_depth_and_pushes():
    s = StateStack()
    toks = [s.push(t, {}) for t in range(5)]
    for tok in reversed(toks):
        s.pop(tok)
    assert s.peak_depth == 5
    assert s.total_pushes == 5


def test_state_stack_running_bytes_matches_recompute(rng):
    """The O(1) running total stays exactly equal to a full re-summation
    through an arbitrary push/pop interleaving."""
    s = StateStack()
    live = []
    for step in range(200):
        if live and rng.random() < 0.4:
            tok = live.pop(-1 if rng.random() < 0.7 else rng.integers(len(live)))
            try:
                s.pop(tok)
            except (RuntimeError, KeyError):
                live.append(tok)  # cross-timestamp pop rejected: keep it
        else:
            size = int(rng.integers(0, 300))
            live.append(s.push(step // 10, {"x": np.zeros(size, dtype=np.float32)}))
        assert s.current_bytes() == sum(e.nbytes() for e in s._entries)
        assert s.peak_bytes >= s.current_bytes()
    s.clear()
    assert s.current_bytes() == 0


def test_state_stack_accounting_immune_to_mutation():
    """Mutating a saved dict after push must not corrupt the running total:
    pop subtracts the bytes measured at push time."""
    s = StateStack()
    saved = {"x": np.zeros(100, dtype=np.float32)}
    tok = s.push(0, saved)
    saved["y"] = np.zeros(1000, dtype=np.float32)  # grew after the fact
    s.pop(tok)
    assert s.current_bytes() == 0


def test_state_stack_clear():
    s = StateStack()
    s.push(0, {"a": 1})
    s.clear()
    assert s.is_empty


def test_graph_stack_lifo():
    g = GraphStack()
    for t in (0, 1, 2):
        g.push(t)
    assert g.top() == 2
    assert g.pop() == 2
    assert g.pop() == 1
    assert g.pop() == 0
    assert g.is_empty
    assert g.top() is None


def test_graph_stack_underflow():
    g = GraphStack()
    with pytest.raises(RuntimeError, match="underflow"):
        g.pop()


def test_graph_stack_peak_depth():
    g = GraphStack()
    for t in range(7):
        g.push(t)
    g.pop()
    assert g.peak_depth == 7
    assert len(g) == 6
    g.clear()
    assert g.is_empty
