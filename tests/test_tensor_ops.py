"""Forward correctness of tensor ops against NumPy references."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F


@pytest.fixture
def a(rng):
    return Tensor(rng.standard_normal((4, 5)).astype(np.float32))


@pytest.fixture
def b(rng):
    return Tensor(rng.standard_normal((4, 5)).astype(np.float32))


def test_add_sub_mul_div(a, b):
    assert np.allclose(F.add(a, b).data, a.data + b.data)
    assert np.allclose(F.sub(a, b).data, a.data - b.data)
    assert np.allclose(F.mul(a, b).data, a.data * b.data)
    assert np.allclose(F.div(a, F.add(b, 10.0)).data, a.data / (b.data + 10.0))


def test_operator_sugar(a, b):
    assert np.allclose((a + b).data, a.data + b.data)
    assert np.allclose((a - b).data, a.data - b.data)
    assert np.allclose((a * 2.0).data, a.data * 2.0)
    assert np.allclose((2.0 * a).data, 2.0 * a.data)
    assert np.allclose((-a).data, -a.data)
    assert np.allclose((a / 2.0).data, a.data / 2.0)
    assert np.allclose((1.0 - a).data, 1.0 - a.data)
    assert np.allclose((a**2).data, a.data**2)


def test_broadcasting_row(a, rng):
    row = Tensor(rng.standard_normal(5).astype(np.float32))
    assert np.allclose(F.add(a, row).data, a.data + row.data)
    assert np.allclose(F.mul(a, row).data, a.data * row.data)


def test_matmul(rng):
    x = Tensor(rng.standard_normal((3, 4)).astype(np.float32))
    w = Tensor(rng.standard_normal((4, 2)).astype(np.float32))
    assert np.allclose(F.matmul(x, w).data, x.data @ w.data, atol=1e-6)


def test_transpose(a):
    assert np.allclose(a.T.data, a.data.T)


def test_reshape(a):
    r = a.reshape(20)
    assert r.shape == (20,)
    r2 = F.reshape(a, (2, 10))
    assert r2.shape == (2, 10)
    r3 = F.reshape(a, (-1,))
    assert r3.shape == (20,)


def test_getitem(a):
    idx = np.array([0, 2])
    assert np.allclose(F.getitem(a, idx).data, a.data[idx])
    sl = F.getitem(a, slice(1, 3))
    assert np.allclose(sl.data, a.data[1:3])


def test_concat_stack(a, b):
    c = F.concat([a, b], axis=0)
    assert c.shape == (8, 5)
    assert np.allclose(c.data, np.concatenate([a.data, b.data]))
    c1 = F.concat([a, b], axis=1)
    assert c1.shape == (4, 10)
    s = F.stack([a, b], axis=0)
    assert s.shape == (2, 4, 5)


def test_index_select_scatter_add(rng):
    x = Tensor(rng.standard_normal((6, 3)).astype(np.float32))
    idx = np.array([0, 0, 5, 2])
    g = F.index_select(x, idx)
    assert np.allclose(g.data, x.data[idx])
    s = F.scatter_add(g, np.array([1, 1, 0, 2]), 4)
    expect = np.zeros((4, 3), dtype=np.float32)
    np.add.at(expect, np.array([1, 1, 0, 2]), x.data[idx])
    assert np.allclose(s.data, expect)


def test_reductions(a):
    assert np.allclose(F.sum(a).data, a.data.sum())
    assert np.allclose(F.sum(a, axis=0).data, a.data.sum(0))
    assert np.allclose(F.sum(a, axis=1, keepdims=True).data, a.data.sum(1, keepdims=True))
    assert np.allclose(F.mean(a).data, a.data.mean())
    assert np.allclose(F.mean(a, axis=1).data, a.data.mean(1))
    assert np.allclose(F.max(a, axis=0).data, a.data.max(0))


def test_activations(a):
    assert np.allclose(F.relu(a).data, np.maximum(a.data, 0))
    assert np.allclose(F.tanh(a).data, np.tanh(a.data), atol=1e-6)
    assert np.allclose(F.sigmoid(a).data, 1 / (1 + np.exp(-a.data)), atol=1e-6)
    assert np.allclose(F.exp(a).data, np.exp(a.data), atol=1e-5)
    pos = F.add(F.mul(a, a), 0.5)
    assert np.allclose(F.log(pos).data, np.log(pos.data), atol=1e-6)
    assert np.allclose(F.sqrt(pos).data, np.sqrt(pos.data), atol=1e-6)
    ln = F.leaky_relu(a, 0.1)
    assert np.allclose(ln.data, np.where(a.data > 0, a.data, 0.1 * a.data))


def test_sigmoid_extreme_values_stable():
    t = Tensor(np.array([-500.0, 500.0, 0.0], dtype=np.float32))
    out = F.sigmoid(t).data
    assert np.all(np.isfinite(out))
    assert out[0] == pytest.approx(0.0, abs=1e-6)
    assert out[1] == pytest.approx(1.0, abs=1e-6)


def test_softmax(a):
    s = F.softmax(a, axis=1)
    assert np.allclose(s.data.sum(axis=1), 1.0, atol=1e-6)
    e = np.exp(a.data - a.data.max(1, keepdims=True))
    assert np.allclose(s.data, e / e.sum(1, keepdims=True), atol=1e-6)


def test_clip(a):
    c = F.clip(a, -0.5, 0.5)
    assert c.data.min() >= -0.5 and c.data.max() <= 0.5


def test_dropout_train_eval(a):
    d = F.dropout(a, p=0.5, training=True, seed=0)
    kept = d.data != 0
    # kept entries are scaled by 1/keep
    assert np.allclose(d.data[kept], a.data[kept] * 2.0, atol=1e-6)
    d_eval = F.dropout(a, p=0.5, training=False)
    assert np.allclose(d_eval.data, a.data)


def test_maximum(a, b):
    assert np.allclose(F.maximum(a, b).data, np.maximum(a.data, b.data))


def test_clone_independent(a):
    c = a.clone()
    c.data[0, 0] = 123.0
    assert a.data[0, 0] != 123.0


def test_detach_cuts_graph(a):
    x = Tensor(a.data, requires_grad=True)
    y = F.mul(x, 2.0)
    d = y.detach()
    assert d._ctx is None and not d.requires_grad
    assert d.data is y.data


def test_tensor_dtype_coercion():
    t = Tensor(np.arange(4, dtype=np.float64))
    assert t.dtype == np.float32
    t2 = Tensor([1, 2, 3])
    assert t2.dtype == np.float32


def test_tensor_wrapping_tensor_raises(a):
    with pytest.raises(TypeError):
        Tensor(a)


def test_numel_item_size(a):
    assert a.numel() == 20
    assert a.size() == (4, 5)
    assert a.size(1) == 5
    one = Tensor(np.array([3.5], dtype=np.float32))
    assert one.item() == pytest.approx(3.5)


def test_zeros_ones():
    z = F.zeros((2, 3))
    o = F.ones(4)
    assert not z.data.any() and (o.data == 1).all()
