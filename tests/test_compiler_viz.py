"""IR visualization output."""

from __future__ import annotations

import pytest

from repro.compiler import compile_vertex_program
from repro.compiler.symbols import trace
from repro.compiler.viz import tensor_ir_to_dot, vertex_ir_to_dot


@pytest.fixture
def gcn_prog():
    return compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm,
        feature_widths={"h": "v", "norm": "s"},
        grad_features={"h"},
        name="viz_gcn",
    )


def test_vertex_ir_dot_structure():
    traced = trace(lambda v: v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm)
    dot = vertex_ir_to_dot(traced.root, name="gcn")
    assert dot.startswith('digraph "gcn"')
    assert dot.rstrip().endswith("}")
    assert "agg" in dot and "mul" in dot
    assert dot.count("->") == sum(len(n.args) for n in traced.root.topo())
    # all three stages appear, color-coded
    assert "[src]" in dot and "[dst]" in dot


def test_tensor_ir_dot_structure(gcn_prog):
    dot = tensor_ir_to_dot(gcn_prog.fwd_prog)
    assert "spmm" in dot
    assert "node[h]" in dot  # input binding shown
    assert "penwidth=3" in dot  # output highlighted
    assert dot.count("digraph") == 1


def test_backward_ir_dot(gcn_prog):
    dot = tensor_ir_to_dot(gcn_prog.bwd_prog)
    assert "spmm_T" in dot
    assert "g_out" in dot


def test_dot_escapes_quotes():
    traced = trace(lambda v: v.agg_sum(lambda nb: nb.h))
    dot = vertex_ir_to_dot(traced.root, name='a"b')
    assert 'digraph "a\\"b"' in dot


def test_dot_valid_for_every_library_layer():
    from repro.nn import DConv, GATConv, GCNConv, SAGEConv

    for layer in (GCNConv(4, 4), GATConv(4, 4), SAGEConv(4, 4), DConv(4, 4)):
        dot = tensor_ir_to_dot(layer.program.fwd_prog)
        assert dot.count("{") == dot.count("}")
        assert "->" in dot
