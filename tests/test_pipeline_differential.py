"""Pipelined execution is a pure wall-clock optimization: the differential.

The staleness knob must never move the numbers.  A prefetched snapshot is
built by replaying the same update batches against the same shared version
map as the main thread would, so at *any* staleness the per-epoch losses
are bitwise identical to the strictly serial run (``pipeline=0``, which
never even creates the worker thread).  CI runs a smoke slice of this
module as the gating pipeline-differential step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import DYNAMIC_DATASETS
from repro.device import Device, use_device
from repro.tensor import init
from repro.train import STGraphLinkPredictor, STGraphTrainer, make_link_prediction_samples

_SEED = 0
_EPOCHS = 3


def _losses(ds, samples, pipeline: int, epochs: int = _EPOCHS) -> list[float]:
    """Per-epoch losses of one seeded run on a fresh device/trainer/graph."""
    with use_device(Device(name=f"pipe{pipeline}")):
        init.set_seed(_SEED)
        model = STGraphLinkPredictor(ds.feature_size, 8)
        trainer = STGraphTrainer(
            model, ds.build_gpma(), lr=1e-2, sequence_length=3,
            task="link_prediction", link_samples=samples, pipeline=pipeline,
        )
        return trainer.train(ds.features, epochs=epochs)


@pytest.fixture(scope="module", params=["sx-mathoverflow", "reddit-title"])
def workload(request):
    ds = DYNAMIC_DATASETS[request.param](scale=0.02, feature_size=8, max_snapshots=8)
    samples = make_link_prediction_samples(ds.dtdg, samples_per_timestamp=32, seed=_SEED)
    return ds, samples


@pytest.mark.parametrize("staleness", [1, 2, 4])
def test_pipelined_losses_bitwise_equal_serial(workload, staleness):
    """Any staleness ≥ 1 reproduces the serial per-epoch losses bitwise."""
    ds, samples = workload
    serial = _losses(ds, samples, pipeline=0)
    piped = _losses(ds, samples, pipeline=staleness)
    assert len(serial) == len(piped) == _EPOCHS
    assert all(np.float64(a) == np.float64(b) for a, b in zip(serial, piped)), (
        f"staleness={staleness} diverged: {serial} vs {piped}"
    )


def test_pipelined_run_is_deterministic_across_repeats(workload):
    """Two seeded pipelined runs agree bitwise with each other (no
    thread-timing dependence leaks into the numerics)."""
    ds, samples = workload
    first = _losses(ds, samples, pipeline=2)
    second = _losses(ds, samples, pipeline=2)
    assert all(np.float64(a) == np.float64(b) for a, b in zip(first, second))


def test_pipeline_zero_never_starts_a_worker(workload):
    """staleness 0 is strictly serial: no scheduler object is ever created."""
    ds, samples = workload
    with use_device(Device(name="serial")):
        init.set_seed(_SEED)
        model = STGraphLinkPredictor(ds.feature_size, 8)
        trainer = STGraphTrainer(
            model, ds.build_gpma(), lr=1e-2, sequence_length=3,
            task="link_prediction", link_samples=samples,
        )
        trainer.train(ds.features, epochs=1)
        assert trainer.executor.prefetcher is None
        assert trainer.graph._prefetch_active is False
        assert trainer.graph.prefetch_hits == 0
        assert trainer.graph.prefetch_misses == 0


def test_prefetch_hits_are_counted_when_pipelined(workload):
    """A pipelined run actually consumes staged snapshots (hits > 0) and its
    hit/miss accounting reaches the device profiler."""
    ds, samples = workload
    with use_device(Device(name="counted")) as device:
        init.set_seed(_SEED)
        model = STGraphLinkPredictor(ds.feature_size, 8)
        trainer = STGraphTrainer(
            model, ds.build_gpma(), lr=1e-2, sequence_length=3,
            task="link_prediction", link_samples=samples, pipeline=2,
        )
        trainer.train(ds.features, epochs=_EPOCHS)
        assert trainer.graph.prefetch_hits > 0
        assert device.profiler.counter("prefetch_hits") == trainer.graph.prefetch_hits
        assert device.profiler.counter("prefetch_misses") == trainer.graph.prefetch_misses


def test_kill_and_resume_composes_with_pipeline(tmp_path, workload):
    """Kill a pipelined run mid-epoch, resume pipelined in a fresh "process":
    final losses stay bitwise equal to the uninterrupted *serial* run (the
    version-map restore invalidates the builder's private cursor via the
    builder epoch, so resumed prefetch keys match the recorded ones)."""
    from repro.resilience import FaultPlan, FaultSite, SimulatedKill, use_fault_plan

    ds, samples = workload
    reference = _losses(ds, samples, pipeline=0)
    ckpt = tmp_path / "pipe.npz"
    plan = FaultPlan(
        name="kill-pipe",
        sites=[FaultSite(kind="kill", epoch=1, sequence=1, timestamp=4)],
    )
    with use_device(Device(name="pipe-ckpt-a")), use_fault_plan(plan):
        init.set_seed(_SEED)
        model = STGraphLinkPredictor(ds.feature_size, 8)
        trainer = STGraphTrainer(
            model, ds.build_gpma(), lr=1e-2, sequence_length=3,
            task="link_prediction", link_samples=samples, pipeline=2,
        )
        with pytest.raises(SimulatedKill):
            trainer.train(ds.features, epochs=_EPOCHS, checkpoint_path=ckpt)
    assert ckpt.exists()
    with use_device(Device(name="pipe-ckpt-b")):
        init.set_seed(_SEED)
        model = STGraphLinkPredictor(ds.feature_size, 8)
        trainer = STGraphTrainer(
            model, ds.build_gpma(), lr=1e-2, sequence_length=3,
            task="link_prediction", link_samples=samples, pipeline=2,
        )
        losses = trainer.train(
            ds.features, epochs=_EPOCHS, checkpoint_path=ckpt, resume=True
        )
    assert len(losses) == _EPOCHS
    assert all(np.float64(a) == np.float64(b) for a, b in zip(losses, reference))
