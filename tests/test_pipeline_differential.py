"""Pipelined execution is a pure wall-clock optimization: the differential.

The staleness knob must never move the numbers.  A prefetched snapshot is
built by replaying the same update batches against the same shared version
map as the main thread would, so at *any* staleness the per-epoch losses
are bitwise identical to the strictly serial run (``pipeline=0``, which
never even creates the worker thread).  CI runs a smoke slice of this
module as the gating pipeline-differential step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import DYNAMIC_DATASETS
from repro.device import Device, use_device
from repro.tensor import init
from repro.train import STGraphLinkPredictor, STGraphTrainer, make_link_prediction_samples

_SEED = 0
_EPOCHS = 3


def _losses(
    ds, samples, pipeline: int, epochs: int = _EPOCHS, engine: str | None = None
) -> list[float]:
    """Per-epoch losses of one seeded run on a fresh device/trainer/graph."""
    with use_device(Device(name=f"pipe{pipeline}")):
        init.set_seed(_SEED)
        model = STGraphLinkPredictor(ds.feature_size, 8)
        trainer = STGraphTrainer(
            model, ds.build_gpma(), lr=1e-2, sequence_length=3,
            task="link_prediction", link_samples=samples, pipeline=pipeline,
            engine=engine,
        )
        return trainer.train(ds.features, epochs=epochs)


@pytest.fixture(scope="module", params=["sx-mathoverflow", "reddit-title"])
def workload(request):
    ds = DYNAMIC_DATASETS[request.param](scale=0.02, feature_size=8, max_snapshots=8)
    samples = make_link_prediction_samples(ds.dtdg, samples_per_timestamp=32, seed=_SEED)
    return ds, samples


@pytest.mark.parametrize("staleness", [1, 2, 4])
def test_pipelined_losses_bitwise_equal_serial(workload, staleness):
    """Any staleness ≥ 1 reproduces the serial per-epoch losses bitwise."""
    ds, samples = workload
    serial = _losses(ds, samples, pipeline=0)
    piped = _losses(ds, samples, pipeline=staleness)
    assert len(serial) == len(piped) == _EPOCHS
    assert all(np.float64(a) == np.float64(b) for a, b in zip(serial, piped)), (
        f"staleness={staleness} diverged: {serial} vs {piped}"
    )


@pytest.mark.parametrize("engine", ["kernel", "interpreter", "compiled"])
@pytest.mark.parametrize("staleness", [1, 2, 4])
def test_engine_axis_bitwise_under_pipelining(workload, staleness, engine):
    """Neither the engine nor the staleness knob moves the numbers: every
    (engine, staleness) cell reproduces the serial default-engine losses
    bitwise.  The compiled tier's cross-timestamp fusion cache must stay
    invisible even when prefetching changes which thread builds snapshots."""
    ds, samples = workload
    serial = _losses(ds, samples, pipeline=0)
    cell = _losses(ds, samples, pipeline=staleness, engine=engine)
    assert len(serial) == len(cell) == _EPOCHS
    assert all(np.float64(a) == np.float64(b) for a, b in zip(serial, cell)), (
        f"engine={engine} staleness={staleness} diverged: {serial} vs {cell}"
    )


def _one_timestamp_workload():
    """A hand-built T == 1 DTDG (the dataset loaders floor at two snapshots)."""
    from repro.graph.dtdg import DTDG

    n = 20
    rng = np.random.default_rng(7)
    src = rng.integers(0, n, 60).astype(np.int64)
    dst = rng.integers(0, n, 60).astype(np.int64)
    dtdg = DTDG([(src, dst)], n)
    features = [rng.standard_normal((n, 8)).astype(np.float32)]
    samples = make_link_prediction_samples(dtdg, samples_per_timestamp=16, seed=_SEED)
    return dtdg, features, samples


def test_one_timestamp_pipeline_differential():
    """Degenerate T == 1 DTDG: wraparound scheduling must not have the worker
    rebuild (and re-stage) the only snapshot the main thread is using —
    the regression behind the ``(t + i) % T`` self-prefetch fix.  Losses
    stay bitwise equal to serial and the scheduler queues nothing."""
    from repro.graph import GPMAGraph

    dtdg, features, samples = _one_timestamp_workload()
    assert dtdg.num_timestamps == 1

    # Unit level: every candidate wraps onto the executing timestamp itself,
    # so the scheduler must never hand work to the worker.
    from repro.core.prefetch import PrefetchScheduler

    with use_device(Device(name="pipe-t1-unit")):
        sched = PrefetchScheduler(GPMAGraph(dtdg), staleness=2)
        try:
            assert sched.schedule_ahead(0) == 0
            assert sched.scheduled_total == 0
        finally:
            sched.stop()
        assert sched.built_total == 0

    # End to end: the pipelined run stays bitwise equal to serial, and the
    # worker never materializes a snapshot (no "prefetch" profiler phase).
    def run(pipeline: int):
        with use_device(Device(name=f"pipe-t1-{pipeline}")) as device:
            init.set_seed(_SEED)
            model = STGraphLinkPredictor(8, 8)
            trainer = STGraphTrainer(
                model, GPMAGraph(dtdg), lr=1e-2, sequence_length=1,
                task="link_prediction", link_samples=samples, pipeline=pipeline,
            )
            losses = trainer.train(features, epochs=_EPOCHS)
            return losses, device

    serial, _ = run(0)
    piped, device = run(2)
    assert device.profiler.calls("prefetch") == 0
    assert len(serial) == len(piped) == _EPOCHS
    assert all(np.float64(a) == np.float64(b) for a, b in zip(serial, piped))


def test_pipelined_run_is_deterministic_across_repeats(workload):
    """Two seeded pipelined runs agree bitwise with each other (no
    thread-timing dependence leaks into the numerics)."""
    ds, samples = workload
    first = _losses(ds, samples, pipeline=2)
    second = _losses(ds, samples, pipeline=2)
    assert all(np.float64(a) == np.float64(b) for a, b in zip(first, second))


def test_pipeline_zero_never_starts_a_worker(workload):
    """staleness 0 is strictly serial: no scheduler object is ever created."""
    ds, samples = workload
    with use_device(Device(name="serial")):
        init.set_seed(_SEED)
        model = STGraphLinkPredictor(ds.feature_size, 8)
        trainer = STGraphTrainer(
            model, ds.build_gpma(), lr=1e-2, sequence_length=3,
            task="link_prediction", link_samples=samples,
        )
        trainer.train(ds.features, epochs=1)
        assert trainer.executor.prefetcher is None
        assert trainer.graph._prefetch_active is False
        assert trainer.graph.prefetch_hits == 0
        assert trainer.graph.prefetch_misses == 0


def test_prefetch_hits_are_counted_when_pipelined(workload):
    """A pipelined run actually consumes staged snapshots (hits > 0) and its
    hit/miss accounting reaches the device profiler."""
    ds, samples = workload
    with use_device(Device(name="counted")) as device:
        init.set_seed(_SEED)
        model = STGraphLinkPredictor(ds.feature_size, 8)
        trainer = STGraphTrainer(
            model, ds.build_gpma(), lr=1e-2, sequence_length=3,
            task="link_prediction", link_samples=samples, pipeline=2,
        )
        trainer.train(ds.features, epochs=_EPOCHS)
        assert trainer.graph.prefetch_hits > 0
        assert device.profiler.counter("prefetch_hits") == trainer.graph.prefetch_hits
        assert device.profiler.counter("prefetch_misses") == trainer.graph.prefetch_misses


def test_kill_and_resume_composes_with_pipeline(tmp_path, workload):
    """Kill a pipelined run mid-epoch, resume pipelined in a fresh "process":
    final losses stay bitwise equal to the uninterrupted *serial* run (the
    version-map restore invalidates the builder's private cursor via the
    builder epoch, so resumed prefetch keys match the recorded ones)."""
    from repro.resilience import FaultPlan, FaultSite, SimulatedKill, use_fault_plan

    ds, samples = workload
    reference = _losses(ds, samples, pipeline=0)
    ckpt = tmp_path / "pipe.npz"
    plan = FaultPlan(
        name="kill-pipe",
        sites=[FaultSite(kind="kill", epoch=1, sequence=1, timestamp=4)],
    )
    with use_device(Device(name="pipe-ckpt-a")), use_fault_plan(plan):
        init.set_seed(_SEED)
        model = STGraphLinkPredictor(ds.feature_size, 8)
        trainer = STGraphTrainer(
            model, ds.build_gpma(), lr=1e-2, sequence_length=3,
            task="link_prediction", link_samples=samples, pipeline=2,
        )
        with pytest.raises(SimulatedKill):
            trainer.train(ds.features, epochs=_EPOCHS, checkpoint_path=ckpt)
    assert ckpt.exists()
    with use_device(Device(name="pipe-ckpt-b")):
        init.set_seed(_SEED)
        model = STGraphLinkPredictor(ds.feature_size, 8)
        trainer = STGraphTrainer(
            model, ds.build_gpma(), lr=1e-2, sequence_length=3,
            task="link_prediction", link_samples=samples, pipeline=2,
        )
        losses = trainer.train(
            ds.features, epochs=_EPOCHS, checkpoint_path=ckpt, resume=True
        )
    assert len(losses) == _EPOCHS
    assert all(np.float64(a) == np.float64(b) for a, b in zip(losses, reference))
