"""Direct tests of the kernel-runtime primitives and GraphContext."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.compiler import runtime as rt
from repro.compiler.runtime import GraphContext
from repro.graph import StaticGraph


@pytest.fixture
def ctx(rng):
    g = nx.gnp_random_graph(20, 0.25, seed=17, directed=True)
    return GraphContext(StaticGraph.from_networkx(g)), g


def test_context_structural_arrays(ctx):
    c, g = ctx
    assert c.num_nodes == 20
    assert c.num_edges == g.number_of_edges()
    assert len(c.dst_per_edge) == c.num_edges
    # every canonical edge position (src=fwd_col[e], dst=dst_per_edge[e])
    # must be a real edge
    for e in range(c.num_edges):
        assert g.has_edge(int(c.fwd_col[e]), int(c.dst_per_edge[e]))


def test_label_permutations_consistent(ctx):
    c, g = ctx
    # label_to_fwd inverts fwd_eids
    assert np.array_equal(c.label_to_fwd[c.fwd_eids], np.arange(c.num_edges))
    # bwd position p and fwd position bwd_to_fwd[p] describe the same edge
    bwd_src = np.repeat(np.arange(c.num_nodes), np.diff(c.bwd_row))
    for p in range(c.num_edges):
        f = c.bwd_to_fwd[p]
        assert bwd_src[p] == c.fwd_col[f]
        assert c.bwd_col[p] == c.dst_per_edge[f]


def test_bind_edge_feature_roundtrip(ctx, rng):
    c, g = ctx
    label_vals = rng.standard_normal(c.num_edges).astype(np.float32)
    canonical = c.bind_edge_feature(label_vals)
    back = c.edge_grad_to_labels(canonical)
    assert np.allclose(back, label_vals)


def test_fwd_matrix_unweighted_cached(ctx):
    c, g = ctx
    assert c.fwd_matrix(None) is c.fwd_matrix(None)


def test_spmm_degree_order_invariant(ctx, rng):
    """Degree-ordered processing is a scheduling mechanism; it must not
    change the result."""
    c, g = ctx
    x = rng.standard_normal((20, 5)).astype(np.float32)
    w = rng.standard_normal(c.num_edges).astype(np.float32)
    c.use_degree_order = True
    a = rt.spmm(c, w, x)
    c.use_degree_order = False
    b = rt.spmm(c, w, x)
    assert np.allclose(a, b, atol=1e-5)


def test_spmm_T_is_adjoint_both_directions(ctx, rng):
    c, g = ctx
    x = rng.standard_normal((20, 3)).astype(np.float32)
    y = rng.standard_normal((20, 3)).astype(np.float32)
    w = rng.standard_normal(c.num_edges).astype(np.float32)
    for direction in ("in", "out"):
        lhs = float((rt.spmm(c, w, x, direction=direction) * y).sum())
        rhs = float((rt.spmm_T(c, w, y, direction=direction) * x).sum())
        assert lhs == pytest.approx(rhs, rel=1e-3, abs=1e-3)


def test_segment_sum_empty_rows(rng):
    """Vertices with no in-edges must sum to exactly zero (the reduceat
    pitfall the cumsum formulation avoids)."""
    sg = StaticGraph(np.array([0, 0]), np.array([1, 1]), 4)  # only node 1 has in-edges
    c = GraphContext(sg)
    w = np.array([2.0, 3.0], dtype=np.float32)
    out = rt.segment_sum(c, w)
    assert out.tolist() == [0.0, 5.0, 0.0, 0.0]


def test_scatter_src(ctx, rng):
    c, g = ctx
    w = rng.standard_normal(c.num_edges).astype(np.float32)
    out = rt.scatter_src(c, w)
    ref = np.zeros(20)
    for e in range(c.num_edges):
        ref[c.fwd_col[e]] += w[e]
    assert np.allclose(out, ref, atol=1e-4)


def test_gather_src_dst(ctx, rng):
    c, g = ctx
    x = rng.standard_normal(20).astype(np.float32)
    assert np.allclose(rt.gather_src(c, x), x[c.fwd_col])
    assert np.allclose(rt.gather_dst(c, x), x[c.dst_per_edge])


def test_edge_softmax_isolated_vertices():
    sg = StaticGraph(np.array([0]), np.array([1]), 3)
    c = GraphContext(sg)
    alpha = rt.edge_softmax(c, np.array([3.7], dtype=np.float32))
    assert alpha.tolist() == [1.0]  # single in-edge normalizes to 1


def test_edge_softmax_extreme_scores_stable(ctx, rng):
    c, g = ctx
    z = (rng.standard_normal(c.num_edges) * 200).astype(np.float32)
    alpha = rt.edge_softmax(c, z)
    assert np.all(np.isfinite(alpha))
    sums = rt.segment_sum(c, alpha)
    assert np.allclose(sums[c.in_deg > 0], 1.0, atol=1e-4)


def test_edge_dot_directions(ctx, rng):
    c, g = ctx
    x = rng.standard_normal((20, 3)).astype(np.float32)
    gout = rng.standard_normal((20, 3)).astype(np.float32)
    din = rt.edge_dot(c, x, gout, direction="in")
    dout = rt.edge_dot(c, x, gout, direction="out")
    e = 0
    s, d = c.fwd_col[e], c.dst_per_edge[e]
    assert din[e] == pytest.approx(float(x[s] @ gout[d]), rel=1e-4)
    assert dout[e] == pytest.approx(float(x[d] @ gout[s]), rel=1e-4)


def test_agg_max_isolated_vertices_zero():
    sg = StaticGraph(np.array([0]), np.array([1]), 3)
    c = GraphContext(sg)
    x = np.array([[-5.0], [1.0], [2.0]], dtype=np.float32)
    out = rt.agg_max(c, x)
    assert out[0, 0] == 0.0 and out[2, 0] == 0.0  # isolated → 0, not -inf
    assert out[1, 0] == -5.0


def test_degree_helpers(ctx):
    c, g = ctx
    assert np.array_equal(rt.in_deg(c), c.in_deg.astype(np.float32))
    assert np.all(rt.in_deg_clamped(c) >= 1)
    assert np.all(rt.out_deg_clamped(c) >= 1)
    assert np.array_equal(rt.out_deg(c), c.out_deg.astype(np.float32))


def test_colsum_widths():
    assert rt.colsum(np.ones((3, 4))).tolist() == [4.0, 4.0, 4.0]
    assert rt.colsum(np.ones(3)).tolist() == [1.0, 1.0, 1.0]


def test_masks():
    x = np.array([-1.0, 0.0, 2.0], dtype=np.float32)
    assert rt.relu_mask(x).tolist() == [0.0, 0.0, 1.0]
    assert rt.leaky_mask(x, slope=0.5).tolist() == [0.5, 0.5, 1.0]
