"""Cross-framework GConvGRU parity (STGraph vs PyG-T baseline)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.baselines.pygt import PyGTGConvGRU
from repro.core import TemporalExecutor
from repro.graph import StaticGraph
from repro.nn import GConvGRU
from repro.tensor import Tensor, functional as F, init


@pytest.fixture
def setup(rng):
    g = nx.gnp_random_graph(14, 0.3, seed=6, directed=True)
    edges = np.array(list(g.edges()), dtype=np.int64).T
    sg = StaticGraph(edges[0], edges[1], 14)
    xs = [rng.standard_normal((14, 4)).astype(np.float32) for _ in range(4)]
    ys = [rng.standard_normal((14, 6)).astype(np.float32) for _ in range(4)]
    return sg, edges, xs, ys


def test_gconv_gru_parity(setup):
    sg, edges, xs, ys = setup
    init.set_seed(13)
    m_stg = GConvGRU(4, 6)
    init.set_seed(13)
    m_pyg = PyGTGConvGRU(4, 6)
    sd1, sd2 = m_stg.state_dict(), m_pyg.state_dict()
    assert set(sd1) == set(sd2)
    for k in sd1:
        assert np.array_equal(sd1[k], sd2[k]), k

    ex = TemporalExecutor(sg)
    h1 = h2 = None
    t1 = t2 = None
    for t, (x, y) in enumerate(zip(xs, ys)):
        ex.begin_timestamp(t)
        h1 = m_stg(ex, Tensor(x), h1)
        h2 = m_pyg(Tensor(x), edges, h2)
        l1, l2 = F.mse_loss(h1, y), F.mse_loss(h2, y)
        t1 = l1 if t1 is None else F.add(t1, l1)
        t2 = l2 if t2 is None else F.add(t2, l2)
    assert t1.item() == pytest.approx(t2.item(), rel=1e-5)
    t1.backward()
    t2.backward()
    ex.check_drained()
    assert np.allclose(m_stg.conv_xz.weight.grad, m_pyg.conv_xz.weight.grad, atol=1e-4)
    assert np.allclose(m_stg.conv_hh.weight.grad, m_pyg.conv_hh.weight.grad, atol=1e-4)


def test_gconv_gru_baseline_memory_heavier(setup, fresh_device):
    """Six edge-parallel convolutions per timestamp: the baseline's retained
    E×F duplicates dwarf STGraph's pruned saved state."""
    sg, edges, xs, ys = setup
    E, Fdim = edges.shape[1], 6

    init.set_seed(1)
    m_pyg = PyGTGConvGRU(4, 6)
    before = fresh_device.tracker.current_bytes
    h = None
    for x in xs:
        h = m_pyg(Tensor(x), edges, h)
    retained_pyg = fresh_device.tracker.current_bytes - before
    F.sum(h).backward()
    # at least 6 convs × 4 timestamps × E×F message tensors were retained
    assert retained_pyg > 6 * len(xs) * E * Fdim * 4 * 0.5
