"""CLI commands (in-process)."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "STGraph reproduction" in out
    assert "repro" in out and "tgcn" in out


def test_inspect_gcn(capsys):
    assert main(["inspect", "--layer", "gcn"]) == 0
    out = capsys.readouterr().out
    assert "generated forward kernel" in out
    assert "spmm" in out
    assert "state stack" in out


def test_inspect_dot_output(capsys):
    assert main(["inspect", "--layer", "gcn", "--dot"]) == 0
    out = capsys.readouterr().out
    assert out.count("digraph") == 3  # vertex IR + forward + backward
    assert "spmm" in out


def test_inspect_all_layers(capsys):
    for layer in ("gat", "sage", "cheb", "dconv"):
        assert main(["inspect", "--layer", layer, "--features", "4"]) == 0
        assert "forward" in capsys.readouterr().out


def test_train_static(capsys):
    rc = main([
        "train", "--dataset", "HC", "--model", "tgcn",
        "--epochs", "3", "--timestamps", "12", "--features", "4", "--hidden", "8",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "loss:" in out and "per-epoch time" in out and "peak device memory" in out


def test_train_baseline(capsys):
    rc = main([
        "train", "--dataset", "HC", "--system", "pygt",
        "--epochs", "3", "--timestamps", "12", "--features", "4", "--hidden", "8",
    ])
    assert rc == 0
    assert "loss:" in capsys.readouterr().out


def test_train_dynamic(capsys):
    rc = main([
        "train", "--dataset", "sx-mathoverflow", "--scale", "0.005",
        "--epochs", "3", "--timestamps", "5", "--features", "4", "--hidden", "8",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "updates" in out  # graph-update share reported for DTDGs


def test_train_gconv_gru(capsys):
    rc = main([
        "train", "--dataset", "PM", "--model", "gconv_gru",
        "--epochs", "2", "--timestamps", "8", "--features", "4", "--hidden", "8",
    ])
    assert rc == 0


def test_train_unknown_dataset():
    with pytest.raises(SystemExit):
        main(["train", "--dataset", "nope", "--epochs", "1"])


def test_bench_table1(capsys):
    assert main(["bench", "--experiment", "table1"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_bench_requires_experiment():
    with pytest.raises(SystemExit):
        main(["bench"])


def test_lint_all_clean(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "linted" in out and "0 error(s)" in out
    assert "gat" in out


def test_lint_single_layer(capsys):
    assert main(["lint", "--layer", "gcn", "--features", "4"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_lint_examples(capsys):
    assert main(["lint", "--examples"]) == 0
    out = capsys.readouterr().out
    assert "gated_attention" in out
    assert "0 error(s)" in out


def test_lint_codes_table(capsys):
    assert main(["lint", "--codes"]) == 0
    out = capsys.readouterr().out
    assert "STG001" in out and "STG030" in out
    assert "error" in out and "warning" in out
