"""StaticGraph / NaiveGraph / GPMAGraph behaviour and equivalence."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graph import DTDG, GPMAGraph, NaiveGraph, StaticGraph
from repro.pma.pma import SPACE_KEY


@pytest.fixture
def random_dtdg(rng):
    n = 30
    keys = set()
    while len(keys) < 90:
        s, d = rng.integers(0, n, 2)
        if s != d:
            keys.add((int(s), int(d)))
    snaps = []
    for t in range(6):
        if t:
            for k in sorted(keys)[:5]:
                keys.discard(k)
            while len(keys) < 90:
                s, d = rng.integers(0, n, 2)
                if s != d:
                    keys.add((int(s), int(d)))
        arr = np.array(sorted(keys), dtype=np.int64)
        snaps.append((arr[:, 0].copy(), arr[:, 1].copy()))
    return DTDG(snaps, n)


def _edge_set(graph):
    bwd = graph.backward_csr()
    out = set()
    for u in range(graph.num_nodes):
        for v in bwd.neighbors(u):
            out.add((int(u), int(v)))
    return out


# ---------------------------------------------------------------------------
# StaticGraph
# ---------------------------------------------------------------------------
def test_static_graph_matches_networkx():
    g = nx.gnp_random_graph(25, 0.2, seed=4, directed=True)
    sg = StaticGraph.from_networkx(g)
    assert sg.num_nodes == 25
    assert sg.num_edges == g.number_of_edges()
    assert _edge_set(sg) == set(g.edges())
    for v in range(25):
        assert sg.in_degrees()[v] == g.in_degree(v)
        assert sg.out_degrees()[v] == g.out_degree(v)


def test_static_graph_temporal_identity():
    sg = StaticGraph(np.array([0]), np.array([1]), 2)
    assert sg.get_graph(5) is sg
    assert sg.get_backward_graph(3) is sg
    assert not sg.is_dynamic


def test_static_graph_label_consistency():
    g = nx.gnp_random_graph(15, 0.3, seed=9, directed=True)
    sg = StaticGraph.from_networkx(g)
    sg.validate_label_consistency()


def test_static_graph_length_mismatch():
    with pytest.raises(ValueError):
        StaticGraph(np.array([0, 1]), np.array([1]), 3)


# ---------------------------------------------------------------------------
# NaiveGraph
# ---------------------------------------------------------------------------
def test_naive_graph_snapshots(random_dtdg):
    ng = NaiveGraph(random_dtdg)
    assert ng.is_dynamic
    assert ng.num_timestamps == random_dtdg.num_timestamps
    for t in range(random_dtdg.num_timestamps):
        ng.get_graph(t)
        s, d = random_dtdg.snapshot_edges(t)
        assert _edge_set(ng) == set(zip(s.tolist(), d.tolist()))
        ng.validate_label_consistency()


def test_naive_graph_stores_two_csr_copies(random_dtdg, fresh_device):
    ng = NaiveGraph(random_dtdg)
    # the paper's memory critique: both orientations per snapshot resident
    assert ng.storage_bytes() > 0
    tags = fresh_device.tracker.live_by_tag()
    assert any("csr.fwd" in t for t in tags)
    assert any("csr.bwd" in t for t in tags)


def test_naive_graph_backward_positioning(random_dtdg):
    ng = NaiveGraph(random_dtdg)
    ng.get_graph(3)
    e3 = _edge_set(ng)
    ng.get_backward_graph(1)
    s, d = random_dtdg.snapshot_edges(1)
    assert _edge_set(ng) == set(zip(s.tolist(), d.tolist()))
    ng.get_graph(3)
    assert _edge_set(ng) == e3


# ---------------------------------------------------------------------------
# GPMAGraph
# ---------------------------------------------------------------------------
def test_gpma_equals_naive_on_walks(random_dtdg, rng):
    ng = NaiveGraph(random_dtdg)
    gg = GPMAGraph(random_dtdg)
    walk = [0, 1, 2, 3, 4, 5, 4, 3, 2, 1, 0, 3, 5, 0, 2]
    for t in walk:
        ng.get_graph(t)
        gg.get_graph(t)
        gg.pma.check_invariants()
        assert _edge_set(gg) == _edge_set(ng), t
        assert np.array_equal(gg.in_degrees(), ng.in_degrees())
        assert np.array_equal(gg.out_degrees(), ng.out_degrees())
        gg.validate_label_consistency()


def test_gpma_out_of_range_timestamp(random_dtdg):
    gg = GPMAGraph(random_dtdg)
    with pytest.raises(IndexError):
        gg.get_graph(99)
    with pytest.raises(IndexError):
        gg.get_graph(-1)


def test_gpma_cache_restores_state(random_dtdg):
    gg = GPMAGraph(random_dtdg)
    for t in range(6):
        gg.get_graph(t)
    gg.cache_snapshot()
    for t in range(5, -1, -1):
        gg.get_backward_graph(t)
    batches_before = gg.update_batches_applied
    gg.get_graph(5)  # should restore the cache, zero update batches
    assert gg.cache_restores == 1
    assert gg.update_batches_applied == batches_before
    s, d = random_dtdg.snapshot_edges(5)
    assert _edge_set(gg) == set(zip(s.tolist(), d.tolist()))


def test_gpma_cache_disabled(random_dtdg):
    gg = GPMAGraph(random_dtdg, enable_cache=False)
    for t in range(6):
        gg.get_graph(t)
    gg.cache_snapshot()  # no-op
    for t in range(5, -1, -1):
        gg.get_backward_graph(t)
    before = gg.update_batches_applied
    gg.get_graph(5)
    assert gg.cache_restores == 0
    assert gg.update_batches_applied == before + 5  # replayed all updates


def test_gpma_gapped_csr_structure(random_dtdg):
    gg = GPMAGraph(random_dtdg)
    gg.get_graph(2)
    row, col, eid = gg.gapped_csr()
    assert len(row) == gg.num_nodes + 1
    valid = col != SPACE_KEY
    assert int(valid.sum()) == gg.num_edges
    # labels are exactly 0..E-1 (Algorithm 2 relabelling)
    assert sorted(eid[valid].tolist()) == list(range(gg.num_edges))
    # every valid slot lies inside its source's window
    keys, _ = gg.pma.gapped_arrays()
    for i in range(gg.num_nodes):
        window = keys[row[i] : row[i + 1]]
        w_valid = window != SPACE_KEY
        if w_valid.any():
            srcs = window[w_valid] // gg.num_nodes
            assert (srcs == i).all()


def test_gpma_storage_constant_in_timestamps(random_dtdg):
    """GPMA's persistent storage doesn't scale with snapshot count."""
    gg = GPMAGraph(random_dtdg)
    first = gg.storage_bytes()
    for t in range(6):
        gg.get_graph(t)
    assert gg.storage_bytes() <= first * 2  # may grow with capacity, not with T


def test_gpma_num_edges_tracks_snapshot(random_dtdg):
    gg = GPMAGraph(random_dtdg)
    for t in range(random_dtdg.num_timestamps):
        gg.get_graph(t)
        assert gg.num_edges == random_dtdg.snapshot_edge_count(t)
