"""MemoryTracker / DeviceAllocator accounting."""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.device import DeviceAllocator, MemoryTracker


def test_track_counts_bytes():
    tr = MemoryTracker()
    a = tr.track(np.zeros(1000, dtype=np.float32))
    assert tr.current_bytes == 4000
    assert tr.peak_bytes == 4000
    del a
    gc.collect()
    assert tr.current_bytes == 0
    assert tr.peak_bytes == 4000  # peak persists


def test_peak_tracks_high_water_mark():
    tr = MemoryTracker()
    a = tr.track(np.zeros(100, dtype=np.float64))
    b = tr.track(np.zeros(100, dtype=np.float64))
    del a
    gc.collect()
    c = tr.track(np.zeros(10, dtype=np.float64))
    assert tr.peak_bytes == 1600
    assert tr.current_bytes == 880
    del b, c


def test_views_not_double_counted():
    tr = MemoryTracker()
    base = tr.track(np.zeros(1000, dtype=np.float32))
    view = base[10:500]
    tr.track(view)  # same owning buffer: no extra accounting
    assert tr.current_bytes == 4000
    assert tr.live_allocation_count == 1
    tr.track(base)  # re-tracking the base itself is also a no-op
    assert tr.current_bytes == 4000
    del view, base
    gc.collect()
    assert tr.current_bytes == 0


def test_total_allocated_is_cumulative():
    tr = MemoryTracker()
    for _ in range(5):
        tr.track(np.zeros(10, dtype=np.float32))
    gc.collect()
    assert tr.total_allocated_bytes == 5 * 40
    assert tr.current_bytes == 0


def test_manual_add_release():
    tr = MemoryTracker()
    h = tr.manual_add(12345, tag="pool")
    assert tr.current_bytes == 12345
    assert tr.live_by_tag() == {"pool": 12345}
    tr.manual_release(h)
    assert tr.current_bytes == 0


def test_manual_release_idempotent():
    tr = MemoryTracker()
    h = tr.manual_add(10)
    tr.manual_release(h)
    tr.manual_release(h)  # no error, no double-subtract
    assert tr.current_bytes == 0


def test_reset_peak():
    tr = MemoryTracker()
    a = tr.track(np.zeros(1000, dtype=np.float32))
    del a
    gc.collect()
    assert tr.peak_bytes == 4000
    tr.reset_peak()
    assert tr.peak_bytes == 0


def test_scope_measures_region():
    tr = MemoryTracker()
    keep = tr.track(np.zeros(100, dtype=np.float32))
    with tr.scope() as scope:
        tmp = tr.track(np.zeros(1000, dtype=np.float32))
        del tmp
        gc.collect()
    assert scope.peak_delta_bytes == 4000
    assert scope.entry_bytes == 400
    del keep


def test_live_by_tag_groups():
    tr = MemoryTracker()
    a = tr.track(np.zeros(10, dtype=np.float32), tag="x")
    b = tr.track(np.zeros(20, dtype=np.float32), tag="x")
    c = tr.track(np.zeros(30, dtype=np.float32), tag="y")
    tags = tr.live_by_tag()
    assert tags["x"] == 120
    assert tags["y"] == 120
    del a, b, c


def test_allocator_constructors_track():
    alloc = DeviceAllocator()
    a = alloc.zeros((10, 10), dtype=np.float32)
    assert a.shape == (10, 10) and a.dtype == np.float32 and not a.any()
    b = alloc.empty(5, dtype=np.int64)
    assert b.shape == (5,)
    c = alloc.full(4, 7.0)
    assert (c == 7.0).all()
    assert alloc.tracker.current_bytes == 400 + 40 + 16
    del a, b, c


def test_allocator_upload_copies():
    alloc = DeviceAllocator()
    host = np.arange(6).reshape(2, 3)
    dev = alloc.upload(host)
    host[0, 0] = 99
    assert dev[0, 0] == 0  # independent copy
    assert dev.flags.c_contiguous


def test_allocator_adopt_no_copy():
    alloc = DeviceAllocator()
    arr = np.zeros(8)
    assert alloc.adopt(arr) is arr


def test_device_oom_cap():
    from repro.device import Device
    from repro.device.device import DeviceOutOfMemoryError

    dev = Device(memory_limit_bytes=100)
    big = dev.alloc.zeros(1000, dtype=np.float32)
    with pytest.raises(DeviceOutOfMemoryError):
        dev.check_oom()
    del big


def test_use_device_nesting():
    from repro.device import Device, current_device, use_device

    outer = current_device()
    inner = Device(name="inner")
    with use_device(inner):
        assert current_device() is inner
        nested = Device(name="nested")
        with use_device(nested):
            assert current_device() is nested
        assert current_device() is inner
    assert current_device() is outer


def test_bytes_by_tag_tracks_and_releases():
    import gc

    tracker = MemoryTracker()
    a = tracker.track(np.zeros(256, dtype=np.float32), tag="csr")
    b = tracker.track(np.zeros(128, dtype=np.float32), tag="state_stack")
    handle = tracker.manual_add(100, tag="pma")
    by_tag = tracker.bytes_by_tag()
    assert by_tag == {"csr": 1024, "state_stack": 512, "pma": 100}
    del a
    gc.collect()
    assert tracker.bytes_by_tag() == {"state_stack": 512, "pma": 100}
    tracker.manual_release(handle)
    del b
    gc.collect()
    assert tracker.bytes_by_tag() == {}
    assert tracker.current_bytes == 0


def test_peak_bytes_by_tag_and_reset():
    import gc

    tracker = MemoryTracker()
    a = tracker.track(np.zeros(512, dtype=np.float32), tag="csr")
    del a
    gc.collect()
    b = tracker.track(np.zeros(64, dtype=np.float32), tag="csr")
    c = tracker.track(np.zeros(32, dtype=np.float32), tag="state_stack")
    peaks = tracker.peak_bytes_by_tag()
    # Per-tag peaks are each tag's own maximum over time; they need not sum
    # to the global peak (which is the max of the total).
    assert peaks["csr"] == 2048
    assert peaks["state_stack"] == 128
    assert tracker.peak_bytes == 2048
    tracker.reset_peak()
    assert tracker.peak_bytes_by_tag() == {"csr": 256, "state_stack": 128}
    assert tracker.peak_bytes == tracker.current_bytes
    del b, c
