"""Property-based tests of the autodiff engine (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.tensor import Tensor, functional as F

_shapes = st.tuples(st.integers(1, 5), st.integers(1, 5))


def _arr(shape, seed, scale=1.0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float32)


@given(shape=_shapes, seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_add_commutes(shape, seed):
    a, b = _arr(shape, seed), _arr(shape, seed + 1)
    assert np.array_equal(F.add(Tensor(a), Tensor(b)).data, F.add(Tensor(b), Tensor(a)).data)


@given(shape=_shapes, seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_mul_grad_matches_other_operand(shape, seed):
    a, b = _arr(shape, seed), _arr(shape, seed + 1)
    ta = Tensor(a, requires_grad=True)
    F.sum(F.mul(ta, Tensor(b))).backward()
    assert np.allclose(ta.grad, b, atol=1e-6)


@given(shape=_shapes, seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_tanh_grad_bounded(shape, seed):
    """d tanh ∈ (0, 1]: gradients through tanh never exceed the seed grad."""
    a = _arr(shape, seed)
    t = Tensor(a, requires_grad=True)
    F.sum(F.tanh(t)).backward()
    assert np.all(t.grad > 0)
    assert np.all(t.grad <= 1.0 + 1e-6)


@given(shape=_shapes, seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_softmax_rows_are_distributions(shape, seed):
    a = _arr(shape, seed, scale=5.0)
    s = F.softmax(Tensor(a), axis=1).data
    assert np.all(s >= 0)
    assert np.allclose(s.sum(axis=1), 1.0, atol=1e-5)


@given(shape=_shapes, seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_sum_grad_is_ones(shape, seed):
    t = Tensor(_arr(shape, seed), requires_grad=True)
    F.sum(t).backward()
    assert np.allclose(t.grad, 1.0)


@given(
    n=st.integers(2, 8),
    f=st.integers(1, 4),
    e=st.integers(1, 16),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_gather_scatter_adjoint_identity(n, f, e, seed):
    """⟨scatter(g), x⟩ == ⟨g, gather(x)⟩ — the defining adjoint property."""
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, n, e)
    x = rng.standard_normal((n, f)).astype(np.float32)
    g = rng.standard_normal((e, f)).astype(np.float32)
    gathered = F.index_select(Tensor(x), idx).data
    scattered = F.scatter_add(Tensor(g), idx, n).data
    assert np.allclose((scattered * x).sum(), (g * gathered).sum(), atol=1e-3)


@given(shape=_shapes, seed=st.integers(0, 10_000), lo=st.floats(-1, 0), hi=st.floats(0.1, 1))
@settings(max_examples=30, deadline=None)
def test_clip_idempotent(shape, seed, lo, hi):
    a = _arr(shape, seed, scale=3.0)
    once = F.clip(Tensor(a), lo, hi).data
    twice = F.clip(Tensor(once), lo, hi).data
    assert np.array_equal(once, twice)


@given(seed=st.integers(0, 10_000), k=st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_chain_rule_power(seed, k):
    """y = x^k via repeated mul: grad == k·x^(k-1)."""
    x_val = float(np.random.default_rng(seed).uniform(0.5, 2.0))
    x = Tensor(np.array([x_val], dtype=np.float32), requires_grad=True)
    y = x
    for _ in range(k - 1):
        y = F.mul(y, x)
    F.sum(y).backward()
    assert np.allclose(x.grad, k * x_val ** (k - 1), rtol=1e-3)
