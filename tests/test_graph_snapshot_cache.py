"""Snapshot versioning and the (timestamp, version) CSR reuse cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import DTDG, GPMAGraph, NaiveGraph


@pytest.fixture
def random_dtdg(rng):
    n = 30
    keys = set()
    while len(keys) < 90:
        s, d = rng.integers(0, n, 2)
        if s != d:
            keys.add((int(s), int(d)))
    snaps = []
    for t in range(6):
        if t:
            for k in sorted(keys)[:5]:
                keys.discard(k)
            while len(keys) < 90:
                s, d = rng.integers(0, n, 2)
                if s != d:
                    keys.add((int(s), int(d)))
        arr = np.array(sorted(keys), dtype=np.int64)
        snaps.append((arr[:, 0].copy(), arr[:, 1].copy()))
    return DTDG(snaps, n)


@pytest.fixture
def noop_dtdg():
    """Four snapshots where t1 repeats t0 and t3 repeats t2 (no-op batches)."""
    n = 6
    base = [(0, 1), (1, 2), (2, 3), (3, 0)]
    bigger = base + [(4, 5), (5, 0)]
    snaps = []
    for edges in (base, base, bigger, bigger):
        arr = np.array(sorted(edges), dtype=np.int64)
        snaps.append((arr[:, 0].copy(), arr[:, 1].copy()))
    return DTDG(snaps, n)


def _edge_set(graph):
    bwd = graph.backward_csr()
    out = set()
    for u in range(graph.num_nodes):
        for v in bwd.neighbors(u):
            out.add((int(u), int(v)))
    return out


def _snapshot_edge_set(dtdg, t):
    s, d = dtdg.snapshot_edges(t)
    return set(zip(s.tolist(), d.tolist()))


# ---------------------------------------------------------------------------
# Tentpole acceptance: the backward walk rebuilds nothing
# ---------------------------------------------------------------------------
def test_backward_walk_serves_all_csrs_from_cache(random_dtdg):
    T = random_dtdg.num_timestamps
    gg = GPMAGraph(random_dtdg, csr_cache_size=T)
    for t in range(T):
        gg.get_graph(t)
        gg.forward_csr()
    assert gg.csr_cache_misses == T  # every snapshot built exactly once
    assert gg.csr_cache_hits == 0
    gg.cache_snapshot()
    for t in range(T - 1, -1, -1):
        gg.get_backward_graph(t)
        gg.forward_csr()
        gg.backward_csr()
        assert _edge_set(gg) == _snapshot_edge_set(random_dtdg, t)
    # Zero CSR rebuilds on the backward walk: one hit per timestamp.
    assert gg.csr_cache_hits == T
    assert gg.csr_cache_misses == T


def test_cached_csrs_match_fresh_builds(random_dtdg):
    """LRU-served artifacts are the same structure a cold build produces."""
    gg = GPMAGraph(random_dtdg, csr_cache_size=random_dtdg.num_timestamps)
    ng = NaiveGraph(random_dtdg)
    for t in range(random_dtdg.num_timestamps):
        gg.get_graph(t)
        gg.forward_csr()
    for t in range(random_dtdg.num_timestamps - 1, -1, -1):
        gg.get_backward_graph(t)
        ng.get_backward_graph(t)
        assert _edge_set(gg) == _edge_set(ng)
        assert np.array_equal(gg.in_degrees(), ng.in_degrees())
        assert np.array_equal(gg.out_degrees(), ng.out_degrees())
        gg.validate_label_consistency()


def test_lru_stays_bounded(random_dtdg):
    gg = GPMAGraph(random_dtdg, csr_cache_size=2)
    for t in list(range(6)) + [4, 3, 2, 1, 0]:
        gg.get_graph(t)
        gg.forward_csr()
        assert len(gg._csr_cache) <= 2


# ---------------------------------------------------------------------------
# Snapshot versioning
# ---------------------------------------------------------------------------
def test_version_bumps_only_on_structural_change(noop_dtdg):
    gg = GPMAGraph(noop_dtdg)
    gg.get_graph(0)
    fwd0 = gg.forward_csr()
    assert gg.snapshot_version == 0

    gg.get_graph(1)  # no-op batch: same content as t0
    assert gg.snapshot_version == 0
    assert gg.noop_updates_skipped == 1
    assert gg.forward_csr() is fwd0  # not even re-derived, let alone rebuilt
    assert gg.csr_cache_misses == 1  # only the t0 build

    gg.get_graph(2)  # real batch
    assert gg.snapshot_version == 1
    gg.forward_csr()
    assert gg.csr_cache_misses == 2

    gg.get_graph(3)  # no-op again
    assert gg.snapshot_version == 1
    assert gg.noop_updates_skipped == 2


def test_versions_stable_across_revisits(noop_dtdg):
    """A revisited timestamp restores its recorded version, so earlier
    cache entries stay addressable (never a stale alias)."""
    gg = GPMAGraph(noop_dtdg)
    for t in range(4):
        gg.get_graph(t)
        gg.forward_csr()
    assert gg._ts_versions == {0: 0, 1: 0, 2: 1, 3: 1}
    gg.get_graph(1)
    assert gg.snapshot_version == 0
    assert _edge_set(gg) == _snapshot_edge_set(noop_dtdg, 1)
    gg.get_graph(3)
    assert gg.snapshot_version == 1
    assert _edge_set(gg) == _snapshot_edge_set(noop_dtdg, 3)


def test_snapshot_key_is_content_identity(noop_dtdg):
    gg = GPMAGraph(noop_dtdg)
    gg.get_graph(0)
    key0 = gg.snapshot_key()
    gg.get_graph(1)
    assert gg.snapshot_key() == key0  # no-op chain: identical content
    gg.get_graph(2)
    assert gg.snapshot_key() != key0


# ---------------------------------------------------------------------------
# Ablation flag
# ---------------------------------------------------------------------------
def test_csr_cache_disabled_counts_no_hits(random_dtdg):
    gg = GPMAGraph(random_dtdg, enable_csr_cache=False)
    for t in range(6):
        gg.get_graph(t)
        gg.forward_csr()
    gg.cache_snapshot()
    for t in range(5, -1, -1):
        gg.get_backward_graph(t)
        gg.forward_csr()
        assert _edge_set(gg) == _snapshot_edge_set(random_dtdg, t)
    assert gg.csr_cache_hits == 0
    assert len(gg._csr_cache) == 0
    # Every repositioned snapshot paid a full rebuild.
    assert gg.csr_cache_misses == 11  # 6 forward + 5 backward (t=5 unmoved)


def test_csr_cache_size_zero_disables(random_dtdg):
    gg = GPMAGraph(random_dtdg, csr_cache_size=0)
    assert not gg.enable_csr_cache


# ---------------------------------------------------------------------------
# Satellite 1: cache restore is purely distance-based
# ---------------------------------------------------------------------------
def test_rewind_past_cache_restores_on_distance(random_dtdg):
    """Jumping to t=4 from t=0 with the cache at t=5 must restore the cache
    and apply ONE reverse batch — not replay four forward batches."""
    gg = GPMAGraph(random_dtdg)
    for t in range(6):
        gg.get_graph(t)
    gg.cache_snapshot()  # cache holds t=5
    for t in range(5, -1, -1):
        gg.get_backward_graph(t)  # rewind to t=0
    before = gg.update_batches_applied
    gg.get_graph(4)
    assert gg.cache_restores == 1
    assert gg.update_batches_applied == before + 1
    assert _edge_set(gg) == _snapshot_edge_set(random_dtdg, 4)
    assert gg.snapshot_version == gg._ts_versions[4]


# ---------------------------------------------------------------------------
# Satellite 4: sequence-boundary caching (Algorithm 2 lines 1-5 / 10)
# ---------------------------------------------------------------------------
def test_sequence_boundary_cache_flow(random_dtdg):
    """Forward a sequence, cache, rewind, then start the next sequence from
    the cached snapshot with a single update batch."""
    gg = GPMAGraph(random_dtdg)
    for t in range(3):
        gg.get_graph(t)
    gg.cache_snapshot()  # end of sequence [0..2]
    for t in range(2, -1, -1):
        gg.get_backward_graph(t)
    before = gg.update_batches_applied
    gg.get_graph(3)  # next sequence: restore t=2, one forward batch
    assert gg.cache_restores == 1
    assert gg.update_batches_applied == before + 1
    assert _edge_set(gg) == _snapshot_edge_set(random_dtdg, 3)
    gg.pma.check_invariants()


def test_restore_cache_after_capacity_change():
    """Restoring a cache taken at a smaller PMA capacity reallocates the
    geometry (the _alloc_arrays path) and still yields the exact snapshot."""
    n = 32
    t0 = [(0, 1), (1, 2), (2, 3), (3, 4)]
    rng = np.random.default_rng(7)
    extra = set()
    while len(extra) < 200:
        s, d = rng.integers(0, n, 2)
        if s != d:
            extra.add((int(s), int(d)))
    t1 = sorted(set(t0) | extra)
    snaps = []
    for edges in (sorted(t0), t1):
        arr = np.array(edges, dtype=np.int64)
        snaps.append((arr[:, 0].copy(), arr[:, 1].copy()))
    dtdg = DTDG(snaps, n)

    gg = GPMAGraph(dtdg)
    cap_before = gg.pma.capacity
    gg.cache_snapshot()  # cache t=0 at the small capacity
    gg.get_graph(1)  # the 200-edge batch grows the PMA
    assert gg.pma.capacity > cap_before
    gg.get_graph(0)  # distance 0 from the cache: restore, shrinking geometry
    assert gg.cache_restores == 1
    assert gg.pma.capacity == cap_before
    gg.pma.check_invariants()
    assert _edge_set(gg) == _snapshot_edge_set(dtdg, 0)
    assert gg.snapshot_version == 0


# ---------------------------------------------------------------------------
# NaiveGraph reports the same reuse statistics
# ---------------------------------------------------------------------------
def test_naive_reuse_counters(random_dtdg):
    ng = NaiveGraph(random_dtdg)
    # Preprocessing builds each snapshot once: one miss per timestamp.
    assert ng.csr_cache_misses == random_dtdg.num_timestamps
    for t in range(3):
        ng.get_graph(t)
    for t in range(2, -1, -1):
        ng.get_backward_graph(t)
    assert ng.csr_cache_hits == 3  # backward reuses the forward builds
    assert ng.cache_stats()["csr_cache_misses"] == random_dtdg.num_timestamps
