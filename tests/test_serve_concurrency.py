"""Property-style concurrent serving test (runs under ``REPRO_TSAN=1`` in CI).

Many client threads issue point queries while an updater lands GPMA update
batches on the same engine.  The property: every response must be
bitwise-equal to *some* serial order of queries and updates consistent
with snapshot versions — concretely, each response carries the timestamp
it was served at, and must equal a fresh serial forward at exactly that
timestamp.  Staleness must respect the ``freshness`` bound, and no
dispatcher thread may leak.

The engine's locks come from the sanitizer factories
(``repro.analysis.sanitizer``), so under ``REPRO_TSAN=1`` the session
additionally fails on any lock-discipline violation observed while this
interleaving runs (see ``tests/conftest.py``).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.graph import DTDG, GPMAGraph
from repro.serve import (
    InferenceEngine,
    ServingHarness,
    random_update_batches,
    serial_reference,
)
from repro.train import STGraphNodeRegressor

N, F, HIDDEN = 64, 8, 12


def _serving_threads():
    return [t.name for t in threading.enumerate() if t.name.startswith("repro-serve")]


@pytest.fixture
def setup(rng):
    src = rng.integers(0, N, 300)
    dst = rng.integers(0, N, 300)
    keep = src != dst
    dtdg = DTDG([(src[keep], dst[keep])], num_nodes=N)
    feats = rng.standard_normal((N, F)).astype(np.float32)
    model = STGraphNodeRegressor(F, HIDDEN)
    return dtdg, feats, model


@pytest.mark.parametrize("freshness", [0, 2])
def test_concurrent_interleaving_matches_a_serial_order(setup, freshness):
    dtdg, feats, model = setup
    updates = random_update_batches(dtdg, 6, seed=freshness + 1)
    engine = InferenceEngine(model, GPMAGraph(dtdg), feats, freshness=freshness)
    with engine:
        harness = ServingHarness(
            engine,
            clients=8,
            requests_per_client=25,
            kinds=("embedding", "prediction"),
            updates=updates,
            update_wait=freshness == 0,
            seed=freshness,
            collect=True,
        )
        report = harness.run(timeout=90.0)
    assert not _serving_threads(), "dispatcher thread leaked"

    assert report.requests == 8 * 25
    assert report.updates_applied == 6
    assert engine.latest_version == report.engine_stats["latest_version"]

    # Staleness bound: no response lagged more than `freshness` pending batches.
    assert all(r.lag <= freshness for r in report.results)
    # Versions are monotone in timestamps: a response at a later timestamp
    # never reports an older version.
    by_ts = sorted({(r.timestamp, r.version) for r in report.results})
    versions = [v for _, v in by_ts]
    assert versions == sorted(versions)

    # Serial-order equivalence, bitwise: each response equals a fresh serial
    # query-after-every-update execution at the timestamp it was served at.
    ref = serial_reference(
        model, engine.graph.dtdg, feats, sorted({r.timestamp for r in report.results})
    )
    for res in report.results:
        h, pred = ref[res.timestamp]
        expect = (h if res.kind == "embedding" else pred)[res.vertex]
        assert np.array_equal(res.value, expect), (
            f"vertex {res.vertex} kind {res.kind} at t={res.timestamp} "
            f"(version {res.version}, served_from {res.served_from}) diverged "
            f"from the serial reference"
        )


def test_concurrent_ingest_is_serializable(setup):
    """Multiple ingest threads racing: all batches applied, versions settle."""
    dtdg, feats, model = setup
    engine = InferenceEngine(model, GPMAGraph(dtdg), feats, freshness=3)
    streams = [random_update_batches(dtdg, 3, seed=s) for s in (10, 20)]
    with engine:
        threads = [
            threading.Thread(
                target=lambda st=stream: [
                    engine.ingest.apply_update(u, wait=False) for u in st
                ],
                name=f"ingest-{i}",
            )
            for i, stream in enumerate(streams)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        engine.flush(timeout=60.0)
        assert engine.pending_updates == 0
        stats = engine.stats()
        res = engine.query(0)
    assert stats["updates_applied"] == 6
    assert res.timestamp == engine.graph.dtdg.num_timestamps - 1
    assert not _serving_threads()


def test_queries_during_error_all_unblock(setup):
    """A dispatcher death mid-traffic releases every waiting client."""
    dtdg, feats, _ = setup

    class ExplodesLater:
        def __init__(self):
            self.calls = 0

        def step(self, executor, x, state):
            self.calls += 1
            raise RuntimeError("boom")

    engine = InferenceEngine(ExplodesLater(), GPMAGraph(dtdg), feats)
    errors = []
    lock = threading.Lock()

    def client():
        try:
            engine.query(0, timeout=30.0)
        except RuntimeError as exc:
            with lock:
                errors.append(str(exc))

    with engine:
        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
    assert len(errors) == 4
    assert all("dispatcher died" in e for e in errors)
    assert not _serving_threads()
