"""The compiler verifier: clean programs pass, mutated programs are caught.

Every STG0xx code in the registry is provoked by at least one mutation
here: a valid compiled plan is copied, corrupted in exactly one way, and
the matching diagnostic must fire.  A meta-test asserts the mutation table
covers the whole code registry, so adding a code without a triggering test
fails the suite.
"""

from __future__ import annotations

import copy

import pytest

from repro.compiler import (
    IMPLICIT_ONES,
    Stage,
    VNode,
    VerifyError,
    plan_cache,
    set_verification,
    verification_disabled,
    verification_enabled,
    verify_plan,
)
from repro.compiler.diagnostics import CODES, LintReport, code_table
from repro.compiler.lower import CompileError
from repro.compiler.tir import TOp, TProgram
from repro.compiler.verify import (
    verify_gradients,
    verify_tprogram,
    verify_vnode_dag,
    verify_write_hazards,
)


def _plan():
    """A known-good compiled plan (GCN-shaped; cached across tests)."""
    fn = lambda v: v.agg_sum(lambda nb: nb.vh * nb.vnorm) * v.vnorm  # noqa: E731
    return plan_cache().get_or_build(
        fn, feature_widths={"vh": "v", "vnorm": "s"}, name="verify_gcn"
    )


def _report() -> LintReport:
    return LintReport(subject="mutation")


# ---------------------------------------------------------------------------
# Positive paths
# ---------------------------------------------------------------------------
def test_clean_plan_has_empty_lint_attached():
    plan = _plan()
    assert plan.lint is not None
    assert plan.lint.ok()
    assert len(plan.lint) == 0


def test_verify_plan_reruns_suite_on_demand():
    report = verify_plan(_plan())
    assert report.ok()
    assert report.codes() == set()


def test_plan_records_wrt_set():
    plan = _plan()
    assert plan.wrt == ("n_vh", "n_vnorm")


def test_escape_hatch_skips_verification():
    fn = lambda v: v.agg_sum(lambda nb: nb.vhx * nb.vnormx) * v.vnormx  # noqa: E731
    with verification_disabled():
        assert not verification_enabled()
        plan = plan_cache().get_or_build(
            fn, feature_widths={"vhx": "v", "vnormx": "s"}, name="verify_gcn_off"
        )
    assert verification_enabled()
    assert plan.lint is None


def test_set_verification_returns_previous():
    prev = set_verification(False)
    try:
        assert prev is True
        assert set_verification(True) is False
    finally:
        set_verification(True)


def test_raise_if_errors_raises_verify_error_as_compile_error():
    report = _report()
    report.add("STG010", "mutation")
    with pytest.raises(VerifyError) as exc:
        report.raise_if_errors()
    assert isinstance(exc.value, CompileError)
    assert exc.value.report is report
    assert "STG010" in str(exc.value)


def test_warnings_do_not_raise():
    report = _report()
    report.add("STG005", "mutation")
    report.raise_if_errors()
    assert report.ok()
    assert len(report.warnings) == 1


def test_code_table_matches_registry():
    rows = code_table()
    assert [code for code, _, _ in rows] == sorted(CODES)
    assert all(sev in ("error", "warning") for _, sev, _ in rows)


# ---------------------------------------------------------------------------
# Vertex-IR mutations (STG001..STG005)
# ---------------------------------------------------------------------------
def _mutate_stg001() -> LintReport:
    a = VNode("neg", (), Stage.SRC)
    b = VNode("neg", (a,), Stage.SRC)
    a.args = (b,)  # cycle a -> b -> a
    report = _report()
    verify_vnode_dag(b, report)
    return report


def _mutate_stg002() -> LintReport:
    src = VNode.feat("x", Stage.SRC)
    dst = VNode.feat("y", Stage.DST)
    # stored SRC disagrees with recomputed EDGE (SRC ∘ DST)
    bad = VNode("mul", (src, dst), Stage.SRC)
    report = _report()
    verify_vnode_dag(bad, report)
    return report


def _mutate_stg003() -> LintReport:
    dst = VNode.feat("y", Stage.DST)
    # bypass VNode.agg's constructor guard: a DST-stage aggregation body
    bad = VNode("agg", (dst,), Stage.DST, attrs={"agg_op": "sum", "direction": "in"})
    report = _report()
    verify_vnode_dag(bad, report)
    return report


def _mutate_stg004() -> LintReport:
    # two *distinct* leaf objects for the same (name, stage)
    x1 = VNode.feat("x", Stage.SRC)
    x2 = VNode.feat("x", Stage.SRC)
    root = VNode.binary("add", x1, x2)
    report = _report()
    verify_vnode_dag(root, report)
    return report


def _mutate_stg005() -> LintReport:
    src = VNode.feat("x", Stage.SRC)
    inner = VNode.agg("sum", src)  # DST-stage result
    other = VNode.feat("y", Stage.SRC)
    body = VNode.binary("mul", other, inner)  # pulled into EDGE space
    outer = VNode.agg("sum", body)
    report = _report()
    verify_vnode_dag(outer, report)
    return report


# ---------------------------------------------------------------------------
# Tensor-IR mutations (STG010..STG014)
# ---------------------------------------------------------------------------
def _mutate_stg010() -> LintReport:
    prog = copy.deepcopy(_plan().fwd_prog)
    first = prog.ops[0]
    prog.ops.append(TOp(first.kind, first.out, first.ins, first.attrs))
    report = _report()
    verify_tprogram(prog, report)
    return report


def _mutate_stg011() -> LintReport:
    prog = copy.deepcopy(_plan().fwd_prog)
    op = prog.ops[-1]
    prog.ops[-1] = TOp(op.kind, op.out, ("never_defined",) + op.ins[1:], op.attrs)
    report = _report()
    verify_tprogram(prog, report)
    return report


def _mutate_stg012() -> LintReport:
    prog = copy.deepcopy(_plan().fwd_prog)
    prog.outputs.append("never_defined_output")
    report = _report()
    verify_tprogram(prog, report)
    return report


def _mutate_stg013() -> LintReport:
    prog = copy.deepcopy(_plan().fwd_prog)
    prog.ops.append(TOp("frobnicate", "zz_unknown", ()))
    prog.spaces["zz_unknown"] = "node"
    report = _report()
    verify_tprogram(prog, report)
    return report


def _mutate_stg014() -> LintReport:
    prog = copy.deepcopy(_plan().fwd_prog)
    del prog.spaces[prog.ops[0].out]
    report = _report()
    verify_tprogram(prog, report)
    return report


def test_unused_input_is_a_warning_not_an_error():
    prog = copy.deepcopy(_plan().fwd_prog)
    prog.inputs["n_dead"] = ("node", "dead")
    prog.spaces["n_dead"] = "node"
    report = _report()
    verify_tprogram(prog, report)
    assert report.ok()
    assert {d.code for d in report.warnings} == {"STG012"}


def test_implicit_ones_outside_spmm_weight_slot_is_rejected():
    prog = copy.deepcopy(_plan().fwd_prog)
    prog.ops.append(TOp("ew", "zz_ones", (IMPLICIT_ONES,), {"op": "neg"}))
    prog.spaces["zz_ones"] = "node"
    report = _report()
    verify_tprogram(prog, report)
    assert "STG013" in report.codes()
    assert IMPLICIT_ONES in report.errors[0].message


def test_bad_ew_attr_and_direction_are_schema_violations():
    prog = copy.deepcopy(_plan().fwd_prog)
    inp = next(iter(prog.inputs))
    prog.ops.append(TOp("ew", "zz_noattr", (inp,)))  # missing required "op"
    prog.spaces["zz_noattr"] = prog.spaces[inp]
    prog.ops.append(TOp("spmm", "zz_dir", (IMPLICIT_ONES, inp), {"direction": "sideways"}))
    prog.spaces["zz_dir"] = "node"
    report = _report()
    verify_tprogram(prog, report)
    assert sum(1 for d in report.errors if d.code == "STG013") >= 2


# ---------------------------------------------------------------------------
# Gradient / State-Stack mutations (STG020..STG022)
# ---------------------------------------------------------------------------
def _mutate_stg020() -> LintReport:
    plan = _plan()
    report = _report()
    # empty grad_map: every declared-differentiable input lacks a gradient
    verify_gradients(plan.fwd_prog, plan.bwd_prog, {}, plan.wrt, report)
    return report


def _mutate_stg021() -> LintReport:
    plan = _plan()
    bwd = copy.deepcopy(plan.bwd_prog)
    bwd.inputs["zz_phantom"] = ("saved", "zz_phantom")
    bwd.spaces["zz_phantom"] = "node"
    report = _report()
    verify_gradients(plan.fwd_prog, bwd, plan.grad_map, plan.wrt, report,
                     saved_spec=plan.saved_spec)
    return report


def _mutate_stg022() -> LintReport:
    plan = _plan()
    bwd = copy.deepcopy(plan.bwd_prog)
    bwd.inputs["zz_seed"] = ("grad", "not_a_forward_output")
    bwd.spaces["zz_seed"] = "node"
    report = _report()
    verify_gradients(plan.fwd_prog, bwd, plan.grad_map, plan.wrt, report)
    return report


def test_saved_input_missing_from_saved_spec_is_stg021():
    plan = _plan()
    saved = [n for n, (k, _) in plan.bwd_prog.inputs.items() if k == "saved"]
    assert saved, "GCN backward must save at least one forward buffer"
    report = _report()
    verify_gradients(plan.fwd_prog, plan.bwd_prog, plan.grad_map, plan.wrt,
                     report, saved_spec=())
    assert {d.code for d in report.errors} == {"STG021"}


# ---------------------------------------------------------------------------
# Write-hazard mutations (STG030)
# ---------------------------------------------------------------------------
def _mutate_stg030() -> LintReport:
    prog = TProgram(name="hazard")
    prog.inputs = {"e_w": ("edge", "w"), "n_x": ("node", "x")}
    prog.spaces = {"e_w": "edge", "n_x": "node", "zz_out": "node"}
    # an elementwise op writing an edge-space operand into node space:
    # exactly the write that needs an atomic scatter on real hardware
    prog.ops = [TOp("ew", "zz_out", ("e_w", "n_x"), {"op": "mul"})]
    prog.outputs = ["zz_out"]
    report = _report()
    verify_write_hazards(prog, report)
    return report


def test_edge_node_mix_without_reduction_is_stg030():
    prog = TProgram(name="hazard_mix")
    prog.inputs = {"e_w": ("edge", "w"), "n_x": ("node", "x")}
    prog.spaces = {"e_w": "edge", "n_x": "node", "zz_out": "edge"}
    prog.ops = [TOp("ew", "zz_out", ("e_w", "n_x"), {"op": "mul"})]
    prog.outputs = ["zz_out"]
    report = _report()
    verify_write_hazards(prog, report)
    assert {d.code for d in report.errors} == {"STG030"}


def test_reductions_may_cross_edge_to_node():
    prog = TProgram(name="hazard_ok")
    prog.inputs = {"e_w": ("edge", "w"), "n_x": ("node", "x")}
    prog.spaces = {"e_w": "edge", "n_x": "node", "zz_out": "node"}
    prog.ops = [TOp("spmm", "zz_out", ("e_w", "n_x"))]
    prog.outputs = ["zz_out"]
    report = _report()
    verify_write_hazards(prog, report)
    assert report.ok() and len(report) == 0


# ---------------------------------------------------------------------------
# One mutation per code: the registry is fully covered
# ---------------------------------------------------------------------------
_MUTATIONS = {
    "STG001": _mutate_stg001,
    "STG002": _mutate_stg002,
    "STG003": _mutate_stg003,
    "STG004": _mutate_stg004,
    "STG005": _mutate_stg005,
    "STG010": _mutate_stg010,
    "STG011": _mutate_stg011,
    "STG012": _mutate_stg012,
    "STG013": _mutate_stg013,
    "STG014": _mutate_stg014,
    "STG020": _mutate_stg020,
    "STG021": _mutate_stg021,
    "STG022": _mutate_stg022,
    "STG030": _mutate_stg030,
}


@pytest.mark.parametrize("code", sorted(_MUTATIONS))
def test_mutation_triggers_code(code):
    report = _MUTATIONS[code]()
    assert code in report.codes(), report.render()
    expected_severity = CODES[code][0]
    assert any(d.severity == expected_severity for d in report.diagnostics if d.code == code)


def test_every_registered_code_has_a_mutation():
    from repro.compiler.diagnostics import CONCURRENCY_CODES

    # The STG2xx family belongs to the concurrency analyzer; its mutation
    # coverage lives in tests/test_analysis_lockcheck.py.
    assert set(_MUTATIONS) == set(CODES) - CONCURRENCY_CODES
