"""Property-based compiler testing: random vertex programs vs dense refs.

Generates random sum-of-products aggregation bodies (the space the
decomposition handles), compiles them, and checks the generated kernel
against an explicit dense-adjacency evaluation on random graphs.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.compiler import compile_vertex_program
from repro.compiler.ir import VNode
from repro.compiler.runtime import GraphContext
from repro.graph import StaticGraph

_term = st.tuples(
    st.floats(-2.0, 2.0).filter(lambda c: abs(c) > 0.05),  # coefficient
    st.booleans(),  # include src feature h?
    st.booleans(),  # include src scalar s?
    st.booleans(),  # include dst scalar d?
)


def _build_fn(terms):
    def fn(v):
        def body(nb):
            expr = None
            for coef, use_h, use_s, use_d in terms:
                t = None
                if use_h:
                    t = nb.h
                if use_s:
                    t = nb.s if t is None else t * nb.s
                if use_d:
                    t = v.d if t is None else t * v.d
                t = VNode.const(coef) if t is None else t * coef
                expr = t if expr is None else expr + t
            return expr

        return v.agg_sum(body)

    return fn


def _dense_ref(A, in_deg, terms, h, s, d):
    n = A.shape[0]
    f = h.shape[1]
    out = np.zeros((n, f), dtype=np.float64)
    for coef, use_h, use_s, use_d in terms:
        # per-source payload
        payload = np.ones((n, f)) if not use_h else h.astype(np.float64).copy()
        if use_s:
            payload = payload * s[:, None]
        term = A.astype(np.float64) @ payload  # aggregate over in-neighbors
        if not use_h and not use_s:
            # pure constant body: sum over in-edges = in_degree
            term = np.repeat(in_deg[:, None], f, axis=1).astype(np.float64)
        if use_d:
            term = term * d[:, None]
        out += coef * term
    return out


@given(
    terms=st.lists(_term, min_size=1, max_size=3),
    seed=st.integers(0, 10**6),
    n=st.integers(3, 18),
    p=st.floats(0.1, 0.5),
)
@settings(max_examples=40, deadline=None)
def test_random_sum_of_products_matches_dense(terms, seed, n, p):
    # A body with no neighbor reference at all is (correctly) a compile
    # error tested elsewhere; this property needs at least one SRC factor.
    assume(any(use_h or use_s for _, use_h, use_s, _ in terms))
    g = nx.gnp_random_graph(n, p, seed=seed, directed=True)
    sg = StaticGraph.from_networkx(g)
    ctx = GraphContext(sg)
    A = nx.to_numpy_array(g).T.astype(np.float32)
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((n, 2)).astype(np.float32)
    s = rng.standard_normal(n).astype(np.float32)
    d = rng.standard_normal(n).astype(np.float32)

    prog = compile_vertex_program(
        _build_fn(terms),
        feature_widths={"h": "v", "s": "s", "d": "s"},
        name="prop",
    )
    feats = {}
    node_names, _ = prog.required_features()
    if "h" in node_names:
        feats["h"] = h
    if "s" in node_names:
        feats["s"] = s
    if "d" in node_names:
        feats["d"] = d
    out, _ = prog.forward(ctx, feats)
    ref = _dense_ref(A, ctx.in_deg, terms, h, s, d)
    if out.ndim == 1:  # program had no vector factor anywhere
        ref = ref[:, 0]
    assert np.allclose(out, ref, atol=1e-3 * max(1.0, np.abs(ref).max())), (
        np.abs(out - ref).max()
    )


@given(seed=st.integers(0, 10**6), n=st.integers(3, 15), p=st.floats(0.1, 0.5))
@settings(max_examples=30, deadline=None)
def test_spmm_grad_adjoint_identity(seed, n, p):
    """⟨out, g⟩ differentiated: spmm_T must be the exact adjoint of spmm."""
    from repro.compiler.runtime import spmm, spmm_T

    g_nx = nx.gnp_random_graph(n, p, seed=seed, directed=True)
    ctx = GraphContext(StaticGraph.from_networkx(g_nx))
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 3)).astype(np.float32)
    gout = rng.standard_normal((n, 3)).astype(np.float32)
    w = rng.standard_normal(ctx.num_edges).astype(np.float32)
    lhs = float((spmm(ctx, w, x) * gout).sum())
    rhs = float((spmm_T(ctx, w, gout) * x).sum())
    assert abs(lhs - rhs) < 1e-2 * max(1.0, abs(lhs))


@given(seed=st.integers(0, 10**6), n=st.integers(3, 15))
@settings(max_examples=30, deadline=None)
def test_edge_softmax_rows_normalize(seed, n):
    from repro.compiler.runtime import edge_softmax, segment_sum

    g_nx = nx.gnp_random_graph(n, 0.4, seed=seed, directed=True)
    ctx = GraphContext(StaticGraph.from_networkx(g_nx))
    if ctx.num_edges == 0:
        return
    rng = np.random.default_rng(seed)
    z = (rng.standard_normal(ctx.num_edges) * 5).astype(np.float32)
    alpha = edge_softmax(ctx, z)
    sums = segment_sum(ctx, alpha)
    has_in = ctx.in_deg > 0
    assert np.allclose(sums[has_in], 1.0, atol=1e-4)
    assert np.all(alpha >= 0)
