"""Property-based PMA testing against a dict reference model."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.pma import PackedMemoryArray

_key = st.integers(0, 5000)
_batch = st.lists(st.tuples(_key, st.integers(0, 10**6)), min_size=1, max_size=60)


@given(batches=st.lists(_batch, min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_inserts_match_dict_model(batches):
    pma = PackedMemoryArray()
    model: dict[int, int] = {}
    for batch in batches:
        keys = np.array([k for k, _ in batch], dtype=np.int64)
        vals = np.array([v for _, v in batch], dtype=np.int64)
        pma.insert_batch(keys, vals)
        for k, v in batch:
            model[k] = v
        pma.check_invariants()
    ek, ev = pma.export_items()
    assert ek.tolist() == sorted(model)
    assert all(model[k] == v for k, v in zip(ek.tolist(), ev.tolist()))


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["ins", "del"]), _batch),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=50, deadline=None)
def test_mixed_ops_match_dict_model(ops):
    pma = PackedMemoryArray()
    model: dict[int, int] = {}
    for kind, batch in ops:
        keys = np.array([k for k, _ in batch], dtype=np.int64)
        if kind == "ins":
            vals = np.array([v for _, v in batch], dtype=np.int64)
            pma.insert_batch(keys, vals)
            for k, v in batch:
                model[k] = v
        else:
            pma.delete_batch(keys)
            for k in keys.tolist():
                model.pop(k, None)
        pma.check_invariants()
        assert len(pma) == len(model)
    ek, ev = pma.export_items()
    assert ek.tolist() == sorted(model)
    assert all(model[k] == v for k, v in zip(ek.tolist(), ev.tolist()))


@given(seed=st.integers(0, 10**6), n=st.integers(1, 3000))
@settings(max_examples=25, deadline=None)
def test_bulk_insert_then_full_drain(seed, n):
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, 10**7, n))
    pma = PackedMemoryArray()
    pma.insert_batch(keys, keys * 2)
    pma.check_invariants()
    assert len(pma) == len(keys)
    pma.delete_batch(keys)
    pma.check_invariants()
    assert len(pma) == 0


@given(seed=st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_density_within_root_bounds_after_batches(seed):
    rng = np.random.default_rng(seed)
    pma = PackedMemoryArray()
    for _ in range(6):
        keys = np.unique(rng.integers(0, 10**6, rng.integers(10, 400)))
        pma.insert_batch(keys, keys)
    # Root density never exceeds tau_root after settling.
    assert pma.density <= pma.bounds.upper(pma.bounds.height) + 1e-9


@given(seed=st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_contains_batch_agrees_with_get(seed):
    rng = np.random.default_rng(seed)
    present = np.unique(rng.integers(0, 1000, 100))
    pma = PackedMemoryArray()
    pma.insert_batch(present, present)
    queries = rng.integers(0, 1200, 200)
    mask = pma.contains_batch(queries)
    for q, m in zip(queries.tolist(), mask.tolist()):
        assert m == (pma.get(q) is not None)
