"""The lock-discipline static analyzer: seeded bugs caught, clean code clean.

Mirrors ``tests/test_compiler_verify.py``: every STG2xx code in the
diagnostics registry is provoked by at least one seeded-bug source here,
and a meta-test pins the mutation table to the ``CONCURRENCY_CODES``
registry slice so adding a code without a triggering test fails the suite.
The repo gate test at the bottom runs the real analyzer over the installed
``repro`` sources against the committed baseline — the same check the
``repro lint --concurrency`` CI step performs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.analysis.lockcheck import (
    BaselineEntry,
    analyze_path,
    analyze_source,
    apply_baseline,
    default_baseline_path,
    load_baseline,
    write_baseline,
)
from repro.compiler.diagnostics import CODES, CONCURRENCY_CODES


# ---------------------------------------------------------------------------
# Seeded-bug sources, one per code
# ---------------------------------------------------------------------------
_ABBA = """
import threading

class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def ab(self):
        with self._a:
            with self._b:
                pass

    def ba(self):
        with self._b:
            with self._a:
                pass
"""

_ABBA_TRANSITIVE = """
import threading

class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def _grab_b(self):
        with self._b:
            pass

    def ab(self):
        with self._a:
            self._grab_b()

    def ba(self):
        with self._b:
            with self._a:
                pass
"""

_UNGUARDED_WRITE = """
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1

    def reset(self):
        self.count = 0
"""

_SUPPRESSED_WRITE = """
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1

    def reset(self):
        self.count = 0  # lockcheck: ok(reset is documented single-threaded)
"""

_BARE_ACQUIRE = """
import threading

class Leaky:
    def __init__(self):
        self._lock = threading.Lock()

    def bad(self):
        self._lock.acquire()
        self.work()
        self._lock.release()

    def work(self):
        pass
"""

_ACQUIRE_WITH_FINALLY = """
import threading

class Careful:
    def __init__(self):
        self._lock = threading.Lock()

    def good(self):
        self._lock.acquire()
        try:
            self.work()
        finally:
            self._lock.release()

    def work(self):
        pass
"""

_BLOCKING_UNDER_LOCK = """
import threading
import time

class Slow:
    def __init__(self):
        self._lock = threading.Lock()

    def nap(self):
        with self._lock:
            time.sleep(1)
"""

_CONDVAR_OWN_WAIT = """
import threading

class Waiter:
    def __init__(self):
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)

    def wait_ready(self):
        with self._cv:
            self._cv.wait()
"""

_FACTORY_STYLE = """
from repro.analysis.sanitizer import new_condition, new_lock

class Staged:
    def __init__(self):
        self._lock = new_lock("Staged._lock")
        self._cond = new_condition(self._lock, "Staged._cond")
        self.items = []

    def push(self, item):
        with self._lock:
            self.items = self.items + [item]
            self._cond.notify_all()
"""


def _codes(source: str) -> set[str]:
    return analyze_source(source, module="mod").codes()


def _mutate_stg201():
    return analyze_source(_ABBA, module="mod")


def _mutate_stg202():
    return analyze_source(_UNGUARDED_WRITE, module="mod")


def _mutate_stg203():
    return analyze_source(_BARE_ACQUIRE, module="mod")


def _mutate_stg204():
    return analyze_source(_BLOCKING_UNDER_LOCK, module="mod")


_MUTATIONS = {
    "STG201": _mutate_stg201,
    "STG202": _mutate_stg202,
    "STG203": _mutate_stg203,
    "STG204": _mutate_stg204,
}


@pytest.mark.parametrize("code", sorted(_MUTATIONS))
def test_mutation_triggers_code(code):
    report = _MUTATIONS[code]()
    assert code in report.codes(), report.render()
    expected_severity = CODES[code][0]
    assert any(d.severity == expected_severity for d in report.diagnostics if d.code == code)


def test_every_concurrency_code_has_a_mutation():
    assert set(_MUTATIONS) == set(CONCURRENCY_CODES)
    # and the family is actually registered with the diagnostics registry
    assert CONCURRENCY_CODES <= set(CODES)


# ---------------------------------------------------------------------------
# Precision: the analyzer stays quiet on disciplined code
# ---------------------------------------------------------------------------
def test_abba_cycle_found_through_the_call_graph():
    report = analyze_source(_ABBA_TRANSITIVE, module="mod")
    assert "STG201" in report.codes(), report.render()


def test_abba_diagnostic_names_both_sites():
    report = _mutate_stg201()
    [diag] = [d for d in report.diagnostics if d.code == "STG201"]
    assert "Pair._a" in diag.message and "Pair._b" in diag.message
    assert "at mod.Pair.ab" in diag.message  # provenance: where each edge came from
    assert diag.where.startswith("cycle:")


def test_consistent_lock_order_is_clean():
    source = _ABBA.replace(
        "    def ba(self):\n        with self._b:\n            with self._a:",
        "    def ba(self):\n        with self._a:\n            with self._b:",
    )
    assert "STG201" not in _codes(source)


def test_suppression_comment_silences_stg202():
    assert "STG202" in _codes(_UNGUARDED_WRITE)
    assert "STG202" not in _codes(_SUPPRESSED_WRITE)


def test_init_writes_do_not_count_as_unguarded():
    # __init__ publishes the object; its unguarded writes are the norm.
    source = _UNGUARDED_WRITE.replace(
        "    def reset(self):\n        self.count = 0\n", ""
    )
    assert "STG202" not in _codes(source)


def test_acquire_with_try_finally_is_clean():
    assert "STG203" in _codes(_BARE_ACQUIRE)
    assert "STG203" not in _codes(_ACQUIRE_WITH_FINALLY)


def test_condvar_wait_under_own_lock_is_clean():
    # Condition(self._lock) canonicalizes to the same mutex; waiting while
    # holding only it is the intended pattern, not STG204.
    assert "STG204" not in _codes(_CONDVAR_OWN_WAIT)


def test_sanitizer_factory_locks_are_discovered():
    report = analyze_source(_FACTORY_STYLE, module="mod")
    assert report.codes() == set()
    # seed a bug through the factory-created lock to prove it was modeled
    bugged = _FACTORY_STYLE + """
    def read(self):
        self.items = []
"""
    assert "STG202" in _codes(bugged)


# ---------------------------------------------------------------------------
# Baseline workflow
# ---------------------------------------------------------------------------
def test_baseline_round_trip_suppresses_known_findings(tmp_path):
    report = analyze_source(_UNGUARDED_WRITE, module="mod")
    path = tmp_path / "baseline.json"
    entries = write_baseline(report, path, justification="known benign")
    assert len(entries) == 1
    assert entries[0].code == "STG202"
    new, baselined, unused = apply_baseline(
        analyze_source(_UNGUARDED_WRITE, module="mod"), load_baseline(path)
    )
    assert new.codes() == set()
    assert [d.code for d in baselined] == ["STG202"]
    assert unused == []


def test_baseline_preserves_existing_justifications(tmp_path):
    report = analyze_source(_UNGUARDED_WRITE, module="mod")
    path = tmp_path / "baseline.json"
    write_baseline(report, path, justification="the triage note")
    # regenerating with the TODO default must not erase the note
    [entry] = write_baseline(report, path)
    assert entry.justification == "the triage note"


def test_stale_baseline_entries_are_reported_not_gating(tmp_path):
    stale = [BaselineEntry(code="STG203", where="mod.Gone.bad", justification="x")]
    new, baselined, unused = apply_baseline(
        analyze_source(_CONDVAR_OWN_WAIT, module="mod"), stale
    )
    assert new.codes() == set()
    assert baselined == []
    assert unused == stale


def test_missing_baseline_file_is_an_empty_baseline(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == []


# ---------------------------------------------------------------------------
# The repo gate: the shipped sources are clean against the shipped baseline
# ---------------------------------------------------------------------------
def test_repro_sources_are_clean_against_committed_baseline():
    root = Path(repro.__file__).resolve().parent
    report = analyze_path(root)
    baseline = load_baseline(default_baseline_path())
    new, _baselined, unused = apply_baseline(report, baseline)
    assert new.codes() == set(), new.render()
    assert unused == [], f"stale baseline entries: {unused}"


def test_committed_baseline_entries_all_carry_justifications():
    for entry in load_baseline(default_baseline_path()):
        assert entry.justification
        assert not entry.justification.startswith("TODO"), entry
