"""Execution engines: registry semantics + kernel/interpreter equivalence.

The interpreter executes the same tensor-IR ops against the same runtime
primitives in the same order as the generated kernels, so outputs and
gradients must be *bitwise* identical — any disagreement is a codegen bug.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core import (
    CompiledEngine,
    InterpreterEngine,
    KernelEngine,
    TemporalExecutor,
    available_engines,
    get_engine,
)
from repro.core.engine import register_engine
from repro.device import current_device
from repro.graph import StaticGraph
from repro.nn import (
    A3TGCN,
    DCRNN,
    ChebConv,
    EvolveGCNO,
    GATConv,
    GConvGRU,
    GConvLSTM,
    GCNConv,
    RGCNConv,
    SAGEConv,
    TGCN,
)
from repro.tensor import Tensor, functional as F, init

N, F_IN = 18, 4


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_available_engines():
    assert {"kernel", "interpreter", "compiled"} <= set(available_engines())


def test_get_engine_memoizes_singletons():
    assert get_engine("kernel") is get_engine("kernel")
    assert isinstance(get_engine("kernel"), KernelEngine)
    assert isinstance(get_engine("interpreter"), InterpreterEngine)
    assert isinstance(get_engine("compiled"), CompiledEngine)


def test_get_engine_instance_passthrough():
    engine = InterpreterEngine()
    assert get_engine(engine) is engine


def test_get_engine_unknown_raises():
    with pytest.raises(KeyError, match="unknown engine"):
        get_engine("tpu")


def test_get_engine_unknown_lists_available():
    """The KeyError names every registered engine, so typos are self-serve."""
    with pytest.raises(KeyError) as excinfo:
        get_engine("copiled")
    message = str(excinfo.value)
    for name in available_engines():
        assert name in message


def test_register_engine_idempotent_for_same_factory():
    """Re-registering the same factory under its own name is a no-op
    (module re-imports and plugin hooks must not explode)."""
    register_engine("kernel", KernelEngine)
    register_engine("interpreter", InterpreterEngine)
    register_engine("compiled", CompiledEngine)
    assert isinstance(get_engine("kernel"), KernelEngine)


def test_register_engine_rejects_genuine_conflict():
    """A *different* factory claiming a taken name still raises."""
    with pytest.raises(ValueError, match="already registered"):
        register_engine("kernel", InterpreterEngine)


def test_executor_engine_override():
    sg = StaticGraph.from_networkx(nx.gnp_random_graph(6, 0.5, seed=1, directed=True))
    ex = TemporalExecutor(sg)
    assert ex.engine is None  # defer to each program's own engine
    ex.set_engine("interpreter")
    assert isinstance(ex.engine, InterpreterEngine)
    assert isinstance(TemporalExecutor(sg, engine="kernel").engine, KernelEngine)


# ---------------------------------------------------------------------------
# Differential testing: kernel vs interpreter, bitwise, across the layer zoo
# ---------------------------------------------------------------------------
def _gcn(ex, x, x2, rng):
    return GCNConv(F_IN, 3)(ex, x)


def _gcn_weighted(ex, x, x2, rng):
    conv = GCNConv(F_IN, 3, edge_weighted=True, add_self_loops=False)
    w = rng.random(ex.graph.num_edges).astype(np.float32)
    return conv(ex, x, w)


def _gat(ex, x, x2, rng):
    return GATConv(F_IN, 3, heads=2)(ex, x)


def _sage(ex, x, x2, rng):
    return SAGEConv(F_IN, 3)(ex, x)


def _cheb(ex, x, x2, rng):
    return ChebConv(F_IN, 3, k=3)(ex, x)


def _rgcn(ex, x, x2, rng):
    rel = rng.integers(0, 2, size=ex.graph.num_edges)
    return RGCNConv(F_IN, 3, num_relations=2)(ex, x, rel)


def _tgcn(ex, x, x2, rng):
    model = TGCN(F_IN, 3)
    return model(ex, x2, model(ex, x))


def _gconv_gru(ex, x, x2, rng):
    model = GConvGRU(F_IN, 3)
    return model(ex, x2, model(ex, x))


def _gconv_lstm(ex, x, x2, rng):
    model = GConvLSTM(F_IN, 3)
    h, c = model(ex, x)
    h, c = model(ex, x2, h, c)
    return F.add(h, c)


def _a3tgcn(ex, x, x2, rng):
    return A3TGCN(F_IN, 3, periods=2)(ex, [x, x2])


def _evolve_gcn(ex, x, x2, rng):
    model = EvolveGCNO(F_IN, 3)
    return model(ex, x)


def _dcrnn(ex, x, x2, rng):
    model = DCRNN(F_IN, 3, k=2)
    return model(ex, x2, model(ex, x))


ZOO = {
    "gcn": _gcn,
    "gcn_weighted": _gcn_weighted,
    "gat": _gat,
    "sage": _sage,
    "cheb": _cheb,
    "rgcn": _rgcn,
    "tgcn": _tgcn,
    "gconv_gru": _gconv_gru,
    "gconv_lstm": _gconv_lstm,
    "a3tgcn": _a3tgcn,
    "evolve_gcn": _evolve_gcn,
    "dcrnn": _dcrnn,
}


def _run(case, engine):
    """One forward+backward pass of a zoo model on the named engine.

    Seeds pin weights and data, so across engines the only variable is how
    each compiled aggregation executes.
    """
    sg = StaticGraph.from_networkx(nx.gnp_random_graph(N, 0.25, seed=13, directed=True))
    ex = TemporalExecutor(sg, engine=engine)
    ex.begin_timestamp(0)
    rng = np.random.default_rng(11)
    x = Tensor(rng.standard_normal((N, F_IN)).astype(np.float32), requires_grad=True)
    x2 = Tensor(rng.standard_normal((N, F_IN)).astype(np.float32), requires_grad=True)
    init.set_seed(21)
    out = ZOO[case](ex, x, x2, rng)
    F.sum(out).backward()
    grads = {"__x__": x.grad, "__x2__": x2.grad}
    # Reach the model through the tape: parameters hold grads after backward.
    return out.data, grads, ex


@pytest.mark.parametrize("other", ["interpreter", "compiled"])
@pytest.mark.parametrize("case", sorted(ZOO), ids=sorted(ZOO))
def test_engines_agree_bitwise(case, other):
    out_k, grads_k, _ = _run(case, "kernel")
    out_i, grads_i, _ = _run(case, other)
    assert np.array_equal(out_k, out_i)
    for name in grads_k:
        gk, gi = grads_k[name], grads_i[name]
        if gk is None and gi is None:
            continue
        assert gk is not None and gi is not None, name
        assert np.array_equal(gk, gi), name


def test_model_parameter_grads_agree_bitwise():
    """Same check through the parameters, for a model with many gates."""
    def run(engine):
        sg = StaticGraph.from_networkx(
            nx.gnp_random_graph(N, 0.25, seed=13, directed=True)
        )
        ex = TemporalExecutor(sg, engine=engine)
        ex.begin_timestamp(0)
        rng = np.random.default_rng(5)
        x = Tensor(rng.standard_normal((N, F_IN)).astype(np.float32))
        init.set_seed(3)
        model = TGCN(F_IN, 5)
        F.sum(model(ex, x)).backward()
        return {n: p.grad.copy() for n, p in model.named_parameters()}

    gk, gi = run("kernel"), run("interpreter")
    assert gk.keys() == gi.keys()
    for name in gk:
        assert np.array_equal(gk[name], gi[name]), name


def test_interpreter_launches_no_kernels():
    launcher = current_device().launcher
    _, _, _ = _run("gcn", "interpreter")
    before = launcher.launch_count
    _run("gcn", "interpreter")
    assert launcher.launch_count == before


def test_per_program_engine_without_executor_override():
    """engine= on the layer itself selects the engine when the executor
    doesn't override."""
    sg = StaticGraph.from_networkx(nx.gnp_random_graph(N, 0.25, seed=13, directed=True))
    launcher = current_device().launcher

    def run(engine):
        ex = TemporalExecutor(sg)  # no override
        ex.begin_timestamp(0)
        init.set_seed(9)
        conv = GCNConv(F_IN, 3, engine=engine)
        rng = np.random.default_rng(2)
        x = Tensor(rng.standard_normal((N, F_IN)).astype(np.float32))
        return conv(ex, x).data

    out_k = run("kernel")
    before = launcher.launch_count
    out_i = run("interpreter")
    assert launcher.launch_count == before  # interpreter bypassed the launcher
    assert np.array_equal(out_k, out_i)
