"""CSR construction, edge labelling, degree ordering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    CSR,
    build_csr,
    canonical_edge_labels,
    csr_from_edges,
    decode_edges,
    degree_sorted_node_ids,
    edge_density,
    encode_edges,
    processing_order,
)


def test_build_csr_basic():
    # Figure 3's graph: V0->V1, V0->V2, V1->V2, V1->V3, V2->V0, V2->V1, V2->V3
    src = np.array([0, 0, 1, 1, 2, 2, 2])
    dst = np.array([1, 2, 2, 3, 0, 1, 3])
    csr = build_csr(src, dst, np.arange(7), 4)
    csr.validate()
    assert csr.num_nodes == 4 and csr.num_edges == 7
    assert sorted(csr.neighbors(0).tolist()) == [1, 2]
    assert sorted(csr.neighbors(2).tolist()) == [0, 1, 3]
    assert csr.neighbors(3).size == 0
    assert np.array_equal(csr.degrees(), [2, 2, 3, 0])


def test_figure3_node_ids_order():
    """Paper Figure 3: out-degrees [2,2,3,0] → node_ids [V2, V0, V1, V3]."""
    src = np.array([0, 0, 1, 1, 2, 2, 2])
    dst = np.array([1, 2, 2, 3, 0, 1, 3])
    csr = build_csr(src, dst, np.arange(7), 4, sort_by_degree=True)
    assert csr.node_ids.tolist() == [2, 0, 1, 3]


def test_degree_sort_disabled_identity():
    src = np.array([0, 2, 2])
    dst = np.array([1, 0, 1])
    csr = build_csr(src, dst, np.arange(3), 3, sort_by_degree=False)
    assert csr.node_ids.tolist() == [0, 1, 2]


def test_degree_sorted_node_ids_stable_ties():
    assert degree_sorted_node_ids(np.array([2, 2, 3, 0])).tolist() == [2, 0, 1, 3]
    assert degree_sorted_node_ids(np.array([1, 1, 1])).tolist() == [0, 1, 2]


def test_processing_order_flag():
    ids = np.array([2, 0, 1])
    assert processing_order(ids, True).tolist() == [2, 0, 1]
    assert processing_order(ids, False).tolist() == [0, 1, 2]


def test_csr_from_edges_label_sharing():
    src = np.array([0, 1, 2, 0])
    dst = np.array([1, 2, 0, 2])
    bwd, fwd = csr_from_edges(src, dst, 3)
    # Same label set in both orientations
    assert sorted(bwd.eids.tolist()) == sorted(fwd.eids.tolist()) == [0, 1, 2, 3]
    # For each label, the edge is identical seen from both sides
    fwd_pairs = {}
    for v in range(3):
        for u, l in zip(fwd.neighbors(v), fwd.edge_ids(v)):
            fwd_pairs[int(l)] = (int(u), int(v))
    for u in range(3):
        for v, l in zip(bwd.neighbors(u), bwd.edge_ids(u)):
            assert fwd_pairs[int(l)] == (u, int(v))


def test_canonical_labels_are_lex_ranks():
    src = np.array([2, 0, 1])
    dst = np.array([0, 1, 2])
    labels = canonical_edge_labels(src, dst, 3)
    # lexicographic order: (0,1) < (1,2) < (2,0)
    assert labels.tolist() == [2, 0, 1]


def test_encode_decode_roundtrip(rng):
    n = 50
    src = rng.integers(0, n, 100)
    dst = rng.integers(0, n, 100)
    keys = encode_edges(src, dst, n)
    s2, d2 = decode_edges(keys, n)
    assert np.array_equal(s2, src) and np.array_equal(d2, dst)


def test_encode_rejects_out_of_range():
    with pytest.raises(ValueError):
        encode_edges(np.array([5]), np.array([0]), 5)
    with pytest.raises(ValueError):
        encode_edges(np.array([-1]), np.array([0]), 5)


def test_edge_density():
    assert edge_density(10, 90) == pytest.approx(1.0)
    assert edge_density(10, 9) == pytest.approx(0.1)
    assert edge_density(1, 0) == 0.0


def test_empty_graph_csr():
    csr = build_csr(np.array([], dtype=np.int64), np.array([], dtype=np.int64), np.array([], dtype=np.int64), 5)
    csr.validate()
    assert csr.num_edges == 0
    assert all(csr.neighbors(v).size == 0 for v in range(5))


def test_csr_nbytes_positive():
    src = np.array([0, 1])
    dst = np.array([1, 0])
    csr = build_csr(src, dst, np.arange(2), 2)
    assert csr.nbytes() > 0


def test_validate_catches_corruption():
    src = np.array([0, 1])
    dst = np.array([1, 0])
    csr = build_csr(src, dst, np.arange(2), 2)
    csr.col_indices[0] = 99
    with pytest.raises(AssertionError):
        csr.validate()
