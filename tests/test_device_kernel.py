"""Kernel compilation and the launcher cache."""

from __future__ import annotations

import pytest

from repro.device.kernel import CompiledKernel, KernelLauncher, compile_kernel_source


def test_compile_kernel_source_basic():
    fn = compile_kernel_source("def k(x):\n    return x * 2\n", "k")
    assert fn(21) == 42


def test_compile_kernel_source_with_globals():
    fn = compile_kernel_source(
        "def k(x):\n    return helper(x) + 1\n", "k", globals_extra={"helper": lambda v: v * 10}
    )
    assert fn(4) == 41


def test_compile_missing_entry_raises():
    with pytest.raises(RuntimeError, match="entry point"):
        compile_kernel_source("def other():\n    pass\n", "k")


def test_compile_syntax_error_surfaces():
    with pytest.raises(SyntaxError):
        compile_kernel_source("def k(:\n", "k")


def test_launcher_cache_roundtrip():
    launcher = KernelLauncher()
    kernel = CompiledKernel("k", "def k():\n    return 7\n", lambda: 7, ())
    assert launcher.get("sig") is None
    launcher.put("sig", kernel)
    assert launcher.get("sig") is kernel
    assert len(launcher) == 1


def test_launcher_counts_and_times():
    launcher = KernelLauncher()
    kernel = CompiledKernel("k", "", lambda a, b: a + b, ())
    assert launcher.launch(kernel, 1, 2) == 3
    assert launcher.launch(kernel, 3, 4) == 7
    assert launcher.launch_count == 2
    assert launcher.launch_seconds >= 0.0


def test_launcher_counts_failed_launches():
    launcher = KernelLauncher()

    def bad():
        raise RuntimeError("kernel fault")

    kernel = CompiledKernel("k", "", bad, ())
    with pytest.raises(RuntimeError):
        launcher.launch(kernel)
    assert launcher.launch_count == 1


def test_launcher_clear():
    launcher = KernelLauncher()
    launcher.put("a", CompiledKernel("k", "", lambda: 0, ()))
    launcher.launch(launcher.get("a"))
    launcher.clear()
    assert len(launcher) == 0
    assert launcher.launch_count == 0
