"""Integration tests asserting the paper's qualitative claims at test scale.

Each test pins one claim from §VII (Figures 5-9 / Table III) that must hold
in this reproduction:

* dense static graphs: STGraph faster and leaner than PyG-T;
* memory grows steeply with sequence length for PyG-T, mildly for STGraph;
* DTDGs: Naive fastest; GPMA leanest; GPMA flat in percent-change while
  Naive/PyG-T grow as snapshots get more redundant;
* GPMA's graph-update share of time falls as feature size grows;
* losses agree across all systems (same math, different execution).
"""

from __future__ import annotations

import pytest

from repro.bench import run_dynamic_experiment, run_static_experiment
from repro.dataset import load_sx_mathoverflow, load_windmill_output

pytestmark = pytest.mark.filterwarnings("ignore")

_STATIC = dict(scale=0.3, num_timestamps=12, epochs=3, warmup=1)
_DYNAMIC = dict(scale=0.02, epochs=3, warmup=1, max_snapshots=8)


@pytest.fixture(scope="module")
def dense_static_runs():
    s = run_static_experiment("stgraph", load_windmill_output, feature_size=16, **_STATIC)
    p = run_static_experiment("pygt", load_windmill_output, feature_size=16, **_STATIC)
    return s, p


def test_stgraph_faster_on_dense_static(dense_static_runs):
    s, p = dense_static_runs
    assert s.per_epoch_seconds < p.per_epoch_seconds


def test_stgraph_leaner_on_dense_static(dense_static_runs):
    s, p = dense_static_runs
    assert s.peak_memory_bytes < p.peak_memory_bytes


def test_losses_match_across_frameworks(dense_static_runs):
    s, p = dense_static_runs
    assert s.final_loss == pytest.approx(p.final_loss, rel=1e-3)


def test_memory_slope_vs_sequence_length():
    """Figure 6: PyG-T's memory-vs-seqlen slope dwarfs STGraph's."""
    mem = {}
    for system in ("stgraph", "pygt"):
        mem[system] = [
            run_static_experiment(
                system, load_windmill_output, feature_size=8,
                sequence_length=seq, **_STATIC,
            ).peak_memory_bytes
            for seq in (4, 12)
        ]
    slope_stg = mem["stgraph"][1] - mem["stgraph"][0]
    slope_pyg = mem["pygt"][1] - mem["pygt"][0]
    assert slope_pyg > 3 * max(slope_stg, 1)


@pytest.fixture(scope="module")
def dtdg_runs():
    out = {}
    for system in ("naive", "gpma", "pygt"):
        out[system] = run_dynamic_experiment(
            system, load_sx_mathoverflow, feature_size=8, **_DYNAMIC
        )
    return out


def test_naive_fastest_on_dtdg(dtdg_runs):
    assert dtdg_runs["naive"].per_epoch_seconds < dtdg_runs["pygt"].per_epoch_seconds
    assert dtdg_runs["naive"].per_epoch_seconds < dtdg_runs["gpma"].per_epoch_seconds


def test_gpma_leanest_on_dtdg(dtdg_runs):
    assert dtdg_runs["gpma"].peak_memory_bytes < dtdg_runs["naive"].peak_memory_bytes
    assert dtdg_runs["gpma"].peak_memory_bytes < dtdg_runs["pygt"].peak_memory_bytes


def test_dtdg_losses_match(dtdg_runs):
    losses = [r.final_loss for r in dtdg_runs.values()]
    assert max(losses) - min(losses) < 1e-3 * max(abs(losses[0]), 1.0)


def test_gpma_update_share_falls_with_feature_size():
    """Figure 9: GNN time grows with F, update time doesn't."""
    small = run_dynamic_experiment("gpma", load_sx_mathoverflow, feature_size=4, **_DYNAMIC)
    large = run_dynamic_experiment("gpma", load_sx_mathoverflow, feature_size=64, **_DYNAMIC)
    assert large.graph_update_fraction < small.graph_update_fraction


def test_gpma_crossover_at_large_feature_size():
    """Figure 7: GPMA overtakes PyG-T once GNN cost dominates updates."""
    kwargs = dict(_DYNAMIC)
    kwargs["scale"] = 0.05
    g = run_dynamic_experiment("gpma", load_sx_mathoverflow, feature_size=64, **kwargs)
    p = run_dynamic_experiment("pygt", load_sx_mathoverflow, feature_size=64, **kwargs)
    assert g.per_epoch_seconds < p.per_epoch_seconds


def test_gpma_memory_flat_in_percent_change():
    """Figure 8: GPMA barely moves across the % sweep; Naive/PyG-T blow up
    at small % change.  A fixed stream yields ~1/pct snapshots, so
    snapshot-storing systems pay for the redundancy; max_snapshots=None
    lets that happen (the paper's setup)."""
    mems = {}
    for system in ("gpma", "naive", "pygt"):
        mems[system] = [
            run_dynamic_experiment(
                system, load_sx_mathoverflow, feature_size=8,
                percent_change=pct, scale=0.008, epochs=2, warmup=1,
                max_snapshots=None,
            ).peak_memory_bytes
            for pct in (1.0, 10.0)
        ]
    gpma_ratio = mems["gpma"][0] / mems["gpma"][1]
    naive_ratio = mems["naive"][0] / mems["naive"][1]
    pygt_ratio = mems["pygt"][0] / mems["pygt"][1]
    assert gpma_ratio < naive_ratio
    assert gpma_ratio < pygt_ratio
    # and the paper's ordering at the small-% end: GPMA leanest
    assert mems["gpma"][0] < mems["naive"][0]
    assert mems["gpma"][0] < mems["pygt"][0]


def test_update_fraction_zero_for_pygt(dtdg_runs):
    assert dtdg_runs["pygt"].graph_update_fraction == 0.0


def test_naive_update_fraction_smaller_than_gpma(dtdg_runs):
    assert dtdg_runs["naive"].graph_update_fraction < dtdg_runs["gpma"].graph_update_fraction


def test_run_result_row_shape(dtdg_runs):
    row = dtdg_runs["gpma"].row()
    for key in ("system", "dataset", "epoch_s", "peak_MB", "loss", "update_frac"):
        assert key in row
