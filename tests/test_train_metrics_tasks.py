"""Metrics and link-prediction sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import load_sx_mathoverflow
from repro.graph.labels import encode_edges
from repro.train import make_link_prediction_samples
from repro.train.metrics import accuracy_from_logits, mae, rmse, roc_auc


def test_mae_rmse():
    pred = np.array([1.0, 2.0, 3.0])
    target = np.array([1.0, 0.0, 7.0])
    assert mae(pred, target) == pytest.approx(2.0)
    assert rmse(pred, target) == pytest.approx(np.sqrt((0 + 4 + 16) / 3))


def test_roc_auc_perfect_separation():
    scores = np.array([0.9, 0.8, 0.2, 0.1])
    labels = np.array([1, 1, 0, 0])
    assert roc_auc(scores, labels) == pytest.approx(1.0)


def test_roc_auc_inverted():
    scores = np.array([0.1, 0.2, 0.8, 0.9])
    labels = np.array([1, 1, 0, 0])
    assert roc_auc(scores, labels) == pytest.approx(0.0)


def test_roc_auc_random_is_half(rng):
    scores = rng.random(4000)
    labels = (rng.random(4000) > 0.5).astype(float)
    assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.05)


def test_roc_auc_handles_ties():
    scores = np.array([0.5, 0.5, 0.5, 0.5])
    labels = np.array([1, 0, 1, 0])
    assert roc_auc(scores, labels) == pytest.approx(0.5)


def test_roc_auc_degenerate_classes():
    assert np.isnan(roc_auc(np.array([0.1, 0.2]), np.array([1, 1])))


def test_accuracy_from_logits():
    logits = np.array([2.0, -1.0, 0.5, -0.5])
    labels = np.array([1, 0, 0, 0])
    assert accuracy_from_logits(logits, labels) == pytest.approx(0.75)


# ---------------------------------------------------------------------------
# Link-prediction sampling
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def ds():
    return load_sx_mathoverflow(scale=0.01, max_snapshots=5)


def test_samples_per_timestamp(ds):
    samples = make_link_prediction_samples(ds.dtdg, samples_per_timestamp=100, seed=0)
    assert len(samples) == ds.num_timestamps
    for s in samples:
        assert s.pairs.shape[0] == 2
        assert s.pairs.shape[1] == len(s.labels)
        assert set(np.unique(s.labels)) <= {0.0, 1.0}


def test_samples_balanced(ds):
    samples = make_link_prediction_samples(ds.dtdg, samples_per_timestamp=100, seed=0)
    for s in samples:
        pos = int(s.labels.sum())
        neg = len(s.labels) - pos
        assert pos == neg


def test_positives_are_real_edges(ds):
    samples = make_link_prediction_samples(ds.dtdg, samples_per_timestamp=64, seed=1)
    for t, s in enumerate(samples):
        src, dst = ds.dtdg.snapshot_edges(t)
        edge_keys = set(encode_edges(src, dst, ds.num_nodes).tolist())
        pos = s.pairs[:, s.labels > 0.5]
        keys = encode_edges(pos[0], pos[1], ds.num_nodes)
        assert all(k in edge_keys for k in keys.tolist())


def test_negatives_are_non_edges(ds):
    samples = make_link_prediction_samples(ds.dtdg, samples_per_timestamp=64, seed=1)
    for t, s in enumerate(samples):
        src, dst = ds.dtdg.snapshot_edges(t)
        edge_keys = set(encode_edges(src, dst, ds.num_nodes).tolist())
        neg = s.pairs[:, s.labels < 0.5]
        keys = encode_edges(neg[0], neg[1], ds.num_nodes)
        assert not any(k in edge_keys for k in keys.tolist())
        assert np.all(neg[0] != neg[1])


def test_samples_deterministic(ds):
    a = make_link_prediction_samples(ds.dtdg, 64, seed=5)
    b = make_link_prediction_samples(ds.dtdg, 64, seed=5)
    for sa, sb in zip(a, b):
        assert np.array_equal(sa.pairs, sb.pairs)
