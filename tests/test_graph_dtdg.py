"""DTDG container: update derivation and consistency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import DTDG, EdgeUpdate
from repro.graph.labels import encode_edges


def _snap(*pairs):
    arr = np.array(pairs, dtype=np.int64).reshape(-1, 2)
    return arr[:, 0], arr[:, 1]


def test_single_snapshot():
    dtdg = DTDG([_snap((0, 1), (1, 2))], 3)
    assert dtdg.num_timestamps == 1
    assert dtdg.updates[0].num_changes == 0
    s, d = dtdg.snapshot_edges(0)
    assert set(zip(s.tolist(), d.tolist())) == {(0, 1), (1, 2)}


def test_updates_are_exact_diffs():
    dtdg = DTDG([_snap((0, 1), (1, 2)), _snap((1, 2), (2, 0))], 3)
    up = dtdg.updates[1]
    assert set(zip(up.add_src.tolist(), up.add_dst.tolist())) == {(2, 0)}
    assert set(zip(up.del_src.tolist(), up.del_dst.tolist())) == {(0, 1)}
    assert up.num_changes == 2


def test_duplicate_edges_collapsed():
    dtdg = DTDG([_snap((0, 1), (0, 1), (1, 2))], 3)
    assert dtdg.snapshot_edge_count(0) == 2


def test_applying_updates_reconstructs_snapshots(rng):
    n = 30
    snaps = []
    keys = set(map(tuple, rng.integers(0, n, (40, 2)).tolist()))
    keys = {(s, d) for s, d in keys if s != d}
    for t in range(5):
        if t:
            drop = list(keys)[:3]
            for k in drop:
                keys.discard(k)
            for _ in range(5):
                s, d = rng.integers(0, n, 2)
                if s != d:
                    keys.add((int(s), int(d)))
        arr = np.array(sorted(keys), dtype=np.int64)
        snaps.append((arr[:, 0].copy(), arr[:, 1].copy()))
    dtdg = DTDG(snaps, n)
    # replay updates from snapshot 0
    current = set(encode_edges(*dtdg.snapshot_edges(0), n).tolist())
    for t in range(1, dtdg.num_timestamps):
        up = dtdg.updates[t]
        current -= set(encode_edges(up.del_src, up.del_dst, n).tolist())
        current |= set(encode_edges(up.add_src, up.add_dst, n).tolist())
        expect = set(encode_edges(*dtdg.snapshot_edges(t), n).tolist())
        assert current == expect, t


def test_reversed_update_inverts():
    up = EdgeUpdate(
        np.array([1]), np.array([2]), np.array([3]), np.array([4])
    )
    r = up.reversed()
    assert r.add_src.tolist() == [3] and r.add_dst.tolist() == [4]
    assert r.del_src.tolist() == [1] and r.del_dst.tolist() == [2]


def test_percent_change():
    dtdg = DTDG(
        [_snap((0, 1), (1, 2), (2, 3), (3, 0)), _snap((0, 1), (1, 2), (2, 3), (0, 2))], 4
    )
    # 1 added + 1 deleted out of 4 edges = 50%
    assert dtdg.percent_change(1) == pytest.approx(50.0)
    assert dtdg.percent_change(0) == 0.0
    assert dtdg.max_percent_change() == pytest.approx(50.0)


def test_total_update_count():
    dtdg = DTDG([_snap((0, 1)), _snap((1, 2)), _snap((1, 2), (2, 0))], 3)
    assert dtdg.total_update_count() == 2 + 1


def test_empty_dtdg_rejected():
    with pytest.raises(ValueError):
        DTDG([], 5)


def test_identical_snapshots_no_updates():
    dtdg = DTDG([_snap((0, 1)), _snap((0, 1))], 2)
    assert dtdg.updates[1].num_changes == 0
    assert dtdg.percent_change(1) == 0.0
