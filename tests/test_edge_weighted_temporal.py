"""Time-varying edge features (Definition II.1) and future-link prediction."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core import TemporalExecutor
from repro.dataset import load_sx_mathoverflow
from repro.graph import StaticGraph
from repro.graph.labels import encode_edges
from repro.nn import GCNConv
from repro.tensor import Tensor, functional as F, init, optim
from repro.train import make_link_prediction_samples


@pytest.fixture
def setup(rng):
    g = nx.gnp_random_graph(15, 0.3, seed=3, directed=True)
    sg = StaticGraph.from_networkx(g)
    ex = TemporalExecutor(sg)
    ex.begin_timestamp(0)
    x = rng.standard_normal((15, 4)).astype(np.float32)
    return g, sg, ex, x


def test_weighted_gcn_matches_dense(setup, rng):
    g, sg, ex, x = setup
    conv = GCNConv(4, 3, edge_weighted=True, add_self_loops=False, bias=False)
    w = rng.standard_normal(sg.num_edges).astype(np.float32)
    out = conv(ex, Tensor(x), edge_weight=w)
    A = nx.to_numpy_array(g).T
    deg = np.maximum(A.sum(1), 1)
    norm = 1 / np.sqrt(deg)
    # weighted adjacency from labelled edges
    Aw = np.zeros_like(A)
    bwd = sg.backward_csr()
    for u in range(15):
        for v, l in zip(bwd.neighbors(u), bwd.edge_ids(u)):
            Aw[v, u] = w[l]
    ref = norm[:, None] * (Aw @ (x @ conv.weight.data * norm[:, None]))
    assert np.allclose(out.data, ref, atol=1e-4)


def test_weighted_gcn_requires_weights(setup):
    g, sg, ex, x = setup
    conv = GCNConv(4, 3, edge_weighted=True, add_self_loops=False)
    with pytest.raises(ValueError, match="edge_weight"):
        conv(ex, Tensor(x))


def test_weighted_with_self_loops_rejected():
    with pytest.raises(ValueError, match="self-loop"):
        GCNConv(4, 3, edge_weighted=True, add_self_loops=True)


def test_per_timestamp_edge_weights_change_output(setup, rng):
    """Definition II.1: edge features may differ every timestamp, and the
    State Stack must restore the *matching* weights during backward."""
    g, sg, ex, x = setup
    conv = GCNConv(4, 3, edge_weighted=True, add_self_loops=False, bias=False)
    weights = [rng.standard_normal(sg.num_edges).astype(np.float32) for _ in range(3)]
    x_t = Tensor(x, requires_grad=True)
    total = None
    outs = []
    for t in range(3):
        ex.begin_timestamp(t)
        out = conv(ex, x_t, edge_weight=weights[t])
        outs.append(out.data.copy())
        loss = F.sum(F.mul(out, out))
        total = loss if total is None else F.add(total, loss)
    assert not np.allclose(outs[0], outs[1])
    total.backward()
    ex.check_drained()

    # gradient check against the per-timestamp numeric derivative
    eps = 1e-2
    i, j = 4, 2
    def run_all(xv):
        s = 0.0
        for t in range(3):
            ex.begin_timestamp(t)
            o = conv(ex, Tensor(xv), edge_weight=weights[t])
            s += float((o.data ** 2).sum())
        return s

    xp = x.copy(); xp[i, j] += eps
    xm = x.copy(); xm[i, j] -= eps
    num = (run_all(xp) - run_all(xm)) / (2 * eps)
    assert x_t.grad[i, j] == pytest.approx(num, rel=0.05, abs=0.05)


def test_weighted_training_converges(setup, rng):
    g, sg, ex, x = setup
    init.set_seed(0)
    conv = GCNConv(4, 3, edge_weighted=True, add_self_loops=False)
    w = np.abs(rng.standard_normal(sg.num_edges)).astype(np.float32)
    y = rng.standard_normal((15, 3)).astype(np.float32)
    opt = optim.Adam(conv.parameters(), lr=1e-2)
    first = last = None
    for _ in range(15):
        opt.zero_grad()
        loss = F.mse_loss(conv(ex, Tensor(x), edge_weight=w), y)
        loss.backward()
        ex.check_drained()
        opt.step()
        first = first if first is not None else loss.item()
        last = loss.item()
    assert last < first


# ---------------------------------------------------------------------------
# Future-link prediction horizon
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def dyn_ds():
    return load_sx_mathoverflow(scale=0.01, max_snapshots=5)


def test_horizon_zero_is_presence_task(dyn_ds):
    a = make_link_prediction_samples(dyn_ds.dtdg, 64, seed=1, horizon=0)
    b = make_link_prediction_samples(dyn_ds.dtdg, 64, seed=1)
    for sa, sb in zip(a, b):
        assert np.array_equal(sa.pairs, sb.pairs)


def test_horizon_positives_come_from_future_snapshot(dyn_ds):
    samples = make_link_prediction_samples(dyn_ds.dtdg, 64, seed=1, horizon=1)
    n = dyn_ds.num_nodes
    for t, s in enumerate(samples):
        target_t = min(t + 1, dyn_ds.num_timestamps - 1)
        src, dst = dyn_ds.dtdg.snapshot_edges(target_t)
        keys = set(encode_edges(src, dst, n).tolist())
        pos = s.pairs[:, s.labels > 0.5]
        assert all(k in keys for k in encode_edges(pos[0], pos[1], n).tolist())


def test_horizon_clamps_at_end(dyn_ds):
    h_big = make_link_prediction_samples(dyn_ds.dtdg, 64, seed=2, horizon=100)
    n = dyn_ds.num_nodes
    last = dyn_ds.num_timestamps - 1
    src, dst = dyn_ds.dtdg.snapshot_edges(last)
    keys = set(encode_edges(src, dst, n).tolist())
    for s in h_big:
        pos = s.pairs[:, s.labels > 0.5]
        assert all(k in keys for k in encode_edges(pos[0], pos[1], n).tolist())


def test_negative_horizon_rejected(dyn_ds):
    with pytest.raises(ValueError):
        make_link_prediction_samples(dyn_ds.dtdg, 64, horizon=-1)
