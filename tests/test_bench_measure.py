"""Benchmark-runner parameter plumbing (fast configurations)."""

from __future__ import annotations

import pytest

from repro.bench import run_dynamic_experiment, run_static_experiment
from repro.dataset import load_hungary_chickenpox, load_sx_mathoverflow

_FAST_STATIC = dict(scale=1.0, num_timestamps=8, epochs=2, warmup=1, feature_size=4)
_FAST_DYNAMIC = dict(scale=0.005, epochs=2, warmup=1, feature_size=4, max_snapshots=5)


def test_unknown_static_system():
    with pytest.raises(ValueError, match="static system"):
        run_static_experiment("cuda", load_hungary_chickenpox)


def test_unknown_dynamic_system():
    with pytest.raises(ValueError, match="dynamic system"):
        run_dynamic_experiment("spark", load_sx_mathoverflow)


def test_hidden_defaults_to_feature_size():
    r = run_static_experiment("stgraph", load_hungary_chickenpox, **_FAST_STATIC)
    assert r.params["F"] == 4
    assert r.per_epoch_seconds > 0
    assert r.peak_memory_bytes > 0


def test_explicit_hidden_override():
    r = run_static_experiment(
        "stgraph", load_hungary_chickenpox, hidden=32, **_FAST_STATIC
    )
    assert r.per_epoch_seconds > 0


def test_sort_by_degree_flag_runs():
    a = run_static_experiment(
        "stgraph", load_hungary_chickenpox, sort_by_degree=True, **_FAST_STATIC
    )
    b = run_static_experiment(
        "stgraph", load_hungary_chickenpox, sort_by_degree=False, **_FAST_STATIC
    )
    # identical math either way
    assert a.final_loss == pytest.approx(b.final_loss, rel=1e-4)


def test_gpma_cache_flag_runs():
    a = run_dynamic_experiment(
        "gpma", load_sx_mathoverflow, gpma_cache=True,
        sequence_length=2, **_FAST_DYNAMIC,
    )
    b = run_dynamic_experiment(
        "gpma", load_sx_mathoverflow, gpma_cache=False,
        sequence_length=2, **_FAST_DYNAMIC,
    )
    assert a.final_loss == pytest.approx(b.final_loss, rel=1e-4)


def test_csr_cache_flag_ablates_reuse():
    on = run_dynamic_experiment(
        "gpma", load_sx_mathoverflow, csr_cache=True,
        sequence_length=2, **_FAST_DYNAMIC,
    )
    off = run_dynamic_experiment(
        "gpma", load_sx_mathoverflow, csr_cache=False,
        sequence_length=2, **_FAST_DYNAMIC,
    )
    # Reuse is a pure optimization: identical training, fewer rebuilds.
    assert on.final_loss == pytest.approx(off.final_loss, rel=1e-4)
    assert on.csr_cache_hits + on.ctx_cache_hits > 0
    assert off.csr_cache_hits == 0 and off.ctx_cache_hits == 0
    assert on.csr_cache_misses < off.csr_cache_misses
    assert 0.0 < on.csr_cache_hit_rate <= 1.0


def test_dynamic_runs_isolated_devices():
    """Consecutive runs must not share memory accounting."""
    a = run_dynamic_experiment("naive", load_sx_mathoverflow, **_FAST_DYNAMIC)
    b = run_dynamic_experiment("naive", load_sx_mathoverflow, **_FAST_DYNAMIC)
    assert a.peak_memory_bytes == pytest.approx(b.peak_memory_bytes, rel=0.25)


def test_pygt_has_no_graph_update_time():
    r = run_dynamic_experiment("pygt", load_sx_mathoverflow, **_FAST_DYNAMIC)
    assert r.graph_update_seconds == 0.0
    assert r.graph_update_fraction == 0.0


def test_run_result_rows_serializable():
    import json

    r = run_static_experiment("stgraph", load_hungary_chickenpox, **_FAST_STATIC)
    json.dumps(r.row())  # must be plain JSON types
    assert {"csr_hits", "csr_misses", "noop_skipped"} <= set(r.row())
