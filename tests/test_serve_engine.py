"""InferenceEngine unit tests: correctness, reuse, invalidation, ablations.

Everything here is single-client (deterministic interleavings); the
concurrent property test lives in ``test_serve_concurrency.py`` and the
end-to-end smoke in ``test_serve_harness.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import DTDG, GPMAGraph
from repro.serve import InferenceEngine, random_update_batches, serial_reference
from repro.train import STGraphNodeRegressor

N, F, HIDDEN = 48, 8, 12


@pytest.fixture
def dtdg(rng):
    src = rng.integers(0, N, 220)
    dst = rng.integers(0, N, 220)
    keep = src != dst
    return DTDG([(src[keep], dst[keep])], num_nodes=N)


@pytest.fixture
def feats(rng):
    return rng.standard_normal((N, F)).astype(np.float32)


@pytest.fixture
def model():
    return STGraphNodeRegressor(F, HIDDEN)


def _engine(model, dtdg, feats, **kw):
    return InferenceEngine(model, GPMAGraph(dtdg), feats, **kw)


class TestQueryCorrectness:
    def test_matches_serial_reference_bitwise(self, model, dtdg, feats):
        eng = _engine(model, dtdg, feats)
        with eng:
            emb = eng.query(3, "embedding")
            pred = eng.query(3, "prediction")
        ref = serial_reference(model, eng.graph.dtdg, feats, [emb.timestamp])
        h, p = ref[emb.timestamp]
        assert np.array_equal(emb.value, h[3])
        assert np.array_equal(pred.value, p[3])

    def test_result_metadata(self, model, dtdg, feats):
        eng = _engine(model, dtdg, feats)
        with eng:
            res = eng.query(0)
        assert res.kind == "embedding"
        assert res.timestamp == 0
        assert res.version == eng.graph.snapshot_version
        assert res.served_from == "forward"
        assert res.lag == 0
        assert res.latency_s > 0

    def test_query_validation(self, model, dtdg, feats):
        eng = _engine(model, dtdg, feats)
        with eng:
            with pytest.raises(ValueError, match="kind"):
                eng.query(0, "gradient")
            with pytest.raises(ValueError, match="out of range"):
                eng.query(N)
            with pytest.raises(ValueError, match="out of range"):
                eng.query(-1)

    def test_feature_shape_mismatch_raises(self, model, dtdg, rng):
        with pytest.raises(ValueError, match="features rows"):
            _engine(model, dtdg, rng.standard_normal((N + 1, F)).astype(np.float32))


class TestReuse:
    def test_same_version_queries_hit_all_caches(self, model, dtdg, feats, fresh_device):
        """Repeated queries at an unchanged version: one forward total, zero
        Algorithm-3 rebuilds, zero CSR/context cache misses after warmup."""
        eng = _engine(model, dtdg, feats)
        with eng:
            eng.query(0)  # warm: one forward, caches populated
            csr_misses = fresh_device.profiler.counter("csr_cache_misses")
            rebuilds = fresh_device.profiler.counter("cache_fault_rebuilds")
            ctx_misses = eng._executor.ctx_cache_misses
            for v in range(20):
                res = eng.query(v % N)
                assert res.served_from == "cache"
            stats = eng.stats()
        assert stats["forwards"] == 1
        assert stats["row_cache_hits"] == 20
        assert fresh_device.profiler.counter("csr_cache_misses") == csr_misses
        assert fresh_device.profiler.counter("cache_fault_rebuilds") == rebuilds
        assert eng._executor.ctx_cache_misses == ctx_misses

    def test_stats_include_executor_counters(self, model, dtdg, feats):
        eng = _engine(model, dtdg, feats)
        with eng:
            eng.query(0)
            stats = eng.stats()
        assert "executor_ctx_cache_hits" in stats
        assert stats["queries_served"] == 1


class TestInvalidation:
    def test_clean_rows_survive_updates_bitwise(self, model, dtdg, feats):
        """After an update, rows outside the k-hop dirty set keep serving
        from the stale row cache — and are bitwise-equal to a fresh forward
        at the *new* version."""
        eng = _engine(model, dtdg, feats, hops=1)
        update = random_update_batches(dtdg, 1, seed=5)[0]
        with eng:
            eng.query(0)  # warm row cache at version 0
            eng.ingest.apply_update(update)
            version = eng.latest_version
            dirty = eng.dirty_vertices(version)
            assert dirty is not None and 0 < dirty.size < N
            clean = np.setdiff1d(np.arange(N), dirty)
            forwards_before = eng.forwards
            results = [eng.query(int(v)) for v in clean[:8]]
            assert eng.forwards == forwards_before  # pure cache serving
            dirty_res = eng.query(int(dirty[0]))
            assert dirty_res.served_from == "forward"
        ref = serial_reference(model, eng.graph.dtdg, feats, [results[0].timestamp])
        h = ref[results[0].timestamp][0]
        for res in results:
            assert res.served_from == "cache"
            assert res.version == version
            assert np.array_equal(res.value, h[res.vertex])
        assert np.array_equal(dirty_res.value, h[dirty_res.vertex])

    def test_invalidation_off_recomputes_every_version(self, model, dtdg, feats):
        eng = _engine(model, dtdg, feats, invalidation=False)
        update = random_update_batches(dtdg, 1, seed=5)[0]
        with eng:
            eng.query(0)
            eng.ingest.apply_update(update)
            res = eng.query(0)
            stats = eng.stats()
        assert res.served_from == "forward"
        assert stats["rows_invalidated"] == N

    def test_noop_update_invalidates_nothing(self, model, dtdg, feats):
        eng = _engine(model, dtdg, feats)
        with eng:
            eng.query(0)
            eng.ingest.apply(None, None)
            # A no-op boundary inherits the snapshot version (GPMA skips it).
            assert eng.latest_version == 0
            res = eng.query(0)
            stats = eng.stats()
        assert res.served_from == "cache"
        assert stats["rows_invalidated"] == 0
        assert stats["updates_applied"] == 1


class TestBatchingAblation:
    def test_unbatched_is_one_forward_per_query(self, model, dtdg, feats):
        eng = _engine(model, dtdg, feats, batching=False)
        with eng:
            for v in range(5):
                res = eng.query(v)
                assert res.served_from == "forward"
            stats = eng.stats()
        assert stats["forwards"] == 5
        assert stats["row_cache_hits"] == 0


class TestFreshness:
    def test_strictly_fresh_reflects_every_prior_update(self, model, dtdg, feats):
        eng = _engine(model, dtdg, feats, freshness=0)
        updates = random_update_batches(dtdg, 3, seed=9)
        with eng:
            for i, update in enumerate(updates):
                eng.ingest.apply_update(update, wait=True)
                res = eng.query(1)
                assert res.timestamp == i + 1
                assert res.lag == 0
        ref = serial_reference(model, eng.graph.dtdg, feats, [3])
        assert eng.latest_version == 3
        with eng:
            assert np.array_equal(eng.query(1).value, ref[3][0][1])

    def test_flush_forces_full_application(self, model, dtdg, feats):
        eng = _engine(model, dtdg, feats, freshness=4)
        updates = random_update_batches(dtdg, 3, seed=9)
        with eng:
            for update in updates:
                eng.ingest.apply_update(update, wait=False)
            eng.flush()
            assert eng.pending_updates == 0
            assert eng.latest_version == 3
            res = eng.query(0)
            assert res.timestamp == 3

    def test_lag_never_exceeds_freshness(self, model, dtdg, feats):
        eng = _engine(model, dtdg, feats, freshness=2)
        updates = random_update_batches(dtdg, 6, seed=11)
        with eng:
            results = []
            for i, update in enumerate(updates):
                eng.ingest.apply_update(update, wait=False)
                results.append(eng.query(i % N))
            eng.flush()
        assert all(r.lag <= 2 for r in results)


class TestLifecycle:
    def test_query_before_start_raises(self, model, dtdg, feats):
        eng = _engine(model, dtdg, feats)
        with pytest.raises(RuntimeError, match="not running"):
            eng.query(0)

    def test_stop_is_idempotent_and_restartable(self, model, dtdg, feats):
        eng = _engine(model, dtdg, feats)
        eng.start()
        eng.stop()
        eng.stop()
        eng.start()
        try:
            assert eng.query(0).served_from in ("forward", "cache")
        finally:
            eng.stop()

    def test_worker_error_propagates_to_clients(self, dtdg, feats):
        class Exploding:
            def step(self, executor, x, state):
                raise RuntimeError("model detonated")

        eng = _engine(Exploding(), dtdg, feats)
        with pytest.raises(RuntimeError, match="dispatcher died"):
            with eng:
                eng.query(0)

    def test_constructor_validation(self, model, dtdg, feats):
        with pytest.raises(ValueError):
            _engine(model, dtdg, feats, hops=-1)
        with pytest.raises(ValueError):
            _engine(model, dtdg, feats, freshness=-1)
        with pytest.raises(ValueError):
            _engine(model, dtdg, feats, max_batch=0)
