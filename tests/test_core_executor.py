"""TemporalExecutor orchestration: contexts, stacks, drains."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core import TemporalExecutor
from repro.core.module import graph_aggregate
from repro.compiler import compile_vertex_program
from repro.graph import DTDG, GPMAGraph, NaiveGraph, StaticGraph
from repro.tensor import Tensor, functional as F


@pytest.fixture
def static_graph():
    g = nx.gnp_random_graph(12, 0.3, seed=1, directed=True)
    return StaticGraph.from_networkx(g)


@pytest.fixture
def dtdg(rng):
    snaps = []
    keys = {(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)}
    for t in range(4):
        if t:
            keys = set(keys)
            keys.discard(sorted(keys)[t % len(keys)])
            keys.add((t, (t + 2) % 8))
        arr = np.array(sorted(keys), dtype=np.int64)
        snaps.append((arr[:, 0].copy(), arr[:, 1].copy()))
    return DTDG(snaps, 8)


@pytest.fixture
def sum_program():
    return compile_vertex_program(
        lambda v: v.agg_sum(lambda nb: nb.h),
        feature_widths={"h": "v"}, grad_features={"h"}, name="ex_sum",
    )


def test_static_context_cached(static_graph):
    ex = TemporalExecutor(static_graph)
    c0 = ex.begin_timestamp(0)
    c1 = ex.begin_timestamp(1)
    assert c0 is c1  # static graphs build one context
    assert ex.graph_stack.is_empty  # "the graph-stack is not used"


def test_current_context_requires_begin(static_graph):
    ex = TemporalExecutor(static_graph)
    with pytest.raises(RuntimeError):
        ex.current_context()


def test_dynamic_pushes_graph_stack(dtdg):
    ex = TemporalExecutor(NaiveGraph(dtdg))
    ex.begin_timestamp(0)
    ex.begin_timestamp(1)
    assert len(ex.graph_stack) == 2


def test_backward_context_pops_in_order(dtdg):
    ex = TemporalExecutor(NaiveGraph(dtdg))
    for t in range(3):
        ex.begin_timestamp(t)
    ctx2 = ex.backward_context(2)
    assert ctx2 is ex.backward_context(2)  # cached within timestamp
    ex.backward_context(1)
    ex.backward_context(0)
    assert ex.graph_stack.is_empty


def test_backward_context_out_of_order_raises(dtdg):
    ex = TemporalExecutor(NaiveGraph(dtdg))
    ex.begin_timestamp(0)
    ex.begin_timestamp(1)
    with pytest.raises(RuntimeError, match="LIFO"):
        ex.backward_context(0)  # top of the stack is 1


def test_check_drained(static_graph, sum_program, rng):
    ex = TemporalExecutor(static_graph)
    ex.begin_timestamp(0)
    x = Tensor(rng.standard_normal((12, 3)).astype(np.float32), requires_grad=True)
    out = graph_aggregate(sum_program, ex, {"h": x})
    with pytest.raises(RuntimeError, match="not drained"):
        ex.check_drained()
    F.sum(out).backward()
    ex.check_drained()


def test_aggregate_pushes_only_with_grad(static_graph, sum_program, rng):
    ex = TemporalExecutor(static_graph)
    ex.begin_timestamp(0)
    x_no_grad = Tensor(rng.standard_normal((12, 3)).astype(np.float32))
    graph_aggregate(sum_program, ex, {"h": x_no_grad})
    assert ex.state_stack.is_empty  # nothing requires grad → nothing saved


def test_aggregate_grad_correct(static_graph, sum_program, rng):
    ex = TemporalExecutor(static_graph)
    ex.begin_timestamp(0)
    x = Tensor(rng.standard_normal((12, 3)).astype(np.float32), requires_grad=True)
    out = graph_aggregate(sum_program, ex, {"h": x})
    F.sum(out).backward()
    # grad of sum-aggregate wrt h is the out-degree per node
    assert np.allclose(x.grad[:, 0], static_graph.out_degrees())


def test_full_sequence_roundtrip_dynamic(dtdg, sum_program, rng):
    """Forward 0..3 then backward pops everything, graph ends at t=0."""
    graph = GPMAGraph(dtdg)
    ex = TemporalExecutor(graph)
    total = None
    h = Tensor(rng.standard_normal((8, 2)).astype(np.float32), requires_grad=True)
    state = h
    for t in range(4):
        ex.begin_timestamp(t)
        state = graph_aggregate(sum_program, ex, {"h": state})
        loss = F.sum(F.mul(state, state))
        total = loss if total is None else F.add(total, loss)
    ex.end_sequence_forward()
    total.backward()
    ex.check_drained()
    assert graph.curr_time == 0  # rewound by Get-Backward-Graph
    assert h.grad is not None


def test_reset_clears_state(dtdg, sum_program, rng):
    ex = TemporalExecutor(NaiveGraph(dtdg))
    ex.begin_timestamp(0)
    x = Tensor(rng.standard_normal((8, 2)).astype(np.float32), requires_grad=True)
    graph_aggregate(sum_program, ex, {"h": x})
    ex.reset()
    ex.check_drained()


def test_stats_reporting(static_graph, sum_program, rng):
    ex = TemporalExecutor(static_graph)
    for t in range(3):
        ex.begin_timestamp(t)
        x = Tensor(rng.standard_normal((12, 2)).astype(np.float32), requires_grad=True)
        out = graph_aggregate(sum_program, ex, {"h": x})
        F.sum(out).backward()
    stats = ex.stats()
    assert stats["state_stack_pushes"] == 3
    assert stats["state_stack_peak_depth"] == 1


def test_reset_clears_forward_context(dtdg):
    ex = TemporalExecutor(NaiveGraph(dtdg))
    ex.begin_timestamp(2)
    assert ex.current_timestamp == 2
    ex.reset()
    assert ex.current_timestamp is None
    with pytest.raises(RuntimeError, match="reset"):
        ex.current_context()  # must not serve the dead sequence's context


def test_backward_reuses_forward_context(dtdg):
    """The LIFO backward walk gets the forward pass's contexts back, keyed
    on snapshot identity — no blind invalidation, no rebuild."""
    ex = TemporalExecutor(GPMAGraph(dtdg))
    fwd = [ex.begin_timestamp(t) for t in range(4)]
    ex.end_sequence_forward()
    for t in range(3, -1, -1):
        assert ex.backward_context(t) is fwd[t]
    assert ex.ctx_cache_hits == 4
    assert ex.ctx_cache_misses == 4  # the forward builds


def test_backward_zero_csr_rebuilds(dtdg, fresh_device):
    """With both cache levels on, the whole backward walk re-runs
    Algorithm 3 exactly zero times."""
    ex = TemporalExecutor(GPMAGraph(dtdg))
    for t in range(4):
        ex.begin_timestamp(t)
        ex.current_context().fwd_row  # touch like a kernel would
    ex.end_sequence_forward()
    misses_after_fwd = fresh_device.profiler.counter("csr_cache_misses")
    for t in range(3, -1, -1):
        ex.backward_context(t)
    assert fresh_device.profiler.counter("csr_cache_misses") == misses_after_fwd


def test_noop_timestamp_reuses_context():
    """A no-op update batch keeps the snapshot version, so the next
    timestamp reuses the previous context object outright."""
    edges = np.array([(0, 1), (1, 2), (2, 0)], dtype=np.int64)
    snap = (edges[:, 0].copy(), edges[:, 1].copy())
    graph = GPMAGraph(DTDG([snap, snap], 4))
    ex = TemporalExecutor(graph)
    c0 = ex.begin_timestamp(0)
    c1 = ex.begin_timestamp(1)
    assert c1 is c0
    assert ex.ctx_cache_hits == 1
    assert graph.noop_updates_skipped == 1


def test_ctx_cache_follows_graph_ablation_flag(dtdg):
    ex = TemporalExecutor(GPMAGraph(dtdg, enable_csr_cache=False))
    fwd = [ex.begin_timestamp(t) for t in range(4)]
    ex.end_sequence_forward()
    for t in range(3, -1, -1):
        assert ex.backward_context(t) is not fwd[t]  # rebuilt every step
    assert ex.ctx_cache_hits == 0
    assert ex.ctx_cache_misses == 0  # cache fully bypassed, not just missing


def test_single_timestamp_sequence_pops_stack(dtdg, sum_program, rng):
    """Length-1 sequences: the backward step must pop the graph stack even
    when the context is served from the cache."""
    ex = TemporalExecutor(GPMAGraph(dtdg))
    for _ in range(2):
        ex.begin_timestamp(0)
        x = Tensor(rng.standard_normal((8, 2)).astype(np.float32), requires_grad=True)
        out = graph_aggregate(sum_program, ex, {"h": x})
        F.sum(out).backward()
        ex.check_drained()


def test_stats_include_ctx_counters(dtdg):
    ex = TemporalExecutor(GPMAGraph(dtdg))
    ex.begin_timestamp(0)
    stats = ex.stats()
    assert stats["ctx_cache_misses"] == 1
    assert stats["ctx_cache_hits"] == 0


def test_gnn_time_profiled(static_graph, sum_program, rng, fresh_device):
    ex = TemporalExecutor(static_graph)
    ex.begin_timestamp(0)
    x = Tensor(rng.standard_normal((12, 2)).astype(np.float32), requires_grad=True)
    out = graph_aggregate(sum_program, ex, {"h": x})
    F.sum(out).backward()
    assert fresh_device.profiler.calls("gnn") >= 2  # forward + backward kernel
