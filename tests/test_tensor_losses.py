"""Loss criteria: MSE and the paper's BCE-with-logits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F


def test_mse_value(rng):
    pred = rng.standard_normal((4, 3)).astype(np.float32)
    target = rng.standard_normal((4, 3)).astype(np.float32)
    loss = F.mse_loss(Tensor(pred), target)
    assert loss.item() == pytest.approx(((pred - target) ** 2).mean(), abs=1e-6)


def test_mse_zero_at_target(rng):
    x = rng.standard_normal((3, 3)).astype(np.float32)
    assert F.mse_loss(Tensor(x), x).item() == 0.0


def test_mse_grad(rng):
    pred = rng.standard_normal((4, 3)).astype(np.float32)
    target = rng.standard_normal((4, 3)).astype(np.float32)
    t = Tensor(pred, requires_grad=True)
    F.mse_loss(t, target).backward()
    assert np.allclose(t.grad, 2 * (pred - target) / pred.size, atol=1e-6)


def test_bce_value_matches_reference(rng):
    logits = rng.standard_normal(50).astype(np.float32)
    labels = (rng.random(50) > 0.5).astype(np.float32)
    loss = F.bce_with_logits_loss(Tensor(logits), labels)
    p = 1 / (1 + np.exp(-logits.astype(np.float64)))
    ref = -(labels * np.log(p) + (1 - labels) * np.log(1 - p)).mean()
    assert loss.item() == pytest.approx(ref, abs=1e-5)


def test_bce_extreme_logits_stable():
    logits = Tensor(np.array([-1000.0, 1000.0], dtype=np.float32), requires_grad=True)
    labels = np.array([0.0, 1.0], dtype=np.float32)
    loss = F.bce_with_logits_loss(logits, labels)
    assert np.isfinite(loss.item())
    assert loss.item() == pytest.approx(0.0, abs=1e-5)
    loss.backward()
    assert np.all(np.isfinite(logits.grad))


def test_bce_wrong_confident_prediction_penalized():
    loss_wrong = F.bce_with_logits_loss(
        Tensor(np.array([10.0], dtype=np.float32)), np.array([0.0], dtype=np.float32)
    )
    loss_right = F.bce_with_logits_loss(
        Tensor(np.array([10.0], dtype=np.float32)), np.array([1.0], dtype=np.float32)
    )
    assert loss_wrong.item() > 9.0
    assert loss_right.item() < 1e-3


def test_bce_grad_is_sigmoid_minus_label(rng):
    logits = rng.standard_normal(20).astype(np.float32)
    labels = (rng.random(20) > 0.5).astype(np.float32)
    t = Tensor(logits, requires_grad=True)
    F.bce_with_logits_loss(t, labels).backward()
    sig = 1 / (1 + np.exp(-logits))
    assert np.allclose(t.grad, (sig - labels) / 20, atol=1e-5)


def test_bce_balanced_at_zero_logits():
    logits = Tensor(np.zeros(10, dtype=np.float32))
    labels = np.ones(10, dtype=np.float32)
    assert F.bce_with_logits_loss(logits, labels).item() == pytest.approx(np.log(2), abs=1e-6)


def test_l1_loss(rng):
    pred = rng.standard_normal(10).astype(np.float32)
    target = rng.standard_normal(10).astype(np.float32)
    loss = F.l1_loss(Tensor(pred), target)
    assert loss.item() == pytest.approx(np.abs(pred - target).mean(), abs=1e-3)
