"""Online serving layer: request-batched inference over the live graph.

Point queries ("embedding/prediction for vertex *v* at the latest time")
are coalesced into batches and answered from one no-grad forward per
snapshot version, reusing the executor's ProgramPlan and snapshot/CSR
caches.  GPMA update batches land concurrently through
:class:`UpdateIngest`, invalidating only the k-hop dirty neighborhood;
the ``freshness`` knob bounds how many applied-but-unserved batches a
response may lag behind, mirroring ``pipeline=k`` on the training side.

See ``docs/SERVING.md`` for the architecture and staleness semantics.
"""

from repro.serve.engine import InferenceEngine, ServeResult, ServingModel
from repro.serve.harness import ServingHarness, ServingReport, serial_reference
from repro.serve.ingest import UpdateIngest, random_update_batches

__all__ = [
    "InferenceEngine",
    "ServeResult",
    "ServingModel",
    "UpdateIngest",
    "random_update_batches",
    "ServingHarness",
    "ServingReport",
    "serial_reference",
]
