"""Concurrent client simulator and serial reference for the serving layer.

:class:`ServingHarness` drives thread-per-client closed-loop traffic
against an :class:`~repro.serve.engine.InferenceEngine` — each client
issues its next query as soon as the previous answer returns (optionally
paced to a target per-client QPS) while an updater thread lands update
batches through :class:`~repro.serve.ingest.UpdateIngest`.  The run
produces a :class:`ServingReport` with client-observed p50/p99 latency and
throughput, the engine's reuse counters, and (optionally) every
:class:`~repro.serve.engine.ServeResult` for correctness checks.

:func:`serial_reference` recomputes, for every snapshot the run realized,
the exact full-graph outputs a query-after-every-update serial execution
would have produced — the oracle the serving CI smoke compares against
bitwise (each served result must equal the reference at the version it
reports).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.core.executor import TemporalExecutor
from repro.graph.dtdg import DTDG, EdgeUpdate
from repro.graph.gpma_graph import GPMAGraph
from repro.serve.engine import InferenceEngine, ServeResult, ServingModel
from repro.tensor.tensor import Tensor, no_grad

__all__ = ["ServingHarness", "ServingReport", "serial_reference"]


@dataclass
class ServingReport:
    """Aggregate outcome of one harness run."""

    requests: int
    duration_s: float
    qps: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    updates_applied: int
    engine_stats: dict[str, int | str]
    results: list[ServeResult] = field(default_factory=list, repr=False)

    def row(self) -> dict[str, Any]:
        """Flat dict for benchmark tables / JSON payloads."""
        stats = self.engine_stats
        return {
            "requests": self.requests,
            "qps": round(self.qps, 1),
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "forwards": int(stats.get("forwards", 0)),
            "row_cache_hits": int(stats.get("row_cache_hits", 0)),
            "updates": self.updates_applied,
        }


class ServingHarness:
    """Thread-driven closed-loop clients at a configurable query/update mix.

    Parameters
    ----------
    engine:
        A started (or about-to-be-started) :class:`InferenceEngine`; the
        harness does not start or stop it.
    clients / requests_per_client:
        Closed-loop query clients and how many point queries each issues.
    kinds:
        Query kinds cycled through per client (seeded per-client RNG picks
        vertices; kinds are chosen round-robin for determinism).
    updates:
        Update batches the updater thread applies, in order, interleaved
        with query traffic.  ``update_wait`` selects blocking application
        (strictly serializing each batch) vs fire-and-forget up to the
        engine's freshness bound.
    qps:
        Optional per-client pacing (closed-loop with sleep); ``None`` runs
        at maximum rate.
    collect:
        Keep every :class:`ServeResult` on the report (needed by the
        bitwise serial-equivalence checks; turn off for pure timing runs).
    """

    def __init__(
        self,
        engine: InferenceEngine,
        *,
        clients: int = 8,
        requests_per_client: int = 32,
        kinds: Sequence[str] = ("embedding",),
        updates: Sequence[EdgeUpdate] = (),
        update_wait: bool = True,
        update_interval_s: float = 0.0,
        qps: float | None = None,
        seed: int = 0,
        collect: bool = True,
    ) -> None:
        if clients < 1 or requests_per_client < 1:
            raise ValueError("clients and requests_per_client must be >= 1")
        self.engine = engine
        self.clients = int(clients)
        self.requests_per_client = int(requests_per_client)
        self.kinds = tuple(kinds)
        self.updates = list(updates)
        self.update_wait = bool(update_wait)
        self.update_interval_s = float(update_interval_s)
        self.qps = qps
        self.seed = int(seed)
        self.collect = bool(collect)

    # ------------------------------------------------------------------
    def run(self, timeout: float = 120.0) -> ServingReport:
        """Run the full traffic mix; returns the aggregated report."""
        num_nodes = self.engine.graph.num_nodes
        latencies: list[list[float]] = [[] for _ in range(self.clients)]
        collected: list[list[ServeResult]] = [[] for _ in range(self.clients)]
        errors: list[BaseException] = []
        errors_lock = threading.Lock()
        pace = None if self.qps is None else 1.0 / float(self.qps)

        def client(idx: int) -> None:
            rng = np.random.default_rng(self.seed + 1000 * (idx + 1))
            try:
                for i in range(self.requests_per_client):
                    vertex = int(rng.integers(0, num_nodes))
                    kind = self.kinds[i % len(self.kinds)]
                    res = self.engine.query(vertex, kind, timeout=timeout)
                    latencies[idx].append(res.latency_s)
                    if self.collect:
                        collected[idx].append(res)
                    if pace is not None:
                        time.sleep(pace)
            except BaseException as exc:  # noqa: BLE001 - reported after join
                with errors_lock:
                    errors.append(exc)

        def updater() -> None:
            try:
                ingest = self.engine.ingest
                for update in self.updates:
                    ingest.apply_update(
                        update, wait=self.update_wait, timeout=timeout
                    )
                    if self.update_interval_s:
                        time.sleep(self.update_interval_s)
            except BaseException as exc:  # noqa: BLE001 - reported after join
                with errors_lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,), name=f"serve-client-{i}")
            for i in range(self.clients)
        ]
        if self.updates:
            threads.append(threading.Thread(target=updater, name="serve-updater"))
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=timeout)
        duration = time.perf_counter() - start
        alive = [t.name for t in threads if t.is_alive()]
        if alive:
            raise RuntimeError(f"harness threads did not finish: {alive}")
        if errors:
            raise errors[0]
        self.engine.flush(timeout=timeout)

        flat = np.array([v for per in latencies for v in per], dtype=np.float64)
        results = [r for per in collected for r in per]
        stats = self.engine.stats()
        return ServingReport(
            requests=len(flat),
            duration_s=duration,
            qps=len(flat) / duration if duration > 0 else 0.0,
            p50_ms=float(np.percentile(flat, 50)) * 1e3 if len(flat) else 0.0,
            p99_ms=float(np.percentile(flat, 99)) * 1e3 if len(flat) else 0.0,
            mean_ms=float(flat.mean()) * 1e3 if len(flat) else 0.0,
            max_ms=float(flat.max()) * 1e3 if len(flat) else 0.0,
            updates_applied=int(stats.get("updates_applied", 0)),
            engine_stats=stats,
            results=results,
        )


def serial_reference(
    model: ServingModel,
    dtdg: DTDG,
    features: np.ndarray,
    timestamps: Sequence[int],
    *,
    state: np.ndarray | None = None,
    engine: str | None = None,
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Fresh ``(embedding, prediction)`` outputs per timestamp, serially.

    The query-after-every-update oracle: a fresh graph and executor walk
    ``timestamps`` in order, computing one no-grad forward each — exactly
    what a serial client would see after each update batch.  Because the
    engine's DTDG accumulates ingested batches as appended snapshots, run
    this *after* a serving run over ``engine.graph.dtdg`` and compare each
    :class:`ServeResult` against ``reference[result.timestamp]`` bitwise.
    """
    graph = GPMAGraph(dtdg)
    executor = TemporalExecutor(graph, engine=engine, pipeline=0)
    x = np.ascontiguousarray(features, dtype=np.float32)
    out: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for t in timestamps:
        with no_grad():
            executor.begin_inference(int(t))
            st = None if state is None else Tensor(np.asarray(state, dtype=np.float32))
            pred, h = model.step(executor, Tensor(x), st)
        out[int(t)] = (h.data.copy(), pred.data.copy())
    return out
