"""Update ingest for the serving layer.

:class:`UpdateIngest` is the client-facing handle for landing GPMA update
batches on a live :class:`~repro.serve.engine.InferenceEngine` while it
serves queries.  Batches are appended to the engine's DTDG as new
snapshots (normalized to exact set differences), the graph is positioned,
and only the k-hop dirty neighborhood of the touched vertices is
invalidated — all on the engine's single dispatcher thread, so every
interleaving of queries and updates is equivalent to a serial order.

``random_update_batches`` generates reproducible synthetic churn for the
harness, benchmarks, and CI smoke tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.graph.dtdg import DTDG, EdgeUpdate
from repro.graph.labels import decode_edges, encode_edges

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.engine import InferenceEngine

__all__ = ["UpdateIngest", "random_update_batches"]


def _as_pairs(
    pairs: tuple[np.ndarray, np.ndarray] | Sequence[tuple[int, int]] | None,
) -> tuple[np.ndarray, np.ndarray]:
    if pairs is None:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if isinstance(pairs, tuple) and len(pairs) == 2 and not np.isscalar(pairs[0]):
        src, dst = pairs
        return np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)
    arr = np.asarray(list(pairs), dtype=np.int64).reshape(-1, 2)
    return arr[:, 0].copy(), arr[:, 1].copy()


class UpdateIngest:
    """Applies update batches to a serving engine, concurrently with queries.

    Thread-safe: any number of ingest clients may apply batches while query
    clients are being served.  ``wait=True`` (default) blocks until the
    batch is applied; with ``wait=False`` the batch may stay pending up to
    the engine's ``freshness`` bound — call :meth:`flush` to force full
    application.
    """

    def __init__(self, engine: "InferenceEngine") -> None:
        self._engine = engine

    def apply(
        self,
        add: tuple[np.ndarray, np.ndarray] | Sequence[tuple[int, int]] | None = None,
        delete: tuple[np.ndarray, np.ndarray] | Sequence[tuple[int, int]] | None = None,
        *,
        wait: bool = True,
        timeout: float = 30.0,
    ) -> int:
        """Apply edge additions/deletions; returns the ingest sequence number."""
        a_src, a_dst = _as_pairs(add)
        d_src, d_dst = _as_pairs(delete)
        return self.apply_update(
            EdgeUpdate(a_src, a_dst, d_src, d_dst), wait=wait, timeout=timeout
        )

    def apply_update(
        self, update: EdgeUpdate, *, wait: bool = True, timeout: float = 30.0
    ) -> int:
        """Apply a prepared :class:`EdgeUpdate`; returns its sequence number."""
        return self._engine.enqueue_update(update, wait=wait, timeout=timeout)

    def flush(self, timeout: float = 30.0) -> None:
        """Block until every ingested batch has been applied."""
        self._engine.flush(timeout=timeout)

    @property
    def pending(self) -> int:
        """Batches ingested but not yet applied."""
        return self._engine.pending_updates

    @property
    def latest_version(self) -> int:
        """Snapshot version after the last applied batch."""
        return self._engine.latest_version


def random_update_batches(
    dtdg: DTDG,
    n_batches: int,
    num_adds: int = 8,
    num_deletes: int = 4,
    seed: int = 0,
) -> list[EdgeUpdate]:
    """Reproducible synthetic update batches against ``dtdg``'s last snapshot.

    Each batch deletes ``num_deletes`` existing edges and adds ``num_adds``
    fresh ones (no self-loops), evolving a simulated edge set forward so
    consecutive batches stay consistent — the same stream the harness and
    the serving benchmarks replay.  The DTDG itself is not modified.
    """
    rng = np.random.default_rng(seed)
    n = dtdg.num_nodes
    src, dst = dtdg.snapshot_edges(dtdg.num_timestamps - 1)
    keys = set(encode_edges(src, dst, n).tolist())
    batches: list[EdgeUpdate] = []
    for _ in range(n_batches):
        existing = np.fromiter(keys, dtype=np.int64) if keys else np.empty(0, np.int64)
        k_del = min(num_deletes, len(existing))
        deletes = (
            rng.choice(existing, size=k_del, replace=False)
            if k_del
            else np.empty(0, np.int64)
        )
        adds: set[int] = set()
        guard = 0
        while len(adds) < num_adds and guard < 50 * max(1, num_adds):
            guard += 1
            s = int(rng.integers(0, n))
            d = int(rng.integers(0, n))
            if s == d:
                continue
            key = s * n + d
            if key in keys or key in adds:
                continue
            adds.add(key)
        add_arr = np.array(sorted(adds), dtype=np.int64)
        a_src, a_dst = decode_edges(add_arr, n)
        d_src, d_dst = decode_edges(np.sort(deletes), n)
        batches.append(EdgeUpdate(a_src, a_dst, d_src, d_dst))
        keys -= set(deletes.tolist())
        keys |= set(add_arr.tolist())
    return batches
