"""Request-batched online inference over a live (evolving) GPMA graph.

The :class:`InferenceEngine` answers point queries — "the embedding (or
prediction) of vertex ``v`` at the latest time" — while update batches keep
landing on the same graph.  Three ideas make that cheap on top of the
training machinery:

* **Request coalescing.**  Point queries from concurrent clients are
  enqueued and served by one dispatcher thread that folds every pending
  request into a single batch: one ``no_grad()`` forward through the
  existing ProgramPlan cache, snapshot/CSR reuse caches, and keyed
  ``GraphContext`` LRU answers the whole batch.  Read-mostly means exactly
  one forward and **no tape / State-Stack / Graph-Stack** — the executor's
  :meth:`~repro.core.executor.TemporalExecutor.begin_inference` path.
* **K-hop invalidation.**  The full-graph forward output is kept as a
  per-vertex row cache.  An update batch names its touched vertices; only
  rows within ``hops`` out-edge hops of a touched vertex change (see
  ``repro.graph.dirty``), so everything else keeps serving from cache with
  zero forwards — and stays *bitwise* equal to a fresh recompute at the new
  snapshot version.  One dirty set is kept per snapshot version.
* **Bounded staleness.**  ``freshness=k`` mirrors the executor's
  ``pipeline=k`` knob: up to ``k`` ingested update batches may stay pending
  while queries are served at the current version; the ``k+1``-th forces a
  catch-up before the next batch is served.  ``freshness=0`` is strictly
  fresh — every query reflects all updates ingested before it was
  dispatched.

Every answer is equal to *some* serial order of queries and update batches
consistent with snapshot versions (each result carries the version and
timestamp it was served at); ``tests/test_serve_concurrency.py`` gates
that property under the runtime lock sanitizer.

Latency and throughput surface through the device
:class:`~repro.obs.metrics.MetricRegistry` —
``repro_serve_request_seconds{kind,served_from}`` and friends — scraped
live by the :class:`~repro.obs.server.TelemetryServer`.  See
``docs/SERVING.md``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Protocol

import numpy as np

from repro.analysis.sanitizer import new_condition
from repro.core.executor import TemporalExecutor
from repro.graph.dirty import k_hop_neighborhood, touched_vertices
from repro.graph.dtdg import EdgeUpdate
from repro.graph.gpma_graph import GPMAGraph
from repro.obs.metrics import Histogram
from repro.obs.tracer import current_tracer, use_tracer
from repro.serve.ingest import UpdateIngest
from repro.tensor.tensor import Tensor, no_grad

__all__ = ["InferenceEngine", "ServeResult", "ServingModel"]

#: Joining the dispatcher at shutdown; a single batch forward is orders of
#: magnitude faster, so expiry means a wedged worker (raised, not leaked).
_JOIN_TIMEOUT = 30.0

#: Dirty sets retained for diagnostics, keyed by snapshot version.
_DIRTY_HISTORY = 32

_REQUEST_HELP = "Serving request latency (enqueue to response), by kind and source."
_FORWARD_HELP = "Batched no-grad forward latency for serving compute batches."
_INGEST_HELP = "Update-batch ingest latency (append + position + invalidate)."
_BATCH_SIZE_HELP = "Coalesced request-batch sizes."
_PENDING_HELP = "Update batches ingested but not yet applied (staleness lag)."

_BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)

_KINDS = ("embedding", "prediction")


class ServingModel(Protocol):
    """Anything with the trainer's ``step`` protocol (e.g. the task models)."""

    def step(
        self, executor: TemporalExecutor, x: Tensor, state: Tensor | None
    ) -> tuple[Tensor, Tensor]: ...


@dataclass(frozen=True)
class ServeResult:
    """One answered point query.

    ``version``/``timestamp`` identify the snapshot the answer reflects;
    ``served_from`` is ``"cache"`` (row cache, zero forwards) or
    ``"forward"`` (this request's batch ran a compute); ``lag`` is how many
    ingested update batches were still pending when the batch was served
    (always ``<= freshness``).
    """

    vertex: int
    kind: str
    value: np.ndarray
    version: int
    timestamp: int
    served_from: str
    latency_s: float
    batch_size: int
    lag: int


class _Request:
    """Internal queue entry; completed fields are filled by the dispatcher."""

    __slots__ = (
        "vertex", "kind", "ready", "value", "version", "timestamp",
        "served_from", "batch_size", "lag",
    )

    def __init__(self, vertex: int, kind: str) -> None:
        self.vertex = vertex
        self.kind = kind
        self.ready = False
        self.value: np.ndarray | None = None
        self.version = -1
        self.timestamp = -1
        self.served_from = ""
        self.batch_size = 0
        self.lag = 0


class InferenceEngine:
    """Batched point-query inference over a live GPMA graph.

    Parameters
    ----------
    model:
        Any :class:`ServingModel`; its parameters are read, never written.
    graph:
        A :class:`~repro.graph.gpma_graph.GPMAGraph`; the engine owns its
        position (callers must not move it concurrently) and appends ingest
        batches to its DTDG via :meth:`~repro.graph.dtdg.DTDG.append_update`.
    features:
        ``(N, F)`` serving feature matrix, fixed across versions (structure
        evolves; features are the input signal).
    hops:
        Receptive field of ``model`` in aggregation hops — the k of the
        k-hop invalidation rule.  One GCN-style layer (TGCN with a fresh
        state) is 1.
    freshness:
        Bounded staleness: max ingested-but-unapplied update batches while
        serving (0 = strictly fresh), mirroring ``pipeline=k``.
    batching:
        ``False`` ablates request coalescing *and* the row cache: every
        query dispatches its own forward (the naive per-query baseline).
    invalidation:
        ``False`` ablates the k-hop dirty sets: every applied batch
        invalidates all rows (per-version recompute, no cross-version
        reuse).
    """

    def __init__(
        self,
        model: ServingModel,
        graph: GPMAGraph,
        features: np.ndarray,
        *,
        hops: int = 1,
        freshness: int = 0,
        batching: bool = True,
        invalidation: bool = True,
        max_batch: int = 512,
        engine: str | None = None,
        state: np.ndarray | None = None,
    ) -> None:
        if hops < 0:
            raise ValueError("hops must be >= 0")
        if freshness < 0:
            raise ValueError("freshness must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if features.shape[0] != graph.num_nodes:
            raise ValueError(
                f"features rows ({features.shape[0]}) != graph vertices "
                f"({graph.num_nodes})"
            )
        self.model = model
        self.graph = graph
        self.hops = int(hops)
        self.freshness = int(freshness)
        self.batching = bool(batching)
        self.invalidation = bool(invalidation)
        self.max_batch = int(max_batch)
        from repro.device import current_device

        self._device = current_device()
        self._tracer = current_tracer()
        self._executor = TemporalExecutor(graph, engine=engine, pipeline=0)
        self._features = np.ascontiguousarray(features, dtype=np.float32)
        self._state = None if state is None else np.asarray(state, dtype=np.float32)
        self._num_nodes = int(graph.num_nodes)

        # --- shared state, guarded by _cv -----------------------------
        self._cv = new_condition(name="InferenceEngine._cv")
        self._pending: list[_Request] = []
        self._update_queue: deque[tuple[int, EdgeUpdate]] = deque()
        self._ingest_seq = 0
        self._applied_seq = 0
        self._applied_version = int(graph.snapshot_version)
        self._stopping = False
        self._thread: threading.Thread | None = None
        self._worker_error: BaseException | None = None

        # --- dispatcher-private state (never written under _cv) -------
        self._latest_t = int(graph.dtdg.num_timestamps) - 1
        self._h: np.ndarray | None = None
        self._pred: np.ndarray | None = None
        self._valid = np.zeros(self._num_nodes, dtype=bool)
        self._dirty_by_version: dict[int, np.ndarray] = {}
        self.forwards = 0
        self.batches_served = 0
        self.queries_served = 0
        self.row_cache_hits = 0
        self.rows_invalidated = 0
        self.updates_applied = 0
        self.max_batch_observed = 0

        # Metric families pre-registered so /metrics lists them from boot.
        metrics = self._device.metrics
        metrics.histogram("repro_serve_request_seconds", _REQUEST_HELP)
        metrics.histogram("repro_serve_forward_seconds", _FORWARD_HELP)
        metrics.histogram("repro_serve_ingest_seconds", _INGEST_HELP)
        metrics.histogram(
            "repro_serve_batch_size", _BATCH_SIZE_HELP, buckets=_BATCH_SIZE_BUCKETS
        )
        self._pending_gauge = metrics.gauge(
            "repro_serve_pending_updates", _PENDING_HELP
        ).labels()
        self._request_hist: dict[tuple[str, str], Histogram] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceEngine":
        """Start the dispatcher thread (idempotent)."""
        thread: threading.Thread | None = None
        with self._cv:
            if self._worker_error is not None:
                raise RuntimeError("serving dispatcher died") from self._worker_error
            if self._thread is None:
                self._stopping = False
                thread = threading.Thread(
                    target=self._run, name="repro-serve-dispatch", daemon=True
                )
                self._thread = thread
        if thread is not None:
            thread.start()
        return self

    def stop(self) -> None:
        """Drain the queues, stop the dispatcher, and join it (idempotent)."""
        with self._cv:
            thread = self._thread
            self._stopping = True
            self._cv.notify_all()
        if thread is None:
            return
        thread.join(timeout=_JOIN_TIMEOUT)
        if thread.is_alive():  # pragma: no cover - defensive
            raise RuntimeError("serving dispatcher did not stop within timeout")
        with self._cv:
            self._thread = None

    def __enter__(self) -> "InferenceEngine":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """Whether the dispatcher thread is live."""
        with self._cv:
            return self._thread is not None and not self._stopping

    # ------------------------------------------------------------------
    # Client side: point queries
    # ------------------------------------------------------------------
    def query(
        self, vertex: int, kind: str = "embedding", timeout: float = 30.0
    ) -> ServeResult:
        """Blocking point query: ``kind`` of ``vertex`` at the latest time.

        Thread-safe; any number of client threads may call concurrently.
        The observed latency lands in
        ``repro_serve_request_seconds{kind,served_from}``.
        """
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        vertex = int(vertex)
        if not 0 <= vertex < self._num_nodes:
            raise ValueError(f"vertex {vertex} out of range [0, {self._num_nodes})")
        req = _Request(vertex, kind)
        start = time.perf_counter()
        deadline = start + timeout
        with self._cv:
            self._raise_if_unserviceable_locked()
            self._pending.append(req)
            self._cv.notify_all()
            while not req.ready:
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or not self._cv.wait(timeout=remaining):
                    raise TimeoutError(
                        f"serve query for vertex {vertex} timed out after {timeout}s"
                    )
                if self._worker_error is not None:
                    raise RuntimeError(
                        "serving dispatcher died"
                    ) from self._worker_error
        latency = time.perf_counter() - start
        assert req.value is not None
        hist = self._request_hist.get((kind, req.served_from))
        if hist is None:
            hist = self._device.metrics.histogram(
                "repro_serve_request_seconds", _REQUEST_HELP
            ).labels(kind=kind, served_from=req.served_from)
            self._request_hist.setdefault((kind, req.served_from), hist)
        hist.observe(latency)
        return ServeResult(
            vertex=vertex,
            kind=kind,
            value=req.value,
            version=req.version,
            timestamp=req.timestamp,
            served_from=req.served_from,
            latency_s=latency,
            batch_size=req.batch_size,
            lag=req.lag,
        )

    def _raise_if_unserviceable_locked(self) -> None:
        if self._worker_error is not None:
            raise RuntimeError("serving dispatcher died") from self._worker_error
        if self._thread is None or self._stopping:
            raise RuntimeError(
                "InferenceEngine is not running; call start() (or use it as "
                "a context manager)"
            )

    # ------------------------------------------------------------------
    # Ingest side (driven by UpdateIngest)
    # ------------------------------------------------------------------
    @property
    def ingest(self) -> UpdateIngest:
        """A client-facing :class:`~repro.serve.ingest.UpdateIngest` handle."""
        return UpdateIngest(self)

    def enqueue_update(
        self, update: EdgeUpdate, *, wait: bool = True, timeout: float = 30.0
    ) -> int:
        """Queue one update batch; optionally block until it is applied.

        Returns the batch's ingest sequence number.  With ``wait=False`` the
        batch is applied when the staleness bound forces it (or the queue
        goes idle); :meth:`flush` awaits full application.
        """
        deadline = time.perf_counter() + timeout
        with self._cv:
            self._raise_if_unserviceable_locked()
            self._ingest_seq += 1
            seq = self._ingest_seq
            self._update_queue.append((seq, update))
            self._pending_gauge.set(float(len(self._update_queue)))
            self._cv.notify_all()
            if wait:
                self._await_applied_locked(seq, deadline)  # lockcheck: ok(cv.wait on its own mutex, behind a helper)
        return seq

    def flush(self, timeout: float = 30.0) -> None:
        """Block until every ingested update batch has been applied."""
        deadline = time.perf_counter() + timeout
        with self._cv:
            seq = self._ingest_seq
            self._await_applied_locked(seq, deadline)  # lockcheck: ok(cv.wait on its own mutex, behind a helper)

    def _await_applied_locked(self, seq: int, deadline: float) -> None:
        while self._applied_seq < seq:
            if self._worker_error is not None:
                raise RuntimeError("serving dispatcher died") from self._worker_error
            if self._thread is None:
                raise RuntimeError("InferenceEngine is not running")
            remaining = deadline - time.perf_counter()
            if remaining <= 0 or not self._cv.wait(timeout=remaining):
                raise TimeoutError("update batch was not applied within timeout")

    @property
    def pending_updates(self) -> int:
        """Ingested update batches not yet applied (the staleness lag)."""
        with self._cv:
            return len(self._update_queue)

    @property
    def latest_version(self) -> int:
        """Snapshot version of the last applied update (or the boot version)."""
        with self._cv:
            return self._applied_version

    # ------------------------------------------------------------------
    # Dispatcher thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            from repro.device import use_device

            with use_device(self._device), use_tracer(self._tracer):
                self._loop()
        except BaseException as exc:  # noqa: BLE001 - relayed to clients
            with self._cv:
                self._worker_error = exc
                self._stopping = True
                self._cv.notify_all()

    def _loop(self) -> None:
        while True:
            batch: list[_Request] = []
            apply_now: list[tuple[int, EdgeUpdate]] = []
            lag = 0
            with self._cv:
                while not (self._pending or self._update_queue or self._stopping):
                    self._cv.wait(timeout=0.5)
                if self._stopping and not self._pending and not self._update_queue:
                    return
                # Catch up past the staleness bound before serving anything;
                # otherwise prefer queries (stale-but-bounded serving) and
                # apply updates opportunistically when no queries wait.
                while len(self._update_queue) > self.freshness:
                    apply_now.append(self._update_queue.popleft())
                if not apply_now:
                    if self._pending:
                        take = len(self._pending) if self.batching else 1
                        take = min(take, self.max_batch)
                        batch = self._pending[:take]
                        del self._pending[:take]
                        lag = len(self._update_queue)
                    elif self._update_queue:
                        apply_now.append(self._update_queue.popleft())
                if apply_now:
                    self._pending_gauge.set(float(len(self._update_queue)))
            for seq, update in apply_now:
                self._apply_update(seq, update)
            if batch:
                self._serve_batch(batch, lag)

    def _apply_update(self, seq: int, update: EdgeUpdate) -> None:
        """Append + position + invalidate for one ingested batch."""
        start = time.perf_counter()
        t_new = self.graph.dtdg.append_update(update)
        self.graph.get_graph(t_new)
        self._latest_t = t_new
        version = int(self.graph.snapshot_version)
        effective = self.graph.dtdg.updates[t_new]
        touched = touched_vertices(effective)
        if not self.invalidation:
            dirty = np.ones(self._num_nodes, dtype=bool)
        elif touched.size == 0:
            dirty = np.zeros(self._num_nodes, dtype=bool)
        else:
            # Out-edge expansion over the *new* snapshot; building the CSR
            # here also warms the snapshot cache for the next forward.
            bwd = self.graph.backward_csr()
            dirty = k_hop_neighborhood(
                bwd.row_offset, bwd.col_indices, touched, self.hops, self._num_nodes
            )
        self._valid &= ~dirty
        self._dirty_by_version[version] = np.flatnonzero(dirty)
        while len(self._dirty_by_version) > _DIRTY_HISTORY:
            self._dirty_by_version.pop(next(iter(self._dirty_by_version)))
        self.rows_invalidated += int(dirty.sum())
        self.updates_applied += 1
        metrics = self._device.metrics
        metrics.observe(
            "repro_serve_ingest_seconds", time.perf_counter() - start, _INGEST_HELP
        )
        with self._cv:
            self._applied_seq = seq
            self._applied_version = version
            self._cv.notify_all()

    def _forward(self) -> None:
        """One batched no-grad forward at the latest applied snapshot."""
        start = time.perf_counter()
        with no_grad():
            self._executor.begin_inference(self._latest_t)
            state = None if self._state is None else Tensor(self._state)
            pred, h = self.model.step(self._executor, Tensor(self._features), state)
        self._h = h.data
        self._pred = pred.data
        self._valid[:] = True
        self.forwards += 1
        self._device.metrics.observe(
            "repro_serve_forward_seconds", time.perf_counter() - start, _FORWARD_HELP
        )

    def _serve_batch(self, batch: list[_Request], lag: int) -> None:
        hit_rows = 0
        if self.batching and self._h is not None:
            hit_rows = sum(1 for r in batch if self._valid[r.vertex])
        need_compute = (
            not self.batching
            or self._h is None
            or hit_rows < len(batch)
        )
        if need_compute:
            self._forward()
            served_from = "forward"
        else:
            served_from = "cache"
            self.row_cache_hits += hit_rows
        h, pred = self._h, self._pred
        assert h is not None and pred is not None
        version = int(self.graph.snapshot_version)
        timestamp = int(self.graph.curr_time)
        size = len(batch)
        self._device.metrics.observe(
            "repro_serve_batch_size", float(size), _BATCH_SIZE_HELP
        )
        self.queries_served += size
        self.batches_served += 1
        self.max_batch_observed = max(self.max_batch_observed, size)
        for r in batch:
            source = h if r.kind == "embedding" else pred
            r.value = np.array(source[r.vertex], copy=True)
            r.version = version
            r.timestamp = timestamp
            r.served_from = served_from
            r.batch_size = size
            r.lag = lag
        with self._cv:
            for r in batch:
                r.ready = True
            self._cv.notify_all()

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def dirty_vertices(self, version: int) -> np.ndarray | None:
        """The dirty-vertex ids recorded for ``version`` (recent history
        only; dispatcher-private — read when the engine is quiescent)."""
        return self._dirty_by_version.get(int(version))

    def stats(self) -> dict[str, int | str]:
        """Serving counters plus the executor's cache/engine counters.

        Counter fields are written by the dispatcher thread; read them when
        the engine is stopped or traffic is quiescent.
        """
        out: dict[str, int | str] = {
            "forwards": self.forwards,
            "batches_served": self.batches_served,
            "queries_served": self.queries_served,
            "row_cache_hits": self.row_cache_hits,
            "rows_invalidated": self.rows_invalidated,
            "updates_applied": self.updates_applied,
            "max_batch_observed": self.max_batch_observed,
            "latest_version": self.latest_version,
            "pending_updates": self.pending_updates,
            "freshness": self.freshness,
            "batching": int(self.batching),
            "invalidation": int(self.invalidation),
        }
        for key, value in self._executor.stats().items():
            out[f"executor_{key}"] = value
        return out
