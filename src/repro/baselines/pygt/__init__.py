"""PyG-Temporal baseline (paper §VII "Baseline": PyG-T v0.54.0, TGCN).

A faithful re-implementation of the mechanisms that determine PyG-T's
time/memory behaviour, in the same tensor engine and measured by the same
device allocator as STGraph:

* **edge-parallel message passing** (:mod:`message_passing`): per-edge
  gather of source features (materializing the ``E×F`` message tensor the
  paper calls "duplication of node features"), elementwise edge update,
  scatter-add reduce.  The gathered tensors are *retained by the autodiff
  tape until backward*, so memory grows with sequence length (Figure 6) and
  feature size (Figure 5) exactly as PyG-T's does.
* **per-snapshot DTDG storage** (:mod:`snapshots`): every snapshot kept as
  a dense COO ``edge_index`` — "storing DTDGs as separate snapshots ...
  substantial memory overhead" (Figure 8).
* **TGCN** (:mod:`tgcn`): the same gate math as :class:`repro.nn.TGCN`
  built on the edge-parallel convolution, so loss trajectories match
  STGraph's and only the execution strategy differs ("The loss for models
  compiled with PyG-T and STGraph are similar over all tests").
* **temporal signal iterators** (:mod:`signal`): the PyG-T dataset API.
"""

from repro.baselines.pygt.message_passing import MessagePassing
from repro.baselines.pygt.gcn_conv import PyGGCNConv
from repro.baselines.pygt.tgcn import PyGTGConvGRU, PyGTTGCN
from repro.baselines.pygt.snapshots import SnapshotStore, Snapshot
from repro.baselines.pygt.signal import StaticGraphTemporalSignal, DynamicGraphTemporalSignal

__all__ = [
    "MessagePassing",
    "PyGGCNConv",
    "PyGTTGCN",
    "PyGTGConvGRU",
    "SnapshotStore",
    "Snapshot",
    "StaticGraphTemporalSignal",
    "DynamicGraphTemporalSignal",
]
