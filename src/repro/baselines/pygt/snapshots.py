"""Per-snapshot DTDG storage, PyG-T style.

PyG-T "stores DTDGs as separate snapshots": every timestamp keeps its own
COO ``edge_index`` (2×E int64) resident on the device for the whole run.
When consecutive snapshots differ by only a few percent, almost all of that
storage is redundant — the memory-vs-percent-change blow-up of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device import current_device
from repro.graph.dtdg import DTDG

__all__ = ["Snapshot", "SnapshotStore"]


@dataclass
class Snapshot:
    """One timestamp's COO structure, resident for the whole run."""
    edge_index: np.ndarray  # (2, E) int64, device-resident

    @property
    def num_edges(self) -> int:
        """Edge count of this snapshot."""
        return self.edge_index.shape[1]

    def nbytes(self) -> int:
        """Device bytes this snapshot occupies."""
        return int(self.edge_index.nbytes)


class SnapshotStore:
    """All snapshots of a DTDG, pre-materialized as COO arrays."""

    def __init__(self, dtdg: DTDG) -> None:
        alloc = current_device().alloc
        self.num_nodes = dtdg.num_nodes
        self.snapshots: list[Snapshot] = []
        with current_device().profiler.phase("preprocess"):
            for t in range(dtdg.num_timestamps):
                src, dst = dtdg.snapshot_edges(t)
                ei = alloc.adopt(
                    np.ascontiguousarray(np.stack([src, dst])), tag="pygt.snapshot"
                )
                self.snapshots.append(Snapshot(ei))

    def __len__(self) -> int:
        return len(self.snapshots)

    def __getitem__(self, t: int) -> Snapshot:
        return self.snapshots[t]

    def storage_bytes(self) -> int:
        """Total resident bytes across all snapshots (the Figure 8 cost)."""
        return sum(s.nbytes() for s in self.snapshots)
