"""PyG-T's TGCN: identical gate math to :class:`repro.nn.TGCN`, built on
the edge-parallel convolution, so the two frameworks' losses coincide and
the benchmark isolates the execution strategy."""

from __future__ import annotations

import numpy as np

from repro.baselines.pygt.gcn_conv import PyGGCNConv
from repro.tensor import functional as F
from repro.tensor.nn import Linear, Module
from repro.tensor.tensor import Tensor

__all__ = ["PyGTTGCN", "PyGTGConvGRU"]


class PyGTGConvGRU(Module):
    """PyG-T's GConvGRU on the edge-parallel convolution (gate math
    identical to :class:`repro.nn.GConvGRU` for cross-framework parity)."""

    def __init__(self, in_features: int, out_features: int, add_self_loops: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.conv_xz = PyGGCNConv(in_features, out_features, add_self_loops=add_self_loops)
        self.conv_hz = PyGGCNConv(out_features, out_features, bias=False, add_self_loops=add_self_loops)
        self.conv_xr = PyGGCNConv(in_features, out_features, add_self_loops=add_self_loops)
        self.conv_hr = PyGGCNConv(out_features, out_features, bias=False, add_self_loops=add_self_loops)
        self.conv_xh = PyGGCNConv(in_features, out_features, add_self_loops=add_self_loops)
        self.conv_hh = PyGGCNConv(out_features, out_features, bias=False, add_self_loops=add_self_loops)

    def initial_state(self, num_nodes: int) -> Tensor:
        """Zero hidden state."""
        return F.zeros((num_nodes, self.out_features))

    def forward(self, x: Tensor, edge_index: np.ndarray, h: Tensor | None = None) -> Tensor:
        """One recurrent step at one timestamp."""
        if h is None:
            h = self.initial_state(x.shape[0])
        z = F.sigmoid(F.add(self.conv_xz(x, edge_index), self.conv_hz(h, edge_index)))
        r = F.sigmoid(F.add(self.conv_xr(x, edge_index), self.conv_hr(h, edge_index)))
        h_tilde = F.tanh(F.add(self.conv_xh(x, edge_index), self.conv_hh(F.mul(r, h), edge_index)))
        return F.add(F.mul(z, h), F.mul(F.sub(1.0, z), h_tilde))


class PyGTTGCN(Module):
    """PyG-T's TGCN: identical gate math to repro.nn.TGCN on edge-parallel convs."""
    def __init__(self, in_features: int, out_features: int, add_self_loops: bool = True, cached: bool = False) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.conv_z = PyGGCNConv(in_features, out_features, add_self_loops=add_self_loops, cached=cached)
        self.lin_z = Linear(2 * out_features, out_features)
        self.conv_r = PyGGCNConv(in_features, out_features, add_self_loops=add_self_loops, cached=cached)
        self.lin_r = Linear(2 * out_features, out_features)
        self.conv_h = PyGGCNConv(in_features, out_features, add_self_loops=add_self_loops, cached=cached)
        self.lin_h = Linear(2 * out_features, out_features)

    def initial_state(self, num_nodes: int) -> Tensor:
        """Zero hidden state."""
        return F.zeros((num_nodes, self.out_features))

    def forward(self, x: Tensor, edge_index: np.ndarray, h: Tensor | None = None) -> Tensor:
        """One recurrent step at one timestamp."""
        if h is None:
            h = self.initial_state(x.shape[0])
        z = F.sigmoid(self.lin_z(F.concat([self.conv_z(x, edge_index), h], axis=1)))
        r = F.sigmoid(self.lin_r(F.concat([self.conv_r(x, edge_index), h], axis=1)))
        h_tilde = F.tanh(self.lin_h(F.concat([self.conv_h(x, edge_index), F.mul(r, h)], axis=1)))
        return F.add(F.mul(z, h), F.mul(F.sub(1.0, z), h_tilde))
