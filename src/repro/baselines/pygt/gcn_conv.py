"""PyG-style GCN convolution over COO edge_index (edge-parallel).

Mathematically identical to :class:`repro.nn.GCNConv` (symmetric
normalization with self-loops), but executed the PyG way: self-loop edges
appended to the edge list, per-edge norms materialized, and propagation via
gather/scatter.  The per-snapshot ``(edge_index, norm)`` preparation is
cached, mirroring PyG's ``cached=False`` default recomputation cost for
changing graphs and cached behaviour for static ones.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.pygt.message_passing import MessagePassing
from repro.device import current_device
from repro.tensor import functional as F
from repro.tensor import init
from repro.tensor.nn import Parameter
from repro.tensor.tensor import Tensor

__all__ = ["PyGGCNConv", "gcn_norm_coo"]


def gcn_norm_coo(
    edge_index: np.ndarray, num_nodes: int, add_self_loops: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """PyG's ``gcn_norm``: append self-loops, return per-edge norm weights."""
    alloc = current_device().alloc
    if add_self_loops:
        loops = np.arange(num_nodes, dtype=np.int64)
        edge_index = np.concatenate(
            [edge_index, np.stack([loops, loops])], axis=1
        )
    edge_index = alloc.adopt(np.ascontiguousarray(edge_index), tag="pyg.edge_index")
    src, dst = edge_index[0], edge_index[1]
    deg = np.bincount(dst, minlength=num_nodes).astype(np.float32)
    deg_inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1.0))
    norm = alloc.adopt(
        (deg_inv_sqrt[src] * deg_inv_sqrt[dst]).astype(np.float32), tag="pyg.norm"
    )
    return edge_index, norm


class PyGGCNConv(MessagePassing):
    """PyG-style GCN over COO edge_index (edge-parallel execution)."""
    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        add_self_loops: bool = True,
        cached: bool = False,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.add_self_loops = add_self_loops
        self.cached = cached
        self.weight = Parameter(init.glorot_uniform((in_features, out_features)))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None
        self._cache: tuple[int, np.ndarray, np.ndarray] | None = None

    def _norm(self, edge_index: np.ndarray, num_nodes: int) -> tuple[np.ndarray, np.ndarray]:
        if self.cached and self._cache is not None and self._cache[0] == id(edge_index):
            return self._cache[1], self._cache[2]
        ei, norm = gcn_norm_coo(edge_index, num_nodes, self.add_self_loops)
        if self.cached:
            self._cache = (id(edge_index), ei, norm)
        return ei, norm

    def forward(self, x: Tensor, edge_index: np.ndarray) -> Tensor:
        """Normalize (cached when enabled), project, and propagate edge-parallel."""
        num_nodes = x.shape[0]
        ei, norm = self._norm(edge_index, num_nodes)
        h = F.matmul(x, self.weight)
        out = self.propagate(ei, h, edge_weight=norm, num_nodes=num_nodes)
        if self.bias is not None:
            out = F.add(out, self.bias)
        return out
