"""Temporal signal iterators (the PyG-T dataset API).

PyG-T exposes datasets as iterators of per-timestamp snapshots; both the
baseline and STGraph's dataloaders build on these so benchmark code can
iterate either framework identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["TemporalSnapshot", "StaticGraphTemporalSignal", "DynamicGraphTemporalSignal"]


@dataclass
class TemporalSnapshot:
    """One timestamp: structure + features + targets."""

    edge_index: np.ndarray  # (2, E)
    x: np.ndarray  # (N, F)
    y: np.ndarray | None  # targets (task-dependent)


class StaticGraphTemporalSignal:
    """Fixed ``edge_index``, per-timestamp features/targets."""

    def __init__(
        self,
        edge_index: np.ndarray,
        features: list[np.ndarray],
        targets: list[np.ndarray | None],
    ) -> None:
        if len(features) != len(targets):
            raise ValueError("features/targets length mismatch")
        self.edge_index = np.asarray(edge_index, dtype=np.int64)
        self.features = features
        self.targets = targets

    @property
    def snapshot_count(self) -> int:
        """Number of timestamps."""
        return len(self.features)

    def __len__(self) -> int:
        return self.snapshot_count

    def __getitem__(self, t: int) -> TemporalSnapshot:
        return TemporalSnapshot(self.edge_index, self.features[t], self.targets[t])

    def __iter__(self) -> Iterator[TemporalSnapshot]:
        for t in range(self.snapshot_count):
            yield self[t]


class DynamicGraphTemporalSignal:
    """Per-timestamp ``edge_index`` + features/targets."""

    def __init__(
        self,
        edge_indices: list[np.ndarray],
        features: list[np.ndarray],
        targets: list[np.ndarray | None],
    ) -> None:
        if not (len(edge_indices) == len(features) == len(targets)):
            raise ValueError("edge_indices/features/targets length mismatch")
        self.edge_indices = [np.asarray(e, dtype=np.int64) for e in edge_indices]
        self.features = features
        self.targets = targets

    @property
    def snapshot_count(self) -> int:
        """Number of timestamps."""
        return len(self.features)

    def __len__(self) -> int:
        return self.snapshot_count

    def __getitem__(self, t: int) -> TemporalSnapshot:
        return TemporalSnapshot(self.edge_indices[t], self.features[t], self.targets[t])

    def __iter__(self) -> Iterator[TemporalSnapshot]:
        for t in range(self.snapshot_count):
            yield self[t]
