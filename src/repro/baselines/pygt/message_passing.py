"""Edge-parallel message passing (the PyG mechanism).

``propagate`` follows PyG's gather → message → scatter pattern through the
autodiff tensor engine:

1. ``x_j = x[edge_index[0]]`` — **gather**: an ``E×F`` tensor of duplicated
   source features (``IndexSelect``);
2. ``msg = message(x_j, edge_weight)`` — per-edge update (``E×F``);
3. ``out = scatter_add(msg, edge_index[1], N)`` — reduce to nodes.

Because ``Mul``'s backward needs both operands, the tape retains the
``E×F`` gathered features until ``backward()`` — one per layer per
timestamp across a whole training sequence.  That retained memory, and the
bandwidth of writing/reading the message tensor, are the two costs the
paper attributes PyG-T's slower, bigger curves to.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import functional as F
from repro.tensor.nn import Module
from repro.tensor.tensor import Tensor

__all__ = ["MessagePassing"]


class MessagePassing(Module):
    """Base class: subclasses override :meth:`message`."""

    def propagate(
        self,
        edge_index: np.ndarray,
        x: Tensor,
        edge_weight: Tensor | np.ndarray | None = None,
        num_nodes: int | None = None,
    ) -> Tensor:
        """Gather per-edge source features, apply :meth:`message`, scatter-add to targets."""
        if edge_index.ndim != 2 or edge_index.shape[0] != 2:
            raise ValueError("edge_index must be a (2, E) array")
        num_nodes = num_nodes if num_nodes is not None else x.shape[0]
        src, dst = edge_index[0], edge_index[1]
        x_j = F.index_select(x, src)  # E×F duplication
        msg = self.message(x_j, edge_weight)
        return F.scatter_add(msg, dst, num_nodes)

    def message(self, x_j: Tensor, edge_weight: Tensor | np.ndarray | None) -> Tensor:
        """Per-edge update: the gathered features, optionally weighted."""
        if edge_weight is None:
            return x_j
        if isinstance(edge_weight, Tensor):
            w = F.reshape(edge_weight, (-1, 1)) if edge_weight.ndim == 1 else edge_weight
        else:
            w = np.asarray(edge_weight, dtype=np.float32).reshape(-1, 1)
        return F.mul(x_j, w)
