"""Baselines the paper compares against."""
