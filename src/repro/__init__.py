"""repro — a from-scratch reproduction of **STGraph** (IPDPS 2024).

STGraph: A Framework for Temporal Graph Neural Networks
(Cherian, Manoj, Concessao, Cheramangalath).

The package reimplements the paper's full stack on a simulated device (no
GPU required; see DESIGN.md for the substitution table):

==========================  ==================================================
``repro.device``            simulated accelerator: tracked allocator, kernel
                            launcher, phase profiler
``repro.tensor``            reverse-mode autodiff engine (the PyTorch stand-in)
``repro.compiler``          the Seastar vertex-centric compiler: trace → IR →
                            autodiff → passes → generated kernels
``repro.core``              temporally-aware executor, State/Graph stacks,
                            backend interface
``repro.pma``               Packed Memory Array (the GPMA substrate)
``repro.graph``             STGraphBase + StaticGraph / NaiveGraph / GPMAGraph
``repro.nn``                GNN/TGNN layer APIs (GCN, GAT, SAGE, TGCN,
                            GConvGRU, GConvLSTM, A3TGCN, EvolveGCN-O)
``repro.dataset``           Table II dataset stand-ins + discretizer
``repro.baselines.pygt``    the PyG-Temporal baseline (edge-parallel)
``repro.train``             Algorithm 1 trainers, tasks, metrics
``repro.resilience``        fault injection, chaos harness, resume plumbing
``repro.bench``             experiment runners for every table and figure
==========================  ==================================================

Quickstart::

    from repro.dataset import load_hungary_chickenpox
    from repro.train import STGraphTrainer, STGraphNodeRegressor

    ds = load_hungary_chickenpox(lags=8)
    model = STGraphNodeRegressor(in_features=8, hidden=16)
    trainer = STGraphTrainer(model, ds.build_graph(), lr=1e-2)
    for epoch in range(10):
        loss = trainer.train_epoch(ds.features, ds.targets)
"""

__version__ = "1.0.0"

from repro import (
    baselines,
    bench,
    compiler,
    core,
    dataset,
    device,
    graph,
    nn,
    pma,
    resilience,
    tensor,
    train,
)

__all__ = [
    "__version__",
    "device",
    "tensor",
    "compiler",
    "core",
    "pma",
    "graph",
    "nn",
    "dataset",
    "baselines",
    "train",
    "resilience",
    "bench",
]
