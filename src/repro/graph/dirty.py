"""K-hop dirty-set computation for incremental serving invalidation.

When an :class:`~repro.graph.dtdg.EdgeUpdate` batch lands on a live graph,
a vertex program's output changes only for vertices whose *k-hop in-coming
neighborhood* changed — everything else is bitwise stable, because each
output row is a deterministic accumulation over an unchanged neighbor list
(same CSR row content, same normalization degrees, same summation order).

The update batch itself names the **touched vertices** — every endpoint of
an added or deleted edge.  A touched vertex ``u`` changes its own row (its
edge set or degree changed) and, because aggregation reads *in*-neighbors,
can change the rows of vertices it points *to*.  Influence therefore
propagates along **out-edges**: one hop per aggregation layer of the model.
Deleted edges need no special casing — both endpoints of a deleted edge are
touched, so the lost dependency is covered by the seed set, and expansion
over the *new* snapshot's out-CSR covers every surviving dependency.

``repro.serve`` keeps one such dirty set per snapshot version and only
recomputes (or refuses to cache-serve) the flagged rows; see
``docs/SERVING.md`` for the end-to-end invalidation rule.
"""

from __future__ import annotations

import numpy as np

__all__ = ["touched_vertices", "k_hop_neighborhood"]


def touched_vertices(update: "object") -> np.ndarray:
    """Unique endpoints named by an update batch (sorted int64 array).

    Accepts any object with ``add_src/add_dst/del_src/del_dst`` arrays
    (:class:`~repro.graph.dtdg.EdgeUpdate`).  Empty batches yield an empty
    array.
    """
    parts = [
        np.asarray(p, dtype=np.int64)
        for p in (
            getattr(update, "add_src"),
            getattr(update, "add_dst"),
            getattr(update, "del_src"),
            getattr(update, "del_dst"),
        )
        if len(p)
    ]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))


def k_hop_neighborhood(
    row_offset: np.ndarray,
    col_indices: np.ndarray,
    seeds: np.ndarray,
    hops: int,
    num_nodes: int,
) -> np.ndarray:
    """Boolean mask of ``seeds`` plus everything within ``hops`` CSR hops.

    ``(row_offset, col_indices)`` is one CSR orientation; for serving
    invalidation pass the **backward (out-edge) CSR** so the expansion
    follows the direction influence actually flows (``u`` dirty ⇒ every
    ``v`` with an edge ``u→v`` dirty).  ``hops=0`` marks only the seeds.

    Vectorized frontier expansion: per round, all frontier neighbor lists
    are gathered with one ``repeat``/``arange`` slice-concatenation — no
    per-vertex Python loop.
    """
    mask = np.zeros(int(num_nodes), dtype=bool)
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.size == 0:
        return mask
    if seeds.min() < 0 or seeds.max() >= num_nodes:
        raise ValueError(
            f"seed vertex out of range [0, {num_nodes}): "
            f"[{seeds.min()}, {seeds.max()}]"
        )
    mask[seeds] = True
    frontier = np.unique(seeds)
    for _ in range(int(hops)):
        starts = row_offset[frontier]
        counts = row_offset[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Gather col_indices[starts[i] : starts[i]+counts[i]] for all i.
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        gather = np.repeat(starts, counts) + (np.arange(total, dtype=np.int64) - offsets)
        neigh = col_indices[gather]
        fresh = np.unique(neigh[~mask[neigh]])
        if fresh.size == 0:
            break
        mask[fresh] = True
        frontier = fresh
    return mask
