"""Degree-based vertex ordering (paper Figure 3).

Relabelling vertices to get a degree-sorted CSR would require rearranging
every timestamp's feature matrix, so STGraph instead keeps an auxiliary
``node_ids`` array: vertex ids in descending degree order, defining the
order in which kernels *process* nodes without touching the CSR itself.
On the GPU this lets high-degree vertices start first and overlap with many
low-degree ones; on the simulated device it determines the gather order of
the segmented reduction and is benchmarked by the degree-sort ablation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["degree_sorted_node_ids", "processing_order"]


def degree_sorted_node_ids(degrees: np.ndarray) -> np.ndarray:
    """Vertex ids in descending-degree order, stable on id.

    For the Figure 3 example (out-degrees [2, 2, 3, 0]) this yields
    ``[2, 0, 1, 3]``.
    """
    return np.argsort(-np.asarray(degrees, dtype=np.int64), kind="stable").astype(np.int64)


def processing_order(node_ids: np.ndarray, enabled: bool = True) -> np.ndarray:
    """The order kernels should walk vertices in (identity when disabled)."""
    if enabled:
        return node_ids
    return np.arange(len(node_ids), dtype=np.int64)
