"""CSR construction and utilities.

Seastar expects graphs in CSR format (paper §V-B): the forward pass walks
*in*-neighbors via the reverse CSR, the backward pass walks *out*-neighbors
via the direct CSR, and both orientations must share edge labels so an edge
property is the same array slot in either direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.device import current_device

__all__ = ["CSR", "build_csr", "csr_from_edges", "edge_density"]


@dataclass
class CSR:
    """One CSR orientation of a snapshot.

    Attributes
    ----------
    row_offset:
        ``(N+1,)`` int64 — neighbor-list boundaries.
    col_indices:
        ``(E,)`` int64 — neighbor vertex ids.
    eids:
        ``(E,)`` int64 — shared edge labels (same label in both orientations).
    node_ids:
        ``(N,)`` int64 — vertices in descending-degree processing order
        (paper Figure 3); identity order if degree sorting is disabled.
    """

    row_offset: np.ndarray
    col_indices: np.ndarray
    eids: np.ndarray
    node_ids: np.ndarray
    num_nodes: int = field(default=0)

    def __post_init__(self) -> None:
        if self.num_nodes == 0:
            self.num_nodes = len(self.row_offset) - 1

    @property
    def num_edges(self) -> int:
        """Edge count of this orientation."""
        return len(self.col_indices)

    def degrees(self) -> np.ndarray:
        """Per-row neighbor counts."""
        return np.diff(self.row_offset)

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor ids of vertex ``v``."""
        return self.col_indices[self.row_offset[v] : self.row_offset[v + 1]]

    def edge_ids(self, v: int) -> np.ndarray:
        """Shared edge labels of vertex ``v``'s list."""
        return self.eids[self.row_offset[v] : self.row_offset[v + 1]]

    def nbytes(self) -> int:
        """Total bytes of the four arrays."""
        return int(
            self.row_offset.nbytes + self.col_indices.nbytes + self.eids.nbytes + self.node_ids.nbytes
        )

    def validate(self) -> None:
        """Assert structural well-formedness (offsets, bounds, node_ids)."""
        assert self.row_offset[0] == 0
        assert self.row_offset[-1] == self.num_edges
        assert np.all(np.diff(self.row_offset) >= 0)
        if self.num_edges:
            assert self.col_indices.min() >= 0
            assert self.col_indices.max() < self.num_nodes
        assert sorted(self.node_ids.tolist()) == list(range(self.num_nodes))


def build_csr(
    row: np.ndarray,
    col: np.ndarray,
    eids: np.ndarray,
    num_nodes: int,
    sort_by_degree: bool = True,
    track_tag: str = "csr",
) -> CSR:
    """Build a CSR keyed on ``row`` (vectorized, device-tracked).

    ``eids`` travel with their edges so both orientations built from the same
    labelled edge list stay consistent.
    """
    alloc = current_device().alloc
    row = np.asarray(row, dtype=np.int64)
    col = np.asarray(col, dtype=np.int64)
    eids = np.asarray(eids, dtype=np.int64)
    order = np.argsort(row, kind="stable")
    counts = np.bincount(row, minlength=num_nodes)
    row_offset = alloc.zeros(num_nodes + 1, dtype=np.int64, tag=f"{track_tag}.row_offset")
    np.cumsum(counts, out=row_offset[1:])
    col_sorted = alloc.adopt(np.ascontiguousarray(col[order]), tag=f"{track_tag}.col_indices")
    eid_sorted = alloc.adopt(np.ascontiguousarray(eids[order]), tag=f"{track_tag}.eids")
    if sort_by_degree:
        # Descending degree, stable on vertex id for determinism (Figure 3).
        node_ids = np.argsort(-counts, kind="stable").astype(np.int64)
    else:
        node_ids = np.arange(num_nodes, dtype=np.int64)
    node_ids = alloc.adopt(node_ids, tag=f"{track_tag}.node_ids")
    return CSR(row_offset, col_sorted, eid_sorted, node_ids, num_nodes)


def csr_from_edges(
    src: np.ndarray,
    dst: np.ndarray,
    num_nodes: int,
    sort_by_degree: bool = True,
) -> tuple[CSR, CSR]:
    """Build the (backward, forward) CSR pair with shared edge labels.

    Edges are labelled canonically: label = rank of ``(src, dst)`` in
    lexicographic order.  The *backward* CSR is keyed on ``src``
    (out-neighbors), the *forward* CSR on ``dst`` (in-neighbors / reverse
    CSR); both carry the same labels so kernels address edge data
    identically in either pass.
    """
    from repro.graph.labels import canonical_edge_labels

    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    eids = canonical_edge_labels(src, dst, num_nodes)
    bwd = build_csr(src, dst, eids, num_nodes, sort_by_degree, track_tag="csr.bwd")
    fwd = build_csr(dst, src, eids, num_nodes, sort_by_degree, track_tag="csr.fwd")
    return bwd, fwd


def edge_density(num_nodes: int, num_edges: int) -> float:
    """Directed edge density E / (N * (N - 1)); the paper uses this to
    explain which datasets benefit most from vertex-centric aggregation."""
    if num_nodes <= 1:
        return 0.0
    return num_edges / (num_nodes * (num_nodes - 1))
