"""Static-temporal graph: fixed structure, time-varying features.

Structure never changes (Definition II.1), so both CSR orientations, degree
arrays, and the degree-sorted ``node_ids`` are built once ahead of training —
the pre-processing Seastar relies on for its performance.
``get_graph``/``get_backward_graph`` are identity operations and the Graph
Stack is never used for this type (Algorithm 1, line 3 comment).
"""

from __future__ import annotations

import numpy as np

from repro.device import current_device
from repro.graph.base import STGraphBase
from repro.graph.csr import CSR, csr_from_edges

__all__ = ["StaticGraph"]


class StaticGraph(STGraphBase):
    """Fixed-structure graph: both CSRs prebuilt, identity temporal ops."""
    graph_type = "static"

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        num_nodes: int,
        sort_by_degree: bool = True,
    ) -> None:
        super().__init__(num_nodes, sort_by_degree)
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if len(src) != len(dst):
            raise ValueError("src/dst length mismatch")
        self._bwd, self._fwd = csr_from_edges(src, dst, num_nodes, sort_by_degree)
        alloc = current_device().alloc
        self._in_deg = alloc.adopt(
            np.bincount(dst, minlength=num_nodes).astype(np.int64), tag="graph.in_deg"
        )
        self._out_deg = alloc.adopt(
            np.bincount(src, minlength=num_nodes).astype(np.int64), tag="graph.out_deg"
        )

    @classmethod
    def from_networkx(cls, graph, sort_by_degree: bool = True) -> "StaticGraph":
        """Build from a ``networkx`` directed graph with integer node ids."""
        edges = np.asarray(list(graph.edges()), dtype=np.int64)
        if len(edges) == 0:
            edges = np.empty((0, 2), dtype=np.int64)
        return cls(edges[:, 0], edges[:, 1], graph.number_of_nodes(), sort_by_degree)

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (edge attr ``label`` = edge id)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_nodes))
        bwd = self._bwd
        for u in range(self.num_nodes):
            for v, l in zip(bwd.neighbors(u), bwd.edge_ids(u)):
                g.add_edge(int(u), int(v), label=int(l))
        return g

    def get_graph(self, timestamp: int) -> "StaticGraph":
        """Identity: structure never changes."""
        return self

    def get_backward_graph(self, timestamp: int) -> "StaticGraph":
        """Identity: structure never changes."""
        return self

    def forward_csr(self) -> CSR:
        """Reverse CSR (in-neighbors), built at construction."""
        return self._fwd

    def backward_csr(self) -> CSR:
        """Direct CSR (out-neighbors), built at construction."""
        return self._bwd

    def in_degrees(self) -> np.ndarray:
        """Per-vertex in-degree."""
        return self._in_deg

    def out_degrees(self) -> np.ndarray:
        """Per-vertex out-degree."""
        return self._out_deg

    @property
    def num_edges(self) -> int:
        """Edge count (constant over time)."""
        return self._bwd.num_edges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StaticGraph(N={self.num_nodes}, E={self.num_edges})"
