"""Edge labelling.

Paper §V-B requirement 3: "The CSRs used during forward and backward
propagation need to share the same edge labels.  This ensures that the same
edge property is accessed during both passes for a given edge."

The canonical label of an edge is its rank in the lexicographic order of
``(src, dst)`` pairs — equivalently the rank of the encoded key
``src * N + dst``.  Both CSR orientations are built from the same labelled
edge list, and GPMAGraph relabels after every structural update
(Algorithm 2, line 8) because insertions/deletions shift ranks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["canonical_edge_labels", "encode_edges", "decode_edges", "relabel_after_update"]


def encode_edges(src: np.ndarray, dst: np.ndarray, num_nodes: int) -> np.ndarray:
    """Encode ``(src, dst)`` pairs as sortable int64 keys."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if len(src) and (src.max(initial=0) >= num_nodes or dst.max(initial=0) >= num_nodes):
        raise ValueError("vertex id out of range")
    if len(src) and (src.min(initial=0) < 0 or dst.min(initial=0) < 0):
        raise ValueError("negative vertex id")
    return src * np.int64(num_nodes) + dst


def decode_edges(keys: np.ndarray, num_nodes: int) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`encode_edges`."""
    keys = np.asarray(keys, dtype=np.int64)
    return keys // num_nodes, keys % num_nodes


def canonical_edge_labels(src: np.ndarray, dst: np.ndarray, num_nodes: int) -> np.ndarray:
    """Label each edge with its rank in (src, dst) lexicographic order."""
    keys = encode_edges(src, dst, num_nodes)
    ranks = np.empty(len(keys), dtype=np.int64)
    ranks[np.argsort(keys, kind="stable")] = np.arange(len(keys), dtype=np.int64)
    return ranks


def relabel_after_update(sorted_keys: np.ndarray) -> np.ndarray:
    """Fresh labels 0..E-1 for a snapshot's sorted edge keys (GPMA path:
    the PMA exports keys already sorted, so labels are just positions)."""
    return np.arange(len(sorted_keys), dtype=np.int64)
