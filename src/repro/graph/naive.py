"""NaiveGraph: every DTDG snapshot pre-materialized (paper §V-C).

Each snapshot's forward CSR, backward CSR, shared edge labels, degree
arrays, and degree-sorted node ids are built and "moved to the GPU" (tracked
by the device allocator) during preprocessing.  Accessing a snapshot is then
just array indexing — the fastest option — but "storing each graph snapshot
on the GPU along with additional data such as edge IDs, node IDs, in-degrees
array, and out-degrees array creates a significant memory overhead", which
is exactly what Figure 8 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device import current_device
from repro.graph.base import STGraphBase
from repro.graph.csr import CSR, csr_from_edges
from repro.graph.dtdg import DTDG

__all__ = ["NaiveGraph"]


@dataclass
class _Snapshot:
    fwd: CSR
    bwd: CSR
    in_deg: np.ndarray
    out_deg: np.ndarray

    def nbytes(self) -> int:
        return self.fwd.nbytes() + self.bwd.nbytes() + self.in_deg.nbytes + self.out_deg.nbytes


class NaiveGraph(STGraphBase):
    """DTDG with every snapshot pre-materialized (fast access, heavy memory)."""
    graph_type = "naive"

    def __init__(self, dtdg: DTDG, sort_by_degree: bool = True) -> None:
        super().__init__(dtdg.num_nodes, sort_by_degree)
        self.dtdg = dtdg
        alloc = current_device().alloc
        profiler = current_device().profiler
        self._snapshots: list[_Snapshot] = []
        with profiler.phase("preprocess"):
            for t in range(dtdg.num_timestamps):
                src, dst = dtdg.snapshot_edges(t)
                bwd, fwd = csr_from_edges(src, dst, dtdg.num_nodes, sort_by_degree)
                in_deg = alloc.adopt(
                    np.bincount(dst, minlength=dtdg.num_nodes).astype(np.int64),
                    tag="naive.in_deg",
                )
                out_deg = alloc.adopt(
                    np.bincount(src, minlength=dtdg.num_nodes).astype(np.int64),
                    tag="naive.out_deg",
                )
                self._snapshots.append(_Snapshot(fwd, bwd, in_deg, out_deg))
                # Every snapshot's CSRs are built exactly once, up front:
                # each build is one (timestamp, 0) miss of the reuse cache.
                self._count("csr_cache_misses")
        self._current = 0

    @property
    def num_timestamps(self) -> int:
        """Number of pre-built snapshots."""
        return len(self._snapshots)

    def get_graph(self, timestamp: int) -> "NaiveGraph":
        """Point at the pre-built snapshot for ``timestamp``."""
        # "Accessing these snapshots is immediate since it only involves
        # array indexing" — still profiled so Figure 9 can show ~0 update
        # share for the Naive variant.
        with current_device().profiler.phase("graph_update"):
            self._current = int(timestamp)
        return self

    def get_backward_graph(self, timestamp: int) -> "NaiveGraph":
        """Point at the pre-built snapshot for the backward step."""
        with current_device().profiler.phase("graph_update"):
            self._current = int(timestamp)
            # The backward walk reuses the forward build keyed (t, 0):
            # structurally free here, but counted so all dynamic graphs
            # report the same reuse statistics.
            self._count("csr_cache_hits")
        return self

    def snapshot_key(self) -> tuple:
        """``(timestamp, 0)``: snapshots are immutable, version never bumps."""
        return (self._current, self.snapshot_version)

    def forward_csr(self) -> CSR:
        """Current snapshot's reverse CSR."""
        return self._snapshots[self._current].fwd

    def backward_csr(self) -> CSR:
        """Current snapshot's direct CSR."""
        return self._snapshots[self._current].bwd

    def in_degrees(self) -> np.ndarray:
        """Current snapshot's in-degrees."""
        return self._snapshots[self._current].in_deg

    def out_degrees(self) -> np.ndarray:
        """Current snapshot's out-degrees."""
        return self._snapshots[self._current].out_deg

    @property
    def num_edges(self) -> int:
        """Current snapshot's edge count."""
        return self._snapshots[self._current].bwd.num_edges

    def storage_bytes(self) -> int:
        """Total bytes of all pre-materialized snapshots (both CSR copies)."""
        return sum(s.nbytes() for s in self._snapshots)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NaiveGraph(N={self.num_nodes}, T={self.num_timestamps}, "
            f"current={self._current}, E={self.num_edges})"
        )
