"""Graph abstraction and storage formats (paper §V-B/C/D, Figure 4).

``STGraphBase`` unifies the three graph kinds the executor can train on:

* :class:`StaticGraph` — static structure, temporal features;
* :class:`NaiveGraph` — DTDG with every snapshot pre-materialized;
* :class:`GPMAGraph` — DTDG as base graph + PMA-backed temporal updates,
  snapshots generated on demand (Algorithms 2 & 3).
"""

from repro.graph.base import STGraphBase
from repro.graph.csr import CSR, build_csr, csr_from_edges, edge_density
from repro.graph.dirty import k_hop_neighborhood, touched_vertices
from repro.graph.dtdg import DTDG, EdgeUpdate
from repro.graph.gpma_graph import GPMAGraph
from repro.graph.labels import canonical_edge_labels, decode_edges, encode_edges
from repro.graph.naive import NaiveGraph
from repro.graph.reverse import reverse_csr_arrays, reverse_gpma_literal, reverse_gpma_vectorized
from repro.graph.sorting import degree_sorted_node_ids, processing_order
from repro.graph.static import StaticGraph

__all__ = [
    "STGraphBase",
    "CSR",
    "build_csr",
    "csr_from_edges",
    "edge_density",
    "DTDG",
    "EdgeUpdate",
    "touched_vertices",
    "k_hop_neighborhood",
    "StaticGraph",
    "NaiveGraph",
    "GPMAGraph",
    "canonical_edge_labels",
    "encode_edges",
    "decode_edges",
    "reverse_csr_arrays",
    "reverse_gpma_literal",
    "reverse_gpma_vectorized",
    "degree_sorted_node_ids",
    "processing_order",
]
