"""Discrete-time dynamic graph container.

A DTDG is a series of snapshots ``G_1 .. G_T`` (Definition II.2).  The two
storage strategies the paper compares need different inputs:

* **NaiveGraph** wants the full edge list of every snapshot;
* **GPMAGraph** wants the base graph plus per-timestamp *updates*
  (edge additions/deletions — "nearby snapshots typically vary by less
  than 10%").

:class:`DTDG` holds both views and guarantees they are consistent: updates
are computed as exact set differences between consecutive snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.labels import decode_edges, encode_edges

__all__ = ["DTDG", "EdgeUpdate"]


@dataclass(frozen=True)
class EdgeUpdate:
    """Structural delta from snapshot ``t-1`` to ``t``."""

    add_src: np.ndarray
    add_dst: np.ndarray
    del_src: np.ndarray
    del_dst: np.ndarray

    @property
    def num_changes(self) -> int:
        """Total additions plus deletions."""
        return len(self.add_src) + len(self.del_src)

    def reversed(self) -> "EdgeUpdate":
        """The delta from ``t`` back to ``t-1`` (used by Get-Backward-Graph)."""
        return EdgeUpdate(self.del_src, self.del_dst, self.add_src, self.add_dst)


class DTDG:
    """Snapshots plus derived per-timestamp updates.

    Parameters
    ----------
    snapshot_edges:
        One ``(src, dst)`` pair of int arrays per timestamp.  Duplicate
        edges within a snapshot are collapsed (snapshots are simple directed
        graphs, matching the paper's link-prediction formatting).
    num_nodes:
        Shared vertex universe across all snapshots (DTDG vertex set may
        shrink/grow logically; isolated vertices simply have degree 0).
    """

    def __init__(self, snapshot_edges: list[tuple[np.ndarray, np.ndarray]], num_nodes: int) -> None:
        if not snapshot_edges:
            raise ValueError("a DTDG needs at least one snapshot")
        self.num_nodes = int(num_nodes)
        self._keys: list[np.ndarray] = []
        for src, dst in snapshot_edges:
            keys = np.unique(encode_edges(np.asarray(src), np.asarray(dst), self.num_nodes))
            self._keys.append(keys)
        self.updates: list[EdgeUpdate] = [
            EdgeUpdate(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        ]
        for t in range(1, len(self._keys)):
            prev, curr = self._keys[t - 1], self._keys[t]
            added = np.setdiff1d(curr, prev, assume_unique=True)
            deleted = np.setdiff1d(prev, curr, assume_unique=True)
            a_src, a_dst = decode_edges(added, self.num_nodes)
            d_src, d_dst = decode_edges(deleted, self.num_nodes)
            self.updates.append(EdgeUpdate(a_src, a_dst, d_src, d_dst))

    @property
    def num_timestamps(self) -> int:
        """Number of snapshots."""
        return len(self._keys)

    def append_update(self, update: EdgeUpdate) -> int:
        """Append a live update batch as a new final snapshot (serving ingest).

        The batch is normalized against the current last snapshot so the
        stored update keeps the constructor's exact-set-difference invariant:
        adding an edge that already exists (or deleting one that does not) is
        dropped, and duplicate edges within the batch collapse.  A fully
        redundant batch still appends a timestamp — its stored update is
        empty, which GPMA treats as a no-op boundary (the snapshot version is
        inherited, so caches keyed on version keep hitting).

        Returns the new timestamp index.
        """
        for arr in (update.add_src, update.add_dst, update.del_src, update.del_dst):
            a = np.asarray(arr)
            if a.size and (a.min() < 0 or a.max() >= self.num_nodes):
                raise ValueError(
                    f"update names vertex out of range [0, {self.num_nodes})"
                )
        prev = self._keys[-1]
        add = np.unique(encode_edges(
            np.asarray(update.add_src, dtype=np.int64),
            np.asarray(update.add_dst, dtype=np.int64), self.num_nodes,
        ))
        delete = np.unique(encode_edges(
            np.asarray(update.del_src, dtype=np.int64),
            np.asarray(update.del_dst, dtype=np.int64), self.num_nodes,
        ))
        add = np.setdiff1d(add, prev, assume_unique=True)
        delete = np.intersect1d(delete, prev, assume_unique=True)
        curr = np.union1d(np.setdiff1d(prev, delete, assume_unique=True), add)
        self._keys.append(curr)
        a_src, a_dst = decode_edges(add, self.num_nodes)
        d_src, d_dst = decode_edges(delete, self.num_nodes)
        self.updates.append(EdgeUpdate(a_src, a_dst, d_src, d_dst))
        return self.num_timestamps - 1

    def snapshot_edges(self, t: int) -> tuple[np.ndarray, np.ndarray]:
        """The (src, dst) arrays of snapshot ``t`` in sorted key order."""
        return decode_edges(self._keys[t], self.num_nodes)

    def snapshot_edge_count(self, t: int) -> int:
        """Edge count of snapshot ``t``."""
        return len(self._keys[t])

    def percent_change(self, t: int) -> float:
        """|changes| / |edges of previous snapshot| between t-1 and t."""
        if t == 0:
            return 0.0
        denom = max(1, len(self._keys[t - 1]))
        return 100.0 * self.updates[t].num_changes / denom

    def max_percent_change(self) -> float:
        """Largest consecutive-snapshot change over the series."""
        return max((self.percent_change(t) for t in range(1, self.num_timestamps)), default=0.0)

    def total_update_count(self) -> int:
        """Sum of all per-timestamp changes."""
        return sum(u.num_changes for u in self.updates)

    def snapshot_to_networkx(self, t: int):
        """Snapshot ``t`` as a ``networkx.DiGraph``."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_nodes))
        src, dst = self.snapshot_edges(t)
        g.add_edges_from(zip(src.tolist(), dst.tolist()))
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = [len(k) for k in self._keys]
        return (
            f"DTDG(T={self.num_timestamps}, N={self.num_nodes}, "
            f"E_0={sizes[0]}, E_last={sizes[-1]})"
        )
