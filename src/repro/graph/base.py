"""The ``STGraphBase`` graph abstraction (paper Figure 4).

All graph kinds STGraph can train on present the same interface to the
executor and kernels:

1. **Forward and backward CSR** — the forward pass walks in-neighbors via
   the reverse CSR, the backward pass walks out-neighbors via the direct CSR.
2. **Vertex sorting** — ``node_ids`` in descending in-degree (forward) /
   out-degree (backward) order (Figure 3).
3. **Edge labelling** — both orientations share labels.
4. **Graph properties** — node/edge counts and degree arrays.

Temporal positioning (``get_graph`` / ``get_backward_graph``) implements the
contract of Algorithms 1-2: after ``get_graph(t)`` the object exposes the
snapshot at ``t``; ``get_backward_graph(t)`` repositions during the LIFO
backward walk.

**Snapshot versioning.**  Every graph carries a ``snapshot_version`` that
identifies the *content* of the snapshot it currently exposes.  The version
changes only on actual structural change: applying a non-empty update batch
moves to the (stable, per-timestamp) version of the new snapshot, while
no-op batches — zero additions and zero deletions — leave it untouched.
``snapshot_key()`` combines position and version into the key the reuse
caches are built on: the graph-level CSR cache keys its built
``(fwd_csr, bwd_csr, in_deg, out_deg)`` artifacts by it, and the executor
keys :class:`~repro.compiler.runtime.GraphContext` reuse on it, so the LIFO
backward walk over a sequence reuses the forward pass's builds instead of
re-running Algorithm 3 per timestamp (see ``docs/EXECUTOR.md``).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.device import current_device
from repro.graph.csr import CSR

__all__ = ["STGraphBase"]


class STGraphBase(abc.ABC):
    """Abstract temporal-graph interface consumed by the executor."""

    #: set by subclasses: "static" | "naive" | "gpma"
    graph_type: str = "base"

    def __init__(self, num_nodes: int, sort_by_degree: bool = True) -> None:
        self.num_nodes = int(num_nodes)
        self.sort_by_degree = bool(sort_by_degree)
        #: version of the snapshot currently exposed; bumped only by actual
        #: structural change (static graphs stay at 0 forever).
        self.snapshot_version = 0
        #: whether built snapshots may be reuse-cached by (timestamp, version)
        #: — also consulted by the executor for GraphContext reuse.
        self.enable_csr_cache = True
        # Reuse accounting (mirrored into the device profiler's counters).
        self.csr_cache_hits = 0
        self.csr_cache_misses = 0
        self.noop_updates_skipped = 0

    # -- snapshot identity -------------------------------------------------
    def snapshot_key(self) -> tuple:
        """Identity of the currently exposed snapshot: ``(position, version)``.

        Two calls returning equal keys expose bitwise-identical structure, so
        artifacts built from one (CSRs, :class:`GraphContext`) are valid for
        the other.  Subclasses with a temporal position refine the first
        element; the static default never changes.
        """
        return (None, self.snapshot_version)

    def _count(self, name: str, n: int = 1) -> None:
        """Bump a reuse counter on self and in the device profiler."""
        setattr(self, name, getattr(self, name) + n)
        current_device().profiler.count(name, n)

    def cache_stats(self) -> dict[str, int]:
        """Snapshot-reuse counters (diagnostics / bench reporting)."""
        return {
            "csr_cache_hits": self.csr_cache_hits,
            "csr_cache_misses": self.csr_cache_misses,
            "noop_updates_skipped": self.noop_updates_skipped,
        }

    # -- temporal positioning (Algorithm 1/2 contract) -------------------
    @abc.abstractmethod
    def get_graph(self, timestamp: int) -> "STGraphBase":
        """Position at ``timestamp`` for a forward pass; returns ``self``."""

    @abc.abstractmethod
    def get_backward_graph(self, timestamp: int) -> "STGraphBase":
        """Position at ``timestamp`` for the corresponding backward pass."""

    # -- current-snapshot structure --------------------------------------
    @abc.abstractmethod
    def forward_csr(self) -> CSR:
        """Reverse CSR (in-neighbors) of the current snapshot."""

    @abc.abstractmethod
    def backward_csr(self) -> CSR:
        """Direct CSR (out-neighbors) of the current snapshot."""

    @abc.abstractmethod
    def in_degrees(self) -> np.ndarray:
        """In-degree per vertex of the current snapshot (int64, length N)."""

    @abc.abstractmethod
    def out_degrees(self) -> np.ndarray:
        """Out-degree per vertex of the current snapshot."""

    # -- properties -------------------------------------------------------
    @property
    @abc.abstractmethod
    def num_edges(self) -> int:
        """Edge count of the current snapshot."""

    @property
    def is_dynamic(self) -> bool:
        """Whether structure changes with time (drives Graph Stack usage)."""
        return self.graph_type != "static"

    # -- shared checks ------------------------------------------------------
    def validate_label_consistency(self) -> None:
        """Assert the forward/backward CSRs agree edge-by-edge.

        For every edge (u → v) with label l in the backward CSR, the forward
        CSR must contain (v ← u) with the same label l.
        """
        bwd, fwd = self.backward_csr(), self.forward_csr()
        assert bwd.num_edges == fwd.num_edges
        bwd_pairs = {}
        for u in range(self.num_nodes):
            for v, l in zip(bwd.neighbors(u), bwd.edge_ids(u)):
                bwd_pairs[int(l)] = (int(u), int(v))
        for v in range(self.num_nodes):
            for u, l in zip(fwd.neighbors(v), fwd.edge_ids(v)):
                assert bwd_pairs[int(l)] == (int(u), int(v)), (
                    f"label {l} maps to {bwd_pairs[int(l)]} in bwd CSR "
                    f"but ({u}, {v}) in fwd CSR"
                )
