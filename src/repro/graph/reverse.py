"""Algorithm 3: reverse-CSR construction from a gapped (GPMA) CSR.

Two implementations are provided:

* :func:`reverse_gpma_literal` — a line-for-line transcription of the
  paper's Algorithm 3, including the ``dst != SPACE`` check and the atomic
  subtract on the shifted prefix-sum array.  The "parallel for" over nodes is
  executed sequentially; since every write location is claimed by an atomic
  decrement the result is order-independent, which the tests verify against
  the vectorized version under shuffled execution order.
* :func:`reverse_gpma_vectorized` — the production path: identical output,
  computed with NumPy sorting/prefix-sum primitives (this plays the role of
  the tuned CUDA kernel on real hardware).

Both return ``(r_row_offset, r_col_indices, r_eids)`` where the row offsets
are the standard exclusive prefix-sum form.
"""

from __future__ import annotations

import numpy as np

from repro.pma.pma import SPACE_KEY

__all__ = ["reverse_gpma_literal", "reverse_gpma_vectorized", "reverse_csr_arrays"]


def reverse_gpma_literal(
    row_offset: np.ndarray,
    col_indices: np.ndarray,
    eids: np.ndarray,
    in_degrees: np.ndarray,
    node_order: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Algorithm 3 as written.

    Parameters mirror the paper: ``row_offset`` indexes into the *gapped*
    ``col_indices``/``eids`` arrays (entries equal to ``SPACE`` are skipped),
    ``in_degrees`` drives the inclusive prefix sum.  ``node_order`` lets the
    tests emulate arbitrary thread scheduling of the parallel outer loop.
    """
    num_nodes = len(in_degrees)
    edge_count = int(in_degrees.sum())

    # Line 1: r_row_offset = inclusive_prefix_sum(G.in_degrees)
    r_row_offset = np.cumsum(in_degrees).astype(np.int64)
    # Lines 2-3: allocate output arrays
    r_col_indices = np.full(edge_count, -1, dtype=np.int64)
    r_eids = np.full(edge_count, -1, dtype=np.int64)

    order = np.arange(num_nodes) if node_order is None else node_order
    # Lines 4-16: for each node i "in parallel"
    for i in order:
        start = int(row_offset[i])
        end = int(row_offset[i + 1])
        for j in range(start, end):
            dst = int(col_indices[j])
            eid = int(eids[j])
            if dst != SPACE_KEY:  # line 10
                # Line 11: loc = atomic_sub(r_row_offset[dst], 1)
                r_row_offset[dst] -= 1
                loc = int(r_row_offset[dst])
                r_col_indices[loc] = i  # line 12
                r_eids[loc] = eid  # line 13

    # After all decrements, r_row_offset[v] is the start of v's neighbor
    # list — the exclusive prefix sum.  Append the total for the N+1 form.
    r_row_offset_full = np.concatenate([r_row_offset, [edge_count]]).astype(np.int64)
    return r_row_offset_full, r_col_indices, r_eids


def reverse_gpma_vectorized(
    row_offset: np.ndarray,
    col_indices: np.ndarray,
    eids: np.ndarray,
    num_nodes: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized Algorithm 3 over a gapped CSR.

    Expands row ids from ``row_offset``, filters ``SPACE`` slots, and builds
    the destination-keyed CSR with a stable counting sort, so within each
    reverse neighbor list sources appear in ascending order (the literal
    version's output is validated against this after per-list sorting).
    """
    row_offset = np.asarray(row_offset, dtype=np.int64)
    col_indices = np.asarray(col_indices, dtype=np.int64)
    eids = np.asarray(eids, dtype=np.int64)
    # row_offset windows cover the first row_offset[-1] slots of the gapped
    # storage; anything past that is unowned slack.
    covered = int(row_offset[-1])
    lengths = np.diff(row_offset)
    rows = np.repeat(np.arange(num_nodes, dtype=np.int64), lengths)
    valid = col_indices[:covered] != SPACE_KEY
    src = rows[valid]
    dst = col_indices[:covered][valid]
    eid = eids[:covered][valid]

    order = np.argsort(dst, kind="stable")
    r_col = src[order]
    r_eid = eid[order]
    counts = np.bincount(dst, minlength=num_nodes)
    r_row_offset = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=r_row_offset[1:])
    return r_row_offset, r_col, r_eid


def reverse_csr_arrays(
    row_offset: np.ndarray,
    col_indices: np.ndarray,
    eids: np.ndarray,
    num_nodes: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reverse a *compact* (gap-free) CSR; used by the static path."""
    return reverse_gpma_vectorized(row_offset, col_indices, eids, num_nodes)
