"""GPMAGraph: DTDG as a base graph + temporal updates in a PMA (paper §V-D).

Snapshots are constructed *on demand* (Algorithm 2): the PMA holds the
current snapshot's edge set as sorted ``src * N + dst`` keys with SPACE gaps;
moving between timestamps applies batched edge insertions/deletions.  The
snapshot cache avoids replaying a whole sequence of updates when training
advances from one sequence to the next (Algorithm 2 lines 1-5 / 10).

After every structural change the snapshot is **relabelled** (Algorithm 2
line 8): labels are the ranks of the surviving keys, so the forward and
backward CSR of the same snapshot always agree.  The forward (reverse) CSR
is produced by Algorithm 3 — :func:`repro.graph.reverse.reverse_gpma_vectorized`
run directly over the *gapped* PMA storage.

Snapshot builds are **versioned and reuse-cached**: every timestamp is
assigned a stable snapshot version the first time its content is realized
(no-op update batches reuse the previous timestamp's version, since the
content is identical), and built ``(fwd_csr, bwd_csr, in_deg, out_deg)``
artifacts are kept in a small ``(timestamp, version)``-keyed LRU.  The LIFO
backward walk over a training sequence therefore repositions the PMA but
serves every CSR from cache instead of re-running relabelling + Algorithm 3
— the dominant share of Figure 9's ``graph_update`` time.

All structural work (updates, relabelling, CSR builds) is attributed to the
``"graph_update"`` profiler phase; Figure 9 plots its share of epoch time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.device import current_device
from repro.graph.base import STGraphBase
from repro.graph.csr import CSR
from repro.graph.dtdg import DTDG
from repro.graph.labels import decode_edges, encode_edges
from repro.obs.tracer import current_tracer
from repro.pma import PackedMemoryArray, SPACE_KEY
from repro.resilience.faults import current_injector

__all__ = ["GPMAGraph"]

_INT64_MAX = np.iinfo(np.int64).max


@dataclass
class _CachedState:
    """A saved PMA state (Algorithm 2's graph cache)."""

    time: int
    version: int
    keys: np.ndarray
    values: np.ndarray
    counts: np.ndarray
    n_items: int


@dataclass
class _BuiltSnapshot:
    """One (timestamp, version) entry of the CSR reuse cache."""

    fwd: CSR
    bwd: CSR
    in_deg: np.ndarray
    out_deg: np.ndarray


class GPMAGraph(STGraphBase):
    """DTDG as base graph + PMA-backed updates; snapshots built on demand (Algorithm 2)."""
    graph_type = "gpma"

    def __init__(
        self,
        dtdg: DTDG,
        sort_by_degree: bool = True,
        enable_cache: bool = True,
        enable_csr_cache: bool = True,
        csr_cache_size: int = 4,
    ) -> None:
        super().__init__(dtdg.num_nodes, sort_by_degree)
        self.dtdg = dtdg
        self.enable_cache = enable_cache
        self.enable_csr_cache = bool(enable_csr_cache) and csr_cache_size > 0
        self.csr_cache_size = int(csr_cache_size)
        profiler = current_device().profiler
        with profiler.phase("preprocess"):
            src, dst = dtdg.snapshot_edges(0)
            keys = encode_edges(src, dst, dtdg.num_nodes)
            self.pma = PackedMemoryArray(capacity=max(64, 2 * len(keys)))
            self.pma.insert_batch(keys, keys)
        self.curr_time = 0
        self._cache: _CachedState | None = None
        self._dirty = True
        self._fwd: CSR | None = None
        self._bwd: CSR | None = None
        self._in_deg: np.ndarray | None = None
        self._out_deg: np.ndarray | None = None
        # Snapshot versioning: each timestamp gets a stable version the first
        # time its content is realized; no-op updates inherit the previous
        # timestamp's version (identical content).  ``_version_counter`` only
        # allocates (monotonically), so a version is never reused for
        # different content.
        self._ts_versions: dict[int, int] = {0: 0}
        self._version_counter = 0
        # (timestamp, version) -> _BuiltSnapshot LRU (Algorithm 3 reuse).
        self._csr_cache: OrderedDict[tuple[int, int], _BuiltSnapshot] = OrderedDict()
        # One hit/miss is recorded per temporal positioning (not per CSR
        # accessor call); reset on every _advance.
        self._reuse_counted = False
        # Counters for the ablation benchmarks.
        self.update_batches_applied = 0
        self.cache_restores = 0
        # Planned cache-corruption faults that forced Algorithm-3 rebuilds.
        self.cache_fault_rebuilds = 0

    # ------------------------------------------------------------------
    # Algorithm 2: temporal positioning
    # ------------------------------------------------------------------
    def get_graph(self, timestamp: int) -> "GPMAGraph":
        """Get-Graph(G, t): apply update batches (with cache retrieval) to position at ``t``."""
        with current_tracer().span("gpma.advance", "graph_update", t=int(timestamp)):
            with current_device().profiler.phase("graph_update"):
                self._advance(int(timestamp))
        return self

    def get_backward_graph(self, timestamp: int) -> "GPMAGraph":
        """Reverse update to ``timestamp``; the backward pass then reads the
        out-CSR (the "graph has to be reversed" part is the forward CSR,
        already produced by Algorithm 3)."""
        with current_tracer().span("gpma.advance", "graph_update", t=int(timestamp)):
            with current_device().profiler.phase("graph_update"):
                self._advance(int(timestamp))
        return self

    def cache_snapshot(self) -> None:
        """Algorithm 2 line 10: save the current PMA state.

        The executor calls this at the end of a sequence's forward pass so
        that, after the backward pass rewinds the PMA to the sequence start,
        the next sequence resumes from here with a single update batch.
        """
        if not self.enable_cache:
            return
        with current_device().profiler.phase("graph_update"):
            self._cache = _CachedState(
                time=self.curr_time,
                version=self.snapshot_version,
                keys=self.pma.keys.copy(),
                values=self.pma.values.copy(),
                counts=self.pma.segment_counts(),
                n_items=self.pma.n_items,
            )

    def _restore_cache(self) -> None:
        assert self._cache is not None
        cache = self._cache
        if cache.keys.shape != self.pma.keys.shape:
            # Capacity changed since the cache was taken; rebuild geometry.
            self.pma._alloc_arrays(len(cache.keys))
        self.pma.keys[...] = cache.keys
        self.pma.values[...] = cache.values
        self.pma._counts[...] = cache.counts
        self.pma.n_items = cache.n_items
        self.pma._refresh_seg_min()
        self.curr_time = cache.time
        # The restored snapshot keeps the version it was assigned when first
        # realized, so its built CSRs remain valid cache entries.
        self.snapshot_version = cache.version
        self._dirty = True
        self.cache_restores += 1

    def snapshot_key(self) -> tuple:
        """Content identity of the snapshot the PMA currently holds.

        The stable version alone identifies content: no-op chains share a
        version, a revisited timestamp restores its recorded one, and fresh
        versions are only ever allocated for newly realized content — so a
        version match implies bitwise-identical structure.  The executor
        keys :class:`~repro.compiler.runtime.GraphContext` reuse on this,
        which lets a no-op boundary reuse the previous timestamp's context.
        """
        return (None, self.snapshot_version)

    # ------------------------------------------------------------------
    # Checkpoint/resume: snapshot-version cursor
    # ------------------------------------------------------------------
    def version_cursor(self) -> dict:
        """JSON-ready snapshot-version bookkeeping for checkpoint/resume.

        Captures the temporal position plus the stable per-timestamp version
        assignments, so a resumed run (in a fresh process, with a freshly
        built graph) reproduces the same ``(timestamp, version)`` cache keys
        the killed run would have used.  Content is always rebuilt from the
        DTDG itself — the cursor restores bookkeeping, not edges.
        """
        return {
            "curr_time": int(self.curr_time),
            "snapshot_version": int(self.snapshot_version),
            "version_counter": int(self._version_counter),
            "ts_versions": {str(t): int(v) for t, v in self._ts_versions.items()},
        }

    def restore_version_cursor(self, cursor: dict) -> None:
        """Reposition at the cursor's timestamp and restore its version map.

        The PMA replays update batches to reach ``curr_time`` (allocating
        throwaway versions along the way), then the recorded assignments
        overwrite the bookkeeping.  Both caches are dropped: their keys were
        minted under the throwaway versions.
        """
        self.get_graph(int(cursor["curr_time"]))
        self._ts_versions = {int(t): int(v) for t, v in cursor["ts_versions"].items()}
        self._version_counter = int(cursor["version_counter"])
        self.snapshot_version = int(cursor["snapshot_version"])
        self._cache = None
        self._csr_cache.clear()
        self._dirty = True

    def _advance(self, t: int) -> None:
        if not (0 <= t < self.dtdg.num_timestamps):
            raise IndexError(f"timestamp {t} out of range [0, {self.dtdg.num_timestamps})")
        self._reuse_counted = False
        if t == self.curr_time:
            return
        # Algorithm 2 lines 1-5: retrieving the cached graph is worthwhile
        # whenever it is a closer starting point than the current position —
        # updates are reversible, so this holds for rewinds past the cache
        # just as much as for forward jumps onto it.
        if (
            self.enable_cache
            and self._cache is not None
            and abs(t - self._cache.time) < abs(t - self.curr_time)
        ):
            self._restore_cache()
        while self.curr_time < t:
            self._apply_update(self.dtdg.updates[self.curr_time + 1], forward=True, ts_new=self.curr_time + 1)
            self.curr_time += 1
        while self.curr_time > t:
            self._apply_update(self.dtdg.updates[self.curr_time], forward=False, ts_new=self.curr_time - 1)
            self.curr_time -= 1

    def _apply_update(self, update, forward: bool, ts_new: int) -> None:
        """One ``edge_update_t`` batch (Algorithm 2 line 7) arriving at ``ts_new``.

        No-op batches (zero additions and zero deletions) neither dirty the
        snapshot nor change its version: the content at ``ts_new`` is
        bitwise identical to the current one, so the built CSRs stay valid.
        """
        upd = update if forward else update.reversed()
        if len(upd.del_src) == 0 and len(upd.add_src) == 0:
            self._count("noop_updates_skipped")
            self._ts_versions.setdefault(ts_new, self.snapshot_version)
            self.snapshot_version = self._ts_versions[ts_new]
            return
        if len(upd.del_src):
            self.pma.delete_batch(encode_edges(upd.del_src, upd.del_dst, self.num_nodes))
        if len(upd.add_src):
            keys = encode_edges(upd.add_src, upd.add_dst, self.num_nodes)
            self.pma.insert_batch(keys, keys)
        self.update_batches_applied += 1
        ver = self._ts_versions.get(ts_new)
        if ver is None:
            # First time this timestamp's content is realized: allocate a
            # fresh (monotonically increasing) version for it.
            self._version_counter += 1
            ver = self._version_counter
            self._ts_versions[ts_new] = ver
        self.snapshot_version = ver
        self._dirty = True

    # ------------------------------------------------------------------
    # Snapshot materialization (relabel + Algorithm 3)
    # ------------------------------------------------------------------
    def gapped_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The gapped CSR view over the raw PMA storage.

        Returns ``(row_offset, col_indices, eids)`` where ``row_offset[i]``
        indexes the first slot that could hold an edge of source ``i`` and
        gap slots carry ``SPACE`` — the exact input shape of Algorithm 3.
        """
        keys, _ = self.pma.gapped_arrays()
        valid = keys != SPACE_KEY
        # Backward-fill gaps with the next valid key so the slot array is
        # non-decreasing and boundaries can be found with searchsorted.
        filled = np.where(valid, keys, _INT64_MAX)
        backfilled = np.minimum.accumulate(filled[::-1])[::-1]
        boundaries = np.arange(self.num_nodes + 1, dtype=np.int64) * np.int64(self.num_nodes)
        row_offset = np.searchsorted(backfilled, boundaries, side="left").astype(np.int64)
        cols = np.where(valid, keys - (keys // self.num_nodes) * self.num_nodes, SPACE_KEY)
        # Relabel (Algorithm 2 line 8): label = rank among surviving edges.
        eids = np.full(len(keys), -1, dtype=np.int64)
        eids[valid] = np.arange(int(valid.sum()), dtype=np.int64)
        return row_offset, cols, eids

    def _rebuild(self) -> None:
        from repro.graph.reverse import reverse_gpma_vectorized

        with current_tracer().span(
            "gpma.rebuild", "graph_update", t=self.curr_time, edges=self.pma.n_items
        ), current_device().profiler.phase("graph_update"):
            alloc = current_device().alloc
            keys, _ = self.pma.export_items()
            src, dst = decode_edges(keys, self.num_nodes)
            num_edges = len(keys)
            labels = np.arange(num_edges, dtype=np.int64)

            out_deg = np.bincount(src, minlength=self.num_nodes).astype(np.int64)
            in_deg = np.bincount(dst, minlength=self.num_nodes).astype(np.int64)

            # Backward (out-)CSR falls straight out of the sorted keys.
            bwd_row = alloc.zeros(self.num_nodes + 1, dtype=np.int64, tag="gpma.bwd.row")
            np.cumsum(out_deg, out=bwd_row[1:])
            bwd_col = alloc.adopt(dst, tag="gpma.bwd.col")
            bwd_eid = alloc.adopt(labels.copy(), tag="gpma.bwd.eid")
            bwd_ids = (
                np.argsort(-out_deg, kind="stable").astype(np.int64)
                if self.sort_by_degree
                else np.arange(self.num_nodes, dtype=np.int64)
            )
            self._bwd = CSR(bwd_row, bwd_col, bwd_eid, alloc.adopt(bwd_ids, tag="gpma.bwd.ids"))

            # Forward (reverse) CSR via Algorithm 3 over the gapped storage.
            g_row, g_col, g_eid = self.gapped_csr()
            f_row, f_col, f_eid = reverse_gpma_vectorized(g_row, g_col, g_eid, self.num_nodes)
            fwd_ids = (
                np.argsort(-in_deg, kind="stable").astype(np.int64)
                if self.sort_by_degree
                else np.arange(self.num_nodes, dtype=np.int64)
            )
            self._fwd = CSR(
                alloc.adopt(f_row, tag="gpma.fwd.row"),
                alloc.adopt(f_col, tag="gpma.fwd.col"),
                alloc.adopt(f_eid, tag="gpma.fwd.eid"),
                alloc.adopt(fwd_ids, tag="gpma.fwd.ids"),
            )
            self._in_deg = alloc.adopt(in_deg, tag="gpma.in_deg")
            self._out_deg = alloc.adopt(out_deg, tag="gpma.out_deg")
            self._dirty = False

    def _ensure_built(self) -> None:
        """Serve the current snapshot's artifacts, via the reuse cache.

        One ``csr_cache_hits``/``csr_cache_misses`` event is recorded per
        temporal positioning: a hit when the ``(timestamp, version)`` pair is
        served without re-running relabelling + Algorithm 3 (either the
        current build is still valid or the LRU holds it), a miss when a
        rebuild was unavoidable.

        A planned ``"cache"`` fault (``use_fault_plan``) marks every cached
        artifact — the current build, the CSR reuse LRU, and the PMA
        snapshot cache — as corrupted; the graph then degrades to the
        Algorithm-3 rebuild path, which derives everything from the PMA's
        authoritative storage.  Counted as ``cache_fault_rebuilds``.
        """
        injector = current_injector()
        if injector.enabled and injector.take("cache") is not None:
            self._csr_cache.clear()
            self._cache = None
            self._fwd = self._bwd = None
            self._in_deg = self._out_deg = None
            self._dirty = True
            self._count("cache_fault_rebuilds")
        if not self._dirty and self._fwd is not None:
            if self.enable_csr_cache and not self._reuse_counted:
                self._reuse_counted = True
                self._count("csr_cache_hits")
            return
        key = (self.curr_time, self.snapshot_version)
        if self.enable_csr_cache:
            cached = self._csr_cache.get(key)
            if cached is not None:
                self._csr_cache.move_to_end(key)
                self._fwd, self._bwd = cached.fwd, cached.bwd
                self._in_deg, self._out_deg = cached.in_deg, cached.out_deg
                self._dirty = False
                if not self._reuse_counted:
                    self._reuse_counted = True
                    self._count("csr_cache_hits")
                return
        self._rebuild()
        if not self._reuse_counted:
            self._reuse_counted = True
            self._count("csr_cache_misses")
        if self.enable_csr_cache:
            self._csr_cache[key] = _BuiltSnapshot(self._fwd, self._bwd, self._in_deg, self._out_deg)
            self._csr_cache.move_to_end(key)
            while len(self._csr_cache) > self.csr_cache_size:
                self._csr_cache.popitem(last=False)

    def forward_csr(self) -> CSR:
        """Current snapshot's reverse CSR (Algorithm 3 over the gapped storage)."""
        self._ensure_built()
        return self._fwd

    def backward_csr(self) -> CSR:
        """Current snapshot's direct CSR (straight from the sorted PMA keys)."""
        self._ensure_built()
        return self._bwd

    def in_degrees(self) -> np.ndarray:
        """Current snapshot's in-degrees."""
        self._ensure_built()
        return self._in_deg

    def out_degrees(self) -> np.ndarray:
        """Current snapshot's out-degrees."""
        self._ensure_built()
        return self._out_deg

    @property
    def num_edges(self) -> int:
        """Edge count of the snapshot the PMA currently holds."""
        return self.pma.n_items

    def storage_bytes(self) -> int:
        """Persistent PMA storage (snapshot CSRs are transient)."""
        return int(self.pma.keys.nbytes + self.pma.values.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GPMAGraph(N={self.num_nodes}, t={self.curr_time}, "
            f"E={self.num_edges}, pma_capacity={self.pma.capacity})"
        )
