"""GPMAGraph: DTDG as a base graph + temporal updates in a PMA (paper §V-D).

Snapshots are constructed *on demand* (Algorithm 2): the PMA holds the
current snapshot's edge set as sorted ``src * N + dst`` keys with SPACE gaps;
moving between timestamps applies batched edge insertions/deletions.  The
snapshot cache avoids replaying a whole sequence of updates when training
advances from one sequence to the next (Algorithm 2 lines 1-5 / 10).

After every structural change the snapshot is **relabelled** (Algorithm 2
line 8): labels are the ranks of the surviving keys, so the forward and
backward CSR of the same snapshot always agree.  The forward (reverse) CSR
is produced by Algorithm 3 — :func:`repro.graph.reverse.reverse_gpma_vectorized`
run directly over the *gapped* PMA storage.

Snapshot builds are **versioned and reuse-cached**: every timestamp is
assigned a stable snapshot version the first time its content is realized
(no-op update batches reuse the previous timestamp's version, since the
content is identical), and built artifacts are kept in a
``(timestamp, version)``-keyed LRU.  The LIFO backward walk over a training
sequence therefore repositions the PMA but serves every CSR from cache
instead of re-running relabelling + Algorithm 3 — the dominant share of
Figure 9's ``graph_update`` time.

Since the pipelined-execution refactor the graph is split along the seam in
:mod:`repro.graph.snapshot_builder`: the mutable position lives in an
:class:`~repro.graph.snapshot_builder.UpdateCursor`, and
:meth:`GPMAGraph.snapshot_builder` hands out side-effect-free
:class:`~repro.graph.snapshot_builder.SnapshotBuilder`\\ s that materialize
future snapshots on a worker thread; the thread-safe
:class:`~repro.graph.snapshot_builder.SnapshotCache` is the single handoff
point (see docs/EXECUTOR.md §Pipelined execution).

All structural work (updates, relabelling, CSR builds) done on the training
thread is attributed to the ``"graph_update"`` profiler phase; worker-side
builds are attributed to ``"prefetch"``, and main-thread stalls on an
in-flight prefetch to ``"prefetch_wait"``.  Figure 9 plots the split.
"""

from __future__ import annotations

import time

import numpy as np

from repro.device import current_device
from repro.graph.base import STGraphBase
from repro.graph.csr import CSR
from repro.graph.dtdg import DTDG
from repro.graph.snapshot_builder import (
    BuiltSnapshot,
    SnapshotBuilder,
    SnapshotCache,
    SnapshotVersionMap,
    UpdateCursor,
    build_snapshot_arrays,
    gapped_csr_arrays,
)
from repro.obs.tracer import current_tracer
from repro.resilience.faults import current_injector

__all__ = ["GPMAGraph"]

#: Upper bound on a main-thread stall behind one in-flight prefetch build;
#: on expiry the graph falls back to a synchronous rebuild.
_PREFETCH_WAIT_TIMEOUT = 60.0


class GPMAGraph(STGraphBase):
    """DTDG as base graph + PMA-backed updates; snapshots built on demand (Algorithm 2)."""
    graph_type = "gpma"

    def __init__(
        self,
        dtdg: DTDG,
        sort_by_degree: bool = True,
        enable_cache: bool = True,
        enable_csr_cache: bool = True,
        csr_cache_size: int = 4,
    ) -> None:
        self.dtdg = dtdg
        self._versions = SnapshotVersionMap()
        with current_device().profiler.phase("preprocess"):
            self._cursor = UpdateCursor(
                dtdg,
                self._versions,
                enable_cache=enable_cache,
                on_noop=lambda: self._count("noop_updates_skipped"),
            )
        # Logical position: the (timestamp, version) identity this graph
        # *claims*.  Serially it always equals the physical cursor's; while
        # a prefetcher is attached, positioning is deferred — the identity
        # is resolved from the shared version map and the physical PMA only
        # catches up on a genuine cache miss (see _advance).
        self._pos_time = 0
        self._pos_version = 0
        # Version of the installed _fwd/_bwd artifacts (None = none valid).
        self._built_version: int | None = None
        super().__init__(dtdg.num_nodes, sort_by_degree)
        self.enable_cache = enable_cache
        self.enable_csr_cache = bool(enable_csr_cache) and csr_cache_size > 0
        self.csr_cache_size = int(csr_cache_size)
        self._fwd: CSR | None = None
        self._bwd: CSR | None = None
        self._in_deg: np.ndarray | None = None
        self._out_deg: np.ndarray | None = None
        # (timestamp, version) -> BuiltSnapshot; thread-safe — the single
        # handoff point between the prefetch worker and this thread.
        self._csr_cache = SnapshotCache(self.csr_cache_size)
        # One hit/miss is recorded per temporal positioning (not per CSR
        # accessor call); reset on every _advance.
        self._reuse_counted = False
        # Bumped whenever the version map is rewritten (checkpoint resume);
        # builders re-seed their private cursors when they observe a bump.
        self._builder_epoch = 0
        # True while a PrefetchScheduler is attached: misses then count as
        # prefetch_misses and an in-flight build is worth waiting for.
        self._prefetch_active = False
        # Planned cache-corruption faults that forced Algorithm-3 rebuilds.
        self.cache_fault_rebuilds = 0
        self.prefetch_hits = 0
        self.prefetch_misses = 0

    # ------------------------------------------------------------------
    # Mutable-core delegation (the update cursor owns position state)
    # ------------------------------------------------------------------
    @property
    def pma(self):
        """The main cursor's PMA.

        Serially this is the snapshot at :attr:`curr_time`; under deferred
        (pipelined) positioning it may lag the logical position — cache-hit
        timestamps never replay update batches on this thread.  Paths that
        genuinely need the storage (:meth:`gapped_csr`, a synchronous
        rebuild) catch the cursor up first.
        """
        return self._cursor.pma

    @property
    def curr_time(self) -> int:
        """Timestamp this graph is logically positioned at."""
        return self._pos_time

    @property
    def snapshot_version(self) -> int:
        """Stable content version of the currently exposed snapshot."""
        return self._pos_version

    @snapshot_version.setter
    def snapshot_version(self, value: int) -> None:
        self._pos_version = int(value)
        self._cursor.version = int(value)

    @property
    def update_batches_applied(self) -> int:
        """Non-empty update batches the main cursor has applied."""
        return self._cursor.update_batches_applied

    @property
    def cache_restores(self) -> int:
        """Times the main cursor restored its saved PMA state."""
        return self._cursor.cache_restores

    @property
    def _ts_versions(self) -> dict[int, int]:
        """Copy of the shared timestamp -> version assignments (tests/diagnostics)."""
        return self._versions.as_dict()

    # ------------------------------------------------------------------
    # Algorithm 2: temporal positioning
    # ------------------------------------------------------------------
    def get_graph(self, timestamp: int) -> "GPMAGraph":
        """Get-Graph(G, t): apply update batches (with cache retrieval) to position at ``t``."""
        device = current_device()
        start = time.perf_counter()
        with current_tracer().span("gpma.advance", "graph_update", t=int(timestamp)):
            with device.profiler.phase("graph_update"):
                self._advance(int(timestamp))
        if device.metrics.enabled:
            device.metrics.observe(
                "repro_graph_advance_seconds", time.perf_counter() - start,
                "GPMA temporal positioning (Get-Graph) latency.",
            )
        return self

    def get_backward_graph(self, timestamp: int) -> "GPMAGraph":
        """Reverse update to ``timestamp``; the backward pass then reads the
        out-CSR (the "graph has to be reversed" part is the forward CSR,
        already produced by Algorithm 3)."""
        device = current_device()
        start = time.perf_counter()
        with current_tracer().span("gpma.advance", "graph_update", t=int(timestamp)):
            with device.profiler.phase("graph_update"):
                self._advance(int(timestamp))
        if device.metrics.enabled:
            device.metrics.observe(
                "repro_graph_advance_seconds", time.perf_counter() - start,
                "GPMA temporal positioning (Get-Graph) latency.",
            )
        return self

    def cache_snapshot(self) -> None:
        """Algorithm 2 line 10: save the current PMA state.

        The executor calls this at the end of a sequence's forward pass so
        that, after the backward pass rewinds the PMA to the sequence start,
        the next sequence resumes from here with a single update batch.
        """
        if not self.enable_cache:
            return
        if self._prefetch_active and self._cursor.time != self._pos_time:
            # Deferred positioning: the physical cursor lags the logical
            # position, so there is no state worth saving — the prefetch
            # builder keeps its own wraparound cache point.
            return
        with current_device().profiler.phase("graph_update"):
            self._cursor.cache_state()

    def snapshot_key(self) -> tuple:
        """Content identity of the snapshot the PMA currently holds.

        The stable version alone identifies content: no-op chains share a
        version, a revisited timestamp restores its recorded one, and fresh
        versions are only ever allocated for newly realized content — so a
        version match implies bitwise-identical structure.  The executor
        keys :class:`~repro.compiler.runtime.GraphContext` reuse on this,
        which lets a no-op boundary reuse the previous timestamp's context.
        """
        return (None, self.snapshot_version)

    # ------------------------------------------------------------------
    # Pipelined execution: side-effect-free builders
    # ------------------------------------------------------------------
    def snapshot_builder(self) -> SnapshotBuilder:
        """A side-effect-free builder over this graph's DTDG + version map.

        The builder owns a private :class:`UpdateCursor`; building snapshot
        ``t+k`` on a worker thread never touches this graph's PMA.  Handoff
        happens through the thread-safe :attr:`_csr_cache` (the scheduler
        stages worker builds there).
        """
        return SnapshotBuilder(self)

    def attach_prefetcher(self, active: bool) -> None:
        """Mark whether a prefetch scheduler is feeding the snapshot cache
        (switches miss accounting and in-flight waiting on or off)."""
        self._prefetch_active = bool(active)

    # ------------------------------------------------------------------
    # Checkpoint/resume: snapshot-version cursor
    # ------------------------------------------------------------------
    def version_cursor(self) -> dict:
        """JSON-ready snapshot-version bookkeeping for checkpoint/resume.

        Captures the temporal position plus the stable per-timestamp version
        assignments, so a resumed run (in a fresh process, with a freshly
        built graph) reproduces the same ``(timestamp, version)`` cache keys
        the killed run would have used.  Content is always rebuilt from the
        DTDG itself — the cursor restores bookkeeping, not edges.
        """
        return {
            "curr_time": int(self.curr_time),
            "snapshot_version": int(self.snapshot_version),
            "version_counter": int(self._versions.counter),
            "ts_versions": {str(t): int(v) for t, v in self._versions.as_dict().items()},
        }

    def restore_version_cursor(self, cursor: dict) -> None:
        """Reposition at the cursor's timestamp and restore its version map.

        The PMA replays update batches to reach ``curr_time`` (allocating
        throwaway versions along the way), then the recorded assignments
        overwrite the bookkeeping.  Both caches are dropped (their keys were
        minted under the throwaway versions) and the builder epoch is bumped
        so any prefetch builder re-seeds its private cursor.
        """
        self.get_graph(int(cursor["curr_time"]))
        self._versions.restore(
            {int(t): int(v) for t, v in cursor["ts_versions"].items()},
            int(cursor["version_counter"]),
        )
        self.snapshot_version = int(cursor["snapshot_version"])
        self._cursor.drop_cache()
        self._csr_cache.clear()
        self._built_version = None
        self._builder_epoch += 1

    def _advance(self, t: int) -> None:
        """Position at ``t`` — logically when pipelined, physically otherwise.

        With a prefetcher attached, positioning only has to resolve the
        ``(t, version)`` content identity: the version map is shared, so once
        *any* cursor (usually the worker's) has realized ``t``, this thread
        knows the cache key without replaying a single update batch.  The
        physical PMA stays parked and only catches up inside a synchronous
        rebuild (cache miss) — in the steady state the training thread does
        no structural graph work at all.  If the version is still unknown,
        an in-flight build for ``t`` is waited for (``prefetch_wait``);
        otherwise the cursor advances synchronously as in the serial path.
        """
        self._reuse_counted = False
        t = int(t)
        if self._prefetch_active and self.enable_csr_cache:
            version = self._versions.get(t)
            if version is None and self._csr_cache.inflight(t):
                device = current_device()
                start = time.perf_counter()
                with device.profiler.phase("prefetch_wait"):
                    self._csr_cache.wait_not_inflight(t, timeout=_PREFETCH_WAIT_TIMEOUT)
                if device.metrics.enabled:
                    device.metrics.observe(
                        "repro_prefetch_wait_seconds", time.perf_counter() - start,
                        "Main-thread stall behind an in-flight prefetch build.",
                    )
                version = self._versions.get(t)
            if version is not None:
                self._pos_time = t
                self._pos_version = version
                return
        self._cursor.advance(t)
        self._pos_time = self._cursor.time
        self._pos_version = self._cursor.version

    def _catch_up(self) -> None:
        """Bring the physical cursor to the logical position (miss path)."""
        if self._cursor.time != self._pos_time:
            self._cursor.advance(self._pos_time)

    # ------------------------------------------------------------------
    # Snapshot materialization (relabel + Algorithm 3)
    # ------------------------------------------------------------------
    def gapped_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The gapped CSR view over the raw PMA storage.

        Returns ``(row_offset, col_indices, eids)`` where ``row_offset[i]``
        indexes the first slot that could hold an edge of source ``i`` and
        gap slots carry ``SPACE`` — the exact input shape of Algorithm 3.
        """
        self._catch_up()
        return gapped_csr_arrays(self.pma, self.num_nodes)

    def _install(self, snap: BuiltSnapshot, version: int) -> None:
        self._fwd, self._bwd = snap.fwd, snap.bwd
        self._in_deg, self._out_deg = snap.in_deg, snap.out_deg
        self._built_version = int(version)

    def _rebuild(self) -> BuiltSnapshot:
        device = current_device()
        with device.profiler.phase("graph_update"):
            self._catch_up()
            start = time.perf_counter()
            with current_tracer().span(
                "gpma.rebuild", "graph_update", t=self.curr_time, edges=self.pma.n_items
            ):
                snap = build_snapshot_arrays(
                    self.pma, self.num_nodes, self.sort_by_degree, device.alloc
                )
            if device.metrics.enabled:
                device.metrics.observe(
                    "repro_graph_rebuild_seconds", time.perf_counter() - start,
                    "Snapshot rebuild (relabel + Algorithm 3) latency.",
                )
            self._install(snap, self._pos_version)
            return snap

    def _ensure_built(self) -> None:
        """Serve the current snapshot's artifacts, via the reuse cache.

        One ``csr_cache_hits``/``csr_cache_misses`` event is recorded per
        temporal positioning: a hit when the ``(timestamp, version)`` pair is
        served without re-running relabelling + Algorithm 3 (either the
        current build is still valid or the cache holds it), a miss when a
        rebuild was unavoidable.  While a prefetch scheduler is attached,
        a hit on a worker-built (staged) entry additionally counts as a
        ``prefetch_hit``, a synchronous rebuild as a ``prefetch_miss``, and
        a build the worker has in flight for exactly this timestamp is
        waited for (billed to the ``prefetch_wait`` phase) rather than
        duplicated.

        A planned ``"cache"`` fault (``use_fault_plan``) marks every cached
        artifact — the current build, the CSR reuse cache, and the PMA
        snapshot cache — as corrupted; the graph then degrades to the
        Algorithm-3 rebuild path, which derives everything from the PMA's
        authoritative storage.  Counted as ``cache_fault_rebuilds``.
        """
        injector = current_injector()
        if injector.enabled and injector.take("cache") is not None:
            self._csr_cache.clear()
            self._cursor.drop_cache()
            self._fwd = self._bwd = None
            self._in_deg = self._out_deg = None
            self._built_version = None
            self._count("cache_fault_rebuilds")
        # The stable version alone is content identity, so the installed
        # artifacts are valid whenever their version matches the logical
        # position's — across no-op chains and backward revisits alike.
        if self._built_version == self._pos_version and self._fwd is not None:
            if self.enable_csr_cache and not self._reuse_counted:
                self._reuse_counted = True
                self._count("csr_cache_hits")
            return
        key = (self.curr_time, self.snapshot_version)
        if self.enable_csr_cache:
            snap, from_prefetch = self._csr_cache.get(key)
            if (
                snap is None
                and self._prefetch_active
                and self._csr_cache.inflight(self.curr_time)
            ):
                device = current_device()
                start = time.perf_counter()
                with device.profiler.phase("prefetch_wait"):
                    self._csr_cache.wait_not_inflight(self.curr_time, timeout=_PREFETCH_WAIT_TIMEOUT)
                if device.metrics.enabled:
                    device.metrics.observe(
                        "repro_prefetch_wait_seconds", time.perf_counter() - start,
                        "Main-thread stall behind an in-flight prefetch build.",
                    )
                snap, from_prefetch = self._csr_cache.get(key)
            if snap is not None:
                self._install(snap, key[1])
                if from_prefetch:
                    self._count("prefetch_hits")
                if not self._reuse_counted:
                    self._reuse_counted = True
                    self._count("csr_cache_hits")
                return
        snap = self._rebuild()
        if not self._reuse_counted:
            self._reuse_counted = True
            self._count("csr_cache_misses")
            if self._prefetch_active:
                self._count("prefetch_misses")
        if self.enable_csr_cache:
            self._csr_cache.put(key, snap)

    def forward_csr(self) -> CSR:
        """Current snapshot's reverse CSR (Algorithm 3 over the gapped storage)."""
        self._ensure_built()
        return self._fwd

    def backward_csr(self) -> CSR:
        """Current snapshot's direct CSR (straight from the sorted PMA keys)."""
        self._ensure_built()
        return self._bwd

    def in_degrees(self) -> np.ndarray:
        """Current snapshot's in-degrees."""
        self._ensure_built()
        return self._in_deg

    def out_degrees(self) -> np.ndarray:
        """Current snapshot's out-degrees."""
        self._ensure_built()
        return self._out_deg

    @property
    def num_edges(self) -> int:
        """Edge count of the logically current snapshot (built artifacts
        when installed, else the physical PMA — identical serially)."""
        if self._built_version == self._pos_version and self._bwd is not None:
            return self._bwd.num_edges
        return self.pma.n_items

    def storage_bytes(self) -> int:
        """Persistent PMA storage (snapshot CSRs are transient)."""
        return int(self.pma.keys.nbytes + self.pma.values.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GPMAGraph(N={self.num_nodes}, t={self.curr_time}, "
            f"E={self.num_edges}, pma_capacity={self.pma.capacity})"
        )
