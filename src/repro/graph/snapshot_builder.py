"""Side-effect-free snapshot building for pipelined temporal execution.

This module is the seam that lets snapshot construction run off the
critical path (ROADMAP item 2, MSPipe-style pipelining):

* :class:`UpdateCursor` — the mutable core of a GPMA-backed temporal graph:
  one PMA positioned at one timestamp, with Algorithm 2's update-batch
  replay and state cache.  :class:`~repro.graph.gpma_graph.GPMAGraph` owns
  one as its main-thread position; a :class:`SnapshotBuilder` owns a
  *private* one, so building snapshot ``t+k`` never repositions the PMA the
  training loop is reading.
* :class:`SnapshotVersionMap` — the shared, lock-protected per-timestamp
  version bookkeeping.  Versions are content identity: whichever cursor
  realizes a timestamp first allocates its version, and because both
  cursors replay the same immutable DTDG update batches, a
  ``(timestamp, version)`` key produced by the builder is bitwise
  interchangeable with the one the main cursor would produce.
* :class:`SnapshotCache` — the ``(timestamp, version)`` LRU of built CSR
  artifacts, now thread-safe and the **single handoff point** between the
  prefetch worker and the main thread.  Worker-built snapshots go into a
  bounded *staging* area (they never evict LRU entries the LIFO backward
  walk still needs); the first main-thread consumption promotes them into
  the LRU proper and reports a ``prefetch_hit``.
* :func:`build_snapshot_arrays` — the pure relabel + Algorithm 3 function
  both the main rebuild path and the builder call: PMA storage in,
  immutable :class:`BuiltSnapshot` out, no shared state touched.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.sanitizer import new_condition, new_lock
from repro.graph.csr import CSR
from repro.graph.dtdg import DTDG
from repro.graph.labels import decode_edges, encode_edges
from repro.pma import PackedMemoryArray, SPACE_KEY

__all__ = [
    "BuiltSnapshot",
    "SnapshotVersionMap",
    "SnapshotCache",
    "UpdateCursor",
    "SnapshotBuilder",
    "build_snapshot_arrays",
    "gapped_csr_arrays",
]

_INT64_MAX = np.iinfo(np.int64).max


@dataclass
class BuiltSnapshot:
    """One immutable built snapshot: the artifacts Algorithm 3 produces.

    Instances are never mutated after construction; the arrays inside are
    shared freely across threads (the worker builds, the main thread reads).
    """

    fwd: CSR
    bwd: CSR
    in_deg: np.ndarray
    out_deg: np.ndarray


@dataclass
class _CursorState:
    """A saved PMA state (Algorithm 2's graph cache)."""

    time: int
    version: int
    keys: np.ndarray
    values: np.ndarray
    counts: np.ndarray
    n_items: int


class SnapshotVersionMap:
    """Thread-safe stable per-timestamp snapshot versions.

    Every timestamp gets a version the first time its content is realized
    — by *any* cursor.  No-op update batches inherit the previous
    timestamp's version (identical content); non-empty batches allocate
    monotonically, so a version is never reused for different content.
    Both the graph's main cursor and every builder cursor resolve versions
    here, which is what makes their ``(timestamp, version)`` keys
    interchangeable.
    """

    def __init__(self) -> None:
        self._lock = new_lock("SnapshotVersionMap._lock")
        self._versions: dict[int, int] = {0: 0}
        self._counter = 0

    def get(self, ts: int) -> int | None:
        """Version already assigned to ``ts`` (None if never realized)."""
        with self._lock:
            return self._versions.get(int(ts))

    def noop(self, ts_new: int, current_version: int) -> int:
        """Version for ``ts_new`` whose batch is empty: inherits ``current_version``."""
        with self._lock:
            return self._versions.setdefault(int(ts_new), int(current_version))

    def realized(self, ts_new: int) -> int:
        """Version for ``ts_new`` after applying a non-empty batch (allocates once)."""
        with self._lock:
            ver = self._versions.get(int(ts_new))
            if ver is None:
                self._counter += 1
                ver = self._counter
                self._versions[int(ts_new)] = ver
            return ver

    @property
    def counter(self) -> int:
        """Highest version allocated so far."""
        with self._lock:
            return self._counter

    def as_dict(self) -> dict[int, int]:
        """Copy of the timestamp -> version assignments."""
        with self._lock:
            return dict(self._versions)

    def restore(self, versions: dict[int, int], counter: int) -> None:
        """Replace the bookkeeping (checkpoint resume)."""
        with self._lock:
            self._versions = {int(t): int(v) for t, v in versions.items()}
            self._counter = int(counter)


class SnapshotCache:
    """Thread-safe ``(timestamp, version)`` LRU of :class:`BuiltSnapshot`\\ s.

    Two tiers:

    * the **LRU proper** — entries the main thread built or consumed,
      bounded by ``capacity`` (the PR 2 reuse cache, unchanged semantics);
    * the **staging area** — entries the prefetch worker built ahead of
      time.  Staged entries do not count against (or evict from) the LRU
      until the main thread consumes one, at which point it is promoted.
      Boundedness comes from the scheduler's queue, not from this dict.

    The in-flight set + condition variable let the main thread *wait* for a
    snapshot the worker is mid-build on instead of duplicating the build.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._lock = new_lock("SnapshotCache._lock")
        self._cond = new_condition(self._lock, "SnapshotCache._cond")
        self._lru: OrderedDict[tuple[int, int], BuiltSnapshot] = OrderedDict()
        self._staged: dict[tuple[int, int], BuiltSnapshot] = {}
        self._inflight: set[int] = set()
        #: total snapshots the worker ever staged (diagnostics)
        self.staged_total = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def _insert(self, key: tuple[int, int], snap: BuiltSnapshot) -> None:
        self._lru[key] = snap
        self._lru.move_to_end(key)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)

    def get(self, key: tuple[int, int]) -> tuple[BuiltSnapshot | None, bool]:
        """Look up ``key`` -> ``(snapshot, from_prefetch)``.

        A staged (worker-built) entry is promoted into the LRU on its first
        consumption and reported with ``from_prefetch=True`` exactly once.
        """
        with self._lock:
            snap = self._lru.get(key)
            if snap is not None:
                self._lru.move_to_end(key)
                return snap, False
            snap = self._staged.pop(key, None)
            if snap is not None:
                self._insert(key, snap)
                return snap, True
            return None, False

    def put(self, key: tuple[int, int], snap: BuiltSnapshot) -> None:
        """Main-thread insert (a synchronous build)."""
        with self._lock:
            self._staged.pop(key, None)
            self._insert(key, snap)

    def stage(self, key: tuple[int, int], snap: BuiltSnapshot) -> None:
        """Worker-thread insert: parked in staging until first consumption."""
        with self._lock:
            if key not in self._lru:
                self._staged[key] = snap
                self.staged_total += 1

    def contains(self, key: tuple[int, int]) -> bool:
        """Whether ``key`` is already available (LRU or staged)."""
        with self._lock:
            return key in self._lru or key in self._staged

    # -- in-flight coordination -----------------------------------------
    def mark_inflight(self, ts: int) -> None:
        """Worker: announce a build for timestamp ``ts`` has started."""
        with self._cond:
            self._inflight.add(int(ts))

    def clear_inflight(self, ts: int) -> None:
        """Worker: the build for ``ts`` finished (or was abandoned)."""
        with self._cond:
            self._inflight.discard(int(ts))
            self._cond.notify_all()

    def inflight(self, ts: int) -> bool:
        """Whether a build for timestamp ``ts`` is currently running."""
        with self._lock:
            return int(ts) in self._inflight

    def wait_not_inflight(self, ts: int, timeout: float = 60.0) -> bool:
        """Block until no build for ``ts`` is in flight (True) or timeout."""
        with self._cond:
            return self._cond.wait_for(lambda: int(ts) not in self._inflight, timeout=timeout)

    def clear(self) -> None:
        """Drop every cached and staged entry (in-flight marks are the
        worker's to clear)."""
        with self._lock:
            self._lru.clear()
            self._staged.clear()


# ---------------------------------------------------------------------------
# Pure snapshot materialization (relabel + Algorithm 3)
# ---------------------------------------------------------------------------
def gapped_csr_arrays(pma: PackedMemoryArray, num_nodes: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The gapped CSR view over one PMA's raw storage.

    Returns ``(row_offset, col_indices, eids)`` where ``row_offset[i]``
    indexes the first slot that could hold an edge of source ``i`` and gap
    slots carry ``SPACE`` — the exact input shape of Algorithm 3.  Pure:
    reads the PMA, writes nothing.
    """
    keys, _ = pma.gapped_arrays()
    valid = keys != SPACE_KEY
    # Backward-fill gaps with the next valid key so the slot array is
    # non-decreasing and boundaries can be found with searchsorted.
    filled = np.where(valid, keys, _INT64_MAX)
    backfilled = np.minimum.accumulate(filled[::-1])[::-1]
    boundaries = np.arange(num_nodes + 1, dtype=np.int64) * np.int64(num_nodes)
    row_offset = np.searchsorted(backfilled, boundaries, side="left").astype(np.int64)
    cols = np.where(valid, keys - (keys // num_nodes) * num_nodes, SPACE_KEY)
    # Relabel (Algorithm 2 line 8): label = rank among surviving edges.
    eids = np.full(len(keys), -1, dtype=np.int64)
    eids[valid] = np.arange(int(valid.sum()), dtype=np.int64)
    return row_offset, cols, eids


def build_snapshot_arrays(
    pma: PackedMemoryArray, num_nodes: int, sort_by_degree: bool, alloc
) -> BuiltSnapshot:
    """Relabel + Algorithm 3 over one PMA → an immutable :class:`BuiltSnapshot`.

    Pure with respect to shared graph state: the only inputs are the given
    PMA's storage (read), and the only side effect is byte accounting on
    ``alloc`` (whose tracker is lock-protected) — safe to run on a worker
    thread against a private cursor's PMA.
    """
    from repro.graph.reverse import reverse_gpma_vectorized

    keys, _ = pma.export_items()
    src, dst = decode_edges(keys, num_nodes)
    num_edges = len(keys)
    labels = np.arange(num_edges, dtype=np.int64)

    out_deg = np.bincount(src, minlength=num_nodes).astype(np.int64)
    in_deg = np.bincount(dst, minlength=num_nodes).astype(np.int64)

    # Backward (out-)CSR falls straight out of the sorted keys.
    bwd_row = alloc.zeros(num_nodes + 1, dtype=np.int64, tag="gpma.bwd.row")
    np.cumsum(out_deg, out=bwd_row[1:])
    bwd_col = alloc.adopt(dst, tag="gpma.bwd.col")
    bwd_eid = alloc.adopt(labels.copy(), tag="gpma.bwd.eid")
    bwd_ids = (
        np.argsort(-out_deg, kind="stable").astype(np.int64)
        if sort_by_degree
        else np.arange(num_nodes, dtype=np.int64)
    )
    bwd = CSR(bwd_row, bwd_col, bwd_eid, alloc.adopt(bwd_ids, tag="gpma.bwd.ids"))

    # Forward (reverse) CSR via Algorithm 3 over the gapped storage.
    g_row, g_col, g_eid = gapped_csr_arrays(pma, num_nodes)
    f_row, f_col, f_eid = reverse_gpma_vectorized(g_row, g_col, g_eid, num_nodes)
    fwd_ids = (
        np.argsort(-in_deg, kind="stable").astype(np.int64)
        if sort_by_degree
        else np.arange(num_nodes, dtype=np.int64)
    )
    fwd = CSR(
        alloc.adopt(f_row, tag="gpma.fwd.row"),
        alloc.adopt(f_col, tag="gpma.fwd.col"),
        alloc.adopt(f_eid, tag="gpma.fwd.eid"),
        alloc.adopt(fwd_ids, tag="gpma.fwd.ids"),
    )
    return BuiltSnapshot(fwd, bwd, alloc.adopt(in_deg, tag="gpma.in_deg"), alloc.adopt(out_deg, tag="gpma.out_deg"))


# ---------------------------------------------------------------------------
# The mutable update-cursor core (Algorithm 2)
# ---------------------------------------------------------------------------
class UpdateCursor:
    """One PMA positioned at one timestamp, with Algorithm 2 replay.

    Single-threaded by design: the graph's main cursor is driven by the
    training loop, a builder's private cursor by the prefetch worker.  The
    only cross-thread structure a cursor touches is the shared
    :class:`SnapshotVersionMap`.
    """

    def __init__(
        self,
        dtdg: DTDG,
        versions: SnapshotVersionMap,
        enable_cache: bool = True,
        on_noop: Callable[[], None] | None = None,
    ) -> None:
        self.dtdg = dtdg
        self.num_nodes = dtdg.num_nodes
        self.versions = versions
        self.enable_cache = enable_cache
        self.on_noop = on_noop
        src, dst = dtdg.snapshot_edges(0)
        keys = encode_edges(src, dst, dtdg.num_nodes)
        self.pma = PackedMemoryArray(capacity=max(64, 2 * len(keys)))
        self.pma.insert_batch(keys, keys)
        self.time = 0
        self.version = 0
        #: True when the PMA content changed since the consumer's last build
        #: (the consumer clears it after installing/building artifacts).
        self.dirty = True
        self._cache: _CursorState | None = None
        # Counters for the ablation benchmarks.
        self.update_batches_applied = 0
        self.cache_restores = 0

    # -- Algorithm 2 lines 1-5 / 10 --------------------------------------
    def cache_state(self) -> None:
        """Save the current PMA state (Algorithm 2 line 10)."""
        if not self.enable_cache:
            return
        self._cache = _CursorState(
            time=self.time,
            version=self.version,
            keys=self.pma.keys.copy(),
            values=self.pma.values.copy(),
            counts=self.pma.segment_counts(),
            n_items=self.pma.n_items,
        )

    def drop_cache(self) -> None:
        """Invalidate the saved PMA state (corruption fault / resume)."""
        self._cache = None

    def _restore_cache(self) -> None:
        assert self._cache is not None
        cache = self._cache
        if cache.keys.shape != self.pma.keys.shape:
            # Capacity changed since the cache was taken; rebuild geometry.
            self.pma._alloc_arrays(len(cache.keys))
        self.pma.keys[...] = cache.keys
        self.pma.values[...] = cache.values
        self.pma._counts[...] = cache.counts
        self.pma.n_items = cache.n_items
        self.pma._refresh_seg_min()
        self.time = cache.time
        # The restored snapshot keeps the version it was assigned when first
        # realized, so its built CSRs remain valid cache entries.
        self.version = cache.version
        self.dirty = True
        self.cache_restores += 1

    def advance(self, t: int) -> None:
        """Position at ``t``, applying update batches (with cache retrieval)."""
        if not (0 <= t < self.dtdg.num_timestamps):
            raise IndexError(f"timestamp {t} out of range [0, {self.dtdg.num_timestamps})")
        if t == self.time:
            return
        # Algorithm 2 lines 1-5: retrieving the cached graph is worthwhile
        # whenever it is a closer starting point than the current position —
        # updates are reversible, so this holds for rewinds past the cache
        # just as much as for forward jumps onto it.
        if (
            self.enable_cache
            and self._cache is not None
            and abs(t - self._cache.time) < abs(t - self.time)
        ):
            self._restore_cache()
        while self.time < t:
            self._apply_update(self.dtdg.updates[self.time + 1], forward=True, ts_new=self.time + 1)
            self.time += 1
        while self.time > t:
            self._apply_update(self.dtdg.updates[self.time], forward=False, ts_new=self.time - 1)
            self.time -= 1

    def _apply_update(self, update, forward: bool, ts_new: int) -> None:
        """One ``edge_update_t`` batch (Algorithm 2 line 7) arriving at ``ts_new``.

        No-op batches (zero additions and zero deletions) neither dirty the
        snapshot nor change its version: the content at ``ts_new`` is
        bitwise identical to the current one, so the built CSRs stay valid.
        """
        upd = update if forward else update.reversed()
        if len(upd.del_src) == 0 and len(upd.add_src) == 0:
            if self.on_noop is not None:
                self.on_noop()
            self.version = self.versions.noop(ts_new, self.version)
            return
        if len(upd.del_src):
            self.pma.delete_batch(encode_edges(upd.del_src, upd.del_dst, self.num_nodes))
        if len(upd.add_src):
            keys = encode_edges(upd.add_src, upd.add_dst, self.num_nodes)
            self.pma.insert_batch(keys, keys)
        self.update_batches_applied += 1
        self.version = self.versions.realized(ts_new)
        self.dirty = True


# ---------------------------------------------------------------------------
# The side-effect-free snapshot builder
# ---------------------------------------------------------------------------
class SnapshotBuilder:
    """Builds :class:`BuiltSnapshot`\\ s without touching the owning graph's PMA.

    Thread-safety contract: a builder shares only immutable or
    lock-protected structures with its graph — the DTDG (read-only), the
    :class:`SnapshotVersionMap`, and (via the scheduler) the
    :class:`SnapshotCache`.  All mutable positioning lives in the builder's
    *private* :class:`UpdateCursor`, so :meth:`build` may run concurrently
    with main-thread training.  One builder instance must itself be driven
    from a single thread at a time (the prefetch worker).

    The builder observes the graph's *builder epoch*: checkpoint resume
    rewrites the version map, at which point every existing private cursor
    is stale and is rebuilt from the DTDG on next use.
    """

    def __init__(self, graph) -> None:
        self._graph = graph
        self.dtdg: DTDG = graph.dtdg
        self.num_nodes: int = graph.num_nodes
        self.sort_by_degree: bool = graph.sort_by_degree
        self._versions: SnapshotVersionMap = graph._versions
        self._cursor: UpdateCursor | None = None
        self._epoch: int | None = None
        #: snapshots actually materialized by this builder (diagnostics)
        self.builds = 0

    def _ensure_cursor(self) -> UpdateCursor:
        epoch = getattr(self._graph, "_builder_epoch", 0)
        if self._cursor is None or self._epoch != epoch:
            self._cursor = UpdateCursor(self.dtdg, self._versions, enable_cache=True)
            # Cache the t=0 state so the per-epoch wraparound (prefetching
            # t=0 for the next epoch while the last timestamps compute) is a
            # restore, not a full reverse replay.
            self._cursor.cache_state()
            self._epoch = epoch
        return self._cursor

    def key_for(self, ts: int) -> tuple[int, int]:
        """The ``(timestamp, version)`` cache key for ``ts`` (advances the
        private cursor; resolves the shared version map)."""
        cursor = self._ensure_cursor()
        cursor.advance(int(ts))
        return (int(ts), cursor.version)

    def build(self, ts: int) -> tuple[tuple[int, int], BuiltSnapshot]:
        """Materialize the snapshot at ``ts`` → ``(key, BuiltSnapshot)``.

        Positions the private cursor, then runs the pure relabel +
        Algorithm 3 function over its PMA.  Never touches the owning
        graph's PMA, current build, or non-thread-safe bookkeeping.
        """
        from repro.device import current_device

        cursor = self._ensure_cursor()
        cursor.advance(int(ts))
        key = (int(ts), cursor.version)
        snap = build_snapshot_arrays(
            cursor.pma, self.num_nodes, self.sort_by_degree, current_device().alloc
        )
        cursor.dirty = False
        self.builds += 1
        return key, snap
