"""The shared "current X" context-stack pattern.

Three subsystems install a per-run object with the same shape of plumbing:
``use_device`` (:mod:`repro.device.device`), ``use_tracer``
(:mod:`repro.obs.tracer`) and ``use_fault_plan``
(:mod:`repro.resilience.faults`).  Each used to keep its own module-level
list; :class:`ContextStack` is the one implementation they now share.

Stacks are **thread-local**: a ``use_*`` block entered on one thread never
changes what another thread observes, so a worker (e.g. the executor's
prefetch thread) always starts from the process default and must be handed
its contexts explicitly.  That is a deliberate safety property — the
alternative (a global list mutated from several threads) would let a
worker's push/pop tear down a context the main thread is still inside.

The default is process-wide and shared by all threads; ``set_default`` is
provided for subsystems whose default is a real object (the default
device) rather than a null sentinel.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Generic, Iterator, TypeVar

__all__ = ["ContextStack"]

T = TypeVar("T")


class ContextStack(Generic[T]):
    """A thread-local stack of "currently active" objects over one default."""

    def __init__(self, default: T) -> None:
        self._default = default
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def default(self) -> T:
        """The process-wide fallback all threads share."""
        return self._default

    def set_default(self, value: T) -> None:
        """Replace the process-wide fallback (rarely needed outside tests)."""
        self._default = value

    def current(self) -> T:
        """The calling thread's innermost active object (default if none)."""
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1]
        return self._default

    def push(self, value: T) -> None:
        """Low-level push; prefer :meth:`use`."""
        self._stack().append(value)

    def pop(self) -> T:
        """Low-level pop; prefer :meth:`use`."""
        return self._stack().pop()

    @contextlib.contextmanager
    def use(self, value: T) -> Iterator[T]:
        """Run a block with ``value`` active on the calling thread."""
        stack = self._stack()
        stack.append(value)
        try:
            yield value
        finally:
            stack.pop()
