"""Small shared utilities with no dependencies on the rest of the framework."""

from repro.util.ctxstack import ContextStack

__all__ = ["ContextStack"]
