"""Feature-adaptive launch configuration (Seastar's kernel-tuning model).

The paper attributes part of STGraph's speed to "optimized CUDA kernels
that take advantage of feature-adaptive thread group allocations and vertex
parallelism" (§VII-A).  The real system sizes each kernel's thread groups
by the feature dimension: a group of ``min(F, 32)`` threads handles one
vertex's feature vector, groups pack into 256-thread blocks, and the grid
covers all vertices; wide features switch to one-warp-per-vertex with
strided feature loops.

The simulated device cannot schedule warps, but it reproduces the *model*:
:func:`feature_adaptive_config` computes the same configuration Seastar
would launch, the launcher attaches it to every kernel launch (inspectable
via ``CompiledKernel.meta``), and :func:`estimated_occupancy` exposes the
quantity the heuristic optimizes.  Tests pin the heuristic's published
properties (group size saturates at warp width, blocks cover all vertices,
occupancy is monotone in feature size up to the warp bound).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LaunchConfig", "feature_adaptive_config", "estimated_occupancy"]

WARP_SIZE = 32
BLOCK_THREADS = 256
MAX_BLOCKS = 65_535


@dataclass(frozen=True)
class LaunchConfig:
    """One kernel launch shape."""

    threads_per_group: int  # threads cooperating on one vertex
    groups_per_block: int
    num_blocks: int
    feature_stride: int  # features each thread processes (strided loop)

    @property
    def threads_per_block(self) -> int:
        """Threads per block (group size × groups)."""
        return self.threads_per_group * self.groups_per_block

    @property
    def total_threads(self) -> int:
        """Lanes across the whole launch."""
        return self.threads_per_block * self.num_blocks

    def vertices_per_launch(self) -> int:
        """Vertices covered by one grid."""
        return self.groups_per_block * self.num_blocks


def feature_adaptive_config(num_vertices: int, feature_size: int) -> LaunchConfig:
    """Seastar's feature-adaptive heuristic.

    * tiny features: a group is exactly ``feature_size`` threads, many
      vertices share a block (thread-group parallelism);
    * features ≥ warp width: one warp per vertex, each thread looping over
      ``ceil(F / 32)`` features (the ``feature_stride``).
    """
    if num_vertices < 1:
        raise ValueError("num_vertices must be positive")
    if feature_size < 1:
        raise ValueError("feature_size must be positive")
    threads_per_group = min(feature_size, WARP_SIZE)
    # round group size up to a power of two for shuffle-based reductions
    pow2 = 1
    while pow2 < threads_per_group:
        pow2 *= 2
    threads_per_group = pow2
    groups_per_block = max(1, BLOCK_THREADS // threads_per_group)
    num_blocks = min(MAX_BLOCKS, -(-num_vertices // groups_per_block))
    feature_stride = -(-feature_size // threads_per_group)
    return LaunchConfig(threads_per_group, groups_per_block, num_blocks, feature_stride)


def estimated_occupancy(config: LaunchConfig, num_vertices: int, feature_size: int) -> float:
    """Fraction of launched lanes doing useful work (the heuristic's
    objective): wasted lanes come from power-of-two rounding of the group
    and from the last partially-filled block."""
    useful = num_vertices * min(feature_size, config.threads_per_group * config.feature_stride)
    launched = config.total_threads * config.feature_stride
    return min(1.0, useful / launched) if launched else 0.0
