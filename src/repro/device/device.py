"""The simulated device and the active-device context.

A :class:`Device` bundles the allocator, kernel launcher, and profiler that
together stand in for one GPU.  The framework (tensor engine, graph
structures, executor, and the PyG-T baseline) always allocates through
``current_device().alloc`` so that every comparison in the benchmark harness
is measured by the same instrument.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.device.allocator import DeviceAllocator, MemoryTracker
from repro.device.kernel import KernelLauncher
from repro.device.profiler import Profiler
from repro.obs.metrics import MetricRegistry
from repro.util.ctxstack import ContextStack

__all__ = ["Device", "default_device", "current_device", "use_device"]


class Device:
    """One simulated accelerator.

    Parameters
    ----------
    name:
        Identifier used in reprs and error messages (``"sim:0"`` by default,
        mirroring ``cuda:0``).
    memory_limit_bytes:
        Optional hard cap.  When set, :meth:`check_oom` raises
        :class:`DeviceOutOfMemoryError` once residency exceeds the cap —
        useful for tests that assert a workload fits a memory budget.
    """

    def __init__(self, name: str = "sim:0", memory_limit_bytes: int | None = None) -> None:
        self.name = name
        self.tracker = MemoryTracker()
        self.alloc = DeviceAllocator(self.tracker)
        self.metrics = MetricRegistry()
        self.launcher = KernelLauncher(metrics=self.metrics)
        self.profiler = Profiler()
        self.memory_limit_bytes = memory_limit_bytes

    def check_oom(self) -> None:
        """Raise :class:`DeviceOutOfMemoryError` if over the configured cap."""
        if self.memory_limit_bytes is not None and self.tracker.current_bytes > self.memory_limit_bytes:
            raise DeviceOutOfMemoryError(
                f"{self.name}: resident {self.tracker.current_bytes} bytes exceeds "
                f"limit {self.memory_limit_bytes} bytes"
            )

    def synchronize(self) -> None:
        """No-op on the simulated device; kept for API parity with CUDA."""

    def reset(self) -> None:
        """Clear profiler, kernel cache, and live metrics; memory accounting
        is preserved (live arrays are still live).  The metric registry is
        zeroed *in place* so child references cached by hot paths survive."""
        self.profiler.reset()
        self.launcher.clear()
        self.metrics.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Device({self.name!r}, resident={self.tracker.current_bytes}B, "
            f"peak={self.tracker.peak_bytes}B, kernels={len(self.launcher)})"
        )


class DeviceOutOfMemoryError(MemoryError):
    """Raised when a device with a memory cap exceeds it."""


_DEFAULT = Device()
_STACK: ContextStack[Device] = ContextStack(_DEFAULT)


def default_device() -> Device:
    """The process-wide default device."""
    return _STACK.default


def current_device() -> Device:
    """The innermost active device (default unless inside :func:`use_device`).

    Per-thread, like every :class:`~repro.util.ctxstack.ContextStack`: a
    worker thread sees the process default unless a device is installed on
    that thread (the prefetch scheduler does exactly that with the device it
    captured from the thread that started it).
    """
    return _STACK.current()


@contextlib.contextmanager
def use_device(device: Device) -> Iterator[Device]:
    """Run a block with ``device`` as the active device.

    Benchmarks create a fresh device per measured configuration so peak
    memory and phase timings are isolated between runs.
    """
    with _STACK.use(device):
        yield device
