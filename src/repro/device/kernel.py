"""Kernel objects and the launcher.

Seastar's codegen emits CUDA source that is NVRTC-compiled and cached; the
executor then launches those kernels.  Our codegen (``repro.compiler.codegen``)
emits Python source targeting vectorized NumPy; :class:`CompiledKernel` holds
the source plus the compiled callable, and :class:`KernelLauncher` plays the
role of the CUDA launch layer: it resolves kernels from a cache keyed by the
IR signature and records launch counts/timings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.tracer import current_tracer
from repro.resilience.faults import current_injector

__all__ = ["CompiledKernel", "KernelLauncher"]


@dataclass
class CompiledKernel:
    """A generated kernel: inspectable source + executable entry point.

    Attributes
    ----------
    name:
        Entry-point symbol in the generated module.
    source:
        The full generated source (kept for debugging / tests, exactly like
        Seastar keeps generated ``.cu`` files).
    fn:
        The executable produced by compiling ``source``.
    arg_names:
        Ordered argument names the executor must supply.
    """

    name: str
    source: str
    fn: Callable[..., Any]
    arg_names: tuple[str, ...]
    meta: dict[str, Any] = field(default_factory=dict)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.fn(*args, **kwargs)


def compile_kernel_source(source: str, entry: str, globals_extra: dict[str, Any] | None = None) -> Callable[..., Any]:
    """Compile generated kernel source and return its entry-point callable.

    This is the stand-in for NVRTC: the source is real generated code and
    errors in codegen surface as compile errors here, not silently.
    """
    namespace: dict[str, Any] = {}
    if globals_extra:
        namespace.update(globals_extra)
    code = compile(source, f"<generated kernel {entry}>", "exec")
    exec(code, namespace)  # noqa: S102 - executing our own generated code
    fn = namespace.get(entry)
    if fn is None:
        raise RuntimeError(f"generated source does not define entry point {entry!r}")
    return fn


class KernelLauncher:
    """Caches compiled kernels and launches them with timing.

    Keyed by an arbitrary hashable signature (the compiler uses the IR hash),
    so re-tracing the same vertex-centric function reuses the compiled
    kernel — matching Seastar's kernel cache.

    :meth:`compile` additionally deduplicates at the *source* level: two
    compilation requests with byte-identical generated source (and the same
    entry point) share one :class:`CompiledKernel`, so e.g. plans that differ
    only in a specialization attribute never pay for ``compile()``/``exec``
    twice.  ``compile_count`` counts actual compilations and
    ``source_dedup_hits`` counts requests served from the source cache.
    """

    def __init__(self, metrics: Any | None = None) -> None:
        self._cache: dict[Any, CompiledKernel] = {}
        self._by_source: dict[tuple[str, str], CompiledKernel] = {}
        self.launch_count = 0
        self.launch_seconds = 0.0
        self.compile_count = 0
        self.source_dedup_hits = 0
        #: launches per execution tier ("python" for the regular generated
        #: kernels, "native" for compiled-engine drivers, per kernel meta) —
        #: lets benchmarks verify which tier actually ran.
        self.launches_by_tier: dict[str, int] = {}
        #: optional :class:`~repro.obs.metrics.MetricRegistry` (the owning
        #: device's) receiving per-launch latency into the
        #: ``repro_kernel_launch_seconds{tier=...}`` histogram; children
        #: are cached per tier so the hot path pays one dict lookup.
        self._metrics = metrics
        self._launch_hist: dict[str, Any] = {}

    def get(self, key: Any) -> CompiledKernel | None:
        """Cached kernel for ``key``, or None."""
        return self._cache.get(key)

    def put(self, key: Any, kernel: CompiledKernel) -> CompiledKernel:
        """Cache ``kernel`` under ``key`` and return it."""
        self._cache[key] = kernel
        return kernel

    def compile(
        self,
        source: str,
        entry: str,
        globals_extra: dict[str, Any] | None = None,
        meta: dict[str, Any] | None = None,
    ) -> CompiledKernel:
        """Compile ``source`` into a launchable kernel, deduplicating by source.

        Identical (entry, source) pairs return the *same* kernel object
        without recompiling — the NVRTC-cache analogue at the source level.
        """
        key = (entry, source)
        kernel = self._by_source.get(key)
        if kernel is not None:
            self.source_dedup_hits += 1
            return kernel
        fn = compile_kernel_source(source, entry, globals_extra=globals_extra)
        kernel = CompiledKernel(
            name=entry, source=source, fn=fn, arg_names=(), meta=dict(meta or {})
        )
        self._by_source[key] = kernel
        self.compile_count += 1
        return kernel

    def launch(self, kernel: CompiledKernel, *args: Any, **kwargs: Any) -> Any:
        """Execute a kernel, recording count and wall time.

        Under an active tracer every launch is a span named by the kernel's
        entry point — which embeds the plan id (``plan_<hash>_fwd`` etc.),
        so traces attribute kernel time to specific compiled plans.

        An armed fault injector (``use_fault_plan``) can fail the launch
        here with :class:`~repro.resilience.faults.InjectedKernelFault`; the
        aggregation layer's degradation ladder retries once and then falls
        back to the interpreter engine (see ``repro.core.module``).
        """
        injector = current_injector()
        if injector.enabled:
            injector.fire("kernel")
        tier = kernel.meta.get("tier", "python")
        start = time.perf_counter()
        try:
            with current_tracer().span(kernel.name, "gnn", tier=tier):
                return kernel(*args, **kwargs)
        finally:
            elapsed = time.perf_counter() - start
            self.launch_seconds += elapsed
            self.launch_count += 1
            self.launches_by_tier[tier] = self.launches_by_tier.get(tier, 0) + 1
            metrics = self._metrics
            if metrics is not None and metrics.enabled:
                hist = self._launch_hist.get(tier)
                if hist is None:
                    hist = metrics.histogram(
                        "repro_kernel_launch_seconds",
                        "Per-launch kernel wall time by execution tier.",
                    ).labels(tier=tier)
                    self._launch_hist[tier] = hist
                hist.observe(elapsed)

    def clear(self) -> None:
        """Drop the caches and reset launch/compile counters."""
        self._cache.clear()
        self._by_source.clear()
        self.launch_count = 0
        self.launch_seconds = 0.0
        self.compile_count = 0
        self.source_dedup_hits = 0
        self.launches_by_tier.clear()

    def __len__(self) -> int:
        return len(self._cache)
