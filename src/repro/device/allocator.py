"""Byte-accurate device memory tracking.

The paper reports "Memory Consumed" for each framework (Figures 6 and 8,
Table III).  On real hardware that number comes from the CUDA allocator; here
every framework-visible array is registered with a :class:`MemoryTracker`,
which maintains the current and peak resident byte counts.

Arrays are tracked with :func:`weakref.finalize` so deallocation is observed
when the array is garbage collected — the same "free when the last reference
drops" semantics as a caching GPU allocator.  Scopes (:meth:`MemoryTracker.scope`)
allow a benchmark to measure the peak over a region, mirroring
``torch.cuda.reset_peak_memory_stats`` + ``max_memory_allocated``.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.sanitizer import new_lock
from repro.resilience.faults import current_injector

__all__ = ["AllocationRecord", "MemoryTracker", "DeviceAllocator"]


@dataclass
class AllocationRecord:
    """A single live allocation as seen by the tracker."""

    nbytes: int
    tag: str
    alloc_id: int


class MemoryTracker:
    """Tracks live framework allocations and their high-water mark.

    The tracker deliberately counts *logical* framework allocations (tensors,
    CSR arrays, PMA storage, per-edge message buffers) rather than process
    RSS: the paper's comparison is about what each framework's design forces
    it to keep resident on the device, and RSS would be dominated by the
    Python interpreter.
    """

    def __init__(self) -> None:
        self._lock = new_lock("MemoryTracker._lock")
        self._current = 0
        self._peak = 0
        self._total_allocated = 0
        self._next_id = 0
        self._live: dict[int, AllocationRecord] = {}
        self._tracked_bases: set[int] = set()
        # Per-tag breakdown, maintained incrementally so traces can
        # attribute residency to state-stack vs CSR vs PMA storage without
        # walking every live record.
        self._current_by_tag: dict[str, int] = {}
        self._peak_by_tag: dict[str, int] = {}

    def _account_add(self, nbytes: int, tag: str) -> None:
        """Lock held: add ``nbytes`` to the global and per-tag accounting."""
        self._current += nbytes  # lockcheck: ok(caller holds _lock, see docstring)
        self._total_allocated += nbytes  # lockcheck: ok(caller holds _lock, see docstring)
        if self._current > self._peak:
            self._peak = self._current  # lockcheck: ok(caller holds _lock, see docstring)
        tag_bytes = self._current_by_tag.get(tag, 0) + nbytes
        self._current_by_tag[tag] = tag_bytes  # lockcheck: ok(caller holds _lock, see docstring)
        if tag_bytes > self._peak_by_tag.get(tag, 0):
            self._peak_by_tag[tag] = tag_bytes  # lockcheck: ok(caller holds _lock, see docstring)

    # ------------------------------------------------------------------
    # Core accounting
    # ------------------------------------------------------------------
    def track(self, array: np.ndarray, tag: str = "") -> np.ndarray:
        """Register ``array`` as device-resident until it is collected.

        Returns the array unchanged so calls can be chained inline.  Views
        are not double counted: only arrays that own their data are tracked.
        """
        base = array if array.base is None else array.base
        if not isinstance(base, np.ndarray):
            # A view over non-ndarray memory (e.g. a memoryview); count the
            # array itself as the owning allocation.
            base = array
        nbytes = int(base.nbytes)
        base_id = id(base)
        with self._lock:
            if base_id in self._tracked_bases:
                return array  # owning buffer already accounted for
            self._tracked_bases.add(base_id)
            alloc_id = self._next_id
            self._next_id += 1
            self._live[alloc_id] = AllocationRecord(nbytes, tag, alloc_id)
            self._account_add(nbytes, tag)
        weakref.finalize(base, self._release, alloc_id, base_id)
        return array

    def _release(self, alloc_id: int, base_id: int | None = None) -> None:
        with self._lock:
            rec = self._live.pop(alloc_id, None)
            if rec is not None:
                self._current -= rec.nbytes
                remaining = self._current_by_tag.get(rec.tag, 0) - rec.nbytes
                if remaining > 0:
                    self._current_by_tag[rec.tag] = remaining
                else:
                    self._current_by_tag.pop(rec.tag, None)
            if base_id is not None:
                self._tracked_bases.discard(base_id)

    def manual_add(self, nbytes: int, tag: str = "") -> int:
        """Account for memory not backed by a single ndarray (e.g. pooled
        buffers).  Returns a handle for :meth:`manual_release`."""
        with self._lock:
            alloc_id = self._next_id
            self._next_id += 1
            self._live[alloc_id] = AllocationRecord(int(nbytes), tag, alloc_id)
            self._account_add(int(nbytes), tag)
            return alloc_id

    def manual_release(self, handle: int) -> None:
        """Release a handle from :meth:`manual_add` (idempotent)."""
        self._release(handle)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current_bytes(self) -> int:
        """Bytes currently resident."""
        return self._current

    @property
    def peak_bytes(self) -> int:
        """High-water mark since construction or :meth:`reset_peak`."""
        return self._peak

    @property
    def total_allocated_bytes(self) -> int:
        """Cumulative bytes ever tracked (never decreases)."""
        return self._total_allocated

    @property
    def live_allocation_count(self) -> int:
        """Number of live tracked allocations."""
        return len(self._live)

    def live_by_tag(self) -> dict[str, int]:
        """Current bytes grouped by allocation tag (diagnostics)."""
        return self.bytes_by_tag()

    def bytes_by_tag(self) -> dict[str, int]:
        """Current resident bytes per allocation tag (O(#tags))."""
        with self._lock:
            return dict(self._current_by_tag)

    def peak_bytes_by_tag(self) -> dict[str, int]:
        """Per-tag high-water marks since construction or :meth:`reset_peak`.

        Each tag's peak is its own maximum over time — the per-tag peaks
        generally do not sum to :attr:`peak_bytes`, which is the maximum of
        the *total*.
        """
        with self._lock:
            return dict(self._peak_by_tag)

    def reset_peak(self) -> None:
        """Reset the global and per-tag high-water marks to current residency."""
        with self._lock:
            self._peak = self._current
            self._peak_by_tag = {
                tag: nbytes for tag, nbytes in self._current_by_tag.items()
            }

    def scope(self) -> "MemoryScope":
        """Context manager measuring peak bytes over a region."""
        return MemoryScope(self)


class MemoryScope:
    """Measures the peak device memory used inside a ``with`` block.

    ``peak_bytes`` is the absolute high-water mark observed during the block;
    ``peak_delta_bytes`` subtracts the residency at entry, i.e. the extra
    memory the region required.
    """

    def __init__(self, tracker: MemoryTracker) -> None:
        self._tracker = tracker
        self.entry_bytes = 0
        self.peak_bytes = 0

    def __enter__(self) -> "MemoryScope":
        self.entry_bytes = self._tracker.current_bytes
        self._tracker.reset_peak()
        return self

    def __exit__(self, *exc: object) -> None:
        self.peak_bytes = self._tracker.peak_bytes

    @property
    def peak_delta_bytes(self) -> int:
        """Extra bytes the region required beyond its entry residency."""
        return max(0, self.peak_bytes - self.entry_bytes)


@dataclass
class DeviceAllocator:
    """Thin allocation facade over a :class:`MemoryTracker`.

    Framework code calls :meth:`empty`/:meth:`zeros`/:meth:`upload` instead
    of raw ``np.*`` constructors so every device-resident array is tracked —
    which also makes every allocation a potential firing point for a planned
    ``"oom"`` fault (:class:`~repro.resilience.faults.InjectedOOM`) when a
    fault plan is armed via ``use_fault_plan``.
    """

    tracker: MemoryTracker = field(default_factory=MemoryTracker)

    @staticmethod
    def _maybe_oom() -> None:
        injector = current_injector()
        if injector.enabled:
            injector.fire("oom")

    def empty(self, shape: tuple[int, ...] | int, dtype: np.dtype | type = np.float32, tag: str = "") -> np.ndarray:
        """Uninitialized tracked array."""
        self._maybe_oom()
        return self.tracker.track(np.empty(shape, dtype=dtype), tag)

    def zeros(self, shape: tuple[int, ...] | int, dtype: np.dtype | type = np.float32, tag: str = "") -> np.ndarray:
        """Zero-filled tracked array."""
        self._maybe_oom()
        return self.tracker.track(np.zeros(shape, dtype=dtype), tag)

    def full(self, shape: tuple[int, ...] | int, fill: float, dtype: np.dtype | type = np.float32, tag: str = "") -> np.ndarray:
        """Fill-value tracked array."""
        self._maybe_oom()
        return self.tracker.track(np.full(shape, fill, dtype=dtype), tag)

    def upload(self, host_array: np.ndarray, tag: str = "") -> np.ndarray:
        """Copy a host array to the "device" (always an independent copy)."""
        self._maybe_oom()
        return self.tracker.track(np.array(host_array, order="C", copy=True), tag)

    def adopt(self, array: np.ndarray, tag: str = "") -> np.ndarray:
        """Track an array produced by a NumPy op without copying it."""
        self._maybe_oom()
        return self.tracker.track(array, tag)
