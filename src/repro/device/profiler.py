"""Phase timing for the Figure 9 experiment.

Figure 9 of the paper splits total DTDG processing time into *GNN processing*
and *graph update* time.  :class:`Profiler` accumulates wall-clock time per
named phase; the executor wraps kernel launches in the ``"gnn"`` phase, the
GPMA/Naive snapshot machinery wraps updates in the ``"graph_update"`` phase,
and the plan cache wraps trace→codegen pipeline runs in the ``"compile"``
phase — so the compile-once/run-every-timestamp amortization is directly
measurable (a warm cache records zero compile time).

Beyond timers, the profiler also accumulates named event **counters**.  The
snapshot-reuse machinery reports through them: ``csr_cache_hits`` /
``csr_cache_misses`` (snapshot CSR builds served from / missing the
``(timestamp, version)`` reuse cache), ``noop_updates_skipped`` (empty
update batches that left the snapshot version untouched), and
``ctx_cache_hits`` / ``ctx_cache_misses`` (executor-level
:class:`~repro.compiler.runtime.GraphContext` reuse).  Counters are
device-scoped like the timers, so bench runners can report them per
measured cell.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PHASES", "COUNTERS", "PhaseTimer", "Profiler"]

#: The phases the framework itself reports: one-time compilation (plan
#: cache misses), GNN kernel execution, dynamic-graph updates, and dataset
#: preprocessing.  User code may time arbitrary extra phases.
PHASES = ("compile", "gnn", "graph_update", "preprocess")

#: The event counters the framework itself reports: snapshot/context reuse,
#: plus the resilience ladder (injected faults, kernel retries, interpreter
#: fallbacks, cache-corruption rebuilds, aborted sequences).  User code may
#: count arbitrary extra events.
COUNTERS = (
    "csr_cache_hits",
    "csr_cache_misses",
    "noop_updates_skipped",
    "ctx_cache_hits",
    "ctx_cache_misses",
    "faults_injected",
    "kernel_retries",
    "engine_fallbacks",
    "cache_fault_rebuilds",
    "sequence_aborts",
)


class PhaseTimer:
    """Accumulated wall-clock time and invocation count for one phase."""

    __slots__ = ("name", "total_seconds", "calls")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_seconds = 0.0
        self.calls = 0

    def add(self, seconds: float) -> None:
        """Accumulate one timed interval."""
        self.total_seconds += seconds
        self.calls += 1


class Profiler:
    """Per-phase wall-clock accumulator.

    Nested phases are attributed to the innermost phase only, so "graph
    update" time inside a training step is not double counted as "gnn" time.
    """

    def __init__(self) -> None:
        self._phases: dict[str, PhaseTimer] = {}
        self._stack: list[tuple[str, float]] = []
        self._counters: dict[str, int] = {}
        self.enabled = True

    def _timer(self, name: str) -> PhaseTimer:
        timer = self._phases.get(name)
        if timer is None:
            timer = PhaseTimer(name)
            self._phases[name] = timer
        return timer

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block under ``name`` (nested time attributed innermost)."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        # Pause the enclosing phase so nested time is attributed once.
        if self._stack:
            outer_name, outer_start = self._stack[-1]
            self._timer(outer_name).total_seconds += start - outer_start
        self._stack.append((name, start))
        try:
            yield
        finally:
            end = time.perf_counter()
            # reset() inside an open phase clears the stack; the interval
            # being unwound belongs to the discarded pre-reset accounting,
            # so it is dropped rather than crashing on an empty pop.
            if self._stack:
                inner_name, inner_start = self._stack.pop()
                timer = self._timer(inner_name)
                timer.total_seconds += end - inner_start
                timer.calls += 1
                if self._stack:
                    outer_name, _ = self._stack[-1]
                    self._stack[-1] = (outer_name, end)

    def seconds(self, name: str) -> float:
        """Accumulated seconds for a phase (0 if never entered)."""
        timer = self._phases.get(name)
        return timer.total_seconds if timer else 0.0

    def calls(self, name: str) -> int:
        """Number of completed intervals for a phase."""
        timer = self._phases.get(name)
        return timer.calls if timer else 0

    def phase_seconds(self) -> dict[str, float]:
        """Accumulated seconds for every framework phase (see :data:`PHASES`)."""
        return {name: self.seconds(name) for name in PHASES}

    # -- event counters --------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Accumulate ``n`` occurrences of the named event."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        """Accumulated count for an event (0 if never counted)."""
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        """Accumulated counts for every framework counter (see :data:`COUNTERS`)."""
        return {name: self.counter(name) for name in COUNTERS}

    def counters_snapshot(self) -> dict[str, int]:
        """Copy of *every* counter seen so far (framework and user events).

        The tracer snapshots this at span boundaries to report counter
        deltas per span; unlike :meth:`counters` it includes ad-hoc events
        and omits never-counted framework names.
        """
        return dict(self._counters)

    def breakdown(self) -> dict[str, float]:
        """Fraction of total profiled time per phase (sums to 1.0)."""
        total = sum(t.total_seconds for t in self._phases.values())
        if total <= 0:
            return {}
        return {name: t.total_seconds / total for name, t in self._phases.items()}

    def reset(self) -> None:
        """Clear all phases and counters."""
        self._phases.clear()
        self._stack.clear()
        self._counters.clear()
