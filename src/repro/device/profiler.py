"""Phase timing for the Figure 9 experiment.

Figure 9 of the paper splits total DTDG processing time into *GNN processing*
and *graph update* time.  :class:`Profiler` accumulates wall-clock time per
named phase; the executor wraps kernel launches in the ``"gnn"`` phase, the
GPMA/Naive snapshot machinery wraps updates in the ``"graph_update"`` phase,
and the plan cache wraps trace→codegen pipeline runs in the ``"compile"``
phase — so the compile-once/run-every-timestamp amortization is directly
measurable (a warm cache records zero compile time).

Beyond timers, the profiler also accumulates named event **counters**.  The
snapshot-reuse machinery reports through them: ``csr_cache_hits`` /
``csr_cache_misses`` (snapshot CSR builds served from / missing the
``(timestamp, version)`` reuse cache), ``noop_updates_skipped`` (empty
update batches that left the snapshot version untouched), and
``ctx_cache_hits`` / ``ctx_cache_misses`` (executor-level
:class:`~repro.compiler.runtime.GraphContext` reuse).  Counters are
device-scoped like the timers, so bench runners can report them per
measured cell.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.analysis.sanitizer import new_lock

__all__ = ["PHASES", "COUNTERS", "PhaseTimer", "Profiler"]

#: The phases the framework itself reports: one-time compilation (plan
#: cache misses), GNN kernel execution, dynamic-graph updates, dataset
#: preprocessing, snapshot builds done off the critical path by the
#: prefetch worker, and main-thread stalls waiting on an in-flight
#: prefetch.  User code may time arbitrary extra phases.
PHASES = ("compile", "gnn", "graph_update", "preprocess", "prefetch", "prefetch_wait")

#: The event counters the framework itself reports: snapshot/context reuse,
#: pipelined-prefetch effectiveness, the compiled tier's cross-timestamp
#: fusion cache (packed native-graph reuse) and plan-build hook failures,
#: plus the resilience ladder (injected faults, kernel retries, engine
#: fallbacks, cache-corruption rebuilds, aborted sequences).  User code may
#: count arbitrary extra events.
COUNTERS = (
    "csr_cache_hits",
    "csr_cache_misses",
    "noop_updates_skipped",
    "ctx_cache_hits",
    "ctx_cache_misses",
    "prefetch_hits",
    "prefetch_misses",
    "compiled_fusion_hits",
    "compiled_fusion_misses",
    "plan_hook_errors",
    "faults_injected",
    "kernel_retries",
    "engine_fallbacks",
    "cache_fault_rebuilds",
    "sequence_aborts",
)


class PhaseTimer:
    """Accumulated wall-clock time and invocation count for one phase."""

    __slots__ = ("name", "total_seconds", "calls")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_seconds = 0.0
        self.calls = 0

    def add(self, seconds: float) -> None:
        """Accumulate one timed interval."""
        self.total_seconds += seconds
        self.calls += 1


class Profiler:
    """Per-phase wall-clock accumulator.

    Nested phases are attributed to the innermost phase only, so "graph
    update" time inside a training step is not double counted as "gnn" time.

    Thread-safe: the nesting stack is per-thread (a phase opened on the
    prefetch worker pauses only that thread's enclosing phase), while the
    accumulated timers and event counters are shared across threads under a
    lock — so concurrent phases on two threads both accumulate wall time,
    which is exactly what overlap should look like in the totals.
    """

    def __init__(self) -> None:
        self._phases: dict[str, PhaseTimer] = {}
        self._tls = threading.local()
        self._lock = new_lock("Profiler._lock")
        self._counters: dict[str, int] = {}
        self.enabled = True

    def _stack(self) -> list[tuple[str, float]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _timer(self, name: str) -> PhaseTimer:
        timer = self._phases.get(name)
        if timer is None:
            timer = self._phases.setdefault(name, PhaseTimer(name))
        return timer

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block under ``name`` (nested time attributed innermost)."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        stack = self._stack()
        # Pause the enclosing phase so nested time is attributed once.
        if stack:
            outer_name, outer_start = stack[-1]
            with self._lock:
                self._timer(outer_name).total_seconds += start - outer_start
        stack.append((name, start))
        try:
            yield
        finally:
            end = time.perf_counter()
            stack = self._stack()
            # reset() inside an open phase clears the stack; the interval
            # being unwound belongs to the discarded pre-reset accounting,
            # so it is dropped rather than crashing on an empty pop.
            if stack:
                inner_name, inner_start = stack.pop()
                with self._lock:
                    timer = self._timer(inner_name)
                    timer.total_seconds += end - inner_start
                    timer.calls += 1
                if stack:
                    outer_name, _ = stack[-1]
                    stack[-1] = (outer_name, end)

    def in_phase(self, name: str) -> bool:
        """Whether ``name`` is open anywhere on this thread's phase stack."""
        return any(n == name for n, _ in self._stack())

    def seconds(self, name: str) -> float:
        """Accumulated seconds for a phase (0 if never entered)."""
        timer = self._phases.get(name)
        return timer.total_seconds if timer else 0.0

    def calls(self, name: str) -> int:
        """Number of completed intervals for a phase."""
        timer = self._phases.get(name)
        return timer.calls if timer else 0

    def phase_seconds(self) -> dict[str, float]:
        """Accumulated seconds for every framework phase (see :data:`PHASES`)."""
        return {name: self.seconds(name) for name in PHASES}

    # -- event counters --------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Accumulate ``n`` occurrences of the named event (thread-safe)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        """Accumulated count for an event (0 if never counted)."""
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        """Accumulated counts for every framework counter (see :data:`COUNTERS`)."""
        return {name: self.counter(name) for name in COUNTERS}

    def counters_snapshot(self) -> dict[str, int]:
        """Copy of *every* counter seen so far (framework and user events).

        The tracer snapshots this at span boundaries to report counter
        deltas per span; unlike :meth:`counters` it includes ad-hoc events
        and omits never-counted framework names.
        """
        with self._lock:
            return dict(self._counters)

    def breakdown(self) -> dict[str, float]:
        """Fraction of total profiled time per phase (sums to 1.0)."""
        total = sum(t.total_seconds for t in self._phases.values())
        if total <= 0:
            return {}
        return {name: t.total_seconds / total for name, t in self._phases.items()}

    def reset(self) -> None:
        """Clear all phases and counters (the calling thread's open-phase
        nesting is discarded too; other threads' stacks unwind harmlessly
        against the cleared timers)."""
        with self._lock:
            self._phases.clear()
            self._counters.clear()
        self._stack().clear()
