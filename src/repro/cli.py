"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``info``
    Library version, registered backends, available datasets and models.
``inspect --layer gcn``
    Compile a layer's vertex program and dump every compilation stage
    (vertex IR, tensor IR, generated kernels, State-Stack analysis).
``train --dataset HC --model tgcn --epochs 20``
    Train a model on a Table II dataset with Algorithm 1 and report loss,
    timing, and memory.  ``--system pygt`` runs the baseline instead.
    ``--checkpoint runs/ck.npz`` checkpoints atomically at every sequence
    boundary; adding ``--resume`` restores from the checkpoint and
    continues to bitwise-identical final losses.  ``--engine compiled``
    runs every aggregation on the machine-code tier (``docs/COMPILER.md``
    §10); engines never change the numbers, only the speed.
``chaos --plan smoke``
    Train a small DTDG workload under a named (or JSON) fault plan with
    kill/resume through boundary checkpoints, and verify the resilience
    contract: bitwise-identical losses, drained stacks, and the kernel
    retry → interpreter-fallback ladder.  Non-zero exit on any violation.
``bench --experiment fig5``
    Run one of the paper's table/figure experiments and print it.
``trace --out traces/run.json``
    Short traced TGCN training run on a generated DTDG; writes the Chrome
    trace, JSONL event log, run manifest, and Prometheus metrics dump.
``lint``
    Compile every nn layer program (and, with ``--examples``, the vertex
    programs registered in ``examples/``) with build-time verification
    off, then run the full verifier suite on each plan and print the
    diagnostics.  ``--codes`` prints the STG0xx code table.  Exit status
    is non-zero iff any program has an error-severity diagnostic.
``serve --clients 16 --updates 8``
    Online serving: start an :class:`~repro.serve.InferenceEngine` over a
    live GPMA graph, drive closed-loop query clients concurrently with
    update-batch ingest, and report p50/p99 latency, throughput, and the
    reuse counters.  ``--verify`` bitwise-checks every response against
    the serial query-after-every-update reference; ``--telemetry-port``
    serves live ``/metrics`` while the traffic runs (``docs/SERVING.md``).

``train`` and ``bench`` also accept ``--trace out.json``: the run executes
under a :class:`~repro.obs.tracer.Tracer` and the same four artifacts are
written (``out.json``, ``out.events.jsonl``, ``out.manifest.json``,
``out.metrics.prom``).

``train --telemetry-port PORT`` additionally serves live ``/metrics``
(Prometheus), ``/healthz``, and ``/progress`` on ``127.0.0.1:PORT`` while
the run executes; ``train``/``chaos`` ``--flight-recorder out.jsonl`` arm
the bounded flight recorder (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time

__all__ = ["main"]

_MODELS = ("tgcn", "gconv_gru", "gconv_lstm", "dcrnn", "a3tgcn")
_LAYERS = ("gcn", "gat", "sage", "cheb", "dconv")
_EXPERIMENTS = ("table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9", "table3")
_LINT_PROGRAMS = (
    "gcn", "gat", "sage", "cheb", "dconv", "rgcn",
    "tgcn", "gconv_gru", "gconv_lstm", "a3tgcn", "evolve_gcn", "dcrnn",
)


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.core.backend import available_backends
    from repro.dataset import DYNAMIC_DATASETS, STATIC_DATASETS

    print(f"repro {repro.__version__} — STGraph reproduction (IPDPS 2024)")
    print(f"backends: {', '.join(available_backends())}")
    print(f"static datasets:  {', '.join(STATIC_DATASETS)}")
    print(f"dynamic datasets: {', '.join(DYNAMIC_DATASETS)}")
    print(f"models: {', '.join(_MODELS)}")
    print(f"layers: {', '.join(_LAYERS)}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.nn import ChebConv, DConv, GATConv, GCNConv, SAGEConv

    factories = {
        "gcn": lambda: GCNConv(args.features, args.features),
        "gat": lambda: GATConv(args.features, args.features),
        "sage": lambda: SAGEConv(args.features, args.features),
        "cheb": lambda: ChebConv(args.features, args.features, k=3),
        "dconv": lambda: DConv(args.features, args.features, k=2),
    }
    layer = factories[args.layer]()
    if args.dot:
        from repro.compiler.viz import tensor_ir_to_dot, vertex_ir_to_dot

        print(vertex_ir_to_dot(layer.program.traced.root, name=f"{args.layer}_vertex_ir"))
        print(tensor_ir_to_dot(layer.program.fwd_prog))
        print(tensor_ir_to_dot(layer.program.bwd_prog))
        return 0
    print(layer.program.describe())
    print("\n=== generated forward kernel ===")
    print(layer.generated_forward_source)
    print("=== generated backward kernel ===")
    print(layer.generated_backward_source)
    return 0


def _build_model(name: str, in_features: int, hidden: int):
    from repro.nn import DCRNN, GConvGRU, GConvLSTM, TGCN
    from repro.tensor import functional as F
    from repro.tensor.nn import Linear, Module

    class Regressor(Module):
        def __init__(self, cell, lstm: bool = False) -> None:
            super().__init__()
            self.cell = cell
            self.head = Linear(hidden, 1)
            self.lstm = lstm

        def step(self, executor, x, state):
            if self.lstm:
                h, c = self.cell(executor, x, *(state if state else (None, None)))
                return self.head(h), (h, c)
            h = self.cell(executor, x, state)
            return self.head(h), h

    if name == "tgcn":
        return Regressor(TGCN(in_features, hidden))
    if name == "gconv_gru":
        return Regressor(GConvGRU(in_features, hidden))
    if name == "gconv_lstm":
        return Regressor(GConvLSTM(in_features, hidden), lstm=True)
    if name == "dcrnn":
        return Regressor(DCRNN(in_features, hidden, k=2))
    if name == "a3tgcn":
        raise SystemExit("a3tgcn needs windowed inputs; see examples/ for usage")
    raise SystemExit(f"unknown model {name!r}")


def _trace_base(trace_path: str) -> str:
    return trace_path[:-5] if trace_path.endswith(".json") else trace_path


def _resolve_engine(name: str | None) -> str | None:
    """Validate an ``--engine`` value early: a typo (``--engine copiled``)
    exits non-zero with the registry's available-engines message instead of
    surfacing a traceback mid-run."""
    if name is None:
        return None
    from repro.core.engine import get_engine

    try:
        get_engine(name)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    return name


def _write_trace_artifacts(
    tracer,
    device,
    trace_path: str,
    graph=None,
    system: str = "",
    dataset: str = "",
    command: str = "",
    results: dict | None = None,
    resumed_from: str | None = None,
) -> None:
    """Write the four observability artifacts next to ``trace_path``."""
    from repro.obs import build_run_manifest, write_chrome_trace, write_jsonl, write_prometheus

    base = _trace_base(trace_path)
    chrome = write_chrome_trace(tracer, base + ".json")
    jsonl = write_jsonl(tracer.events, base + ".events.jsonl")
    manifest = build_run_manifest(
        device, tracer=tracer, graph=graph,
        run_name=tracer.name, command=command,
        system=system, dataset=dataset, results=results,
        resumed_from=resumed_from,
    )
    manifest_path = manifest.write(base + ".manifest.json")
    prom = write_prometheus(device, base + ".metrics.prom", tracer)
    print(f"chrome trace:  {chrome}")
    print(f"event log:     {jsonl}")
    print(f"run manifest:  {manifest_path}")
    print(f"metrics dump:  {prom}")


def _start_telemetry(trainer) -> None:
    """Start the trainer's scrape endpoint (if configured) and print its URL."""
    port = trainer.start_telemetry()
    if port is not None:
        print(f"telemetry: http://127.0.0.1:{port} (/metrics /healthz /progress)")


def _cmd_train(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.dataset import DYNAMIC_DATASETS, STATIC_DATASETS
    from repro.device import Device, use_device
    from repro.obs.tracer import Tracer, use_tracer
    from repro.tensor import init
    from repro.train import (
        BaselineTrainer,
        PyGTNodeRegressor,
        STGraphLinkPredictor,
        STGraphTrainer,
        make_link_prediction_samples,
        temporal_train_test_split,
    )

    trace_path = getattr(args, "trace", None)
    checkpoint_path = getattr(args, "checkpoint", None)
    resume = bool(getattr(args, "resume", False))
    pipeline = int(getattr(args, "pipeline", 0) or 0)
    engine = _resolve_engine(getattr(args, "engine", None))
    telemetry_port = getattr(args, "telemetry_port", None)
    flight_path = getattr(args, "flight_recorder", None)
    if resume and checkpoint_path is None:
        raise SystemExit("--resume requires --checkpoint PATH")
    if checkpoint_path is not None and args.system == "pygt":
        raise SystemExit("--checkpoint/--resume are STGraph-only; the pygt baseline has no resume path")
    if pipeline and args.system == "pygt":
        raise SystemExit("--pipeline is STGraph-only; the pygt baseline has no snapshot prefetch")
    if engine and args.system == "pygt":
        raise SystemExit("--engine is STGraph-only; the pygt baseline has no execution engines")
    if telemetry_port is not None and args.system == "pygt":
        raise SystemExit("--telemetry-port is STGraph-only; the pygt baseline has no telemetry hooks")
    if flight_path is not None and args.system == "pygt":
        raise SystemExit("--flight-recorder is STGraph-only; the pygt baseline has no failure hooks")
    tracer = Tracer(name=f"train:{args.dataset}:{args.model}") if trace_path else None
    device = Device(name="cli")
    recorder = None
    flight_ctx = contextlib.nullcontext()
    if flight_path is not None:
        from repro.obs.flight import FlightRecorder, use_flight_recorder

        recorder = FlightRecorder(path=flight_path)
        flight_ctx = use_flight_recorder(recorder)
    with use_device(device), use_tracer(tracer), flight_ctx:
        init.set_seed(args.seed)
        if args.dataset in STATIC_DATASETS:
            ds = STATIC_DATASETS[args.dataset](
                lags=args.features, scale=args.scale, num_timestamps=args.timestamps
            )
            print(f"dataset: {ds.summary_row()}")
            tr_x, te_x, tr_y, te_y = temporal_train_test_split(ds.features, ds.targets, 0.8)
            if args.system == "pygt":
                model = PyGTNodeRegressor(args.features, args.hidden)
                trainer = BaselineTrainer(
                    model, ds.to_pygt_signal().edge_index,
                    lr=args.lr, sequence_length=args.sequence_length,
                )
            else:
                model = _build_model(args.model, args.features, args.hidden)
                trainer = STGraphTrainer(
                    model, ds.build_graph(), lr=args.lr,
                    sequence_length=args.sequence_length,
                    pipeline=pipeline, engine=engine,
                    telemetry_port=telemetry_port,
                )
                _start_telemetry(trainer)
            if checkpoint_path is not None:
                losses = trainer.train(
                    tr_x, tr_y, epochs=args.epochs, warmup=min(2, args.epochs - 1),
                    checkpoint_path=checkpoint_path, resume=resume,
                )
            else:
                losses = trainer.train(tr_x, tr_y, epochs=args.epochs, warmup=min(2, args.epochs - 1))
        elif args.dataset in DYNAMIC_DATASETS:
            if args.system == "pygt" or args.model != "tgcn":
                raise SystemExit("dynamic CLI training supports --system stgraph --model tgcn")
            ds = DYNAMIC_DATASETS[args.dataset](
                scale=args.scale, feature_size=args.features, max_snapshots=args.timestamps
            )
            print(f"dataset: {ds.summary_row()}")
            samples = make_link_prediction_samples(ds.dtdg, 128, seed=args.seed)
            model = STGraphLinkPredictor(args.features, args.hidden)
            trainer = STGraphTrainer(
                model, ds.build_gpma(), lr=args.lr,
                sequence_length=args.sequence_length,
                task="link_prediction", link_samples=samples,
                pipeline=pipeline, engine=engine,
                telemetry_port=telemetry_port,
            )
            _start_telemetry(trainer)
            if checkpoint_path is not None:
                losses = trainer.train(
                    ds.features, epochs=args.epochs, warmup=min(2, args.epochs - 1),
                    checkpoint_path=checkpoint_path, resume=resume,
                )
            else:
                losses = trainer.train(ds.features, epochs=args.epochs, warmup=min(2, args.epochs - 1))
        else:
            raise SystemExit(f"unknown dataset {args.dataset!r}; see `info`")

        resumed_from = getattr(trainer, "resumed_from", None)
        if resumed_from:
            print(f"resumed from: {resumed_from}")
        if recorder is not None:
            # A clean run still leaves the artifact: the final window shows
            # the last N things the run did before finishing.
            recorder.drain("run_end")
            print(
                f"flight recorder: {recorder.total_recorded} events, "
                f"{recorder.drain_count()} drain(s) -> {flight_path}"
            )
        print(f"loss: {losses[0]:.4f} -> {losses[-1]:.4f} over {args.epochs} epochs")
        print(f"per-epoch time: {trainer.mean_epoch_time * 1e3:.1f} ms")
        print(f"peak device memory: {device.tracker.peak_bytes / 1e6:.2f} MB")
        gnn = device.profiler.seconds("gnn")
        upd = device.profiler.seconds("graph_update")
        if gnn + upd > 0:
            print(f"time split: gnn {100 * gnn / (gnn + upd):.1f}% / updates {100 * upd / (gnn + upd):.1f}%")
        if pipeline:
            hits = device.profiler.counter("prefetch_hits")
            misses = device.profiler.counter("prefetch_misses")
            rate = 100 * hits / (hits + misses) if hits + misses else 0.0
            print(
                f"prefetch (staleness {pipeline}): {hits} hits / {misses} misses "
                f"({rate:.1f}%), wait {device.profiler.seconds('prefetch_wait') * 1e3:.1f} ms"
            )
        if tracer is not None:
            _write_trace_artifacts(
                tracer, device, trace_path,
                graph=getattr(trainer, "graph", None),
                system=args.system, dataset=args.dataset,
                command=f"repro train --dataset {args.dataset} --model {args.model} "
                        f"--epochs {args.epochs} --seed {args.seed}",
                results={
                    "first_loss": float(losses[0]),
                    "final_loss": float(losses[-1]),
                    "per_epoch_seconds": trainer.mean_epoch_time,
                },
                resumed_from=resumed_from,
            )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.obs.tracer import Tracer
    from repro.resilience import FaultPlan, NAMED_PLANS, named_plan, run_chaos

    if args.plan in NAMED_PLANS:
        plan = named_plan(args.plan)
    elif pathlib.Path(args.plan).is_file():
        plan = FaultPlan.from_json(args.plan)
    else:
        raise SystemExit(
            f"unknown plan {args.plan!r}: expected one of {sorted(NAMED_PLANS)} "
            f"or a path to a fault-plan JSON file"
        )

    engine = _resolve_engine(getattr(args, "engine", None))
    trace_path = getattr(args, "trace", None)
    tracer = Tracer(name=f"chaos:{plan.name}") if trace_path else None
    report = run_chaos(
        plan,
        dataset=args.dataset,
        scale=args.scale,
        epochs=args.epochs,
        sequence_length=args.sequence_length,
        max_snapshots=args.timestamps,
        seed=args.seed,
        workdir=args.workdir,
        tracer=tracer,
        engine=engine,
        flight_recorder=getattr(args, "flight_recorder", None),
    )
    print(report.render())
    if args.json:
        out = pathlib.Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8")
        print(f"report: {out}")
    if tracer is not None:
        from repro.obs import write_chrome_trace

        base = _trace_base(trace_path)
        chrome = write_chrome_trace(tracer, base + ".json")
        manifest_path = report.manifest.write(base + ".manifest.json")
        print(f"chrome trace:  {chrome}")
        print(f"run manifest:  {manifest_path}")
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    from repro.device import current_device
    from repro.obs.tracer import Tracer, use_tracer

    if getattr(args, "pipeline", None) is not None:
        os.environ["REPRO_BENCH_PIPELINE"] = str(int(args.pipeline))
    engine = _resolve_engine(getattr(args, "engine", None))
    if engine is not None:
        os.environ["REPRO_BENCH_ENGINE"] = engine
    trace_path = getattr(args, "trace", None)
    tracer = Tracer(name=f"bench:{args.experiment}") if trace_path else None
    start = time.perf_counter()
    with use_tracer(tracer):
        _run_bench_experiment(args)
    print(f"\n({time.perf_counter() - start:.1f}s)")
    if tracer is not None:
        _write_trace_artifacts(
            tracer, current_device(), trace_path,
            system="stgraph", dataset=args.experiment,
            command=f"repro bench --experiment {args.experiment}",
        )
    return 0


def _run_bench_experiment(args: argparse.Namespace) -> None:
    from repro.bench import experiments as exp

    if args.experiment == "table1":
        print(exp.table1_capabilities()[1])
    elif args.experiment == "table2":
        print(exp.table2_datasets()[1])
    elif args.experiment == "fig5":
        print(exp.fig5_static_time(feature_sizes=(8, 32))[1])
    elif args.experiment == "fig6":
        print(exp.fig6_static_memory(sequence_lengths=(5, 15))[1])
    elif args.experiment == "fig7":
        print(exp.fig7_dtdg_time(feature_sizes=(8, 64))[1])
    elif args.experiment == "fig8":
        print(exp.fig8_dtdg_memory(percent_changes=(1.0, 10.0))[1])
    elif args.experiment == "fig9":
        print(exp.fig9_time_breakup(feature_sizes=(8, 64))[1])
    elif args.experiment == "table3":
        static, _ = exp.fig5_static_time(feature_sizes=(8, 32))
        dyn_t, _ = exp.fig7_dtdg_time(feature_sizes=(8, 64))
        dyn_m, _ = exp.fig8_dtdg_memory(percent_changes=(2.0, 10.0))
        print(exp.table3_summary(static, dyn_t, dyn_m)[1])


def _lint_factories(features: int) -> dict:
    """Constructors for every nn program ``repro lint`` verifies."""
    from repro.nn import (
        A3TGCN,
        DCRNN,
        ChebConv,
        DConv,
        EvolveGCNO,
        GATConv,
        GConvGRU,
        GConvLSTM,
        GCNConv,
        RGCNConv,
        SAGEConv,
        TGCN,
    )

    f = features
    return {
        "gcn": lambda: GCNConv(f, f),
        "gat": lambda: GATConv(f, f, heads=2),
        "sage": lambda: SAGEConv(f, f),
        "cheb": lambda: ChebConv(f, f, k=3),
        "dconv": lambda: DConv(f, f, k=2),
        "rgcn": lambda: RGCNConv(f, f, num_relations=3),
        "tgcn": lambda: TGCN(f, f),
        "gconv_gru": lambda: GConvGRU(f, f),
        "gconv_lstm": lambda: GConvLSTM(f, f),
        "a3tgcn": lambda: A3TGCN(f, f, periods=3),
        "evolve_gcn": lambda: EvolveGCNO(f, f),
        "dcrnn": lambda: DCRNN(f, f, k=2),
    }


def _lint_example_specs() -> list:
    """(fn, widths, grads, name) tuples from ``LINT_SPECS`` in examples/."""
    import importlib.util
    from pathlib import Path

    specs: list = []
    root = Path(__file__).resolve().parents[2] / "examples"
    if not root.is_dir():
        return specs
    for path in sorted(root.glob("*.py")):
        if "LINT_SPECS" not in path.read_text(encoding="utf-8"):
            continue
        module_spec = importlib.util.spec_from_file_location(f"_repro_lint_{path.stem}", path)
        module = importlib.util.module_from_spec(module_spec)
        module_spec.loader.exec_module(module)
        specs.extend(getattr(module, "LINT_SPECS", []))
    return specs


def _cmd_lint_concurrency(args: argparse.Namespace) -> int:
    """``repro lint --concurrency``: lock-discipline static analysis gate.

    Analyzes the installed ``repro`` package sources (or ``--path``) with
    :mod:`repro.analysis.lockcheck`, subtracts the committed baseline, and
    fails on any *new* finding.  ``--write-baseline`` re-fingerprints the
    current findings instead (each new entry still needs a human
    justification edited into the JSON before it should be committed).
    """
    from pathlib import Path

    from repro.analysis.lockcheck import (
        analyze_path,
        apply_baseline,
        default_baseline_path,
        load_baseline,
        write_baseline,
    )

    root = Path(args.path) if args.path else Path(__file__).resolve().parent
    baseline_path = Path(args.baseline) if args.baseline else default_baseline_path()
    report = analyze_path(root)

    if args.write_baseline:
        entries = write_baseline(report, baseline_path)
        print(f"wrote {len(entries)} baseline entr{'y' if len(entries) == 1 else 'ies'} "
              f"to {baseline_path}")
        missing = [e for e in entries if e.justification.startswith("TODO")]
        if missing:
            print(f"  {len(missing)} entr(ies) need a justification before commit")
        return 0

    baseline = load_baseline(baseline_path)
    new, baselined, unused = apply_baseline(report, baseline)
    for diag in new.diagnostics:
        print(f"  {diag.render()}")
    if baselined:
        print(f"  {len(baselined)} baselined finding(s) suppressed "
              f"({baseline_path.name})")
    for entry in unused:
        print(f"  note: stale baseline entry {entry.code} at {entry.where} "
              "no longer fires; remove it")
    errors, warnings = len(new.errors), len(new.warnings)
    print(f"concurrency lint over {root}: {errors} new error(s), "
          f"{warnings} new warning(s)")
    return 1 if errors else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.compiler import plan_cache, verify_plan, verification_disabled
    from repro.compiler.diagnostics import code_table

    if args.codes:
        for code, severity, description in code_table():
            print(f"{code}  {severity:<7s}  {description}")
        return 0

    if args.concurrency or args.write_baseline:
        return _cmd_lint_concurrency(args)

    cache = plan_cache()
    # Build with the verifier off so broken programs *report* instead of
    # raising mid-construction — `repro lint` is the on-demand batch mode.
    # Every plan in the process-wide cache is then verified, whether it was
    # built here or already warm.
    with verification_disabled():
        names = _LINT_PROGRAMS if args.layer == "all" else (args.layer,)
        factories = _lint_factories(args.features)
        for name in names:
            factories[name]()
        if args.examples:
            for fn, widths, grads, name in _lint_example_specs():
                cache.get_or_build(fn, feature_widths=widths, grad_features=grads, name=name)

    plans = cache.plans()
    errors = warnings = 0
    for plan in plans:
        report = verify_plan(plan)
        errors += len(report.errors)
        warnings += len(report.warnings)
        status = "ok" if report.ok() else report.summary().split(": ", 1)[1]
        print(f"  {plan.name:<24s} {status}")
        for diag in report.diagnostics:
            print(f"    {diag.render()}")
    print(f"linted {len(plans)} program(s): {errors} error(s), {warnings} warning(s)")
    return 1 if errors else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    import numpy as np

    from repro.dataset import DYNAMIC_DATASETS
    from repro.device import Device, use_device
    from repro.serve import (
        InferenceEngine,
        ServingHarness,
        random_update_batches,
        serial_reference,
    )
    from repro.tensor import init

    if args.dataset not in DYNAMIC_DATASETS:
        raise SystemExit(
            f"serving needs a dynamic (DTDG) dataset; got {args.dataset!r} — see `info`"
        )
    engine_name = _resolve_engine(getattr(args, "engine", None))
    device = Device(name="cli")
    with use_device(device):
        init.set_seed(args.seed)
        ds = DYNAMIC_DATASETS[args.dataset](
            scale=args.scale, feature_size=args.features, max_snapshots=args.timestamps
        )
        print(f"dataset: {ds.summary_row()}")
        graph = ds.build_gpma()
        feats = np.ascontiguousarray(ds.features[-1], dtype=np.float32)
        model = _build_model(args.model, args.features, args.hidden)
        updates = random_update_batches(graph.dtdg, args.updates, seed=args.seed)

        server = None
        if args.telemetry_port is not None:
            from repro.obs.server import TelemetryServer

            server = TelemetryServer(device, port=args.telemetry_port)
            server.start()
            print(f"telemetry: {server.url} (/metrics /healthz /progress)")
        engine = InferenceEngine(
            model, graph, feats,
            hops=args.hops, freshness=args.freshness,
            batching=not args.no_batching,
            invalidation=not args.no_invalidation,
            engine=engine_name,
        )
        try:
            with engine:
                harness = ServingHarness(
                    engine,
                    clients=args.clients,
                    requests_per_client=args.requests,
                    kinds=("embedding", "prediction"),
                    updates=updates,
                    update_wait=args.freshness == 0,
                    qps=args.qps,
                    seed=args.seed,
                    collect=args.verify,
                )
                report = harness.run(timeout=args.timeout)
        finally:
            if server is not None:
                server.stop()

        stats = report.engine_stats
        print(
            f"served {report.requests} requests in {report.duration_s:.2f}s "
            f"({report.qps:.0f} qps) across {report.updates_applied} update batches"
        )
        print(
            f"latency: p50 {report.p50_ms:.3f} ms / p99 {report.p99_ms:.3f} ms "
            f"/ max {report.max_ms:.3f} ms"
        )
        print(
            f"reuse: {stats['forwards']} forwards for {stats['batches_served']} batches, "
            f"{stats['row_cache_hits']} row-cache hits, "
            f"{stats['rows_invalidated']} rows invalidated"
        )
        mismatches = 0
        if args.verify:
            ref = serial_reference(
                model, graph.dtdg, feats,
                sorted({r.timestamp for r in report.results}),
                engine=engine_name,
            )
            for res in report.results:
                expect = ref[res.timestamp][0 if res.kind == "embedding" else 1]
                if not np.array_equal(res.value, expect[res.vertex]):
                    mismatches += 1
            verdict = "bitwise-equal" if mismatches == 0 else f"{mismatches} MISMATCHES"
            print(f"serial-reference check: {report.requests} responses {verdict}")
        if args.json:
            payload = {
                "config": {
                    "dataset": args.dataset, "model": args.model,
                    "clients": args.clients, "requests_per_client": args.requests,
                    "updates": args.updates, "freshness": args.freshness,
                    "hops": args.hops, "batching": not args.no_batching,
                    "invalidation": not args.no_invalidation, "seed": args.seed,
                },
                "report": report.row(),
                "stats": {k: v for k, v in stats.items()},
                "mismatches": mismatches if args.verify else None,
            }
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            print(f"report json: {args.json}")
        return 1 if mismatches else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Short traced training run: ``repro train --trace`` with DTDG defaults."""
    args.trace = args.out
    return _cmd_train(args)


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse arguments and dispatch to a subcommand."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library/version/dataset overview")

    p_inspect = sub.add_parser("inspect", help="dump a layer's compilation stages")
    p_inspect.add_argument("--layer", choices=_LAYERS, default="gcn")
    p_inspect.add_argument("--features", type=int, default=8)
    p_inspect.add_argument("--dot", action="store_true", help="emit Graphviz dot instead of text")

    p_train = sub.add_parser("train", help="train a model on a Table II dataset")
    p_train.add_argument("--dataset", default="HC")
    p_train.add_argument("--model", choices=_MODELS, default="tgcn")
    p_train.add_argument("--system", choices=("stgraph", "pygt"), default="stgraph")
    p_train.add_argument("--epochs", type=int, default=20)
    p_train.add_argument("--features", type=int, default=8)
    p_train.add_argument("--hidden", type=int, default=16)
    p_train.add_argument("--lr", type=float, default=1e-2)
    p_train.add_argument("--sequence-length", type=int, default=None)
    p_train.add_argument("--timestamps", type=int, default=40)
    p_train.add_argument("--scale", type=float, default=1.0)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--trace", metavar="OUT.json", default=None,
                         help="trace the run; writes OUT.json (Chrome trace), "
                              "OUT.events.jsonl, OUT.manifest.json, OUT.metrics.prom")
    p_train.add_argument("--checkpoint", metavar="PATH.npz", default=None,
                         help="write an atomic training checkpoint at every sequence boundary")
    p_train.add_argument("--pipeline", type=int, default=0, metavar="K",
                         help="prefetch staleness: build up to K future snapshots on a "
                              "worker thread (0 = strictly serial; numerics unchanged)")
    p_train.add_argument("--engine", default=None, metavar="NAME",
                         help="execution engine override (kernel, interpreter, compiled); "
                              "all engines are bitwise-identical — this is a speed knob")
    p_train.add_argument("--resume", action="store_true",
                         help="resume from --checkpoint if it exists (bitwise-identical losses)")
    p_train.add_argument("--telemetry-port", type=int, default=None, metavar="PORT",
                         help="serve live /metrics, /healthz, and /progress on 127.0.0.1:PORT "
                              "for the duration of the run (0 = pick an ephemeral port)")
    p_train.add_argument("--flight-recorder", metavar="OUT.jsonl", default=None,
                         help="arm the flight recorder; failure edges (aborts, fallbacks, "
                              "kills) and the run end append their last-N-events window here")

    p_chaos = sub.add_parser("chaos", help="fault-injected train/kill/resume run with verification")
    p_chaos.add_argument("--plan", default="smoke",
                         help="named plan (smoke, kill-matrix) or path to a fault-plan JSON file")
    p_chaos.add_argument("--dataset", default="sx-mathoverflow")
    p_chaos.add_argument("--epochs", type=int, default=3)
    p_chaos.add_argument("--sequence-length", type=int, default=3)
    p_chaos.add_argument("--timestamps", type=int, default=6)
    p_chaos.add_argument("--scale", type=float, default=0.02)
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--workdir", default=None,
                         help="directory for the chaos checkpoint (default: a fresh temp dir)")
    p_chaos.add_argument("--engine", default=None, metavar="NAME",
                         help="execution engine for the chaos run (e.g. compiled exercises "
                              "the compiled → kernel → interpreter degradation ladder)")
    p_chaos.add_argument("--json", metavar="OUT.json", default=None,
                         help="write the full ChaosReport (manifest inlined) as JSON")
    p_chaos.add_argument("--trace", metavar="OUT.json", default=None,
                         help="trace the chaos run; writes the Chrome trace and run manifest")
    p_chaos.add_argument("--flight-recorder", metavar="OUT.jsonl", default=None,
                         help="arm the flight recorder on the chaos run; every kill/abort/"
                              "fallback appends its event window, and the report verifies "
                              "the fault window was captured")

    p_bench = sub.add_parser("bench", help="run one paper experiment")
    p_bench.add_argument("--experiment", choices=_EXPERIMENTS, required=True)
    p_bench.add_argument("--pipeline", type=int, default=None, metavar="K",
                         help="prefetch staleness for GPMA cells (overrides "
                              "REPRO_BENCH_PIPELINE for this invocation)")
    p_bench.add_argument("--engine", default=None, metavar="NAME",
                         help="execution engine for STGraph cells (sets REPRO_BENCH_ENGINE "
                              "for this invocation)")
    p_bench.add_argument("--trace", metavar="OUT.json", default=None,
                         help="trace the experiment; writes the same artifact set as train --trace")

    p_lint = sub.add_parser("lint", help="run the compiler verifier over layer programs")
    p_lint.add_argument("--layer", choices=_LINT_PROGRAMS + ("all",), default="all")
    p_lint.add_argument("--features", type=int, default=8)
    p_lint.add_argument("--examples", action="store_true",
                        help="also verify vertex programs registered via LINT_SPECS in examples/")
    p_lint.add_argument("--codes", action="store_true",
                        help="print the diagnostic code table (STG0xx/STG1xx compiler, "
                             "STG2xx concurrency) and exit")
    p_lint.add_argument("--concurrency", action="store_true",
                        help="run the lock-discipline static analyzer (STG2xx) over the "
                             "installed repro sources; exits non-zero on non-baselined errors")
    p_lint.add_argument("--path", default=None, metavar="DIR",
                        help="analyze DIR instead of the installed repro package "
                             "(with --concurrency)")
    p_lint.add_argument("--baseline", default=None, metavar="JSON",
                        help="baseline file for --concurrency (default: the committed "
                             "src/repro/analysis/BASELINE.json)")
    p_lint.add_argument("--write-baseline", action="store_true",
                        help="refingerprint current --concurrency findings into the baseline "
                             "instead of gating on them")

    p_serve = sub.add_parser(
        "serve", help="request-batched online inference over a live GPMA graph"
    )
    p_serve.add_argument("--dataset", default="sx-mathoverflow")
    p_serve.add_argument("--model", choices=("tgcn", "gconv_gru", "dcrnn"), default="tgcn")
    p_serve.add_argument("--features", type=int, default=8)
    p_serve.add_argument("--hidden", type=int, default=16)
    p_serve.add_argument("--timestamps", type=int, default=8)
    p_serve.add_argument("--scale", type=float, default=0.02)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--clients", type=int, default=8,
                         help="closed-loop query client threads")
    p_serve.add_argument("--requests", type=int, default=64,
                         help="point queries per client")
    p_serve.add_argument("--updates", type=int, default=8,
                         help="GPMA update batches ingested during the run")
    p_serve.add_argument("--freshness", type=int, default=0, metavar="K",
                         help="staleness bound: serve while up to K ingested update "
                              "batches are still pending (0 = always fully fresh; "
                              "mirrors train --pipeline)")
    p_serve.add_argument("--hops", type=int, default=1,
                         help="receptive-field hops for dirty-set invalidation "
                              "(match the model depth)")
    p_serve.add_argument("--qps", type=float, default=None,
                         help="per-client pacing (default: maximum rate)")
    p_serve.add_argument("--timeout", type=float, default=120.0)
    p_serve.add_argument("--no-batching", action="store_true",
                         help="ablation: dispatch one forward per query instead of "
                              "coalescing concurrent requests")
    p_serve.add_argument("--no-invalidation", action="store_true",
                         help="ablation: invalidate every vertex on each update batch")
    p_serve.add_argument("--engine", default=None, metavar="NAME",
                         help="execution engine for serving forwards")
    p_serve.add_argument("--verify", action="store_true",
                         help="bitwise-check every response against the serial "
                              "query-after-every-update reference (exit 1 on mismatch)")
    p_serve.add_argument("--telemetry-port", type=int, default=None, metavar="PORT",
                         help="serve live /metrics on 127.0.0.1:PORT while traffic runs "
                              "(0 = pick an ephemeral port)")
    p_serve.add_argument("--json", metavar="OUT.json", default=None,
                         help="write the serving report + engine counters as JSON")

    p_trace = sub.add_parser("trace", help="short traced TGCN run on a generated DTDG")
    p_trace.add_argument("--out", metavar="OUT.json", default="traces/run.json")
    p_trace.add_argument("--dataset", default="sx-mathoverflow")
    p_trace.add_argument("--model", choices=_MODELS, default="tgcn")
    p_trace.add_argument("--system", choices=("stgraph", "pygt"), default="stgraph")
    p_trace.add_argument("--epochs", type=int, default=3)
    p_trace.add_argument("--features", type=int, default=8)
    p_trace.add_argument("--hidden", type=int, default=16)
    p_trace.add_argument("--lr", type=float, default=1e-2)
    p_trace.add_argument("--sequence-length", type=int, default=4)
    p_trace.add_argument("--timestamps", type=int, default=8)
    p_trace.add_argument("--scale", type=float, default=0.02)
    p_trace.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "inspect": _cmd_inspect,
        "train": _cmd_train,
        "chaos": _cmd_chaos,
        "bench": _cmd_bench,
        "trace": _cmd_trace,
        "lint": _cmd_lint,
        "serve": _cmd_serve,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # output piped into head/less that closed early
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
