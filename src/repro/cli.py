"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``info``
    Library version, registered backends, available datasets and models.
``inspect --layer gcn``
    Compile a layer's vertex program and dump every compilation stage
    (vertex IR, tensor IR, generated kernels, State-Stack analysis).
``train --dataset HC --model tgcn --epochs 20``
    Train a model on a Table II dataset with Algorithm 1 and report loss,
    timing, and memory.  ``--system pygt`` runs the baseline instead.
``bench --experiment fig5``
    Run one of the paper's table/figure experiments and print it.
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = ["main"]

_MODELS = ("tgcn", "gconv_gru", "gconv_lstm", "dcrnn", "a3tgcn")
_LAYERS = ("gcn", "gat", "sage", "cheb", "dconv")
_EXPERIMENTS = ("table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9", "table3")


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.core.backend import available_backends
    from repro.dataset import DYNAMIC_DATASETS, STATIC_DATASETS

    print(f"repro {repro.__version__} — STGraph reproduction (IPDPS 2024)")
    print(f"backends: {', '.join(available_backends())}")
    print(f"static datasets:  {', '.join(STATIC_DATASETS)}")
    print(f"dynamic datasets: {', '.join(DYNAMIC_DATASETS)}")
    print(f"models: {', '.join(_MODELS)}")
    print(f"layers: {', '.join(_LAYERS)}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.nn import ChebConv, DConv, GATConv, GCNConv, SAGEConv

    factories = {
        "gcn": lambda: GCNConv(args.features, args.features),
        "gat": lambda: GATConv(args.features, args.features),
        "sage": lambda: SAGEConv(args.features, args.features),
        "cheb": lambda: ChebConv(args.features, args.features, k=3),
        "dconv": lambda: DConv(args.features, args.features, k=2),
    }
    layer = factories[args.layer]()
    if args.dot:
        from repro.compiler.viz import tensor_ir_to_dot, vertex_ir_to_dot

        print(vertex_ir_to_dot(layer.program.traced.root, name=f"{args.layer}_vertex_ir"))
        print(tensor_ir_to_dot(layer.program.fwd_prog))
        print(tensor_ir_to_dot(layer.program.bwd_prog))
        return 0
    print(layer.program.describe())
    print("\n=== generated forward kernel ===")
    print(layer.generated_forward_source)
    print("=== generated backward kernel ===")
    print(layer.generated_backward_source)
    return 0


def _build_model(name: str, in_features: int, hidden: int):
    from repro.nn import DCRNN, GConvGRU, GConvLSTM, TGCN
    from repro.tensor import functional as F
    from repro.tensor.nn import Linear, Module

    class Regressor(Module):
        def __init__(self, cell, lstm: bool = False) -> None:
            super().__init__()
            self.cell = cell
            self.head = Linear(hidden, 1)
            self.lstm = lstm

        def step(self, executor, x, state):
            if self.lstm:
                h, c = self.cell(executor, x, *(state if state else (None, None)))
                return self.head(h), (h, c)
            h = self.cell(executor, x, state)
            return self.head(h), h

    if name == "tgcn":
        return Regressor(TGCN(in_features, hidden))
    if name == "gconv_gru":
        return Regressor(GConvGRU(in_features, hidden))
    if name == "gconv_lstm":
        return Regressor(GConvLSTM(in_features, hidden), lstm=True)
    if name == "dcrnn":
        return Regressor(DCRNN(in_features, hidden, k=2))
    if name == "a3tgcn":
        raise SystemExit("a3tgcn needs windowed inputs; see examples/ for usage")
    raise SystemExit(f"unknown model {name!r}")


def _cmd_train(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.dataset import DYNAMIC_DATASETS, STATIC_DATASETS
    from repro.device import Device, use_device
    from repro.tensor import init
    from repro.train import (
        BaselineTrainer,
        PyGTNodeRegressor,
        STGraphLinkPredictor,
        STGraphTrainer,
        make_link_prediction_samples,
        temporal_train_test_split,
    )

    device = Device(name="cli")
    with use_device(device):
        init.set_seed(args.seed)
        if args.dataset in STATIC_DATASETS:
            ds = STATIC_DATASETS[args.dataset](
                lags=args.features, scale=args.scale, num_timestamps=args.timestamps
            )
            print(f"dataset: {ds.summary_row()}")
            tr_x, te_x, tr_y, te_y = temporal_train_test_split(ds.features, ds.targets, 0.8)
            if args.system == "pygt":
                model = PyGTNodeRegressor(args.features, args.hidden)
                trainer = BaselineTrainer(
                    model, ds.to_pygt_signal().edge_index,
                    lr=args.lr, sequence_length=args.sequence_length,
                )
            else:
                model = _build_model(args.model, args.features, args.hidden)
                trainer = STGraphTrainer(
                    model, ds.build_graph(), lr=args.lr,
                    sequence_length=args.sequence_length,
                )
            losses = trainer.train(tr_x, tr_y, epochs=args.epochs, warmup=min(2, args.epochs - 1))
        elif args.dataset in DYNAMIC_DATASETS:
            if args.system == "pygt" or args.model != "tgcn":
                raise SystemExit("dynamic CLI training supports --system stgraph --model tgcn")
            ds = DYNAMIC_DATASETS[args.dataset](
                scale=args.scale, feature_size=args.features, max_snapshots=args.timestamps
            )
            print(f"dataset: {ds.summary_row()}")
            samples = make_link_prediction_samples(ds.dtdg, 128, seed=args.seed)
            model = STGraphLinkPredictor(args.features, args.hidden)
            trainer = STGraphTrainer(
                model, ds.build_gpma(), lr=args.lr,
                sequence_length=args.sequence_length,
                task="link_prediction", link_samples=samples,
            )
            losses = trainer.train(ds.features, epochs=args.epochs, warmup=min(2, args.epochs - 1))
        else:
            raise SystemExit(f"unknown dataset {args.dataset!r}; see `info`")

        print(f"loss: {losses[0]:.4f} -> {losses[-1]:.4f} over {args.epochs} epochs")
        print(f"per-epoch time: {trainer.mean_epoch_time * 1e3:.1f} ms")
        print(f"peak device memory: {device.tracker.peak_bytes / 1e6:.2f} MB")
        gnn = device.profiler.seconds("gnn")
        upd = device.profiler.seconds("graph_update")
        if gnn + upd > 0:
            print(f"time split: gnn {100 * gnn / (gnn + upd):.1f}% / updates {100 * upd / (gnn + upd):.1f}%")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import experiments as exp

    start = time.perf_counter()
    if args.experiment == "table1":
        print(exp.table1_capabilities()[1])
    elif args.experiment == "table2":
        print(exp.table2_datasets()[1])
    elif args.experiment == "fig5":
        print(exp.fig5_static_time(feature_sizes=(8, 32))[1])
    elif args.experiment == "fig6":
        print(exp.fig6_static_memory(sequence_lengths=(5, 15))[1])
    elif args.experiment == "fig7":
        print(exp.fig7_dtdg_time(feature_sizes=(8, 64))[1])
    elif args.experiment == "fig8":
        print(exp.fig8_dtdg_memory(percent_changes=(1.0, 10.0))[1])
    elif args.experiment == "fig9":
        print(exp.fig9_time_breakup(feature_sizes=(8, 64))[1])
    elif args.experiment == "table3":
        static, _ = exp.fig5_static_time(feature_sizes=(8, 32))
        dyn_t, _ = exp.fig7_dtdg_time(feature_sizes=(8, 64))
        dyn_m, _ = exp.fig8_dtdg_memory(percent_changes=(2.0, 10.0))
        print(exp.table3_summary(static, dyn_t, dyn_m)[1])
    print(f"\n({time.perf_counter() - start:.1f}s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse arguments and dispatch to a subcommand."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library/version/dataset overview")

    p_inspect = sub.add_parser("inspect", help="dump a layer's compilation stages")
    p_inspect.add_argument("--layer", choices=_LAYERS, default="gcn")
    p_inspect.add_argument("--features", type=int, default=8)
    p_inspect.add_argument("--dot", action="store_true", help="emit Graphviz dot instead of text")

    p_train = sub.add_parser("train", help="train a model on a Table II dataset")
    p_train.add_argument("--dataset", default="HC")
    p_train.add_argument("--model", choices=_MODELS, default="tgcn")
    p_train.add_argument("--system", choices=("stgraph", "pygt"), default="stgraph")
    p_train.add_argument("--epochs", type=int, default=20)
    p_train.add_argument("--features", type=int, default=8)
    p_train.add_argument("--hidden", type=int, default=16)
    p_train.add_argument("--lr", type=float, default=1e-2)
    p_train.add_argument("--sequence-length", type=int, default=None)
    p_train.add_argument("--timestamps", type=int, default=40)
    p_train.add_argument("--scale", type=float, default=1.0)
    p_train.add_argument("--seed", type=int, default=0)

    p_bench = sub.add_parser("bench", help="run one paper experiment")
    p_bench.add_argument("--experiment", choices=_EXPERIMENTS, required=True)

    args = parser.parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "inspect": _cmd_inspect,
        "train": _cmd_train,
        "bench": _cmd_bench,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # output piped into head/less that closed early
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
