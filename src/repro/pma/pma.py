"""The Packed Memory Array.

Storage layout
--------------
``keys``/``values`` are parallel arrays of size ``capacity`` holding int64
edge keys and payloads (edge ids).  Empty slots hold :data:`SPACE_KEY` — the
paper's ``SPACE`` sentinel.  The array is divided into equal segments; within
each segment the valid items occupy a *sorted prefix* (gaps at the tail), and
the concatenation of all prefixes is globally sorted.  This is exactly the
"modified ``column_indices`` and ``edge_ids`` array which contains empty
spaces between elements" of the paper's GPMA description, normalized so the
gap positions are deterministic.

Updates
-------
:meth:`insert_batch` / :meth:`delete_batch` are the GPMA batch update
primitives.  Each batch is grouped by target segment; segments that stay
within their density bound absorb their items with a local sorted merge,
otherwise the smallest enclosing *window* (aligned group of ``2**d``
segments) satisfying the depth-``d`` density bound is rebalanced by
redistributing its items evenly — the CPU equivalent of GPMA's levelwise
parallel rebalance.  When the root bound is violated the capacity doubles
(or halves) and everything is redistributed.

Complexity: amortized ``O(log^2 n)`` slot moves per update, matching the PMA
literature; all bulk moves are vectorized.
"""

from __future__ import annotations

import math

import numpy as np

from repro.device import current_device
from repro.pma.segment import (
    MIN_CAPACITY,
    DensityBounds,
    segment_size_for_capacity,
    window_bounds,
)

__all__ = ["PackedMemoryArray", "SPACE_KEY"]

SPACE_KEY = np.int64(-1)
_POS_INF = np.iinfo(np.int64).max


class PackedMemoryArray:
    """A gapped, sorted key/value store with batched updates.

    Parameters
    ----------
    capacity:
        Initial slot count (rounded up to a power of two, min 64).
    """

    def __init__(self, capacity: int = MIN_CAPACITY) -> None:
        capacity = max(MIN_CAPACITY, 1 << max(0, int(math.ceil(math.log2(max(1, capacity))))))
        self._alloc_arrays(capacity)
        self.n_items = 0

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def _alloc_arrays(self, capacity: int) -> None:
        alloc = current_device().alloc
        self.capacity = capacity
        self.seg_size = segment_size_for_capacity(capacity)
        self.num_segments = capacity // self.seg_size
        self.bounds = DensityBounds(self.num_segments)
        self.keys = alloc.full(capacity, SPACE_KEY, dtype=np.int64, tag="pma.keys")
        self.values = alloc.full(capacity, -1, dtype=np.int64, tag="pma.values")
        self._counts = alloc.zeros(self.num_segments, dtype=np.int64, tag="pma.counts")
        self._seg_min = alloc.full(self.num_segments, _POS_INF, dtype=np.int64, tag="pma.segmin")

    @property
    def density(self) -> float:
        """Fill fraction ``n_items / capacity``."""
        return self.n_items / self.capacity

    def _seg_slice(self, seg: int) -> slice:
        start = seg * self.seg_size
        return slice(start, start + int(self._counts[seg]))

    def _refresh_seg_min(self) -> None:
        """Recompute the per-segment minimum-key array used for routing.

        Empty segments inherit the *next* non-empty segment's minimum
        (backward fill, trailing empties get +inf) so the array is
        non-decreasing and a key routes to the segment that holds its
        in-order predecessor — inserting there preserves global order.
        """
        starts = np.arange(self.num_segments) * self.seg_size
        firsts = np.where(self._counts > 0, self.keys[starts], _POS_INF)
        self._seg_min[:] = np.minimum.accumulate(firsts[::-1])[::-1]

    def _route(self, keys: np.ndarray) -> np.ndarray:
        """Target segment per key: rightmost segment whose min ≤ key.

        A key smaller than every segment minimum clips to segment 0; a key
        past the last minimum routes to the last non-empty segment (trailing
        empty segments hold +inf and are never selected).
        """
        segs = np.searchsorted(self._seg_min, keys, side="right") - 1
        return np.clip(segs, 0, self.num_segments - 1)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains(self, key: int) -> bool:
        """Membership test for one key."""
        return self.get(key) is not None

    def get(self, key: int) -> int | None:
        """Payload for ``key`` or ``None``."""
        if self.n_items == 0:
            return None
        seg = int(self._route(np.asarray([key], dtype=np.int64))[0])
        sl = self._seg_slice(seg)
        idx = np.searchsorted(self.keys[sl], key)
        base = seg * self.seg_size
        if idx < int(self._counts[seg]) and self.keys[base + idx] == key:
            return int(self.values[base + idx])
        return None

    def contains_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized membership test (boolean array)."""
        keys = np.asarray(keys, dtype=np.int64)
        if self.n_items == 0:
            return np.zeros(len(keys), dtype=bool)
        valid_keys, _ = self.export_items()
        pos = np.searchsorted(valid_keys, keys)
        pos_clipped = np.minimum(pos, len(valid_keys) - 1)
        return (pos < len(valid_keys)) & (valid_keys[pos_clipped] == keys)

    def export_items(self) -> tuple[np.ndarray, np.ndarray]:
        """All valid ``(keys, values)`` in sorted order (compacted copy)."""
        mask = self.keys != SPACE_KEY
        return self.keys[mask], self.values[mask]

    def gapped_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The raw gapped ``(keys, values)`` storage (no copy).

        This is what Algorithm 3's ``dst != SPACE`` check iterates over.
        """
        return self.keys, self.values

    def segment_counts(self) -> np.ndarray:
        """Per-segment valid-item counts (copy)."""
        return self._counts.copy()

    # ------------------------------------------------------------------
    # Batched insert
    # ------------------------------------------------------------------
    def insert_batch(self, keys: np.ndarray, values: np.ndarray) -> int:
        """Insert (or upsert) a batch; returns the number of *new* keys."""
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if keys.shape != values.shape:
            raise ValueError("keys and values must have equal length")
        if len(keys) == 0:
            return 0
        if np.any(keys == SPACE_KEY):
            raise ValueError("key -1 is reserved as the SPACE sentinel")
        order = np.argsort(keys, kind="stable")
        keys, values = keys[order], values[order]
        # Last occurrence wins on intra-batch duplicates.
        uniq_mask = np.empty(len(keys), dtype=bool)
        uniq_mask[:-1] = keys[:-1] != keys[1:]
        uniq_mask[-1] = True
        keys, values = keys[uniq_mask], values[uniq_mask]

        # Upsert keys that already exist (no structural change).
        present = self.contains_batch(keys)
        if present.any():
            for k, v in zip(keys[present], values[present]):
                self._overwrite(int(k), int(v))
            keys, values = keys[~present], values[~present]
        if len(keys) == 0:
            return 0

        # Grow proactively if the batch alone would breach the root bound.
        while (self.n_items + len(keys)) / self.capacity > self.bounds.upper(self.bounds.height):
            self._resize(self.capacity * 2, extra_keys=None)

        segs = self._route(keys)
        pending_per_seg = np.bincount(segs, minlength=self.num_segments)
        touched = np.flatnonzero(pending_per_seg)
        seg_offsets = np.zeros(self.num_segments + 1, dtype=np.int64)
        np.cumsum(pending_per_seg, out=seg_offsets[1:])

        handled = np.zeros(self.num_segments, dtype=bool)
        upper0 = self.bounds.upper(0) * self.seg_size
        for seg in touched:
            if handled[seg]:
                continue
            new_count = int(self._counts[seg]) + int(pending_per_seg[seg])
            pend_sl = slice(int(seg_offsets[seg]), int(seg_offsets[seg + 1]))
            if new_count <= upper0:
                self._merge_into_segment(int(seg), keys[pend_sl], values[pend_sl])
                handled[seg] = True
            else:
                s0, s1 = self._find_insert_window(int(seg), pending_per_seg, handled)
                self._rebalance_window(
                    s0,
                    s1,
                    extra=self._collect_pending(s0, s1, keys, values, segs, seg_offsets, handled),
                )
        self.n_items += len(keys)
        self._refresh_seg_min()
        return len(keys)

    def _overwrite(self, key: int, value: int) -> None:
        seg = int(self._route(np.asarray([key], dtype=np.int64))[0])
        base = seg * self.seg_size
        idx = int(np.searchsorted(self.keys[self._seg_slice(seg)], key))
        if idx < int(self._counts[seg]) and self.keys[base + idx] == key:
            self.values[base + idx] = value
        else:  # pragma: no cover - guarded by contains_batch
            raise KeyError(key)

    def _merge_into_segment(self, seg: int, new_keys: np.ndarray, new_values: np.ndarray) -> None:
        base = seg * self.seg_size
        count = int(self._counts[seg])
        merged_k = np.concatenate([self.keys[base : base + count], new_keys])
        merged_v = np.concatenate([self.values[base : base + count], new_values])
        order = np.argsort(merged_k, kind="stable")
        total = len(merged_k)
        self.keys[base : base + total] = merged_k[order]
        self.values[base : base + total] = merged_v[order]
        self._counts[seg] = total

    def _find_insert_window(
        self, seg: int, pending_per_seg: np.ndarray, handled: np.ndarray
    ) -> tuple[int, int]:
        """Smallest aligned window around ``seg`` within its upper bound.

        Pending items of already-handled segments are excluded: their counts
        were folded into ``_counts`` by the earlier local merge.
        """
        for depth in range(1, self.bounds.height + 1):
            s0, s1 = window_bounds(seg, depth, self.num_segments)
            pend = pending_per_seg[s0:s1][~handled[s0:s1]]
            occupancy = int(self._counts[s0:s1].sum()) + int(pend.sum())
            if occupancy <= self.bounds.upper(depth) * (s1 - s0) * self.seg_size:
                return s0, s1
        # Unreachable: insert_batch grows proactively so the root window
        # (depth == height, the whole array) always satisfies its bound.
        raise RuntimeError("no window satisfies its density bound; proactive growth failed")

    def _collect_pending(
        self,
        s0: int,
        s1: int,
        keys: np.ndarray,
        values: np.ndarray,
        segs: np.ndarray,
        seg_offsets: np.ndarray,
        handled: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Consume all not-yet-handled pending items routed into [s0, s1)."""
        take = (segs >= s0) & (segs < s1) & ~handled[segs]
        handled[s0:s1] = True
        return keys[take], values[take]

    # ------------------------------------------------------------------
    # Batched delete
    # ------------------------------------------------------------------
    def delete_batch(self, keys: np.ndarray) -> int:
        """Delete a batch of keys; returns how many were actually present."""
        keys = np.unique(np.asarray(keys, dtype=np.int64))
        if len(keys) == 0 or self.n_items == 0:
            return 0
        segs = self._route(keys)
        removed_total = 0
        for seg in np.unique(segs):
            seg = int(seg)
            base = seg * self.seg_size
            count = int(self._counts[seg])
            if count == 0:
                continue
            seg_keys = self.keys[base : base + count]
            doomed = keys[segs == seg]
            keep_mask = ~np.isin(seg_keys, doomed)
            removed = count - int(keep_mask.sum())
            if removed == 0:
                continue
            kept = int(keep_mask.sum())
            self.keys[base : base + kept] = seg_keys[keep_mask]
            self.values[base : base + kept] = self.values[base : base + count][keep_mask]
            self.keys[base + kept : base + count] = SPACE_KEY
            self.values[base + kept : base + count] = -1
            self._counts[seg] = kept
            removed_total += removed
        if removed_total == 0:
            return 0
        self.n_items -= removed_total

        # Fix underflowing windows bottom-up.
        lower0 = self.bounds.lower(0) * self.seg_size
        for seg in np.unique(segs):
            seg = int(seg)
            if int(self._counts[seg]) >= lower0:
                continue
            for depth in range(1, self.bounds.height + 1):
                s0, s1 = window_bounds(seg, depth, self.num_segments)
                occ = int(self._counts[s0:s1].sum())
                if occ >= self.bounds.lower(depth) * (s1 - s0) * self.seg_size:
                    self._rebalance_window(s0, s1)
                    break
            else:
                break  # whole-array underflow: handled by the shrink below
        # Halving doubles density, and 2·rho_root <= tau_root does not hold
        # (0.6 < 0.7 does), so a single-step check per halving is safe.
        while (
            self.capacity > MIN_CAPACITY
            and self.n_items < self.bounds.lower(self.bounds.height) * self.capacity
        ):
            self._resize(self.capacity // 2, extra_keys=None)
        self._refresh_seg_min()
        return removed_total

    # ------------------------------------------------------------------
    # Rebalancing & resize
    # ------------------------------------------------------------------
    def _rebalance_window(
        self,
        s0: int,
        s1: int,
        extra: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        """Redistribute all items in segments [s0, s1) evenly (plus ``extra``)."""
        lo, hi = s0 * self.seg_size, s1 * self.seg_size
        window_keys = self.keys[lo:hi]
        mask = window_keys != SPACE_KEY
        items_k = window_keys[mask]
        items_v = self.values[lo:hi][mask]
        if extra is not None and len(extra[0]):
            items_k = np.concatenate([items_k, extra[0]])
            items_v = np.concatenate([items_v, extra[1]])
            order = np.argsort(items_k, kind="stable")
            items_k, items_v = items_k[order], items_v[order]
        self._write_even(s0, s1, items_k, items_v)

    def _write_even(self, s0: int, s1: int, items_k: np.ndarray, items_v: np.ndarray) -> None:
        """Spread sorted items evenly over segments [s0, s1)."""
        w = s1 - s0
        n = len(items_k)
        base_count, rem = divmod(n, w)
        counts = np.full(w, base_count, dtype=np.int64)
        counts[:rem] += 1
        if counts.max(initial=0) > self.seg_size:
            raise RuntimeError("rebalance window too dense — density bound violated upstream")
        lo, hi = s0 * self.seg_size, s1 * self.seg_size
        self.keys[lo:hi] = SPACE_KEY
        self.values[lo:hi] = -1
        if n:
            seg_ids = np.repeat(np.arange(w), counts)
            starts = np.zeros(w, dtype=np.int64)
            np.cumsum(counts[:-1], out=starts[1:])
            within = np.arange(n) - starts[seg_ids]
            slots = lo + seg_ids * self.seg_size + within
            self.keys[slots] = items_k
            self.values[slots] = items_v
        self._counts[s0:s1] = counts

    def _resize(self, new_capacity: int, extra_keys: None) -> None:
        items_k, items_v = self.export_items()
        new_capacity = max(MIN_CAPACITY, new_capacity)
        self._alloc_arrays(new_capacity)
        self._write_even(0, self.num_segments, items_k, items_v)
        self._refresh_seg_min()

    # ------------------------------------------------------------------
    # Invariant checking (used heavily by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is violated."""
        assert self.capacity == self.num_segments * self.seg_size
        total = 0
        prev_last: int | None = None
        for seg in range(self.num_segments):
            base = seg * self.seg_size
            count = int(self._counts[seg])
            assert 0 <= count <= self.seg_size, f"segment {seg} count {count} out of range"
            prefix = self.keys[base : base + count]
            tail = self.keys[base + count : base + self.seg_size]
            assert np.all(prefix != SPACE_KEY), f"SPACE inside prefix of segment {seg}"
            assert np.all(tail == SPACE_KEY), f"valid key in gap of segment {seg}"
            if count > 1:
                assert np.all(np.diff(prefix) > 0), f"segment {seg} prefix not strictly sorted"
            if count > 0:
                if prev_last is not None:
                    assert prev_last < int(prefix[0]), f"global order broken at segment {seg}"
                prev_last = int(prefix[-1])
            total += count
        assert total == self.n_items, f"n_items {self.n_items} != stored {total}"

    def __len__(self) -> int:
        return self.n_items

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PackedMemoryArray(n={self.n_items}, capacity={self.capacity}, "
            f"segments={self.num_segments}×{self.seg_size}, density={self.density:.2f})"
        )
