"""Packed Memory Array — the GPMA storage substrate.

The paper stores DTDGs in a GPMA [Sha et al., VLDB'17]: a GPU Packed Memory
Array whose ``col_indices``/``eids`` arrays "contain empty spaces between
elements", making batched edge insertions/deletions cheap and letting
snapshots be generated on demand (Algorithm 2).

This package is a faithful CPU PMA with the same semantics:

* gapped, globally sorted storage with ``SPACE`` sentinels;
* segments with level-dependent density bounds;
* **batched** insert/delete with window rebalancing (the GPMA's levelwise
  parallel rebalance becomes a vectorized NumPy redistribution over the same
  windows);
* adaptive capacity growth/shrink when the root density bound is violated.

Edges are stored as ``src * n_dst + dst`` encoded keys with the edge id as
the payload, so one PMA instance holds one evolving adjacency structure.
"""

from repro.pma.pma import SPACE_KEY, PackedMemoryArray
from repro.pma.segment import DensityBounds, window_bounds

__all__ = ["PackedMemoryArray", "SPACE_KEY", "DensityBounds", "window_bounds"]
