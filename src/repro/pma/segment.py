"""Segment geometry and density thresholds for the PMA.

A PMA of capacity ``C`` is split into ``C / seg_size`` equal segments, the
leaves of an implicit binary tree.  A *window* at depth ``d`` is an aligned
group of ``2**d`` segments.  Density bounds interpolate between leaf and root
(the classic Bender/Hu parameters, also used by GPMA):

* upper: ``tau_leaf`` (0.92) at leaves down to ``tau_root`` (0.70) at the root;
* lower: ``rho_leaf`` (0.08) at leaves up to ``rho_root`` (0.30) at the root.

An insert that overflows a leaf walks up the tree until it finds a window
whose post-insert density is within the upper bound, then redistributes the
window's items evenly; symmetric for deletes and the lower bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["DensityBounds", "segment_size_for_capacity", "window_bounds"]

TAU_LEAF = 0.92
TAU_ROOT = 0.70
RHO_LEAF = 0.08
RHO_ROOT = 0.30
MIN_CAPACITY = 64


def segment_size_for_capacity(capacity: int) -> int:
    """Segment size ~= Θ(log capacity), rounded to a power of two ≥ 8."""
    if capacity < MIN_CAPACITY:
        raise ValueError(f"capacity {capacity} below minimum {MIN_CAPACITY}")
    target = max(8, 2 * int(math.log2(capacity)))
    return 1 << int(math.ceil(math.log2(target)))


@dataclass(frozen=True)
class DensityBounds:
    """Density thresholds for a PMA with ``num_segments`` leaves."""

    num_segments: int

    @property
    def height(self) -> int:
        """Depth of the implicit rebalance tree (log2 of segment count)."""
        return max(1, int(math.log2(self.num_segments))) if self.num_segments > 1 else 1

    def upper(self, depth: int) -> float:
        """Max density for a window at ``depth`` (0 = leaf, height = root)."""
        frac = min(1.0, depth / self.height)
        return TAU_LEAF - (TAU_LEAF - TAU_ROOT) * frac

    def lower(self, depth: int) -> float:
        """Min density for a window at ``depth``."""
        frac = min(1.0, depth / self.height)
        return RHO_LEAF + (RHO_ROOT - RHO_LEAF) * frac


def window_bounds(segment: int, depth: int, num_segments: int) -> tuple[int, int]:
    """The aligned window of ``2**depth`` segments containing ``segment``.

    Returns ``(first_segment, last_segment_exclusive)`` clipped to the array.
    """
    width = 1 << depth
    first = (segment // width) * width
    return first, min(first + width, num_segments)
