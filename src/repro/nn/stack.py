"""Multi-layer static-GNN stacks (the plain-GNN side of Table I).

STGraph is "capable of learning from static graphs" like its predecessors;
:class:`GNNStack` composes any of the library's spatial layers into an
N-layer model with activations and dropout for standard node
classification — the non-temporal workload every GNN framework supports.
"""

from __future__ import annotations

from typing import Callable

from repro.core.executor import TemporalExecutor
from repro.nn.gcn import GCNConv
from repro.tensor import functional as F
from repro.tensor.nn import Module, ModuleList
from repro.tensor.tensor import Tensor

__all__ = ["GNNStack"]


class GNNStack(Module):
    """``num_layers`` spatial layers with relu + dropout in between.

    ``layer_factory(in_dim, out_dim)`` builds each layer (defaults to
    :class:`GCNConv`); the last layer produces ``out_features`` logits with
    no activation.
    """

    def __init__(
        self,
        in_features: int,
        hidden: int,
        out_features: int,
        num_layers: int = 2,
        dropout: float = 0.0,
        layer_factory: Callable[[int, int], Module] | None = None,
    ) -> None:
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        super().__init__()
        factory = layer_factory or (lambda i, o: GCNConv(i, o))
        dims = [in_features] + [hidden] * (num_layers - 1) + [out_features]
        self.layers = ModuleList([factory(dims[i], dims[i + 1]) for i in range(num_layers)])
        self.dropout = dropout
        self._dropout_seed = 0

    def forward(self, executor: TemporalExecutor, x: Tensor) -> Tensor:
        """Apply every layer with relu+dropout between (logits at the end)."""
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            x = layer(executor, x)
            if i != last:
                x = F.relu(x)
                if self.dropout > 0:
                    self._dropout_seed += 1
                    x = F.dropout(x, self.dropout, training=self.training, seed=self._dropout_seed)
        return x
