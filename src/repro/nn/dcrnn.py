"""Diffusion Convolutional Recurrent Neural Network (Li et al., DCRNN).

The canonical traffic-forecasting TGNN.  Its spatial half is the
*diffusion convolution*: random walks along **both** edge directions,

    DConv(x) = Σ_{k<K} (D_O^{-1} A)^k x · W_k^{fwd} + (D_I^{-1} Aᵀ)^k x · W_k^{bwd}

which maps exactly onto the compiler's in/out mean aggregations:
``(D_O^{-1}A)x`` is the mean over *out*-neighbors and ``(D_I^{-1}Aᵀ)x`` the
mean over in-neighbors — one fused kernel each.  DCRNN is then a GRU whose
gate maps are diffusion convolutions.
"""

from __future__ import annotations

from repro.core.executor import TemporalExecutor
from repro.core.module import VertexCentricLayer
from repro.tensor import functional as F
from repro.tensor import init
from repro.tensor.nn import Module, Parameter
from repro.tensor.tensor import Tensor

__all__ = ["DConv", "DCRNN"]


def _walk_out(v):
    return v.agg_mean_out(lambda nb: nb.h)


def _walk_in(v):
    return v.agg_mean(lambda nb: nb.h)


class DConv(VertexCentricLayer):
    """K-step bidirectional diffusion convolution."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        k: int = 2,
        bias: bool = True,
        fused: bool = True,
        engine: str = "kernel",
    ) -> None:
        if k < 1:
            raise ValueError("diffusion steps k must be >= 1")
        super().__init__(
            _walk_out,
            feature_widths={"h": "v"},
            grad_features={"h"},
            name="dconv_walk_out",
            fused=fused,
            engine=engine,
        )
        # second compiled program for the reverse walk
        from repro.compiler.program import compile_vertex_program

        self._walk_in_prog = compile_vertex_program(
            _walk_in, feature_widths={"h": "v"}, grad_features={"h"},
            name="dconv_walk_in", fused=fused, engine=engine,
        )
        self.in_features = in_features
        self.out_features = out_features
        self.k = k
        self.weight_self = Parameter(init.glorot_uniform((in_features, out_features)))
        for i in range(1, k):
            setattr(self, f"weight_fwd_{i}", Parameter(init.glorot_uniform((in_features, out_features))))
            setattr(self, f"weight_bwd_{i}", Parameter(init.glorot_uniform((in_features, out_features))))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, executor: TemporalExecutor, x: Tensor) -> Tensor:
        """Accumulate K bidirectional random-walk terms."""
        from repro.core.module import graph_aggregate

        out = F.matmul(x, self.weight_self)  # k = 0 term (identity walk)
        fwd_state, bwd_state = x, x
        for i in range(1, self.k):
            fwd_state = self.aggregate(executor, {"h": fwd_state})
            bwd_state = graph_aggregate(self._walk_in_prog, executor, {"h": bwd_state})
            out = F.add(out, F.matmul(fwd_state, getattr(self, f"weight_fwd_{i}")))
            out = F.add(out, F.matmul(bwd_state, getattr(self, f"weight_bwd_{i}")))
        if self.bias is not None:
            out = F.add(out, self.bias)
        return out


class DCRNN(Module):
    """GRU cell whose gates are diffusion convolutions over [x ‖ h]."""

    def __init__(self, in_features: int, out_features: int, k: int = 2, **conv_kwargs) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.conv_z = DConv(in_features + out_features, out_features, k, **conv_kwargs)
        self.conv_r = DConv(in_features + out_features, out_features, k, **conv_kwargs)
        self.conv_h = DConv(in_features + out_features, out_features, k, **conv_kwargs)

    def initial_state(self, num_nodes: int) -> Tensor:
        """Zero hidden state."""
        return F.zeros((num_nodes, self.out_features))

    def forward(self, executor: TemporalExecutor, x: Tensor, h: Tensor | None = None) -> Tensor:
        """One diffusion-GRU step at the executor's current timestamp."""
        if h is None:
            h = self.initial_state(x.shape[0])
        xh = F.concat([x, h], axis=1)
        z = F.sigmoid(self.conv_z(executor, xh))
        r = F.sigmoid(self.conv_r(executor, xh))
        x_rh = F.concat([x, F.mul(r, h)], axis=1)
        h_tilde = F.tanh(self.conv_h(executor, x_rh))
        return F.add(F.mul(z, h), F.mul(F.sub(1.0, z), h_tilde))
