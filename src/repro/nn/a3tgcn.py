"""A3TGCN (Bai et al.): attention over a window of TGCN hidden states.

Runs a TGCN cell across ``periods`` consecutive feature slices of the same
timestamp window and combines the per-period hidden states with a learned
softmax attention — the "attention-based mechanism" family of temporal
models the paper's background section describes.
"""

from __future__ import annotations

from repro.core.executor import TemporalExecutor
from repro.nn.tgcn import TGCN
from repro.tensor import functional as F
from repro.tensor import init
from repro.tensor.nn import Module, Parameter
from repro.tensor.tensor import Tensor

__all__ = ["A3TGCN"]


class A3TGCN(Module):
    """TGCN over a window of periods combined by learned softmax attention."""
    def __init__(self, in_features: int, out_features: int, periods: int, **conv_kwargs) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.periods = periods
        self.tgcn = TGCN(in_features, out_features, **conv_kwargs)
        self.attention = Parameter(init.uniform((periods,), -0.5, 0.5))

    def forward(self, executor: TemporalExecutor, xs: list[Tensor], h: Tensor | None = None) -> Tensor:
        """``xs`` is a list of ``periods`` feature matrices for the current
        window (all under the executor's current snapshot)."""
        if len(xs) != self.periods:
            raise ValueError(f"expected {self.periods} period slices, got {len(xs)}")
        weights = F.softmax(self.attention, axis=0)
        out = None
        state = h
        for p, x in enumerate(xs):
            state = self.tgcn(executor, x, state)
            w_p = F.getitem(weights, slice(p, p + 1))
            contrib = F.mul(state, w_p)
            out = contrib if out is None else F.add(out, contrib)
        return out
