"""TGCN: Temporal Graph Convolutional Network (Zhao et al.).

The model both the paper and this reproduction benchmark with ("the default
configuration of TGCN since it serves as a basic TGNN model with both
temporal and GNN components").  Follows the PyG-T structure: one GCN
convolution per GRU gate, concatenated with the hidden state through a
linear map::

    z  = σ(W_z·[gcn_z(X) ‖ H])
    r  = σ(W_r·[gcn_r(X) ‖ H])
    h̃  = tanh(W_h·[gcn_h(X) ‖ r⊙H])
    H' = z⊙H + (1−z)⊙h̃

The hidden state threads through the tensor-engine tape, so backward over a
sequence is true BPTT; the graph aggregations inside each gate store their
(pruned) state on the executor's State Stack per timestamp.
"""

from __future__ import annotations

from repro.core.executor import TemporalExecutor
from repro.nn.gcn import GCNConv
from repro.tensor import functional as F
from repro.tensor.nn import Linear, Module
from repro.tensor.tensor import Tensor

__all__ = ["TGCN"]


class TGCN(Module):
    """The benchmark TGNN: one GCN per GRU gate (see module docstring)."""
    def __init__(self, in_features: int, out_features: int, add_self_loops: bool = True, **conv_kwargs) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.conv_z = GCNConv(in_features, out_features, add_self_loops=add_self_loops, **conv_kwargs)
        self.lin_z = Linear(2 * out_features, out_features)
        self.conv_r = GCNConv(in_features, out_features, add_self_loops=add_self_loops, **conv_kwargs)
        self.lin_r = Linear(2 * out_features, out_features)
        self.conv_h = GCNConv(in_features, out_features, add_self_loops=add_self_loops, **conv_kwargs)
        self.lin_h = Linear(2 * out_features, out_features)

    def initial_state(self, num_nodes: int) -> Tensor:
        """Zero hidden state for ``num_nodes`` vertices."""
        return F.zeros((num_nodes, self.out_features))

    def forward(self, executor: TemporalExecutor, x: Tensor, h: Tensor | None = None) -> Tensor:
        """One recurrent step at the executor's current timestamp."""
        if h is None:
            h = self.initial_state(x.shape[0])
        z = F.sigmoid(self.lin_z(F.concat([self.conv_z(executor, x), h], axis=1)))
        r = F.sigmoid(self.lin_r(F.concat([self.conv_r(executor, x), h], axis=1)))
        h_tilde = F.tanh(self.lin_h(F.concat([self.conv_h(executor, x), F.mul(r, h)], axis=1)))
        return F.add(F.mul(z, h), F.mul(F.sub(1.0, z), h_tilde))
