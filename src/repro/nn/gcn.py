"""Graph Convolutional layer (Kipf & Welling) as a vertex program.

The vertex-centric definition — with symmetric normalization and optional
self-loops folded into the program so the whole aggregation is one fused
kernel::

    out(v) = Σ_{u→v} h_u·norm_u·norm_v  (+ h_v·norm_v²  with self-loops)

``norm = 1/√(deg+1)`` (or ``1/√max(deg,1)`` without self-loops) is a
structural constant recomputed per snapshot from the executor's context and
cached on it; only ``h`` receives gradients, so the compiler's saved-tensor
analysis keeps just ``norm`` on the State Stack per timestamp.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.runtime import GraphContext
from repro.core.executor import TemporalExecutor
from repro.core.module import VertexCentricLayer
from repro.tensor import functional as F
from repro.tensor import init
from repro.tensor.nn import Parameter
from repro.tensor.tensor import Tensor

__all__ = ["GCNConv", "gcn_norm"]


def gcn_norm(ctx: GraphContext, add_self_loops: bool) -> np.ndarray:
    """Per-snapshot symmetric-normalization vector, cached on the context."""
    attr = "_gcn_norm_sl" if add_self_loops else "_gcn_norm"
    cached = getattr(ctx, attr, None)
    if cached is None:
        deg = ctx.in_deg + 1 if add_self_loops else np.maximum(ctx.in_deg, 1)
        cached = (1.0 / np.sqrt(deg)).astype(np.float32)
        setattr(ctx, attr, cached)
    return cached


def _gcn_program_self_loops(v):
    return v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm + v.h * v.norm * v.norm


def _gcn_program(v):
    return v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm


def _gcn_program_weighted(v):
    """Edge-weighted variant (no self-loops): Definition II.1 allows edge
    features to change per timestamp; ``w`` is bound per aggregation call."""
    return v.agg_sum(lambda nb: nb.h * nb.norm * nb.edge.w) * v.norm


class GCNConv(VertexCentricLayer):
    """Kipf-Welling graph convolution as one fused vertex program."""
    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        add_self_loops: bool = True,
        edge_weighted: bool = False,
        fused: bool = True,
        state_stack_opt: bool = True,
        engine: str = "kernel",
    ) -> None:
        if edge_weighted and add_self_loops:
            raise ValueError(
                "edge_weighted GCN has no self-loop weights; pass "
                "add_self_loops=False"
            )
        if edge_weighted:
            fn, name = _gcn_program_weighted, "gcn_weighted"
        elif add_self_loops:
            fn, name = _gcn_program_self_loops, "gcn_self_loops"
        else:
            fn, name = _gcn_program, "gcn"
        super().__init__(
            fn,
            feature_widths={"h": "v", "norm": "s"},
            grad_features={"h"},
            name=name,
            fused=fused,
            state_stack_opt=state_stack_opt,
            engine=engine,
        )
        self.in_features = in_features
        self.out_features = out_features
        self.add_self_loops = add_self_loops
        self.edge_weighted = edge_weighted
        self.weight = Parameter(init.glorot_uniform((in_features, out_features)))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(
        self,
        executor: TemporalExecutor,
        x: Tensor,
        edge_weight: np.ndarray | None = None,
    ) -> Tensor:
        """``edge_weight``: label-indexed per-edge weights, required iff the
        layer was built with ``edge_weighted=True``; may differ every
        timestamp (static-temporal edge signals, Definition II.1)."""
        ctx = executor.current_context()
        norm = gcn_norm(ctx, self.add_self_loops)
        h = F.matmul(x, self.weight)
        if self.edge_weighted:
            if edge_weight is None:
                raise ValueError("edge_weighted GCNConv needs edge_weight")
            out = self.aggregate(executor, {"h": h, "norm": norm}, {"w": edge_weight})
        else:
            out = self.aggregate(executor, {"h": h, "norm": norm})
        if self.bias is not None:
            out = F.add(out, self.bias)
        return out
