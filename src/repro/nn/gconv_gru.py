"""GConvGRU (Seo et al.): GRU whose input/state maps are graph convolutions.

Each gate applies one convolution to the input and one to the hidden state
(Chebyshev K=1 reduces to GCN-style propagation)::

    z  = σ(conv_xz(X) + conv_hz(H))
    r  = σ(conv_xr(X) + conv_hr(H))
    h̃  = tanh(conv_xh(X) + conv_hh(r⊙H))
    H' = z⊙H + (1−z)⊙h̃
"""

from __future__ import annotations

from repro.core.executor import TemporalExecutor
from repro.nn.gcn import GCNConv
from repro.tensor import functional as F
from repro.tensor.nn import Module
from repro.tensor.tensor import Tensor

__all__ = ["GConvGRU"]


class GConvGRU(Module):
    """GRU whose input/state maps are graph convolutions (see module docstring)."""
    def __init__(self, in_features: int, out_features: int, **conv_kwargs) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.conv_xz = GCNConv(in_features, out_features, **conv_kwargs)
        self.conv_hz = GCNConv(out_features, out_features, bias=False, **conv_kwargs)
        self.conv_xr = GCNConv(in_features, out_features, **conv_kwargs)
        self.conv_hr = GCNConv(out_features, out_features, bias=False, **conv_kwargs)
        self.conv_xh = GCNConv(in_features, out_features, **conv_kwargs)
        self.conv_hh = GCNConv(out_features, out_features, bias=False, **conv_kwargs)

    def initial_state(self, num_nodes: int) -> Tensor:
        """Zero hidden state."""
        return F.zeros((num_nodes, self.out_features))

    def forward(self, executor: TemporalExecutor, x: Tensor, h: Tensor | None = None) -> Tensor:
        """One recurrent step at the executor's current timestamp."""
        if h is None:
            h = self.initial_state(x.shape[0])
        z = F.sigmoid(F.add(self.conv_xz(executor, x), self.conv_hz(executor, h)))
        r = F.sigmoid(F.add(self.conv_xr(executor, x), self.conv_hr(executor, h)))
        h_tilde = F.tanh(F.add(self.conv_xh(executor, x), self.conv_hh(executor, F.mul(r, h))))
        return F.add(F.mul(z, h), F.mul(F.sub(1.0, z), h_tilde))
