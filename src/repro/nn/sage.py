"""GraphSAGE layer (mean aggregator variant)."""

from __future__ import annotations

from repro.core.executor import TemporalExecutor
from repro.core.module import VertexCentricLayer
from repro.tensor import functional as F
from repro.tensor import init
from repro.tensor.nn import Parameter
from repro.tensor.tensor import Tensor

__all__ = ["SAGEConv"]


def _sage_mean_program(v):
    return v.agg_mean(lambda nb: nb.h)


class SAGEConv(VertexCentricLayer):
    """``out = x·W_self + mean_{u→v}(h_u)·W_nb + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        fused: bool = True,
        state_stack_opt: bool = True,
        engine: str = "kernel",
    ) -> None:
        super().__init__(
            _sage_mean_program,
            feature_widths={"h": "v"},
            grad_features={"h"},
            name="sage_mean",
            fused=fused,
            state_stack_opt=state_stack_opt,
            engine=engine,
        )
        self.in_features = in_features
        self.out_features = out_features
        self.weight_self = Parameter(init.glorot_uniform((in_features, out_features)))
        self.weight_nb = Parameter(init.glorot_uniform((in_features, out_features)))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, executor: TemporalExecutor, x: Tensor) -> Tensor:
        """Self projection plus projected neighbor mean."""
        nb_mean = self.aggregate(executor, {"h": x})
        out = F.add(F.matmul(x, self.weight_self), F.matmul(nb_mean, self.weight_nb))
        if self.bias is not None:
            out = F.add(out, self.bias)
        return out
