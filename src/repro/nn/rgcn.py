"""Relational GCN (Schlichtkrull et al.), mentioned alongside GCN/ChebConv
in paper §III as a PyG-T building block.

Each relation ``r`` has its own weight matrix; messages flow only along
edges of that relation, normalized by the per-relation in-degree::

    out(v) = x_v·W_self + Σ_r Σ_{u →_r v} (1/c_{v,r}) · x_u·W_r

Relation routing uses the compiler's edge-feature mechanism: a 0/1 mask per
relation (label-indexed, converted to canonical order at bind time) is the
SpMM weight, so one compiled program serves every relation and the layer
just rebinds masks — no relation-specific kernels.
"""

from __future__ import annotations

import numpy as np

from repro.core.executor import TemporalExecutor
from repro.core.module import VertexCentricLayer
from repro.compiler.runtime import GraphContext
from repro.tensor import functional as F
from repro.tensor import init
from repro.tensor.nn import Parameter
from repro.tensor.tensor import Tensor

__all__ = ["RGCNConv"]


def _masked_sum(v):
    return v.agg_sum(lambda nb: nb.h * nb.edge.mask)


class RGCNConv(VertexCentricLayer):
    """Relational GCN: per-relation weights routed by edge masks."""
    def __init__(
        self,
        in_features: int,
        out_features: int,
        num_relations: int,
        bias: bool = True,
        fused: bool = True,
        engine: str = "kernel",
    ) -> None:
        if num_relations < 1:
            raise ValueError("num_relations must be >= 1")
        super().__init__(
            _masked_sum,
            feature_widths={"h": "v"},
            grad_features={"h"},
            name="rgcn_masked_sum",
            fused=fused,
            engine=engine,
        )
        self.in_features = in_features
        self.out_features = out_features
        self.num_relations = num_relations
        self.weight_self = Parameter(init.glorot_uniform((in_features, out_features)))
        for r in range(num_relations):
            setattr(self, f"weight_rel_{r}", Parameter(init.glorot_uniform((in_features, out_features))))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None
        self._mask_cache: tuple[int, list[np.ndarray], list[np.ndarray]] | None = None

    def _relation_masks(
        self, ctx: GraphContext, edge_relations: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Per-relation (mask, inverse-count) arrays, cached per context."""
        if self._mask_cache is not None and self._mask_cache[0] == id(ctx):
            return self._mask_cache[1], self._mask_cache[2]
        if len(edge_relations) != ctx.num_edges:
            raise ValueError(
                f"edge_relations has {len(edge_relations)} entries for "
                f"{ctx.num_edges} edges"
            )
        masks, inv_counts = [], []
        for r in range(self.num_relations):
            mask = (edge_relations == r).astype(np.float32)
            masks.append(mask)
            # c_{v,r}: in-edges of v with relation r (clamped for stability)
            counts = np.zeros(ctx.num_nodes, dtype=np.float32)
            np.add.at(counts, ctx.dst_per_edge, mask[ctx.fwd_eids])
            inv_counts.append(1.0 / np.maximum(counts, 1.0))
        self._mask_cache = (id(ctx), masks, inv_counts)
        return masks, inv_counts

    def forward(
        self,
        executor: TemporalExecutor,
        x: Tensor,
        edge_relations: np.ndarray,
    ) -> Tensor:
        """``edge_relations``: int array, relation id per edge *label*."""
        ctx = executor.current_context()
        masks, inv_counts = self._relation_masks(ctx, np.asarray(edge_relations))
        out = F.matmul(x, self.weight_self)
        for r in range(self.num_relations):
            h_r = F.matmul(x, getattr(self, f"weight_rel_{r}"))
            agg = self.aggregate(executor, {"h": h_r}, {"mask": masks[r]})
            agg = F.mul(agg, Tensor(inv_counts[r].reshape(-1, 1)))
            out = F.add(out, agg)
        if self.bias is not None:
            out = F.add(out, self.bias)
        return out
