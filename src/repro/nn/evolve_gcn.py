"""EvolveGCN-O (Pareja et al.): GCN whose weights evolve over time.

The GCN weight matrix is treated as the hidden state of a GRU and updated
at every timestamp (``W_t = GRU(W_{t-1}, W_{t-1})``), so the spatial layer
itself adapts to the evolving graph — a natural fit for DTDGs and one of
the "new GNN/TGNN layer APIs" the paper's future-work section calls for.

Stateful across a sequence: call :meth:`reset_state` at sequence start.
"""

from __future__ import annotations

import numpy as np

from repro.core.executor import TemporalExecutor
from repro.core.module import graph_aggregate
from repro.compiler.program import compile_vertex_program
from repro.nn.gcn import gcn_norm, _gcn_program_self_loops
from repro.tensor import functional as F
from repro.tensor import init
from repro.tensor.nn import GRUCell, Module, Parameter
from repro.tensor.tensor import Tensor

__all__ = ["EvolveGCNO"]


class EvolveGCNO(Module):
    """GCN whose weight matrix evolves through a GRU each timestamp."""
    def __init__(
        self,
        in_features: int,
        out_features: int,
        fused: bool = True,
        engine: str = "kernel",
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.initial_weight = Parameter(init.glorot_uniform((in_features, out_features)))
        self.evolve = GRUCell(out_features, out_features)
        self.program = compile_vertex_program(
            _gcn_program_self_loops,
            feature_widths={"h": "v", "norm": "s"},
            grad_features={"h"},
            name="gcn_self_loops",
            fused=fused,
            engine=engine,
        )
        self._weight: Tensor | None = None

    def reset_state(self) -> None:
        """Restart weight evolution from the trainable initial weight."""
        self._weight = None

    def forward(self, executor: TemporalExecutor, x: Tensor) -> Tensor:
        """Evolve the weight, then run the GCN aggregation with it."""
        w_prev = self.initial_weight if self._weight is None else self._weight
        # Treat each input-dimension row of W as a batch element of the GRU.
        w_next = self.evolve(w_prev, w_prev)
        self._weight = w_next
        ctx = executor.current_context()
        norm = gcn_norm(ctx, add_self_loops=True)
        h = F.matmul(x, w_next)
        return graph_aggregate(self.program, executor, {"h": h, "norm": norm})
