"""Chebyshev spectral convolution (Defferrard et al.), order K.

One of the spatial layers PyG-T composes its recurrences from (paper §III:
"GCN, ChebConv, RGCN").  With the standard ``λ_max ≈ 2`` approximation the
scaled Laplacian is ``L̂ = L − I = −D^{-1/2} A D^{-1/2}``, so applying it is
a single compiled vertex program, and the Chebyshev recurrence

    T_0 = x,   T_1 = L̂x,   T_k = 2·L̂·T_{k-1} − T_{k-2}

runs at the layer level through the tensor engine (each hop is one kernel
launch; its saved state goes through the executor's State Stack like any
other aggregation).
"""

from __future__ import annotations

import numpy as np

from repro.core.executor import TemporalExecutor
from repro.core.module import VertexCentricLayer
from repro.nn.gcn import gcn_norm
from repro.tensor import functional as F
from repro.tensor import init
from repro.tensor.nn import Parameter
from repro.tensor.tensor import Tensor

__all__ = ["ChebConv"]


def _scaled_laplacian_apply(v):
    """L̂x = −(norm-weighted neighbor sum) under the λ_max=2 approximation."""
    return -(v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm)


class ChebConv(VertexCentricLayer):
    """``out = Σ_{k<K} T_k(L̂)·x · W_k + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        k: int = 2,
        bias: bool = True,
        fused: bool = True,
        state_stack_opt: bool = True,
        engine: str = "kernel",
    ) -> None:
        if k < 1:
            raise ValueError("Chebyshev order k must be >= 1")
        super().__init__(
            _scaled_laplacian_apply,
            feature_widths={"h": "v", "norm": "s"},
            grad_features={"h"},
            name="cheb_laplacian",
            fused=fused,
            state_stack_opt=state_stack_opt,
            engine=engine,
        )
        self.in_features = in_features
        self.out_features = out_features
        self.k = k
        for i in range(k):
            setattr(self, f"weight_{i}", Parameter(init.glorot_uniform((in_features, out_features))))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def _lap(self, executor: TemporalExecutor, x: Tensor, norm: np.ndarray) -> Tensor:
        return self.aggregate(executor, {"h": x, "norm": norm})

    def forward(self, executor: TemporalExecutor, x: Tensor) -> Tensor:
        """Run the K-term Chebyshev recurrence at the current snapshot."""
        ctx = executor.current_context()
        norm = gcn_norm(ctx, add_self_loops=False)
        t_prev_prev = x  # T_0
        out = F.matmul(t_prev_prev, self.weight_0)
        if self.k > 1:
            t_prev = self._lap(executor, x, norm)  # T_1
            out = F.add(out, F.matmul(t_prev, self.weight_1))
            for i in range(2, self.k):
                t_curr = F.sub(F.mul(self._lap(executor, t_prev, norm), 2.0), t_prev_prev)
                out = F.add(out, F.matmul(t_curr, getattr(self, f"weight_{i}")))
                t_prev_prev, t_prev = t_prev, t_curr
        if self.bias is not None:
            out = F.add(out, self.bias)
        return out
