"""GConvLSTM (Seo et al.): LSTM with graph-convolutional gate maps."""

from __future__ import annotations

from repro.core.executor import TemporalExecutor
from repro.nn.gcn import GCNConv
from repro.tensor import functional as F
from repro.tensor.nn import Module
from repro.tensor.tensor import Tensor

__all__ = ["GConvLSTM"]


class GConvLSTM(Module):
    """LSTM with graph-convolutional gate maps."""
    def __init__(self, in_features: int, out_features: int, **conv_kwargs) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        for gate in ("i", "f", "c", "o"):
            setattr(self, f"conv_x{gate}", GCNConv(in_features, out_features, **conv_kwargs))
            setattr(self, f"conv_h{gate}", GCNConv(out_features, out_features, bias=False, **conv_kwargs))

    def initial_state(self, num_nodes: int) -> tuple[Tensor, Tensor]:
        """Zero (hidden, cell) states."""
        return (
            F.zeros((num_nodes, self.out_features)),
            F.zeros((num_nodes, self.out_features)),
        )

    def forward(
        self,
        executor: TemporalExecutor,
        x: Tensor,
        h: Tensor | None = None,
        c: Tensor | None = None,
    ) -> tuple[Tensor, Tensor]:
        """One recurrent step; returns ``(h, c)``."""
        if h is None or c is None:
            h, c = self.initial_state(x.shape[0])
        i = F.sigmoid(F.add(self.conv_xi(executor, x), self.conv_hi(executor, h)))
        f = F.sigmoid(F.add(self.conv_xf(executor, x), self.conv_hf(executor, h)))
        g = F.tanh(F.add(self.conv_xc(executor, x), self.conv_hc(executor, h)))
        o = F.sigmoid(F.add(self.conv_xo(executor, x), self.conv_ho(executor, h)))
        c_next = F.add(F.mul(f, c), F.mul(i, g))
        h_next = F.mul(o, F.tanh(c_next))
        return h_next, c_next
