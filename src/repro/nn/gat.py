"""Graph Attention layer (Veličković et al.), single head.

Attention scores are per-edge *scalars*, so the whole attention pipeline
(leaky-relu score, softmax over in-edges, weighted aggregation) stays in
edge-scalar + node space — the compiler rejects any formulation that would
need an ``E×F`` tensor.
"""

from __future__ import annotations

from repro.core.executor import TemporalExecutor
from repro.core.module import VertexCentricLayer
from repro.compiler.symbols import vfn
from repro.tensor import functional as F
from repro.tensor import init
from repro.tensor.nn import Parameter
from repro.tensor.tensor import Tensor

__all__ = ["GATConv"]


def _gat_program(v):
    alpha = v.edge_softmax(lambda nb: vfn.leaky_relu(nb.el + v.er, slope=0.2))
    return v.agg_sum(lambda nb: nb.ft * alpha)


class GATConv(VertexCentricLayer):
    """Multi-head graph attention.

    Each head has its own projection and attention vectors; per-head
    attention stays a per-edge *scalar* (one compiled aggregation per head,
    all sharing the same cached kernel).  Head outputs are concatenated
    (``concat=True``, giving ``heads·out_features`` columns) or averaged.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        heads: int = 1,
        concat: bool = True,
        bias: bool = True,
        fused: bool = True,
        state_stack_opt: bool = True,
        engine: str = "kernel",
    ) -> None:
        if heads < 1:
            raise ValueError("heads must be >= 1")
        super().__init__(
            _gat_program,
            feature_widths={"ft": "v", "el": "s", "er": "s"},
            grad_features={"ft", "el", "er"},
            name="gat",
            fused=fused,
            state_stack_opt=state_stack_opt,
            engine=engine,
        )
        self.in_features = in_features
        self.out_features = out_features
        self.heads = heads
        self.concat = concat
        for h in range(heads):
            setattr(self, f"weight_{h}", Parameter(init.glorot_uniform((in_features, out_features))))
            setattr(self, f"attn_l_{h}", Parameter(init.glorot_uniform((out_features, 1))))
            setattr(self, f"attn_r_{h}", Parameter(init.glorot_uniform((out_features, 1))))
        bias_dim = out_features * heads if concat else out_features
        self.bias = Parameter(init.zeros((bias_dim,))) if bias else None

    # single-head attribute aliases keep the common case ergonomic
    @property
    def weight(self) -> Parameter:
        """Head 0's projection (single-head convenience alias)."""
        return self.weight_0

    @property
    def attn_l(self) -> Parameter:
        """Head 0's source attention vector."""
        return self.attn_l_0

    @property
    def attn_r(self) -> Parameter:
        """Head 0's destination attention vector."""
        return self.attn_r_0

    def _head(self, executor: TemporalExecutor, x: Tensor, h: int) -> Tensor:
        ft = F.matmul(x, getattr(self, f"weight_{h}"))
        el = F.reshape(F.matmul(ft, getattr(self, f"attn_l_{h}")), (-1,))
        er = F.reshape(F.matmul(ft, getattr(self, f"attn_r_{h}")), (-1,))
        return self.aggregate(executor, {"ft": ft, "el": el, "er": er})

    def forward(self, executor: TemporalExecutor, x: Tensor) -> Tensor:
        """Attend per head; concatenate or average the head outputs."""
        outs = [self._head(executor, x, h) for h in range(self.heads)]
        if len(outs) == 1:
            out = outs[0]
        elif self.concat:
            out = F.concat(outs, axis=1)
        else:
            out = outs[0]
            for o in outs[1:]:
                out = F.add(out, o)
            out = F.mul(out, 1.0 / self.heads)
        if self.bias is not None:
            out = F.add(out, self.bias)
        return out
