"""STGraph's GNN / TGNN layer APIs (paper §VI-3).

Spatial layers are vertex-centric programs compiled by the Seastar core;
temporal models compose them with recurrent cells from the tensor engine,
"using GNN layers as building blocks" exactly as PyG-T structures its
recurrent layers (paper §V-A.1):

* :class:`GCNConv`, :class:`GATConv`, :class:`SAGEConv` — spatial layers;
* :class:`TGCN` — the benchmark model (GCN gates + GRU update);
* :class:`GConvGRU`, :class:`GConvLSTM` — Chebyshev-1 convolutional
  recurrences;
* :class:`A3TGCN` — attention over a window of TGCN hidden states;
* :class:`EvolveGCNO` — weight-evolving GCN (extension).
"""

from repro.nn.gcn import GCNConv
from repro.nn.gat import GATConv
from repro.nn.sage import SAGEConv
from repro.nn.cheb import ChebConv
from repro.nn.rgcn import RGCNConv
from repro.nn.tgcn import TGCN
from repro.nn.gconv_gru import GConvGRU
from repro.nn.gconv_lstm import GConvLSTM
from repro.nn.a3tgcn import A3TGCN
from repro.nn.evolve_gcn import EvolveGCNO
from repro.nn.dcrnn import DConv, DCRNN
from repro.nn.stack import GNNStack

__all__ = [
    "GNNStack",
    "GCNConv",
    "GATConv",
    "SAGEConv",
    "ChebConv",
    "RGCNConv",
    "TGCN",
    "GConvGRU",
    "GConvLSTM",
    "A3TGCN",
    "EvolveGCNO",
    "DConv",
    "DCRNN",
]
