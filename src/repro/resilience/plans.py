"""Named fault plans: the chaos schedules CI and the CLI run by name.

``repro chaos --plan smoke`` resolves here.  Plans are expressed against
the chaos harness's default workload (see :mod:`repro.resilience.chaos`:
3 epochs over 6 snapshots in sequences of 3, so sequences 0 and 1 per
epoch) — a plan file given by path can target any schedule.
"""

from __future__ import annotations

from repro.resilience.faults import BOUNDARY, FaultPlan, FaultSite

__all__ = ["NAMED_PLANS", "named_plan", "smoke_plan", "kill_matrix_plan"]


def smoke_plan() -> FaultPlan:
    """The CI gating plan: one kernel fault + one mid-sequence abort.

    * epoch 0, sequence 1, timestamp 4: the kernel launch fails **twice**
      (``times=2``), so the executor's ladder burns its single retry and
      falls back to the interpreter engine;
    * epoch 1, sequence 0, timestamp 1: the process is killed mid-sequence,
      discarding the in-flight stacks; the run resumes from the epoch-0
      boundary checkpoint.

    The run must still finish with final losses bitwise identical to an
    uninterrupted run, with both stacks drained after the abort.
    """
    return FaultPlan(
        name="smoke",
        sites=[
            FaultSite(kind="kernel", epoch=0, sequence=1, timestamp=4, times=2),
            FaultSite(kind="kill", epoch=1, sequence=0, timestamp=1),
        ],
    )


def kill_matrix_plan() -> FaultPlan:
    """Kills at three distinct boundaries — the determinism-gate schedule."""
    return FaultPlan(
        name="kill-matrix",
        sites=[
            FaultSite(kind="kill", epoch=0, sequence=0, timestamp=BOUNDARY),
            FaultSite(kind="kill", epoch=1, sequence=1, timestamp=BOUNDARY),
            FaultSite(kind="kill", epoch=2, sequence=0, timestamp=BOUNDARY),
        ],
    )


#: name -> zero-argument plan factory
NAMED_PLANS = {
    "smoke": smoke_plan,
    "kill-matrix": kill_matrix_plan,
}


def named_plan(name: str) -> FaultPlan:
    """Resolve a plan by registry name (raises ``KeyError`` with choices)."""
    try:
        return NAMED_PLANS[name]()
    except KeyError:
        raise KeyError(f"unknown fault plan {name!r}; available: {sorted(NAMED_PLANS)}") from None
