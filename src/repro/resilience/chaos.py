"""The chaos harness: run training under a fault plan and prove recovery.

:func:`run_chaos` is what ``repro chaos`` (and the gating CI smoke step)
executes.  It trains a small DTDG link-prediction workload twice:

1. an **uninterrupted reference** run, and
2. a **chaos** run under the given :class:`~repro.resilience.faults.FaultPlan`
   with boundary checkpointing — every :class:`SimulatedKill` tears the
   trainer down (fresh model, fresh graph, fresh optimizer, like a new
   process) and the run resumes from the last checkpoint until it finishes.

The harness then verifies the resilience contract end to end:

* final losses are **bitwise identical** to the reference run (injected
  kernel faults included — the interpreter fallback is bitwise-equal by
  construction, and resume replays the exact schedule);
* the executor's State/Graph Stacks are **drained** after every kill
  (``check_drained()`` passes on the aborted trainer);
* every planned fault actually **fired** (a plan that silently misses its
  sites proves nothing);
* kernel faults walked the **degradation ladder** (≥1 retry; an interpreter
  fallback whenever a site out-fired the single retry).

One device is shared across kill/resume attempts so the profiler's fault
counters and the :class:`~repro.obs.manifest.RunManifest` describe the whole
chaos run; checkpoints never depend on device state, so this does not weaken
the resume claim (the test suite separately resumes across fresh devices).
"""

from __future__ import annotations

import contextlib
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Any

from repro.resilience.faults import FaultInjector, FaultPlan, SimulatedKill, use_fault_plan

__all__ = ["ChaosReport", "run_chaos"]

#: Profiler counters the report surfaces (summed over all resume attempts,
#: since the device is shared across them).
_LADDER_COUNTERS = (
    "faults_injected",
    "kernel_retries",
    "engine_fallbacks",
    "cache_fault_rebuilds",
    "sequence_aborts",
)


@dataclass
class ChaosReport:
    """Outcome of one :func:`run_chaos` invocation."""

    plan: dict
    dataset: str
    epochs: int
    sequence_length: int
    timestamps: int
    kills: int
    reference_losses: list[float]
    chaos_losses: list[float]
    bitwise_identical: bool
    drained_after_each_kill: bool
    plan_exhausted: bool
    ladder_ok: bool
    faults_injected: dict[str, int]
    counters: dict[str, int]
    executor_stats: dict[str, int]
    manifest: Any = field(repr=False, default=None)
    #: flight-recorder summary when one was armed (``--flight-recorder``):
    #: {path, events_recorded, drains, captured_fault_window}
    flight_recorder: dict | None = None

    @property
    def ok(self) -> bool:
        """The full resilience contract held."""
        recorder_ok = (
            self.flight_recorder is None
            or not self.plan.get("sites")
            or self.flight_recorder.get("captured_fault_window", False)
        )
        return (
            self.bitwise_identical
            and self.drained_after_each_kill
            and self.plan_exhausted
            and self.ladder_ok
            and recorder_ok
        )

    def to_dict(self) -> dict:
        """JSON-ready form (manifest inlined)."""
        data = {
            k: v for k, v in self.__dict__.items() if k != "manifest"
        }
        data["ok"] = self.ok
        if self.manifest is not None:
            data["manifest"] = self.manifest.to_dict()
        return data

    def render(self) -> str:
        """Human-readable verdict block."""
        mark = "PASS" if self.ok else "FAIL"
        lines = [
            f"chaos {self.plan.get('name', '?')!r} on {self.dataset}: {mark}",
            f"  schedule         : {self.epochs} epochs x {self.timestamps} timestamps"
            f" (sequences of {self.sequence_length})",
            f"  kills / resumes  : {self.kills}",
            f"  faults injected  : {self.faults_injected or '{}'}",
            f"  ladder           : retries={self.counters.get('kernel_retries', 0)}"
            f" fallbacks={self.counters.get('engine_fallbacks', 0)}"
            f" aborts={self.counters.get('sequence_aborts', 0)}"
            f" [{'ok' if self.ladder_ok else 'BROKEN'}]",
            f"  stacks drained   : {'yes' if self.drained_after_each_kill else 'NO'}",
            f"  plan exhausted   : {'yes' if self.plan_exhausted else 'NO'}",
            f"  bitwise losses   : {'identical' if self.bitwise_identical else 'DIVERGED'}",
        ]
        if self.flight_recorder is not None:
            fr = self.flight_recorder
            lines.append(
                f"  flight recorder  : {fr.get('events_recorded', 0)} events, "
                f"{fr.get('drains', 0)} drains -> {fr.get('path') or '(unwritten)'}"
                f" [{'captured' if fr.get('captured_fault_window') else 'MISSED'}]"
            )
        if not self.bitwise_identical:
            lines.append(f"    reference: {self.reference_losses}")
            lines.append(f"    chaos    : {self.chaos_losses}")
        return "\n".join(lines)


def _validate_plan(plan: FaultPlan, epochs: int, timestamps: int) -> None:
    for site in plan.sites:
        if site.epoch is not None and site.epoch >= epochs:
            raise ValueError(
                f"fault site {site.to_dict()} targets epoch {site.epoch} "
                f"but the chaos workload runs only {epochs} epochs"
            )
        if site.timestamp is not None and site.timestamp >= timestamps:
            raise ValueError(
                f"fault site {site.to_dict()} targets timestamp {site.timestamp} "
                f"but the chaos workload has only {timestamps} timestamps"
            )


def run_chaos(
    plan: FaultPlan,
    dataset: str = "sx-mathoverflow",
    scale: float = 0.02,
    hidden: int = 8,
    epochs: int = 3,
    sequence_length: int = 3,
    max_snapshots: int = 6,
    seed: int = 0,
    lr: float = 1e-2,
    samples_per_timestamp: int = 32,
    workdir: str | pathlib.Path | None = None,
    tracer: Any | None = None,
    max_resumes: int = 8,
    engine: str | None = None,
    flight_recorder: str | pathlib.Path | None = None,
) -> ChaosReport:
    """Run the chaos schedule for ``plan``; returns a :class:`ChaosReport`.

    Defaults give the ``smoke`` workload: 3 epochs over 6 snapshots of a
    small ``sx-mathoverflow`` stand-in, in sequences of 3 (sequences 0 and
    1 per epoch).  ``tracer`` (a :class:`~repro.obs.tracer.Tracer`) records
    the chaos run only, so fault/retry/fallback instants land in the
    exported Chrome trace.  ``engine`` selects the execution engine for
    both the reference and the chaos run (``repro chaos --engine
    compiled`` exercises the compiled → kernel → interpreter ladder).
    ``flight_recorder`` arms a :class:`~repro.obs.flight.FlightRecorder`
    on the chaos run; every kill/abort/fallback appends its last-N-events
    window to the given JSONL path, and the report (plus its ``ok``
    verdict, when the plan has sites) asserts the fault window was
    actually captured.
    """
    import numpy as np

    from repro.dataset.dynamic_datasets import DYNAMIC_DATASETS
    from repro.device import Device, use_device
    from repro.obs.flight import FlightRecorder, use_flight_recorder
    from repro.obs.manifest import build_run_manifest
    from repro.obs.tracer import use_tracer
    from repro.tensor import init
    from repro.train.models import STGraphLinkPredictor
    from repro.train.tasks import make_link_prediction_samples
    from repro.train.trainer import STGraphTrainer

    if dataset not in DYNAMIC_DATASETS:
        raise KeyError(f"unknown dataset {dataset!r}; available: {sorted(DYNAMIC_DATASETS)}")
    ds = DYNAMIC_DATASETS[dataset](scale=scale, max_snapshots=max_snapshots)
    features = ds.features
    _validate_plan(plan, epochs, len(features))
    samples = make_link_prediction_samples(ds.dtdg, samples_per_timestamp, seed=seed)

    def fresh_trainer() -> STGraphTrainer:
        init.set_seed(seed)
        model = STGraphLinkPredictor(ds.feature_size, hidden)
        return STGraphTrainer(
            model, ds.build_gpma(), lr=lr, sequence_length=sequence_length,
            task="link_prediction", link_samples=samples, engine=engine,
        )

    # 1. Uninterrupted reference run on its own device.
    with use_device(Device()):
        reference_losses = fresh_trainer().train(features, epochs=epochs)

    # 2. Chaos run: one injector carried across kill/resume attempts.
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    ckpt = pathlib.Path(workdir) / f"chaos-{plan.name}.npz"
    injector = FaultInjector(plan)
    device = Device()
    kills = 0
    drained = True
    tracer_ctx = use_tracer(tracer) if tracer is not None else contextlib.nullcontext()
    recorder = FlightRecorder(path=flight_recorder) if flight_recorder is not None else None
    recorder_ctx = (
        use_flight_recorder(recorder) if recorder is not None else contextlib.nullcontext()
    )
    with use_device(device), use_fault_plan(injector), tracer_ctx, recorder_ctx:
        while True:
            trainer = fresh_trainer()
            try:
                chaos_losses = trainer.train(
                    features, epochs=epochs,
                    checkpoint_path=ckpt, resume=ckpt.exists(),
                )
                break
            except SimulatedKill:
                kills += 1
                try:
                    trainer.executor.check_drained()
                except RuntimeError:
                    drained = False
                if kills > max_resumes:
                    raise RuntimeError(
                        f"chaos run still dying after {max_resumes} resumes; "
                        f"plan: {plan.to_dict()}"
                    ) from None
        counters = {name: device.profiler.counter(name) for name in _LADDER_COUNTERS}
        manifest = build_run_manifest(
            device,
            tracer=tracer,
            graph=trainer.graph,
            run_name=f"chaos-{plan.name}",
            command=f"repro chaos --plan {plan.name}",
            system="stgraph",
            dataset=ds.name,
            results={
                "losses": chaos_losses,
                "reference_losses": reference_losses,
                "kills": kills,
            },
            resumed_from=trainer.resumed_from,
        )

    kernel_sites = [s for s in plan.sites if s.kind == "kernel"]
    ladder_ok = not kernel_sites or counters["kernel_retries"] >= 1
    if any(s.times >= 2 for s in kernel_sites):
        ladder_ok = ladder_ok and counters["engine_fallbacks"] >= 1
    engine_name = getattr(engine, "name", engine)
    if engine_name == "compiled" and any(s.times >= 3 for s in kernel_sites):
        # The compiled tier degrades compiled -> kernel -> interpreter, so a
        # site that out-fires the retry *and* the first fallback must show a
        # second fallback step before the run recovers.
        ladder_ok = ladder_ok and counters["engine_fallbacks"] >= 2

    bitwise = len(chaos_losses) == len(reference_losses) and all(
        np.float64(a) == np.float64(b) for a, b in zip(chaos_losses, reference_losses)
    )
    flight_summary = None
    if recorder is not None:
        # "Captured the fault window" = at least one drained window, and a
        # planned fault actually landed in the ring before a drain fired.
        captured = bool(recorder.drains) and any(
            d["events"] > 0 for d in recorder.drains
        )
        flight_summary = {
            "path": recorder.path,
            "events_recorded": recorder.total_recorded,
            "drains": recorder.drain_count(),
            "captured_fault_window": captured if plan.sites else True,
        }
    return ChaosReport(
        plan=plan.to_dict(),
        dataset=ds.name,
        epochs=epochs,
        sequence_length=sequence_length,
        timestamps=len(features),
        kills=kills,
        reference_losses=[float(x) for x in reference_losses],
        chaos_losses=[float(x) for x in chaos_losses],
        bitwise_identical=bool(bitwise),
        drained_after_each_kill=drained,
        plan_exhausted=injector.exhausted(),
        ladder_ok=bool(ladder_ok),
        faults_injected=injector.faults_injected(),
        counters=counters,
        executor_stats=trainer.executor.stats(),
        manifest=manifest,
        flight_recorder=flight_summary,
    )
