"""Deterministic, seeded fault injection for long training runs.

Long DTDG training walks Algorithm 1's LIFO backward pass over deep
State/Graph Stacks; a production deployment has to survive allocator OOM,
kernel-launch failures, corrupted snapshot caches, and plain process death
mid-sequence.  This module makes those faults *reproducible*: a
:class:`FaultPlan` names the exact ``(epoch, sequence, timestamp)`` sites
where faults fire, and a :class:`FaultInjector` — installed per run with
:func:`use_fault_plan`, mirroring the tracer/device stacks — arms them.

Fault kinds
-----------
``"oom"``
    The device allocator raises :class:`InjectedOOM` at the site (every
    tracked allocation is a potential firing point).
``"kernel"``
    :class:`~repro.device.kernel.KernelLauncher.launch` raises
    :class:`InjectedKernelFault`.  The executor's degradation ladder
    (``repro.core.module``) retries once, then falls back to the
    interpreter :class:`~repro.core.engine.ExecutionEngine`.
``"cache"``
    :class:`~repro.graph.gpma_graph.GPMAGraph` treats its PMA snapshot
    cache and CSR reuse cache as corrupted and falls back to the
    Algorithm-3 rebuild path (consumed via :meth:`FaultInjector.take`, no
    exception).
``"kill"``
    The trainer raises :class:`SimulatedKill` (a ``BaseException``, like
    ``KeyboardInterrupt`` — simulating process death that ordinary
    ``except Exception`` recovery must not swallow).

Sites are matched positionally: the trainer reports the epoch/sequence
cursor, the executor reports the timestamp.  ``None`` fields are wildcards;
``timestamp=BOUNDARY`` (``-1``) matches only the sequence boundary — after
the sequence's optimizer step and checkpoint write.  Every firing is
recorded on the injector, counted on the device profiler
(``faults_injected``), and emitted as a ``fault.<kind>`` tracer instant so
it is visible in the Chrome trace and the :class:`~repro.obs.manifest.RunManifest`.
"""

from __future__ import annotations

import contextlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.util.ctxstack import ContextStack

__all__ = [
    "BOUNDARY",
    "FAULT_KINDS",
    "InjectedFault",
    "InjectedKernelFault",
    "InjectedOOM",
    "InjectedCacheCorruption",
    "SimulatedKill",
    "FaultSite",
    "FaultPlan",
    "FaultInjector",
    "NullInjector",
    "NULL_INJECTOR",
    "current_injector",
    "use_fault_plan",
]

#: Sentinel timestamp for "at the sequence boundary" (after the optimizer
#: step and the boundary checkpoint write, before the next sequence).
BOUNDARY = -1

FAULT_KINDS = ("oom", "kernel", "cache", "kill")


class InjectedFault(RuntimeError):
    """Base class of all injected faults (except :class:`SimulatedKill`)."""


class InjectedKernelFault(InjectedFault):
    """A planned kernel-launch failure."""


class InjectedOOM(InjectedFault, MemoryError):
    """A planned allocator out-of-memory failure."""


class InjectedCacheCorruption(InjectedFault):
    """A planned snapshot/CSR-cache corruption flag (raised only when a
    ``"cache"`` site is consumed via :meth:`FaultInjector.fire` rather than
    the graceful :meth:`FaultInjector.take` path)."""


class SimulatedKill(BaseException):
    """A planned process kill.  Deliberately *not* an ``Exception``: like
    SIGKILL, it must escape ordinary error handling and end the run; only
    the resume machinery (and tests) catch it."""


_EXCEPTIONS: dict[str, type[BaseException]] = {
    "oom": InjectedOOM,
    "kernel": InjectedKernelFault,
    "cache": InjectedCacheCorruption,
    "kill": SimulatedKill,
}


@dataclass
class FaultSite:
    """One planned fault: kind + position + how many times it fires.

    ``None`` position fields are wildcards.  ``times`` bounds the number of
    firings (a kernel site with ``times=2`` fails the launch *and* its
    retry, forcing the interpreter fallback; ``times=1`` lets the retry
    succeed and exercises the differential check instead).
    """

    kind: str
    epoch: int | None = None
    sequence: int | None = None
    timestamp: int | None = None
    times: int = 1
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.times < 1:
            raise ValueError(f"fault site needs times >= 1, got {self.times}")

    def matches(self, epoch: int | None, sequence: int | None, timestamp: int | None) -> bool:
        """Whether this site is armed at the given position."""
        if self.fired >= self.times:
            return False
        if self.epoch is not None and self.epoch != epoch:
            return False
        if self.sequence is not None and self.sequence != sequence:
            return False
        if self.timestamp is not None and self.timestamp != timestamp:
            return False
        return True

    def to_dict(self) -> dict:
        """JSON-ready form (the fault-plan file format)."""
        return {
            "kind": self.kind,
            "epoch": self.epoch,
            "sequence": self.sequence,
            "timestamp": self.timestamp,
            "times": self.times,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSite":
        """Inverse of :meth:`to_dict` (unknown keys rejected loudly)."""
        known = {"kind", "epoch", "sequence", "timestamp", "times"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault-site fields: {sorted(unknown)}")
        return cls(**data)


@dataclass
class FaultPlan:
    """A named, ordered collection of :class:`FaultSite`\\ s.

    Plans are plain data: JSON round-trippable (``to_json``/``from_json``)
    so CI chaos runs and bug reports can pin the exact failure schedule.
    """

    name: str = "plan"
    seed: int = 0
    sites: list[FaultSite] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "name": self.name,
            "seed": self.seed,
            "sites": [s.to_dict() for s in self.sites],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(data.get("name", "plan")),
            seed=int(data.get("seed", 0)),
            sites=[FaultSite.from_dict(s) for s in data.get("sites", [])],
        )

    def to_json(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the plan as JSON; returns the path."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def from_json(cls, path: str | pathlib.Path) -> "FaultPlan":
        """Read a plan written by :meth:`to_json`."""
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))

    @classmethod
    def random(
        cls,
        seed: int,
        n_sites: int = 3,
        kinds: tuple[str, ...] = ("oom", "kernel", "cache"),
        epochs: int = 2,
        sequences: int = 2,
        timestamps: int = 8,
        name: str = "random",
    ) -> "FaultPlan":
        """A deterministic, seeded random plan (same seed → same sites)."""
        import numpy as np

        rng = np.random.default_rng(seed)
        sites = [
            FaultSite(
                kind=kinds[int(rng.integers(len(kinds)))],
                epoch=int(rng.integers(epochs)),
                sequence=int(rng.integers(sequences)),
                timestamp=int(rng.integers(timestamps)),
            )
            for _ in range(n_sites)
        ]
        return cls(name=name, seed=seed, sites=sites)


class FaultInjector:
    """Arms a :class:`FaultPlan` against the run's position cursor.

    The trainer advances the ``(epoch, sequence)`` cursor, the executor the
    ``timestamp``; hook points then ask the injector to :meth:`fire`
    (raising) or :meth:`take` (consume silently, for graceful-degradation
    paths that handle the fault in place).
    """

    enabled = True

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.epoch: int | None = None
        self.sequence: int | None = None
        self.timestamp: int | None = None
        #: every firing: {kind, epoch, sequence, timestamp}
        self.fired: list[dict[str, Any]] = []
        self._counts: dict[str, int] = {}

    # -- position cursor -------------------------------------------------
    def at_epoch(self, epoch: int) -> None:
        """Move the cursor to the start of ``epoch``."""
        self.epoch = int(epoch)
        self.sequence = None
        self.timestamp = None

    def at_sequence(self, sequence: int) -> None:
        """Move the cursor to the start of sequence ``sequence``."""
        self.sequence = int(sequence)
        self.timestamp = None

    def at_timestamp(self, timestamp: int | None) -> None:
        """Move the cursor to ``timestamp`` (or :data:`BOUNDARY` / None)."""
        self.timestamp = None if timestamp is None else int(timestamp)

    # -- firing ----------------------------------------------------------
    def _match(self, kind: str) -> FaultSite | None:
        for site in self.plan.sites:
            if site.kind == kind and site.matches(self.epoch, self.sequence, self.timestamp):
                return site
        return None

    def take(self, kind: str) -> FaultSite | None:
        """Consume a matching armed site without raising (or ``None``).

        The graceful-degradation hooks use this: the caller observes the
        fault and recovers in place (e.g. GPMA rebuilding via Algorithm 3).
        """
        site = self._match(kind)
        if site is None:
            return None
        site.fired += 1
        self._counts[kind] = self._counts.get(kind, 0) + 1
        record = {
            "kind": kind,
            "epoch": self.epoch,
            "sequence": self.sequence,
            "timestamp": self.timestamp,
        }
        self.fired.append(record)
        # Lazy imports: this module sits under the allocator/launcher and
        # must not create import cycles with repro.device.
        from repro.device import current_device
        from repro.obs.flight import current_flight_recorder
        from repro.obs.tracer import current_tracer

        current_device().profiler.count("faults_injected")
        tracer = current_tracer()
        if tracer.enabled:
            tracer.instant(f"fault.{kind}", "fault", **record)
        recorder = current_flight_recorder()
        if recorder.enabled:
            # The record dict's own "kind" key (the fault kind) would
            # collide with the event-kind parameter.
            fields = {k: v for k, v in record.items() if k != "kind"}
            recorder.record("fault", f"fault.{kind}", **fields)
            if kind == "kill":
                # A kill is about to unwind as a BaseException; boundary
                # kills never reach abort_sequence, so the drain must
                # happen here, before the raise.
                recorder.drain("simulated_kill")
        return site

    def fire(self, kind: str) -> None:
        """Raise the kind's exception if a site is armed here; else no-op."""
        site = self.take(kind)
        if site is not None:
            raise _EXCEPTIONS[kind](
                f"injected {kind} fault (plan {self.plan.name!r}, epoch={self.epoch}, "
                f"sequence={self.sequence}, timestamp={self.timestamp})"
            )

    # -- reporting -------------------------------------------------------
    def faults_injected(self) -> dict[str, int]:
        """Firings so far, keyed by kind (the RunManifest field)."""
        return dict(self._counts)

    def exhausted(self) -> bool:
        """True when every planned site has fired its full ``times``."""
        return all(s.fired >= s.times for s in self.plan.sites)


class NullInjector:
    """Disabled injector: the zero-overhead default on every hot path."""

    enabled = False

    def at_epoch(self, epoch: int) -> None:
        """No-op."""

    def at_sequence(self, sequence: int) -> None:
        """No-op."""

    def at_timestamp(self, timestamp: int | None) -> None:
        """No-op."""

    def take(self, kind: str) -> None:
        """Never armed."""
        return None

    def fire(self, kind: str) -> None:
        """Never fires."""

    def faults_injected(self) -> dict[str, int]:
        """Always empty."""
        return {}


NULL_INJECTOR = NullInjector()

# ---------------------------------------------------------------------------
# Current-injector plumbing (shared ContextStack; mirrors repro.obs.tracer /
# repro.device)
# ---------------------------------------------------------------------------
_STACK: ContextStack[FaultInjector | NullInjector] = ContextStack(NULL_INJECTOR)


def current_injector() -> FaultInjector | NullInjector:
    """The innermost active injector (:data:`NULL_INJECTOR` by default).

    Per-thread: fault sites never fire on a worker thread unless an injector
    is installed there — the prefetch scheduler deliberately leaves its
    worker uninstrumented so planned faults keep their positional meaning on
    the training loop's cursor.
    """
    return _STACK.current()


@contextlib.contextmanager
def use_fault_plan(plan: FaultPlan | FaultInjector | None) -> Iterator[FaultInjector | NullInjector]:
    """Run a block with ``plan`` armed; ``None`` keeps injection disabled.

    Accepts a prepared :class:`FaultInjector` too, so a resumed run can
    keep the same partially-consumed injector across trainer instances.
    """
    if plan is None:
        injector: FaultInjector | NullInjector = NULL_INJECTOR
    elif isinstance(plan, FaultInjector):
        injector = plan
    else:
        injector = FaultInjector(plan)
    with _STACK.use(injector):
        yield injector
