"""Fault tolerance for long training runs.

Three pieces (see ``docs/RESILIENCE.md``):

* :mod:`repro.resilience.faults` — deterministic, seeded fault injection
  (:func:`use_fault_plan` mirrors the tracer/device context stacks);
* :mod:`repro.resilience.plans` — named fault plans (``smoke``,
  ``kill-matrix``) that CI and ``repro chaos`` run by name;
* :mod:`repro.resilience.chaos` — the harness that trains under a plan,
  kills/resumes through boundary checkpoints, and verifies bitwise-identical
  losses, drained stacks, and the kernel degradation ladder.
"""

from repro.resilience.chaos import ChaosReport, run_chaos
from repro.resilience.faults import (
    BOUNDARY,
    FAULT_KINDS,
    NULL_INJECTOR,
    FaultInjector,
    FaultPlan,
    FaultSite,
    InjectedCacheCorruption,
    InjectedFault,
    InjectedKernelFault,
    InjectedOOM,
    NullInjector,
    SimulatedKill,
    current_injector,
    use_fault_plan,
)
from repro.resilience.plans import NAMED_PLANS, named_plan

__all__ = [
    "BOUNDARY",
    "FAULT_KINDS",
    "NULL_INJECTOR",
    "FaultInjector",
    "FaultPlan",
    "FaultSite",
    "InjectedCacheCorruption",
    "InjectedFault",
    "InjectedKernelFault",
    "InjectedOOM",
    "NullInjector",
    "SimulatedKill",
    "current_injector",
    "use_fault_plan",
    "NAMED_PLANS",
    "named_plan",
    "ChaosReport",
    "run_chaos",
]
