"""Evaluation metrics (NumPy, framework-free)."""

from __future__ import annotations

import numpy as np

__all__ = ["mae", "rmse", "roc_auc", "accuracy_from_logits"]


def mae(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error."""
    return float(np.abs(np.asarray(pred) - np.asarray(target)).mean())


def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error."""
    diff = np.asarray(pred) - np.asarray(target)
    return float(np.sqrt((diff * diff).mean()))


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Rank-based AUC (equivalent to the Mann-Whitney U statistic)."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    pos = labels > 0.5
    n_pos = int(pos.sum())
    n_neg = len(labels) - n_pos
    if n_pos == 0 or n_neg == 0:
        return float("nan")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(len(scores), dtype=np.float64)
    ranks[order] = np.arange(1, len(scores) + 1)
    # midranks for ties
    sorted_scores = scores[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + 1 + j + 1) / 2.0
        i = j + 1
    rank_sum_pos = ranks[pos].sum()
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def accuracy_from_logits(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct sign(logit) binary predictions."""
    pred = (np.asarray(logits) > 0).astype(np.float64)
    return float((pred == np.asarray(labels)).mean())
