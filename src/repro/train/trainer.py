"""Training loops.

:class:`STGraphTrainer` is Algorithm 1: the epoch is split into ordered,
disjoint sequences; each sequence accumulates per-timestamp losses forward
(pushing State/Graph Stack entries), then a single backward drains both
stacks in LIFO order; ``end_sequence_forward`` gives GPMA its snapshot
cache point.  :class:`BaselineTrainer` runs the identical schedule on the
PyG-T baseline, where the autodiff tape itself retains the whole sequence's
intermediates (no stacks, no pruning).

Both report per-epoch wall time so benches can reuse the loop directly.
"""

from __future__ import annotations

import pathlib
import time
from typing import Callable, Sequence

import numpy as np

from repro.core.executor import TemporalExecutor
from repro.device import current_device
from repro.graph.base import STGraphBase
from repro.obs.flight import current_flight_recorder
from repro.obs.server import TelemetryServer, TrainingProgress
from repro.obs.tracer import current_tracer
from repro.resilience.faults import BOUNDARY, current_injector
from repro.tensor import functional as F
from repro.tensor import init, optim
from repro.tensor.nn import Module
from repro.tensor.tensor import Tensor
from repro.train.checkpoint import load_training_checkpoint, save_training_checkpoint
from repro.train.tasks import LinkSamples

__all__ = ["STGraphTrainer", "BaselineTrainer"]


def _sequences(total: int, length: int) -> list[range]:
    return [range(s, min(s + length, total)) for s in range(0, total, length)]


class _LossAccumulator:
    def __init__(self) -> None:
        self.total: Tensor | None = None

    def add(self, loss: Tensor) -> None:
        self.total = loss if self.total is None else F.add(self.total, loss)


class STGraphTrainer:
    """Algorithm 1 over any :class:`STGraphBase` graph."""

    def __init__(
        self,
        model: Module,
        graph: STGraphBase,
        optimizer: optim.Optimizer | None = None,
        lr: float = 1e-2,
        sequence_length: int | None = None,
        task: str = "regression",
        link_samples: Sequence[LinkSamples] | None = None,
        pipeline: int = 0,
        engine: str | None = None,
        telemetry_port: int | None = None,
    ) -> None:
        if task not in ("regression", "link_prediction"):
            raise ValueError(f"unknown task {task!r}")
        if task == "link_prediction" and link_samples is None:
            raise ValueError("link_prediction task needs link_samples")
        self.model = model
        self.graph = graph
        self.optimizer = optimizer or optim.Adam(model.parameters(), lr=lr)
        self.sequence_length = sequence_length
        self.task = task
        self.link_samples = link_samples
        # pipeline = prefetch staleness bound (0 = strictly serial; k >= 1
        # builds up to k future snapshots on a worker thread).  Numerics are
        # identical either way — see docs/EXECUTOR.md §Pipelined execution.
        # engine = executor-wide ExecutionEngine override ("kernel",
        # "interpreter", "compiled"); None lets each program pick its own.
        # All registered engines are bitwise-identical, so this is a pure
        # speed/differential-testing switch.
        self.executor = TemporalExecutor(graph, engine=engine, pipeline=pipeline)
        self.epoch_times: list[float] = []
        #: checkpoint path this run resumed from (None for a fresh run);
        #: surfaced in the RunManifest's ``resumed_from`` field.
        self.resumed_from: str | None = None
        # telemetry_port = opt-in live scrape endpoint (0 = ephemeral port);
        # None keeps training headless.  The server runs on a daemon thread
        # for the duration of train() and never touches the numerics.
        self.telemetry_port = telemetry_port
        self.telemetry_server: TelemetryServer | None = None
        self.progress = TrainingProgress()

    def _loss_at(self, t: int, pred: Tensor, targets) -> Tensor:
        if self.task == "regression":
            return F.mse_loss(pred, targets[t])
        samples = self.link_samples[t]
        logits = self.model.score(pred, samples.pairs)
        return F.bce_with_logits_loss(logits, samples.labels)

    def train_epoch(self, features: Sequence[np.ndarray], targets: Sequence[np.ndarray] | None = None) -> float:
        """One epoch of Algorithm 1; returns the summed loss.

        Under an active tracer the epoch is a span tree:
        ``epoch > sequence > timestamp[t] > {graph_update, forward/<layer>}``
        on the way forward, then per-sequence ``backward`` (containing the
        per-layer ``backward/<layer>`` and ``graph_update`` spans of the
        LIFO walk) and ``optimizer`` spans.
        """
        return self._train_epoch_impl(features, targets, epoch_index=len(self.epoch_times))

    def _train_epoch_impl(
        self,
        features: Sequence[np.ndarray],
        targets: Sequence[np.ndarray] | None,
        epoch_index: int,
        start_sequence: int = 0,
        epoch_loss: float = 0.0,
        boundary_hook: Callable[[int, int, float], None] | None = None,
    ) -> float:
        """Algorithm 1 with resume/fault plumbing.

        ``start_sequence``/``epoch_loss`` let a resumed run re-enter an epoch
        mid-way; ``boundary_hook(epoch, sequence, loss_so_far)`` fires at
        every completed sequence boundary (the checkpoint write point).  The
        active fault injector's cursor is advanced alongside the loop and
        planned ``"kill"`` sites fire at timestamp starts and — via
        ``timestamp=BOUNDARY`` — right after the boundary checkpoint.

        Any exception escaping a sequence (including :class:`SimulatedKill`,
        a ``BaseException``) triggers :meth:`TemporalExecutor.abort_sequence`
        before propagating, so the State/Graph Stacks are drained and
        ``check_drained()`` holds even after an aborted sequence.
        """
        tracer = current_tracer()
        injector = current_injector()
        recorder = current_flight_recorder()
        # Live latency histograms: children resolved once per epoch so the
        # per-timestamp cost is one perf_counter pair + one observe().
        metrics = current_device().metrics
        engine = self.executor.engine
        engine_label = engine.name if engine is not None else "default"
        if metrics.enabled:
            ts_hist = metrics.histogram(
                "repro_timestamp_seconds",
                "Per-timestamp executor latency (forward step incl. graph update).",
            ).labels(engine=engine_label)
            opt_hist = metrics.histogram(
                "repro_optimizer_step_seconds", "Optimizer step latency.",
            ).labels()
        else:
            ts_hist = opt_hist = None
        progress = self.progress if self.telemetry_server is not None else None
        total_timestamps = len(features)
        seq_len = self.sequence_length or total_timestamps
        start = time.perf_counter()
        injector.at_epoch(epoch_index)
        with tracer.span("epoch", "train", epoch=epoch_index):
            for seq_index, seq in enumerate(_sequences(total_timestamps, seq_len)):
                if seq_index < start_sequence:
                    continue
                injector.at_sequence(seq_index)
                with tracer.span("sequence", "train", start=seq.start, stop=seq.stop):
                    try:
                        self.optimizer.zero_grad()
                        state = None
                        acc = _LossAccumulator()
                        for t in seq:  # forward over the sequence (Alg. 1 lines 8-16)
                            injector.at_timestamp(t)
                            injector.fire("kill")
                            ts_start = time.perf_counter()
                            with tracer.span(f"timestamp[{t}]", "train", t=t):
                                self.executor.begin_timestamp(t)
                                pred, state = self.model.step(self.executor, Tensor(features[t]), state)
                                acc.add(self._loss_at(t, pred, targets))
                            if ts_hist is not None:
                                ts_hist.observe(time.perf_counter() - ts_start)
                            if recorder.enabled:
                                recorder.record("mark", "timestamp", t=t,
                                                epoch=epoch_index, sequence=seq_index)
                            if progress is not None:
                                progress.update(epoch=epoch_index, sequence=seq_index,
                                                timestamp=t)
                        self.executor.end_sequence_forward()
                        with tracer.span("backward", "train", start=seq.start, stop=seq.stop):
                            acc.total.backward()  # LIFO backward (Alg. 1 lines 18-25)
                        self.executor.check_drained()
                        opt_start = time.perf_counter()
                        with tracer.span("optimizer", "optimizer"):
                            self.optimizer.step()
                        if opt_hist is not None:
                            opt_hist.observe(time.perf_counter() - opt_start)
                        epoch_loss += acc.total.item()
                        if progress is not None:
                            progress.update(epoch_loss=epoch_loss)
                    except BaseException:
                        self.executor.abort_sequence()
                        raise
                # Sequence boundary: checkpoint first, then any planned
                # boundary kill — so a boundary kill always finds the state
                # it "died" after already durable on disk.
                injector.at_timestamp(BOUNDARY)
                if boundary_hook is not None:
                    boundary_hook(epoch_index, seq_index, epoch_loss)
                injector.fire("kill")
        self.epoch_times.append(time.perf_counter() - start)
        if progress is not None:
            progress.update(epochs_completed=epoch_index + 1, loss=epoch_loss)
        return epoch_loss

    def train(
        self,
        features,
        targets=None,
        epochs: int = 10,
        warmup: int = 0,
        *,
        checkpoint_path: str | pathlib.Path | None = None,
        checkpoint_every: int = 1,
        resume: bool = False,
        pipeline: int | None = None,
    ) -> list[float]:
        """Run ``epochs`` epochs; the first ``warmup`` epoch times are
        dropped from :attr:`epoch_times` (GPU-warm-up convention, §VII).

        ``pipeline`` (when not None) overrides the constructor's staleness
        bound for this call.  The prefetch worker, if one was started, is
        always shut down before this method returns — a pipelined ``train()``
        never leaks a thread.

        With ``checkpoint_path`` the run writes an atomic training
        checkpoint every ``checkpoint_every``-th sequence boundary (always
        at epoch boundaries): model params, optimizer state, initializer RNG
        state, the graph's snapshot-version cursor, the compiled plan ids,
        and the completed/partial losses.  ``resume=True`` restores all of
        that and re-enters the schedule exactly where the checkpoint was
        taken, so a killed run finishes with bitwise-identical final losses
        (training itself draws no randomness and every loss float
        round-trips exactly through the checkpoint's JSON meta).
        """
        self.resumed_from = None
        if pipeline is not None:
            self.executor.set_pipeline(int(pipeline))
        self.start_telemetry()
        try:
            return self._train_impl(
                features, targets, epochs, warmup,
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every,
                resume=resume,
            )
        finally:
            self.executor.shutdown()
            self.stop_telemetry()

    def start_telemetry(self) -> int | None:
        """Start the scrape endpoint if ``telemetry_port`` was given.

        Idempotent; returns the bound port (useful with ``telemetry_port=0``)
        or None when telemetry is off.  ``train()`` calls this itself, but
        callers that need the URL before training starts (the CLI does) can
        call it first — the run's ``finally`` still stops the server.
        """
        if self.telemetry_port is None:
            return None
        if self.telemetry_server is None:
            server = TelemetryServer(
                current_device(), port=self.telemetry_port, progress=self.progress,
            )
            server.start()
            self.telemetry_server = server
        return self.telemetry_server.port

    def stop_telemetry(self) -> None:
        """Stop the scrape endpoint (no-op when none is running)."""
        server, self.telemetry_server = self.telemetry_server, None
        if server is not None:
            server.stop()

    def _train_impl(
        self,
        features,
        targets,
        epochs: int,
        warmup: int,
        *,
        checkpoint_path: str | pathlib.Path | None,
        checkpoint_every: int,
        resume: bool,
    ) -> list[float]:
        if checkpoint_path is None:
            if resume:
                raise ValueError("resume=True requires checkpoint_path")
            losses = [self.train_epoch(features, targets) for _ in range(epochs)]
            if warmup:
                self.epoch_times = self.epoch_times[warmup:]
            return losses

        from repro.compiler.plan import plan_cache

        path = pathlib.Path(checkpoint_path)
        if path.suffix != ".npz":
            path = path.with_suffix(path.suffix + ".npz")
        total_timestamps = len(features)
        seq_len = self.sequence_length or total_timestamps
        n_seq = len(_sequences(total_timestamps, seq_len))
        start_epoch = 0
        start_sequence = 0
        partial_loss = 0.0
        losses: list[float] = []
        if resume and path.exists():
            state = load_training_checkpoint(path, self.model, self.optimizer)
            if int(state["epochs_total"]) != int(epochs):
                raise ValueError(
                    f"checkpoint was taken for a {state['epochs_total']}-epoch "
                    f"run, cannot resume into {epochs} epochs"
                )
            cached = {p.plan_id for p in plan_cache().plans()}
            missing = [pid for pid in state.get("plan_ids", []) if pid not in cached]
            if missing:
                raise ValueError(
                    f"checkpoint plans missing from this process's plan cache: {missing}"
                )
            init.set_rng_state(state["rng_state"])
            cursor = state.get("graph_cursor")
            restore = getattr(self.graph, "restore_version_cursor", None)
            if cursor is not None and restore is not None:
                restore(cursor)
            start_epoch = int(state["epoch"])
            start_sequence = int(state["sequence"])
            partial_loss = float(state["epoch_loss"])
            losses = [float(x) for x in state["losses"]]
            self.resumed_from = str(path)

        cursor_fn = getattr(self.graph, "version_cursor", None)

        def boundary_hook(epoch: int, sequence: int, loss_so_far: float) -> None:
            last_in_epoch = sequence + 1 >= n_seq
            if not last_in_epoch and (sequence + 1) % max(1, checkpoint_every):
                return
            next_epoch, next_sequence = (epoch + 1, 0) if last_in_epoch else (epoch, sequence + 1)
            save_training_checkpoint(
                path, self.model, self.optimizer,
                {
                    "epoch": next_epoch,
                    "sequence": next_sequence,
                    "epochs_total": int(epochs),
                    "losses": losses + [loss_so_far] if last_in_epoch else list(losses),
                    "epoch_loss": 0.0 if last_in_epoch else loss_so_far,
                    "rng_state": init.get_rng_state(),
                    "graph_cursor": cursor_fn() if cursor_fn is not None else None,
                    "plan_ids": sorted(p.plan_id for p in plan_cache().plans()),
                },
            )

        for epoch in range(start_epoch, epochs):
            loss = self._train_epoch_impl(
                features, targets,
                epoch_index=epoch,
                start_sequence=start_sequence if epoch == start_epoch else 0,
                epoch_loss=partial_loss if epoch == start_epoch else 0.0,
                boundary_hook=boundary_hook,
            )
            losses.append(loss)
        if warmup:
            self.epoch_times = self.epoch_times[warmup:]
        return losses

    @property
    def mean_epoch_time(self) -> float:
        """Mean wall-clock seconds per (post-warmup) epoch."""
        return float(np.mean(self.epoch_times)) if self.epoch_times else float("nan")


class BaselineTrainer:
    """The same schedule for the PyG-T baseline (edge_index-driven)."""

    def __init__(
        self,
        model: Module,
        edge_indices: Sequence[np.ndarray] | np.ndarray,
        optimizer: optim.Optimizer | None = None,
        lr: float = 1e-2,
        sequence_length: int | None = None,
        task: str = "regression",
        link_samples: Sequence[LinkSamples] | None = None,
    ) -> None:
        if task not in ("regression", "link_prediction"):
            raise ValueError(f"unknown task {task!r}")
        if task == "link_prediction" and link_samples is None:
            raise ValueError("link_prediction task needs link_samples")
        self.model = model
        self.edge_indices = edge_indices
        self.optimizer = optimizer or optim.Adam(model.parameters(), lr=lr)
        self.sequence_length = sequence_length
        self.task = task
        self.link_samples = link_samples
        self.epoch_times: list[float] = []

    def _edge_index_at(self, t: int) -> np.ndarray:
        if isinstance(self.edge_indices, np.ndarray):
            return self.edge_indices  # static graph: one edge_index
        return self.edge_indices[t]

    def _loss_at(self, t: int, pred: Tensor, targets) -> Tensor:
        if self.task == "regression":
            return F.mse_loss(pred, targets[t])
        samples = self.link_samples[t]
        logits = self.model.score(pred, samples.pairs)
        return F.bce_with_logits_loss(logits, samples.labels)

    def train_epoch(self, features, targets=None) -> float:
        """One epoch of the same sequence schedule on the baseline."""
        total_timestamps = len(features)
        seq_len = self.sequence_length or total_timestamps
        start = time.perf_counter()
        epoch_loss = 0.0
        for seq in _sequences(total_timestamps, seq_len):
            self.optimizer.zero_grad()
            state = None
            acc = _LossAccumulator()
            for t in seq:
                pred, state = self.model.step(self._edge_index_at(t), Tensor(features[t]), state)
                acc.add(self._loss_at(t, pred, targets))
            acc.total.backward()
            self.optimizer.step()
            epoch_loss += acc.total.item()
        self.epoch_times.append(time.perf_counter() - start)
        return epoch_loss

    def train(self, features, targets=None, epochs: int = 10, warmup: int = 0) -> list[float]:
        """Run ``epochs`` epochs, dropping ``warmup`` epoch timings."""
        losses = [self.train_epoch(features, targets) for _ in range(epochs)]
        if warmup:
            self.epoch_times = self.epoch_times[warmup:]
        return losses

    @property
    def mean_epoch_time(self) -> float:
        """Mean wall-clock seconds per (post-warmup) epoch."""
        return float(np.mean(self.epoch_times)) if self.epoch_times else float("nan")
