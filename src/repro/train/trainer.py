"""Training loops.

:class:`STGraphTrainer` is Algorithm 1: the epoch is split into ordered,
disjoint sequences; each sequence accumulates per-timestamp losses forward
(pushing State/Graph Stack entries), then a single backward drains both
stacks in LIFO order; ``end_sequence_forward`` gives GPMA its snapshot
cache point.  :class:`BaselineTrainer` runs the identical schedule on the
PyG-T baseline, where the autodiff tape itself retains the whole sequence's
intermediates (no stacks, no pruning).

Both report per-epoch wall time so benches can reuse the loop directly.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.executor import TemporalExecutor
from repro.graph.base import STGraphBase
from repro.obs.tracer import current_tracer
from repro.tensor import functional as F
from repro.tensor import optim
from repro.tensor.nn import Module
from repro.tensor.tensor import Tensor
from repro.train.tasks import LinkSamples

__all__ = ["STGraphTrainer", "BaselineTrainer"]


def _sequences(total: int, length: int) -> list[range]:
    return [range(s, min(s + length, total)) for s in range(0, total, length)]


class _LossAccumulator:
    def __init__(self) -> None:
        self.total: Tensor | None = None

    def add(self, loss: Tensor) -> None:
        self.total = loss if self.total is None else F.add(self.total, loss)


class STGraphTrainer:
    """Algorithm 1 over any :class:`STGraphBase` graph."""

    def __init__(
        self,
        model: Module,
        graph: STGraphBase,
        optimizer: optim.Optimizer | None = None,
        lr: float = 1e-2,
        sequence_length: int | None = None,
        task: str = "regression",
        link_samples: Sequence[LinkSamples] | None = None,
    ) -> None:
        if task not in ("regression", "link_prediction"):
            raise ValueError(f"unknown task {task!r}")
        if task == "link_prediction" and link_samples is None:
            raise ValueError("link_prediction task needs link_samples")
        self.model = model
        self.graph = graph
        self.optimizer = optimizer or optim.Adam(model.parameters(), lr=lr)
        self.sequence_length = sequence_length
        self.task = task
        self.link_samples = link_samples
        self.executor = TemporalExecutor(graph)
        self.epoch_times: list[float] = []

    def _loss_at(self, t: int, pred: Tensor, targets) -> Tensor:
        if self.task == "regression":
            return F.mse_loss(pred, targets[t])
        samples = self.link_samples[t]
        logits = self.model.score(pred, samples.pairs)
        return F.bce_with_logits_loss(logits, samples.labels)

    def train_epoch(self, features: Sequence[np.ndarray], targets: Sequence[np.ndarray] | None = None) -> float:
        """One epoch of Algorithm 1; returns the summed loss.

        Under an active tracer the epoch is a span tree:
        ``epoch > sequence > timestamp[t] > {graph_update, forward/<layer>}``
        on the way forward, then per-sequence ``backward`` (containing the
        per-layer ``backward/<layer>`` and ``graph_update`` spans of the
        LIFO walk) and ``optimizer`` spans.
        """
        tracer = current_tracer()
        total_timestamps = len(features)
        seq_len = self.sequence_length or total_timestamps
        start = time.perf_counter()
        epoch_loss = 0.0
        with tracer.span("epoch", "train", epoch=len(self.epoch_times)):
            for seq in _sequences(total_timestamps, seq_len):
                with tracer.span("sequence", "train", start=seq.start, stop=seq.stop):
                    self.optimizer.zero_grad()
                    state = None
                    acc = _LossAccumulator()
                    for t in seq:  # forward over the sequence (Alg. 1 lines 8-16)
                        with tracer.span(f"timestamp[{t}]", "train", t=t):
                            self.executor.begin_timestamp(t)
                            pred, state = self.model.step(self.executor, Tensor(features[t]), state)
                            acc.add(self._loss_at(t, pred, targets))
                    self.executor.end_sequence_forward()
                    with tracer.span("backward", "train", start=seq.start, stop=seq.stop):
                        acc.total.backward()  # LIFO backward (Alg. 1 lines 18-25)
                    self.executor.check_drained()
                    with tracer.span("optimizer", "optimizer"):
                        self.optimizer.step()
                    epoch_loss += acc.total.item()
        self.epoch_times.append(time.perf_counter() - start)
        return epoch_loss

    def train(self, features, targets=None, epochs: int = 10, warmup: int = 0) -> list[float]:
        """Run ``epochs`` epochs; the first ``warmup`` epoch times are
        dropped from :attr:`epoch_times` (GPU-warm-up convention, §VII)."""
        losses = [self.train_epoch(features, targets) for _ in range(epochs)]
        if warmup:
            self.epoch_times = self.epoch_times[warmup:]
        return losses

    @property
    def mean_epoch_time(self) -> float:
        """Mean wall-clock seconds per (post-warmup) epoch."""
        return float(np.mean(self.epoch_times)) if self.epoch_times else float("nan")


class BaselineTrainer:
    """The same schedule for the PyG-T baseline (edge_index-driven)."""

    def __init__(
        self,
        model: Module,
        edge_indices: Sequence[np.ndarray] | np.ndarray,
        optimizer: optim.Optimizer | None = None,
        lr: float = 1e-2,
        sequence_length: int | None = None,
        task: str = "regression",
        link_samples: Sequence[LinkSamples] | None = None,
    ) -> None:
        if task not in ("regression", "link_prediction"):
            raise ValueError(f"unknown task {task!r}")
        if task == "link_prediction" and link_samples is None:
            raise ValueError("link_prediction task needs link_samples")
        self.model = model
        self.edge_indices = edge_indices
        self.optimizer = optimizer or optim.Adam(model.parameters(), lr=lr)
        self.sequence_length = sequence_length
        self.task = task
        self.link_samples = link_samples
        self.epoch_times: list[float] = []

    def _edge_index_at(self, t: int) -> np.ndarray:
        if isinstance(self.edge_indices, np.ndarray):
            return self.edge_indices  # static graph: one edge_index
        return self.edge_indices[t]

    def _loss_at(self, t: int, pred: Tensor, targets) -> Tensor:
        if self.task == "regression":
            return F.mse_loss(pred, targets[t])
        samples = self.link_samples[t]
        logits = self.model.score(pred, samples.pairs)
        return F.bce_with_logits_loss(logits, samples.labels)

    def train_epoch(self, features, targets=None) -> float:
        """One epoch of the same sequence schedule on the baseline."""
        total_timestamps = len(features)
        seq_len = self.sequence_length or total_timestamps
        start = time.perf_counter()
        epoch_loss = 0.0
        for seq in _sequences(total_timestamps, seq_len):
            self.optimizer.zero_grad()
            state = None
            acc = _LossAccumulator()
            for t in seq:
                pred, state = self.model.step(self._edge_index_at(t), Tensor(features[t]), state)
                acc.add(self._loss_at(t, pred, targets))
            acc.total.backward()
            self.optimizer.step()
            epoch_loss += acc.total.item()
        self.epoch_times.append(time.perf_counter() - start)
        return epoch_loss

    def train(self, features, targets=None, epochs: int = 10, warmup: int = 0) -> list[float]:
        """Run ``epochs`` epochs, dropping ``warmup`` epoch timings."""
        losses = [self.train_epoch(features, targets) for _ in range(epochs)]
        if warmup:
            self.epoch_times = self.epoch_times[warmup:]
        return losses

    @property
    def mean_epoch_time(self) -> float:
        """Mean wall-clock seconds per (post-warmup) epoch."""
        return float(np.mean(self.epoch_times)) if self.epoch_times else float("nan")
