"""Task models: a recurrent TGNN cell plus a prediction head.

Both frameworks get structurally identical models so benchmark comparisons
isolate the execution strategy:

* **node regression** (static-temporal datasets): TGCN hidden state →
  linear head → per-node scalar, MSE loss;
* **link prediction** (DTDGs): TGCN hidden state → dot-product edge scorer,
  BCE-with-logits loss.

``step`` is the trainer protocol: ``(executor/edge_index, x, state) →
(prediction, new_state)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.executor import TemporalExecutor
from repro.baselines.pygt.tgcn import PyGTTGCN
from repro.nn.tgcn import TGCN
from repro.tensor import functional as F
from repro.tensor.nn import Linear, Module
from repro.tensor.tensor import Tensor

__all__ = [
    "STGraphNodeRegressor",
    "STGraphLinkPredictor",
    "PyGTNodeRegressor",
    "PyGTLinkPredictor",
    "dot_link_scores",
]


def dot_link_scores(h: Tensor, pairs: np.ndarray) -> Tensor:
    """Logit per candidate edge: ``⟨h[src], h[dst]⟩`` for pairs (2, K)."""
    hs = F.index_select(h, pairs[0])
    hd = F.index_select(h, pairs[1])
    return F.sum(F.mul(hs, hd), axis=1)


class STGraphNodeRegressor(Module):
    """TGNN cell + linear head for per-node regression (STGraph side)."""
    def __init__(self, in_features: int, hidden: int, cell: Module | None = None, **cell_kwargs) -> None:
        super().__init__()
        self.cell = cell if cell is not None else TGCN(in_features, hidden, **cell_kwargs)
        self.head = Linear(hidden, 1)

    def step(self, executor: TemporalExecutor, x: Tensor, state: Tensor | None):
        """One timestamp: advance the cell, read out a scalar per node."""
        h = self.cell(executor, x, state)
        return self.head(h), h


class STGraphLinkPredictor(Module):
    """TGNN cell producing embeddings scored by dot products (STGraph side)."""
    def __init__(self, in_features: int, hidden: int, cell: Module | None = None, **cell_kwargs) -> None:
        super().__init__()
        self.cell = cell if cell is not None else TGCN(in_features, hidden, **cell_kwargs)

    def step(self, executor: TemporalExecutor, x: Tensor, state: Tensor | None):
        """One timestamp: advance the cell; the embeddings are the output."""
        h = self.cell(executor, x, state)
        return h, h  # prediction = embeddings; the task scores pairs

    def score(self, h: Tensor, pairs: np.ndarray) -> Tensor:
        """Logits for candidate pairs."""
        return dot_link_scores(h, pairs)


class PyGTNodeRegressor(Module):
    """Baseline node regressor on the edge-parallel TGCN."""
    def __init__(self, in_features: int, hidden: int, **cell_kwargs) -> None:
        super().__init__()
        self.cell = PyGTTGCN(in_features, hidden, **cell_kwargs)
        self.head = Linear(hidden, 1)

    def step(self, edge_index: np.ndarray, x: Tensor, state: Tensor | None):
        """One timestamp on the baseline: edge-parallel cell + head."""
        h = self.cell(x, edge_index, state)
        return self.head(h), h


class PyGTLinkPredictor(Module):
    """Baseline link predictor on the edge-parallel TGCN."""
    def __init__(self, in_features: int, hidden: int, **cell_kwargs) -> None:
        super().__init__()
        self.cell = PyGTTGCN(in_features, hidden, **cell_kwargs)

    def step(self, edge_index: np.ndarray, x: Tensor, state: Tensor | None):
        """One timestamp on the baseline; embeddings are the output."""
        h = self.cell(x, edge_index, state)
        return h, h

    def score(self, h: Tensor, pairs: np.ndarray) -> Tensor:
        """Logits for candidate pairs."""
        return dot_link_scores(h, pairs)
