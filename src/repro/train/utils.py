"""Training utilities: temporal splits, early stopping, evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.executor import TemporalExecutor
from repro.tensor.nn import Module
from repro.tensor.tensor import Tensor, no_grad

__all__ = ["temporal_train_test_split", "EarlyStopping", "evaluate_regression"]


def temporal_train_test_split(
    features: Sequence[np.ndarray],
    targets: Sequence[np.ndarray] | None = None,
    train_ratio: float = 0.8,
) -> tuple:
    """Chronological split: the first ``train_ratio`` of timestamps train,
    the rest test (shuffling would leak the future — the PyG-T convention).

    Returns ``(train_features, test_features)`` or the 4-tuple with targets.
    """
    if not 0.0 < train_ratio < 1.0:
        raise ValueError(f"train_ratio must be in (0, 1), got {train_ratio}")
    total = len(features)
    split = max(1, min(total - 1, int(round(total * train_ratio))))
    if targets is None:
        return list(features[:split]), list(features[split:])
    if len(targets) != total:
        raise ValueError("features/targets length mismatch")
    return (
        list(features[:split]),
        list(features[split:]),
        list(targets[:split]),
        list(targets[split:]),
    )


@dataclass
class EarlyStopping:
    """Stop when the monitored loss hasn't improved for ``patience`` epochs.

    Keeps the best state dict so training can be rolled back.
    """

    patience: int = 10
    min_delta: float = 0.0

    def __post_init__(self) -> None:
        self.best_loss = float("inf")
        self.best_state: dict | None = None
        self.epochs_without_improvement = 0

    def step(self, loss: float, model: Module | None = None) -> bool:
        """Record an epoch; returns True when training should stop."""
        if loss < self.best_loss - self.min_delta:
            self.best_loss = loss
            self.epochs_without_improvement = 0
            if model is not None:
                self.best_state = model.state_dict()
        else:
            self.epochs_without_improvement += 1
        return self.epochs_without_improvement >= self.patience

    def restore_best(self, model: Module) -> None:
        """Load the best-seen parameters back into ``model``."""
        if self.best_state is None:
            raise RuntimeError("no best state recorded (pass the model to step())")
        model.load_state_dict(self.best_state)


def evaluate_regression(
    model: Module,
    executor: TemporalExecutor,
    features: Sequence[np.ndarray],
    targets: Sequence[np.ndarray],
    start_timestamp: int = 0,
) -> dict[str, float]:
    """Roll the model over held-out timestamps; returns MSE/MAE/RMSE."""
    from repro.train.metrics import mae, rmse

    errs_sq, errs_abs = [], []
    with no_grad():
        state = None
        for offset, (x, y) in enumerate(zip(features, targets)):
            executor.begin_timestamp(start_timestamp + offset)
            pred, state = model.step(executor, Tensor(x), state)
            p = pred.numpy()
            errs_sq.append(float(((p - y) ** 2).mean()))
            errs_abs.append(mae(p, y))
    mse = float(np.mean(errs_sq))
    return {"mse": mse, "rmse": float(np.sqrt(mse)), "mae": float(np.mean(errs_abs))}
