"""Checkpointing: save/restore model + optimizer state as ``.npz``.

Keeps long TGNN training runs resumable.  Model parameters are stored by
their ``named_parameters`` path; optimizer buffers (Adam moments, SGD
velocity) are flattened with a prefix.  Loading validates shapes and
parameter names so silent architecture mismatches fail loudly.

Writes are **atomic**: the archive is written to a same-directory temp file
and moved into place with ``os.replace``, so a crash mid-write can never
destroy the previous checkpoint.  Every archive embeds a SHA-256 integrity
hash over its array contents; :func:`load_checkpoint` recomputes it and
raises :class:`CheckpointIntegrityError` on mismatch (torn copies, bit rot,
hand-edited files).

:func:`save_training_checkpoint`/:func:`load_training_checkpoint` layer the
trainer's mid-run resume state (schedule position, RNG state, snapshot
cursor, plan ids, losses) on top as the ``extra["training"]`` dict — see
``docs/RESILIENCE.md`` for the full layout.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

import numpy as np

from repro.tensor.nn import Module
from repro.tensor.optim import Optimizer

__all__ = [
    "CheckpointIntegrityError",
    "save_checkpoint",
    "load_checkpoint",
    "save_training_checkpoint",
    "load_training_checkpoint",
]

_META_KEY = "__checkpoint_meta__"


class CheckpointIntegrityError(ValueError):
    """The checkpoint's content does not match its embedded integrity hash."""


def _integrity_digest(arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over every array's name, dtype, shape, and bytes (sorted)."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        if name == _META_KEY:
            continue
        arr = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def save_checkpoint(
    path: str | pathlib.Path,
    model: Module,
    optimizer: Optimizer | None = None,
    extra: dict | None = None,
) -> pathlib.Path:
    """Write model (and optionally optimizer) state to ``path`` (.npz).

    The write is atomic (same-directory temp file + ``os.replace``) and the
    archive's meta carries a SHA-256 hash of all array contents, verified on
    load.
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {"params": [], "optimizer": None, "extra": extra or {}}
    for name, value in model.state_dict().items():
        arrays[f"param/{name}"] = value
        meta["params"].append(name)

    if optimizer is not None:
        state = optimizer.state_dict()
        opt_meta: dict = {"class": type(optimizer).__name__, "scalars": {}}
        for key, value in state.items():
            if isinstance(value, (int, float)):
                opt_meta["scalars"][key] = value
            elif isinstance(value, list):
                opt_meta.setdefault("lists", {})[key] = len(value)
                for i, item in enumerate(value):
                    if item is not None:
                        arrays[f"opt/{key}/{i}"] = item
            else:  # pragma: no cover - optimizer states are scalars/lists
                raise TypeError(f"unsupported optimizer state entry {key!r}")
        meta["optimizer"] = opt_meta

    meta["integrity"] = _integrity_digest(arrays)
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        # np.savez on an open handle never appends a suffix, so the rename
        # target is exact.
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # crashed before the rename: never leave turds
            tmp.unlink()
    return path


def load_checkpoint(
    path: str | pathlib.Path,
    model: Module,
    optimizer: Optimizer | None = None,
) -> dict:
    """Restore state saved by :func:`save_checkpoint`; returns ``extra``.

    Recomputes the embedded integrity hash over the archive's arrays before
    touching the model; a mismatch raises :class:`CheckpointIntegrityError`.
    """
    with np.load(pathlib.Path(path), allow_pickle=False) as data:
        meta = json.loads(bytes(data[_META_KEY]).decode())
        expected = meta.get("integrity")
        if expected is not None:
            arrays = {name: data[name] for name in data.files if name != _META_KEY}
            actual = _integrity_digest(arrays)
            if actual != expected:
                raise CheckpointIntegrityError(
                    f"checkpoint {path} is corrupt: content hash {actual[:12]}… "
                    f"does not match recorded {expected[:12]}…"
                )
        state = {name: data[f"param/{name}"] for name in meta["params"]}
        model.load_state_dict(state)

        if optimizer is not None:
            opt_meta = meta.get("optimizer")
            if opt_meta is None:
                raise ValueError("checkpoint has no optimizer state")
            if opt_meta["class"] != type(optimizer).__name__:
                raise ValueError(
                    f"checkpoint optimizer is {opt_meta['class']}, "
                    f"got {type(optimizer).__name__}"
                )
            restored: dict = dict(opt_meta["scalars"])
            for key, length in opt_meta.get("lists", {}).items():
                restored[key] = [
                    data[f"opt/{key}/{i}"] if f"opt/{key}/{i}" in data else None
                    for i in range(length)
                ]
            optimizer.load_state_dict(restored)
    return meta["extra"]


def save_training_checkpoint(
    path: str | pathlib.Path,
    model: Module,
    optimizer: Optimizer,
    training_state: dict,
) -> pathlib.Path:
    """A :func:`save_checkpoint` carrying the trainer's mid-run resume state.

    ``training_state`` must be JSON-serializable; the trainer stores the
    next (epoch, sequence) position, total epochs, completed/partial losses,
    the initializer RNG state, the graph's snapshot-version cursor, and the
    compiled plan ids.

    Each write's wall time lands in the ``repro_checkpoint_write_seconds``
    histogram, and the flight recorder (when armed) gets a breadcrumb —
    checkpoints sit exactly on the failure edges the recorder documents.
    """
    import time

    from repro.device import current_device
    from repro.obs.flight import current_flight_recorder

    start = time.perf_counter()
    out = save_checkpoint(path, model, optimizer, extra={"training": training_state})
    device = current_device()
    if device.metrics.enabled:
        device.metrics.observe(
            "repro_checkpoint_write_seconds", time.perf_counter() - start,
            "Atomic training-checkpoint write latency.",
        )
    recorder = current_flight_recorder()
    if recorder.enabled:
        recorder.record(
            "mark", "checkpoint_write", path=str(out),
            epoch=training_state.get("epoch"), sequence=training_state.get("sequence"),
        )
    return out


def load_training_checkpoint(
    path: str | pathlib.Path,
    model: Module,
    optimizer: Optimizer,
) -> dict:
    """Restore a training checkpoint; returns its resume-state dict."""
    extra = load_checkpoint(path, model, optimizer)
    training = extra.get("training")
    if training is None:
        raise ValueError(f"{path} is a bare model checkpoint, not a training checkpoint")
    return training
