"""Checkpointing: save/restore model + optimizer state as ``.npz``.

Keeps long TGNN training runs resumable.  Model parameters are stored by
their ``named_parameters`` path; optimizer buffers (Adam moments, SGD
velocity) are flattened with a prefix.  Loading validates shapes and
parameter names so silent architecture mismatches fail loudly.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.tensor.nn import Module
from repro.tensor.optim import Optimizer

__all__ = ["save_checkpoint", "load_checkpoint"]

_META_KEY = "__checkpoint_meta__"


def save_checkpoint(
    path: str | pathlib.Path,
    model: Module,
    optimizer: Optimizer | None = None,
    extra: dict | None = None,
) -> pathlib.Path:
    """Write model (and optionally optimizer) state to ``path`` (.npz)."""
    path = pathlib.Path(path)
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {"params": [], "optimizer": None, "extra": extra or {}}
    for name, value in model.state_dict().items():
        arrays[f"param/{name}"] = value
        meta["params"].append(name)

    if optimizer is not None:
        state = optimizer.state_dict()
        opt_meta: dict = {"class": type(optimizer).__name__, "scalars": {}}
        for key, value in state.items():
            if isinstance(value, (int, float)):
                opt_meta["scalars"][key] = value
            elif isinstance(value, list):
                opt_meta.setdefault("lists", {})[key] = len(value)
                for i, item in enumerate(value):
                    if item is not None:
                        arrays[f"opt/{key}/{i}"] = item
            else:  # pragma: no cover - optimizer states are scalars/lists
                raise TypeError(f"unsupported optimizer state entry {key!r}")
        meta["optimizer"] = opt_meta

    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(
    path: str | pathlib.Path,
    model: Module,
    optimizer: Optimizer | None = None,
) -> dict:
    """Restore state saved by :func:`save_checkpoint`; returns ``extra``."""
    with np.load(pathlib.Path(path), allow_pickle=False) as data:
        meta = json.loads(bytes(data[_META_KEY]).decode())
        state = {name: data[f"param/{name}"] for name in meta["params"]}
        model.load_state_dict(state)

        if optimizer is not None:
            opt_meta = meta.get("optimizer")
            if opt_meta is None:
                raise ValueError("checkpoint has no optimizer state")
            if opt_meta["class"] != type(optimizer).__name__:
                raise ValueError(
                    f"checkpoint optimizer is {opt_meta['class']}, "
                    f"got {type(optimizer).__name__}"
                )
            restored: dict = dict(opt_meta["scalars"])
            for key, length in opt_meta.get("lists", {}).items():
                restored[key] = [
                    data[f"opt/{key}/{i}"] if f"opt/{key}/{i}" in data else None
                    for i in range(length)
                ]
            optimizer.load_state_dict(restored)
    return meta["extra"]
