"""Training loops (Algorithm 1), task heads, and metrics."""

from repro.train.models import (
    PyGTLinkPredictor,
    PyGTNodeRegressor,
    STGraphLinkPredictor,
    STGraphNodeRegressor,
)
from repro.train.tasks import LinkSamples, make_link_prediction_samples
from repro.train.trainer import BaselineTrainer, STGraphTrainer
from repro.train.metrics import accuracy_from_logits, mae, rmse, roc_auc
from repro.train.utils import EarlyStopping, evaluate_regression, temporal_train_test_split
from repro.train.checkpoint import (
    CheckpointIntegrityError,
    load_checkpoint,
    load_training_checkpoint,
    save_checkpoint,
    save_training_checkpoint,
)

__all__ = [
    "EarlyStopping",
    "evaluate_regression",
    "temporal_train_test_split",
    "save_checkpoint",
    "load_checkpoint",
    "save_training_checkpoint",
    "load_training_checkpoint",
    "CheckpointIntegrityError",
    "STGraphTrainer",
    "BaselineTrainer",
    "STGraphNodeRegressor",
    "STGraphLinkPredictor",
    "PyGTNodeRegressor",
    "PyGTLinkPredictor",
    "LinkSamples",
    "make_link_prediction_samples",
    "mae",
    "rmse",
    "roc_auc",
    "accuracy_from_logits",
]
