"""Benchmark tasks (paper §VII "Tasks").

* Node regression on static-temporal datasets ("node classification task
  with MSE as the loss criterion" — the signals are continuous, so the
  PyG-T convention is next-value regression).
* Link prediction on DTDGs ("Binary Cross Entropy Loss with Logits"):
  positives sampled from each snapshot's edges, negatives from random
  non-edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.dtdg import DTDG
from repro.graph.labels import encode_edges

__all__ = ["LinkSamples", "make_link_prediction_samples"]


@dataclass
class LinkSamples:
    """Candidate pairs + labels for one timestamp."""

    pairs: np.ndarray  # (2, K) int64
    labels: np.ndarray  # (K,) float32 in {0, 1}


def make_link_prediction_samples(
    dtdg: DTDG,
    samples_per_timestamp: int = 256,
    seed: int = 0,
    horizon: int = 0,
) -> list[LinkSamples]:
    """Balanced positive/negative edge samples for every timestamp.

    ``horizon=h`` samples each timestamp's candidates from snapshot
    ``t + h`` (clamped to the last snapshot): the standard *future* link
    prediction setup where embeddings at ``t`` must predict edges at
    ``t + h``; ``horizon=0`` reproduces the paper's presence-at-``t`` task.
    """
    if horizon < 0:
        raise ValueError("horizon must be >= 0")
    rng = np.random.default_rng(seed)
    n = dtdg.num_nodes
    out: list[LinkSamples] = []
    for t in range(dtdg.num_timestamps):
        target_t = min(t + horizon, dtdg.num_timestamps - 1)
        src, dst = dtdg.snapshot_edges(target_t)
        num_pos = min(samples_per_timestamp // 2, len(src))
        pos_idx = rng.choice(len(src), size=num_pos, replace=False)
        pos = np.stack([src[pos_idx], dst[pos_idx]])

        edge_keys = encode_edges(src, dst, n)
        negs: list[np.ndarray] = []
        need = num_pos
        while need > 0:
            cand_s = rng.integers(0, n, size=need * 2)
            cand_d = rng.integers(0, n, size=need * 2)
            ok = cand_s != cand_d
            cand_s, cand_d = cand_s[ok], cand_d[ok]
            keys = encode_edges(cand_s, cand_d, n)
            fresh = ~np.isin(keys, edge_keys)
            take = min(need, int(fresh.sum()))
            negs.append(np.stack([cand_s[fresh][:take], cand_d[fresh][:take]]))
            need -= take
        neg = np.concatenate(negs, axis=1) if negs else np.empty((2, 0), dtype=np.int64)

        pairs = np.concatenate([pos, neg], axis=1).astype(np.int64)
        labels = np.concatenate(
            [np.ones(pos.shape[1], dtype=np.float32), np.zeros(neg.shape[1], dtype=np.float32)]
        )
        out.append(LinkSamples(pairs, labels))
    return out
