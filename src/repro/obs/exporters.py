"""Trace and metrics exporters: Chrome trace JSON, JSONL, Prometheus text.

Three formats for three audiences:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the
  ``chrome://tracing`` / Perfetto JSON object format (``traceEvents`` with
  matched ``B``/``E`` pairs per span and ``i`` instants), for interactive
  flame-chart inspection of one run.
* :func:`write_jsonl` — one JSON object per event, for ``jq``-style diffing
  of traces across PRs.
* :func:`prometheus_text` — a text-format dump of the run's metric registry
  (profiler phases and counters, allocator residency/peaks incl. per-tag,
  span aggregates), for scraping or snapshotting next to ``BENCH_*.json``.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any, Iterable

from repro.obs.metrics import MetricRegistry, prom_escape

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.device.device import Device
    from repro.obs.tracer import SpanEvent, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "prometheus_text",
    "snapshot_registry",
    "write_prometheus",
]

_PID = 1  # one "process": the simulated device


def chrome_trace(tracer: "Tracer", tid: int = 1) -> dict[str, Any]:
    """The tracer's events as a Chrome-trace JSON object (``traceEvents``).

    Every completed span becomes a matched ``B``/``E`` pair; instants become
    ``i`` events.  Events are emitted sorted by timestamp with ``E`` before
    ``B`` on ties, which is the ordering the Trace Event format requires for
    well-nested stacks.  Spans recorded on worker threads carry the tracer's
    per-thread lane in ``SpanEvent.tid`` (the prefetch scheduler's
    ``prefetch.snapshot`` spans land on lane 2+), so overlap with the main
    lane is visible as parallel tracks; ``tid`` here only renames lane 1.
    """
    raw: list[tuple[float, int, dict]] = []
    lanes = {1: tid}
    for e in tracer.events:
        lane = lanes.setdefault(getattr(e, "tid", 1), e.tid)
        ts_us = e.ts * 1e6
        if e.dur is None:
            raw.append((ts_us, 1, {
                "name": e.name, "cat": e.cat or "instant", "ph": "i", "s": "t",
                "ts": round(ts_us, 3), "pid": _PID, "tid": lane,
                "args": e.args,
            }))
            continue
        end_us = (e.ts + e.dur) * 1e6
        raw.append((ts_us, 1, {
            "name": e.name, "cat": e.cat or "span", "ph": "B",
            "ts": round(ts_us, 3), "pid": _PID, "tid": lane, "args": e.args,
        }))
        raw.append((end_us, 0, {
            "name": e.name, "cat": e.cat or "span", "ph": "E",
            "ts": round(end_us, 3), "pid": _PID, "tid": lane,
        }))
    raw.sort(key=lambda item: (item[0], item[1]))
    events = [
        {
            "name": "process_name", "ph": "M", "pid": _PID, "tid": tid,
            "args": {"name": f"repro:{tracer.name}"},
        }
    ]
    for lane_id in sorted(set(lanes.values()) - {tid}):
        events.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": lane_id,
            "args": {"name": f"prefetch-{lane_id}"},
        })
    events.extend(item[2] for item in raw)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tracer": tracer.name,
            "dropped_events": tracer.dropped_events,
        },
    }


def write_chrome_trace(tracer: "Tracer", path: str) -> str:
    """Write :func:`chrome_trace` output to ``path``; returns the path."""
    _ensure_parent(path)
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer), fh)
    return path


def write_jsonl(events: "Iterable[SpanEvent]", path: str) -> str:
    """Write one JSON object per event to ``path``; returns the path."""
    _ensure_parent(path)
    with open(path, "w") as fh:
        for e in events:
            fh.write(json.dumps(e.to_dict()) + "\n")
    return path


def _prom_escape(value: str) -> str:
    return prom_escape(value)


def snapshot_registry(device: "Device", tracer: "Tracer | None" = None) -> MetricRegistry:
    """A throwaway registry holding everything a scrape should expose.

    The legacy totals (profiler phases/counters, allocator residency,
    kernel-launcher sums, tracer span aggregates) are snapshotted into
    fresh families in their historical order and names, then the device's
    *live* registry (``device.metrics`` — the latency histograms) is
    merged in.  Both the post-hoc dump and the live ``/metrics`` endpoint
    render the result through :meth:`MetricRegistry.render`, so there is
    exactly one code path deciding names, labels, and escaping.
    """
    reg = MetricRegistry()
    profiler = device.profiler
    phases = reg.counter(
        "repro_phase_seconds_total", "Accumulated wall seconds per profiler phase.")
    for name, seconds in profiler.phase_seconds().items():
        phases.labels(phase=name).inc(seconds)
    events = reg.counter(
        "repro_events_total", "Accumulated event counts (cache reuse etc.).")
    for name, count in profiler.counters().items():
        events.labels(event=name).inc(float(count))
    tracker = device.tracker
    reg.gauge("repro_memory_current_bytes",
              "Bytes currently device-resident.").labels().set(float(tracker.current_bytes))
    reg.gauge("repro_memory_peak_bytes",
              "High-water mark of device residency.").labels().set(float(tracker.peak_bytes))
    by_tag = tracker.bytes_by_tag()
    if by_tag:
        fam = reg.gauge("repro_memory_tag_bytes", "Current resident bytes per allocation tag.")
        for tag, b in sorted(by_tag.items()):
            fam.labels(tag=tag or "untagged").set(float(b))
    peak_by_tag = tracker.peak_bytes_by_tag()
    if peak_by_tag:
        fam = reg.gauge("repro_memory_tag_peak_bytes", "Peak resident bytes per allocation tag.")
        for tag, b in sorted(peak_by_tag.items()):
            fam.labels(tag=tag or "untagged").set(float(b))
    reg.counter("repro_kernel_launches_total",
                "Kernel launches on this device.").labels().inc(float(device.launcher.launch_count))
    reg.counter("repro_kernel_seconds_total",
                "Wall seconds inside launched kernels.").labels().inc(device.launcher.launch_seconds)
    if tracer is not None:
        fam = reg.counter("repro_span_self_seconds_total",
                          "Span self time (duration minus children) per category.")
        for cat, seconds in sorted(tracer.aggregate_by_cat().items()):
            fam.labels(cat=cat).inc(seconds)
    live = getattr(device, "metrics", None)
    if live is not None:
        reg.merge(live)
    return reg


def prometheus_text(device: "Device", tracer: "Tracer | None" = None) -> str:
    """Prometheus text-format dump of the device's metric registry.

    Covers the profiler's phase timers and event counters, the allocator's
    current/peak residency (global and per tag), kernel-launcher totals,
    the device's live :class:`~repro.obs.metrics.MetricRegistry` (latency
    histograms etc.), and — when a tracer is supplied — per-category span
    self-time aggregates.  The live ``/metrics`` telemetry endpoint serves
    this exact function, so post-hoc dumps and scrapes cannot drift.
    """
    return snapshot_registry(device, tracer).render()


def write_prometheus(device: "Device", path: str, tracer: "Tracer | None" = None) -> str:
    """Write :func:`prometheus_text` to ``path``; returns the path."""
    _ensure_parent(path)
    with open(path, "w") as fh:
        fh.write(prometheus_text(device, tracer))
    return path


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
