"""Observability: tracing, run manifests, and metric exports.

The subsystem has three parts (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.tracer` — nested spans over the hot paths (executor,
  kernels, graph updates, trainer), with allocator bytes and profiler
  counter deltas captured at span boundaries.  Disabled by default via a
  zero-overhead :class:`NullTracer`; enable per run with :func:`use_tracer`.
* :mod:`repro.obs.exporters` — Chrome ``chrome://tracing`` JSON, a flat
  JSONL event log, and a Prometheus text dump of the metric registry.
* :mod:`repro.obs.manifest` — the :class:`RunManifest` written per
  bench/train run (git rev, plan ids, dataset/graph kind, cache config,
  per-phase totals) so result trajectories are self-describing.
"""

from repro.obs.exporters import (
    chrome_trace,
    prometheus_text,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.manifest import RunManifest, build_run_manifest, git_revision
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanEvent,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanEvent",
    "current_tracer",
    "use_tracer",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "prometheus_text",
    "write_prometheus",
    "RunManifest",
    "build_run_manifest",
    "git_revision",
]
