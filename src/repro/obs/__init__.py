"""Observability: tracing, live metrics, run manifests, and exports.

The subsystem's parts (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.tracer` — nested spans over the hot paths (executor,
  kernels, graph updates, trainer), with allocator bytes and profiler
  counter deltas captured at span boundaries.  Disabled by default via a
  zero-overhead :class:`NullTracer`; enable per run with :func:`use_tracer`.
* :mod:`repro.obs.metrics` — the labeled :class:`MetricRegistry` with
  streaming log-bucket latency :class:`Histogram` s (p50/p95/p99); one
  lives on every device as ``device.metrics``.
* :mod:`repro.obs.server` — the opt-in stdlib HTTP telemetry server
  (``/metrics``, ``/healthz``, ``/progress``) for live scrapes mid-run.
* :mod:`repro.obs.flight` — the bounded :class:`FlightRecorder` ring
  buffer, drained to ``flight.jsonl`` on aborts/fallbacks/kills.
* :mod:`repro.obs.exporters` — Chrome ``chrome://tracing`` JSON, a flat
  JSONL event log, and the Prometheus text renderer shared by post-hoc
  dumps and the live ``/metrics`` endpoint.
* :mod:`repro.obs.manifest` — the :class:`RunManifest` written per
  bench/train run (git rev, plan ids, dataset/graph kind, cache config,
  per-phase totals) so result trajectories are self-describing.
"""

from repro.obs.exporters import (
    chrome_trace,
    prometheus_text,
    snapshot_registry,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.flight import (
    NULL_FLIGHT_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
    current_flight_recorder,
    use_flight_recorder,
)
from repro.obs.manifest import RunManifest, build_run_manifest, git_revision
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricRegistry,
    log_buckets,
)
from repro.obs.server import TelemetryServer, TrainingProgress
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanEvent,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanEvent",
    "current_tracer",
    "use_tracer",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "prometheus_text",
    "snapshot_registry",
    "write_prometheus",
    "RunManifest",
    "build_run_manifest",
    "git_revision",
    "MetricRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "log_buckets",
    "TelemetryServer",
    "TrainingProgress",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT_RECORDER",
    "current_flight_recorder",
    "use_flight_recorder",
]
