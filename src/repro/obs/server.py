"""Opt-in, stdlib-only HTTP telemetry server for live scrapes.

``STGraphTrainer(telemetry_port=...)`` / ``repro train --telemetry-port``
start one of these on a daemon thread for the duration of the run:

* ``GET /metrics``  — live Prometheus scrape, rendered through the *same*
  code path as the post-hoc dump (:func:`repro.obs.exporters.prometheus_text`),
  so names/labels cannot drift between the two.
* ``GET /healthz``  — liveness JSON (``{"status": "ok", ...}``).
* ``GET /progress`` — training progress JSON (epoch / timestamp / loss),
  fed by the trainer through a :class:`TrainingProgress` holder.

Port 0 binds an ephemeral port; :meth:`TelemetryServer.start` returns the
bound port so tests and the CLI can print the real URL.  The server is
loopback-only by default and dies with the process (daemon thread), but
the trainer still stops it explicitly so a finished run leaves the port
closed rather than leaking until interpreter exit.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any

from repro.analysis.sanitizer import new_lock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.device.device import Device
    from repro.obs.tracer import Tracer

__all__ = ["TelemetryServer", "TrainingProgress"]


class TrainingProgress:
    """Thread-safe key/value snapshot of training progress.

    The trainer updates it from the training thread; the telemetry server
    reads it from HTTP handler threads.  Values must be JSON-serializable.
    """

    def __init__(self) -> None:
        self._lock = new_lock("TrainingProgress._lock")
        self._data: dict[str, Any] = {}

    def update(self, **fields: Any) -> None:
        with self._lock:
            self._data.update(fields)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return dict(self._data)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-telemetry/1"

    def log_message(self, fmt: str, *args: Any) -> None:  # pragma: no cover
        pass  # scrapes must not spam the training run's stdout

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        telemetry: "TelemetryServer" = self.server.telemetry  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                from repro.obs.exporters import prometheus_text

                body = prometheus_text(telemetry.device, telemetry.tracer).encode()
                self._send(200, "text/plain; version=0.0.4; charset=utf-8", body)
            elif path == "/healthz":
                payload = {
                    "status": "ok",
                    "device": telemetry.device.name,
                    "uptime_seconds": round(time.monotonic() - telemetry.started_at, 3),
                }
                self._send(200, "application/json", json.dumps(payload).encode())
            elif path == "/progress":
                body = json.dumps(telemetry.progress.snapshot()).encode()
                self._send(200, "application/json", body)
            else:
                self._send(404, "application/json", b'{"error": "not found"}')
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # scraper went away mid-response; nothing to clean up


class TelemetryServer:
    """The in-process scrape endpoint (``/metrics``, ``/healthz``, ``/progress``).

    Parameters
    ----------
    device:
        The device whose metric registry backs ``/metrics``.  Passed
        explicitly (not via ``current_device()``) because HTTP handler
        threads never have the training thread's context installed.
    tracer:
        Optional tracer whose span aggregates join the scrape.
    port:
        TCP port; 0 picks an ephemeral one (see :meth:`start`).
    progress:
        Optional shared :class:`TrainingProgress`; a fresh one otherwise.
    """

    def __init__(self, device: "Device", tracer: "Tracer | None" = None,
                 port: int = 0, host: str = "127.0.0.1",
                 progress: TrainingProgress | None = None) -> None:
        self.device = device
        self.tracer = tracer
        self.host = host
        self.port = port
        self.progress = progress if progress is not None else TrainingProgress()
        self.started_at = time.monotonic()
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        if self._httpd is not None:
            return self.port
        httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        httpd.daemon_threads = True
        httpd.telemetry = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self.started_at = time.monotonic()
        self._thread = threading.Thread(
            target=httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-telemetry", daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        """Shut down the listener and join the serving thread."""
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
