"""Self-describing run manifests.

A ``BENCH_*.json`` row (or a one-off ``repro train`` run) is only comparable
across PRs if it records *what* ran: which revision, which compiled plans,
which dataset/graph kind, and which cache configuration.  The
:class:`RunManifest` bundles that provenance with the run's per-phase
totals, reuse counters, span aggregates, and memory watermarks — one JSON
file written next to the trace, so a trajectory of benchmark results is
self-describing without consulting git history.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.device.device import Device
    from repro.obs.tracer import Tracer

__all__ = ["RunManifest", "build_run_manifest", "git_revision"]

_SCHEMA_VERSION = 1


def git_revision(cwd: str | None = None) -> str | None:
    """The current git commit hash, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


@dataclass
class RunManifest:
    """Provenance + aggregate record of one bench/train run."""

    schema_version: int = _SCHEMA_VERSION
    created_unix: float = 0.0
    git_rev: str | None = None
    run_name: str = ""
    command: str = ""
    #: "stgraph" | "pygt" | "naive" | "gpma" | ...
    system: str = ""
    dataset: str = ""
    #: "static" | "naive" | "gpma" — STGraphBase.graph_type
    graph_kind: str = ""
    #: snapshot/reuse cache configuration in effect for the run
    cache_config: dict[str, Any] = field(default_factory=dict)
    #: content-hash ids of every plan in the process-wide plan cache
    plan_ids: list[str] = field(default_factory=list)
    plan_cache_stats: dict[str, int] = field(default_factory=dict)
    #: verifier warnings across all cached plans, keyed by STG0xx code
    #: (builds with errors never produce a plan, so only warnings appear)
    lint_warnings: dict[str, int] = field(default_factory=dict)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    span_seconds: dict[str, float] = field(default_factory=dict)
    span_calls: dict[str, dict] = field(default_factory=dict)
    peak_memory_bytes: int = 0
    current_memory_bytes: int = 0
    peak_memory_by_tag: dict[str, int] = field(default_factory=dict)
    kernel_launches: int = 0
    #: resilience record: planned faults that fired (by kind), kernel-launch
    #: retries, interpreter-engine fallbacks, and the checkpoint this run
    #: resumed from (None for a fresh run) — see docs/RESILIENCE.md
    faults_injected: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    engine_fallbacks: int = 0
    resumed_from: str | None = None
    #: events captured by the run's flight recorder (0 when none was armed)
    #: and how many times its ring was drained to a ``flight.jsonl`` window
    flight_recorder_events: int = 0
    flight_recorder_drains: int = 0
    #: free-form per-run results (losses, epoch times, figure params)
    results: dict[str, Any] = field(default_factory=dict)
    #: serving-layer record (``repro serve`` / ServingHarness runs): the
    #: ServingReport row plus the engine's reuse counters — empty for
    #: train/bench runs.  See docs/SERVING.md.
    serving: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict."""
        return asdict(self)

    def write(self, path: str) -> str:
        """Write the manifest as JSON to ``path``; returns the path."""
        parent = os.path.dirname(os.path.abspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        """Read a manifest back (unknown keys from future schemas ignored)."""
        with open(path) as fh:
            data = json.load(fh)
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


def build_run_manifest(
    device: "Device",
    tracer: "Tracer | None" = None,
    graph: Any | None = None,
    run_name: str = "",
    command: str = "",
    system: str = "",
    dataset: str = "",
    results: dict[str, Any] | None = None,
    resumed_from: str | None = None,
    serving: dict[str, Any] | None = None,
) -> RunManifest:
    """Collect a :class:`RunManifest` from the live device/tracer/graph.

    ``graph`` (any :class:`~repro.graph.base.STGraphBase`) contributes the
    graph kind and the snapshot-cache configuration; the process-wide plan
    cache contributes the plan ids a future reader can match against
    ``docs/COMPILER.md`` §7 cache keys.
    """
    from repro.compiler.plan import plan_cache
    from repro.obs.flight import current_flight_recorder
    from repro.resilience.faults import current_injector

    cache = plan_cache()
    lint_warnings: dict[str, int] = {}
    for plan in cache.plans():
        if plan.lint is None:
            continue
        for diag in plan.lint.warnings:
            lint_warnings[diag.code] = lint_warnings.get(diag.code, 0) + 1
    manifest = RunManifest(
        created_unix=time.time(),
        git_rev=git_revision(),
        run_name=run_name,
        command=command,
        system=system,
        dataset=dataset,
        plan_ids=sorted(p.plan_id for p in cache.plans()),
        plan_cache_stats=cache.stats(),
        lint_warnings=lint_warnings,
        phase_seconds={k: round(v, 6) for k, v in device.profiler.phase_seconds().items()},
        counters=dict(device.profiler.counters()),
        peak_memory_bytes=device.tracker.peak_bytes,
        current_memory_bytes=device.tracker.current_bytes,
        peak_memory_by_tag={t or "untagged": b for t, b in sorted(device.tracker.peak_bytes_by_tag().items())},
        kernel_launches=device.launcher.launch_count,
        faults_injected=current_injector().faults_injected(),
        retries=device.profiler.counter("kernel_retries"),
        engine_fallbacks=device.profiler.counter("engine_fallbacks"),
        resumed_from=resumed_from,
        flight_recorder_events=current_flight_recorder().total_recorded,
        flight_recorder_drains=current_flight_recorder().drain_count(),
        results=dict(results or {}),
        serving=dict(serving or {}),
    )
    if tracer is not None:
        manifest.run_name = manifest.run_name or tracer.name
        manifest.span_seconds = {k: round(v, 6) for k, v in tracer.aggregate_by_cat().items()}
        manifest.span_calls = {
            name: {"calls": info["calls"], "seconds": round(info["seconds"], 6)}
            for name, info in tracer.aggregate_by_name().items()
        }
    if graph is not None:
        manifest.graph_kind = getattr(graph, "graph_type", "")
        manifest.cache_config = {
            "enable_cache": getattr(graph, "enable_cache", None),
            "enable_csr_cache": getattr(graph, "enable_csr_cache", None),
            "csr_cache_size": getattr(graph, "csr_cache_size", None),
        }
    return manifest
