"""Labeled metric registry with streaming latency histograms.

PR 3's observability layer was strictly *post-hoc*: totals accumulated on
the device (profiler phases, allocator peaks, kernel launch sums) rendered
to Prometheus text after the run ended.  This module adds the live half —
the registry a scrape endpoint can read mid-run, and the latency
*distributions* (p50/p95/p99) that totals cannot express:

* :class:`Counter` / :class:`Gauge` — labeled scalar families.
* :class:`Histogram` — fixed log-bucket streaming histograms with
  Prometheus cumulative-bucket semantics (``_bucket{le=...}`` including
  ``+Inf``, ``_sum``, ``_count``), quantile estimation by linear
  interpolation inside the winning bucket, and :meth:`Histogram.merge` so
  per-worker instances can be combined.
* :class:`MetricRegistry` — thread-safe, insertion-ordered family
  registry; one lives on every :class:`~repro.device.device.Device` as
  ``device.metrics``, and the Prometheus exporter renders both the legacy
  totals and these live families through the single code path
  :meth:`MetricRegistry.render` — so the post-hoc dump and the live
  ``/metrics`` scrape can never drift.

Everything here is stdlib-only and safe to call from worker threads: each
child holds its own lock, and observation is O(log buckets) (a bisect into
precomputed bounds).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterator

from repro.analysis.sanitizer import new_lock

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricRegistry",
    "log_buckets",
    "prom_escape",
]


def prom_escape(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def log_buckets(start: float = 1e-6, factor: float = 2.0, count: int = 26) -> tuple[float, ...]:
    """Geometric bucket upper bounds: ``start * factor**i`` for i in [0, count).

    The defaults span 1µs .. ~33.5s in factor-of-2 steps — wide enough for
    everything from a single kernel launch to a full epoch, at a fixed
    26-counter cost per labeled child.
    """
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ValueError("log_buckets needs start > 0, factor > 1, count >= 1")
    return tuple(start * factor ** i for i in range(count))


#: The registry-wide default latency buckets (seconds).
DEFAULT_BUCKETS = log_buckets()


def _fmt(value: float) -> str:
    """Prometheus sample-value formatting (matches the legacy ``{v:g}``)."""
    return f"{value:g}"


_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_str(key: _LabelKey, extra: str = "") -> str:
    parts = [f'{k}="{prom_escape(v)}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """A monotonically increasing value (one labeled child of a family)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = new_lock("Counter._lock")
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (one labeled child of a family)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = new_lock("Gauge._lock")
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bucket streaming histogram (one labeled child of a family).

    ``bounds`` are *upper* bucket bounds; an observation lands in the first
    bucket whose bound is >= the value, or in the implicit ``+Inf`` bucket.
    Rendering is cumulative per Prometheus semantics, so the ``+Inf``
    bucket always equals ``_count``.
    """

    __slots__ = ("_lock", "bounds", "counts", "inf_count", "sum", "count")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be non-empty and strictly increasing")
        self._lock = new_lock("Histogram._lock")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * len(bounds)
        self.inf_count = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation (thread-safe, O(log buckets))."""
        value = float(value)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            if idx < len(self.counts):
                self.counts[idx] += 1
            else:
                self.inf_count += 1
            self.sum += value
            self.count += 1

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram (same bounds)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bucket bounds")
        with other._lock:
            counts = list(other.counts)
            inf_count, total, seconds = other.inf_count, other.count, other.sum
        with self._lock:
            for i, c in enumerate(counts):
                self.counts[i] += c
            self.inf_count += inf_count
            self.count += total
            self.sum += seconds

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending with ``(inf, count)``."""
        return self.snapshot()[0]

    def snapshot(self) -> tuple[list[tuple[float, int]], float, int]:
        """``(cumulative, sum, count)`` captured under one lock.

        Renderers must use this instead of reading ``cumulative()`` and
        ``count`` separately: a concurrent ``observe`` between the two
        reads would make the scraped ``+Inf`` bucket disagree with
        ``_count``.
        """
        with self._lock:
            counts = list(self.counts)
            inf_count = self.inf_count
            total = self.count
            seconds = self.sum
        out: list[tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.bounds, counts):
            running += c
            out.append((bound, running))
        out.append((math.inf, running + inf_count))
        return out, seconds, total

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation inside the winning bucket, so the estimate is
        within one bucket width of the true value.  Observations beyond the
        last finite bound clamp to it (the ``+Inf`` bucket has no width to
        interpolate over).  Returns ``nan`` with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile requires 0 <= q <= 1")
        with self._lock:
            counts = list(self.counts)
            inf_count = self.inf_count
            total = self.count
        if total == 0:
            return math.nan
        rank = q * total
        running = 0.0
        prev_bound = 0.0
        for bound, c in zip(self.bounds, counts):
            if running + c >= rank and c > 0:
                frac = (rank - running) / c
                return prev_bound + frac * (bound - prev_bound)
            running += c
            prev_bound = bound
        # Rank falls in +Inf: clamp to the last finite bound.
        return self.bounds[-1] if inf_count else prev_bound

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * len(self.bounds)
            self.inf_count = 0
            self.sum = 0.0
            self.count = 0


class MetricFamily:
    """One named metric with labeled children (``kind`` in counter/gauge/histogram)."""

    def __init__(self, name: str, kind: str, help_text: str = "",
                 buckets: tuple[float, ...] | None = None) -> None:
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.buckets = tuple(buckets) if buckets else (DEFAULT_BUCKETS if kind == "histogram" else None)
        self._lock = new_lock("MetricFamily._lock")
        self._children: dict[_LabelKey, Counter | Gauge | Histogram] = {}

    def labels(self, **labels: str) -> Counter | Gauge | Histogram:
        """The child for this label set (created on first use).

        Hot paths should cache the returned child — ``labels()`` takes the
        family lock, the child's own methods only its child lock.
        """
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if self.kind == "counter":
                        child = Counter()
                    elif self.kind == "gauge":
                        child = Gauge()
                    else:
                        child = Histogram(self.buckets)
                    self._children[key] = child
        return child

    def child_items(self) -> list[tuple[_LabelKey, Counter | Gauge | Histogram]]:
        """Children sorted by label key (deterministic render order)."""
        with self._lock:
            return sorted(self._children.items())

    def render_lines(self) -> list[str]:
        """Prometheus text lines for this family (HELP/TYPE + samples)."""
        lines = [f"# HELP {self.name} {self.help_text}", f"# TYPE {self.name} {self.kind}"]
        for key, child in self.child_items():
            if self.kind == "histogram":
                assert isinstance(child, Histogram)
                cumulative, total_sum, total_count = child.snapshot()
                for bound, cum in cumulative:
                    le = "+Inf" if math.isinf(bound) else _fmt(bound)
                    le_label = 'le="%s"' % le
                    lines.append(f"{self.name}_bucket{_label_str(key, le_label)} {cum}")
                lines.append(f"{self.name}_sum{_label_str(key)} {_fmt(total_sum)}")
                lines.append(f"{self.name}_count{_label_str(key)} {total_count}")
            else:
                lines.append(f"{self.name}{_label_str(key)} {_fmt(child.value)}")
        return lines

    def reset(self) -> None:
        """Zero every child in place (cached child references stay live)."""
        with self._lock:
            children = list(self._children.values())
        for child in children:
            if isinstance(child, Histogram):
                child.reset()
            else:
                with child._lock:
                    child.value = 0.0


class MetricRegistry:
    """Thread-safe, insertion-ordered registry of metric families.

    One registry lives on every device (``device.metrics``); the exporter
    additionally builds throwaway snapshot registries to render the legacy
    totals through the same code path.  ``enabled`` is a hint hot paths
    check before timing work (mirroring ``Profiler.enabled``).
    """

    def __init__(self, enabled: bool = True) -> None:
        self._lock = new_lock("MetricRegistry._lock")
        self._families: dict[str, MetricFamily] = {}
        self.enabled = enabled

    def _family(self, name: str, kind: str, help_text: str,
                buckets: tuple[float, ...] | None = None) -> MetricFamily:
        fam = self._families.get(name)
        if fam is None:
            with self._lock:
                fam = self._families.get(name)
                if fam is None:
                    fam = MetricFamily(name, kind, help_text, buckets)
                    self._families[name] = fam
                    return fam
        if fam.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind}, not {kind}"
            )
        if kind == "histogram" and buckets and tuple(buckets) != fam.buckets:
            raise ValueError(f"metric {name!r} already registered with different buckets")
        return fam

    def counter(self, name: str, help_text: str = "") -> MetricFamily:
        """Get-or-create a counter family."""
        return self._family(name, "counter", help_text)

    def gauge(self, name: str, help_text: str = "") -> MetricFamily:
        """Get-or-create a gauge family."""
        return self._family(name, "gauge", help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: tuple[float, ...] | None = None) -> MetricFamily:
        """Get-or-create a histogram family (default log buckets, see
        :data:`DEFAULT_BUCKETS`)."""
        return self._family(name, "histogram", help_text, buckets)

    def observe(self, name: str, value: float, help_text: str = "", **labels: str) -> None:
        """One-shot histogram observation (hot-path convenience)."""
        self.histogram(name, help_text).labels(**labels).observe(value)

    def get(self, name: str) -> MetricFamily | None:
        """The family registered under ``name``, or None."""
        return self._families.get(name)

    def families(self) -> list[MetricFamily]:
        """Families in registration order."""
        with self._lock:
            return list(self._families.values())

    def __iter__(self) -> Iterator[MetricFamily]:
        return iter(self.families())

    def merge(self, other: "MetricRegistry") -> None:
        """Fold every family/child of ``other`` into this registry.

        Counters add, gauges overwrite, histograms merge bucket-wise; the
        exporter uses this to combine the legacy-totals snapshot with the
        device's live families into one rendered document.
        """
        for fam in other.families():
            mine = self._family(fam.name, fam.kind, fam.help_text, fam.buckets)
            for key, child in fam.child_items():
                target = mine.labels(**dict(key))
                if fam.kind == "counter":
                    assert isinstance(target, Counter) and isinstance(child, Counter)
                    target.inc(child.value)
                elif fam.kind == "gauge":
                    assert isinstance(target, Gauge) and isinstance(child, Gauge)
                    target.set(child.value)
                else:
                    assert isinstance(target, Histogram) and isinstance(child, Histogram)
                    target.merge(child)

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: list[str] = []
        for fam in self.families():
            lines.extend(fam.render_lines())
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Zero every child in place.

        Families and children survive so references cached by hot paths
        (e.g. the launcher's per-tier histogram children) keep recording
        into the registry after ``Device.reset()``.
        """
        for fam in self.families():
            fam.reset()
