"""Nested-span tracing with a zero-overhead-when-disabled default.

The paper's evaluation lives on *breakdowns* (Figure 9 splits DTDG time into
GNN processing vs. graph updates; Figures 6/8 report resident memory), and
every perf PR since has argued through the same kind of decomposition.  The
:class:`Tracer` makes that decomposition first-class: instrumented code opens
**spans** (``epoch > sequence > timestamp[t] > {graph_update, forward/layer,
backward, optimizer}``) and each completed span records

* wall time (start + duration, monotonic clock relative to the tracer),
* allocator residency at entry/exit plus the delta,
* device profiler *counter deltas* over the span (cache hits, noop skips),
* arbitrary user args (timestamp, kernel name, byte counts, ...).

Completed spans also fold into two aggregates maintained on the fly:

* :meth:`Tracer.aggregate_by_cat` — **self time** per category (a span's
  duration minus its children's), so nested same-category spans never double
  count and the ``gnn`` / ``graph_update`` totals are directly comparable to
  the device profiler's innermost-phase attribution;
* :meth:`Tracer.aggregate_by_name` — inclusive duration + call count per
  span name (the right view for leaf spans like kernel launches).

**Zero overhead when disabled.**  The process default is a
:class:`NullTracer` whose :meth:`~NullTracer.span` returns one shared no-op
context manager; instrumented hot paths pay a global read, a method call,
and a ``with`` enter/exit — no allocation, no branching on config.  Real
tracers are installed per run with :func:`use_tracer`.

Exception safety: ``span()`` is a context manager, so a span is closed even
when the body raises (the event is tagged ``error=<ExcType>``); a mid-
sequence failure therefore never leaves dangling spans behind
(``open_span_count`` returns to zero, and the Chrome export keeps matched
B/E pairs).
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import TYPE_CHECKING, Any, Iterator

from repro.analysis.sanitizer import new_lock
from repro.util.ctxstack import ContextStack

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.device.device import Device

__all__ = ["SpanEvent", "Tracer", "NullTracer", "NULL_TRACER", "current_tracer", "use_tracer"]


class SpanEvent:
    """One completed span (or instant event, when ``dur`` is None).

    ``tid`` is the tracer-assigned lane of the thread that emitted the
    event: 1 for the thread that created the tracer (the training loop),
    2+ for worker threads (e.g. the prefetch scheduler's ``prefetch.*``
    spans), so the Chrome export shows overlap as parallel tracks.
    """

    __slots__ = ("name", "cat", "ts", "dur", "depth", "args", "tid")

    def __init__(
        self, name: str, cat: str, ts: float, dur: float | None, depth: int, args: dict[str, Any], tid: int = 1
    ) -> None:
        self.name = name
        self.cat = cat
        self.ts = ts  # seconds since the tracer's epoch
        self.dur = dur  # seconds; None for instant events
        self.depth = depth
        self.args = args
        self.tid = tid

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-friendly form (the JSONL exporter's row)."""
        d: dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "ts_us": round(self.ts * 1e6, 3),
            "depth": self.depth,
        }
        if self.dur is not None:
            d["dur_us"] = round(self.dur * 1e6, 3)
        if self.tid != 1:
            d["tid"] = self.tid
        if self.args:
            d["args"] = self.args
        return d


class _OpenSpan:
    __slots__ = ("name", "cat", "start", "child_seconds", "mem_enter", "counters_enter", "args")

    def __init__(self, name: str, cat: str, start: float, mem_enter: int,
                 counters_enter: dict[str, int], args: dict[str, Any]) -> None:
        self.name = name
        self.cat = cat
        self.start = start
        self.child_seconds = 0.0
        self.mem_enter = mem_enter
        self.counters_enter = counters_enter
        self.args = args


class _NullSpan:
    """Shared reusable no-op context manager (the disabled-tracer fast path)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    Kept deliberately tiny — this object sits on every hot path of the
    framework by default, and ``benchmarks/test_micro_obs_overhead.py``
    gates its per-span cost against the training step it instruments.
    """

    enabled = False

    def span(self, name: str, cat: str = "", **args: Any) -> _NullSpan:
        """No-op span (one shared context manager, no allocation)."""
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        """No-op instant event."""

    @property
    def open_span_count(self) -> int:
        """Always 0: a disabled tracer opens nothing."""
        return 0


NULL_TRACER = NullTracer()


class Tracer:
    """Collects nested spans with memory/counter capture at boundaries.

    Parameters
    ----------
    name:
        Display name, recorded in exports and manifests.
    keep_events:
        When False the tracer maintains only the aggregates — the mode the
        Figure 9 runner uses, where per-event retention would be waste.
    max_events:
        Retention cap; completed events beyond it are dropped (counted in
        :attr:`dropped_events`) so a runaway loop cannot exhaust memory.
        Aggregates keep accumulating regardless.
    """

    enabled = True

    def __init__(self, name: str = "run", keep_events: bool = True, max_events: int = 1_000_000) -> None:
        self.name = name
        self.keep_events = keep_events
        self.max_events = int(max_events)
        self.events: list[SpanEvent] = []
        self.dropped_events = 0
        self._epoch = time.perf_counter()
        # Open-span stacks are per-thread: a span opened on a worker thread
        # (the prefetch scheduler) nests under that thread's own spans and
        # can never corrupt the main thread's stack.  Completed events and
        # the two aggregates are shared, merged under one lock.
        self._tls = threading.local()
        self._lock = new_lock("Tracer._lock")
        self._main_ident = threading.get_ident()
        # thread ident -> display lane (1 = creating thread, 2+ = workers)
        self._lanes: dict[int, int] = {self._main_ident: 1}
        self._next_lane = 2
        # cat -> accumulated self seconds (duration minus child time)
        self._cat_seconds: dict[str, float] = {}
        # name -> [calls, inclusive seconds]
        self._name_totals: dict[str, list[float]] = {}
        self.max_depth = 0

    # ------------------------------------------------------------------
    def _device(self) -> "Device":
        from repro.device import current_device

        return current_device()

    def _open_stack(self) -> list[_OpenSpan]:
        stack = getattr(self._tls, "open", None)
        if stack is None:
            stack = []
            self._tls.open = stack
        return stack

    def _lane(self) -> int:
        ident = threading.get_ident()
        lane = self._lanes.get(ident)
        if lane is None:
            with self._lock:
                lane = self._lanes.setdefault(ident, self._next_lane)
                if lane == self._next_lane:
                    self._next_lane += 1
        return lane

    @contextlib.contextmanager
    def span(self, name: str, cat: str = "", **args: Any) -> Iterator[None]:
        """Open a span; closes (and records) on exit even if the body raises."""
        device = self._device()
        open_span = _OpenSpan(
            name,
            cat,
            time.perf_counter(),
            device.tracker.current_bytes,
            device.profiler.counters_snapshot(),
            args,
        )
        stack = self._open_stack()
        stack.append(open_span)
        if len(stack) > self.max_depth:
            self.max_depth = len(stack)
        try:
            yield
        except BaseException as exc:
            open_span.args["error"] = type(exc).__name__
            raise
        finally:
            self._close(open_span, device)

    def _close(self, open_span: _OpenSpan, device: "Device") -> None:
        end = time.perf_counter()
        stack = self._open_stack()
        # Close everything down to (and including) this span: a child left
        # open by non-contextmanager misuse must not orphan the stack.
        while stack:
            top = stack.pop()
            if top is open_span:
                break
            top.args.setdefault("error", "unclosed-child")
            self._record_closed(top, end, device, stack, depth=len(stack) + 1)
        self._record_closed(open_span, end, device, stack, depth=len(stack))

    def _record_closed(self, span: _OpenSpan, end: float, device: "Device",
                       stack: list[_OpenSpan], depth: int) -> None:
        dur = end - span.start
        self_seconds = max(0.0, dur - span.child_seconds)
        if stack:
            stack[-1].child_seconds += dur
        key = span.cat or span.name
        keep = self.keep_events
        if keep:
            args = span.args
            mem_exit = device.tracker.current_bytes
            if mem_exit != span.mem_enter:
                args["mem_delta_bytes"] = mem_exit - span.mem_enter
            args["mem_bytes"] = mem_exit
            counters_exit = device.profiler.counters_snapshot()
            for cname, value in counters_exit.items():
                delta = value - span.counters_enter.get(cname, 0)
                if delta:
                    args[f"d_{cname}"] = delta
            event = SpanEvent(span.name, span.cat, span.start - self._epoch, dur, depth, args, self._lane())
        with self._lock:
            self._cat_seconds[key] = self._cat_seconds.get(key, 0.0) + self_seconds
            tot = self._name_totals.get(span.name)
            if tot is None:
                self._name_totals[span.name] = [1, dur]
            else:
                tot[0] += 1
                tot[1] += dur
            if not keep:
                return
            if len(self.events) >= self.max_events:
                self.dropped_events += 1
                return
            self.events.append(event)

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        """Record a point-in-time event (e.g. a state-stack push)."""
        if not self.keep_events:
            return
        event = SpanEvent(
            name, cat, time.perf_counter() - self._epoch, None, len(self._open_stack()), args, self._lane()
        )
        with self._lock:
            if len(self.events) >= self.max_events:
                self.dropped_events += 1
                return
            self.events.append(event)

    # ------------------------------------------------------------------
    @property
    def open_span_count(self) -> int:
        """Spans open on the *calling thread* (0 after any balanced — or
        failed — region); other threads' open spans are invisible here."""
        return len(self._open_stack())

    def aggregate_by_cat(self) -> dict[str, float]:
        """Accumulated *self* seconds per category (no double counting)."""
        with self._lock:
            return dict(self._cat_seconds)

    def aggregate_by_name(self) -> dict[str, dict[str, float]]:
        """Per-span-name call count and inclusive seconds."""
        with self._lock:
            return {
                name: {"calls": calls, "seconds": seconds}
                for name, (calls, seconds) in self._name_totals.items()
            }

    def span_events(self) -> list[SpanEvent]:
        """Completed duration events only (instants excluded)."""
        return [e for e in self.events if e.dur is not None]


# ---------------------------------------------------------------------------
# Current-tracer plumbing (shared ContextStack; mirrors repro.device.use_device)
# ---------------------------------------------------------------------------
_STACK: ContextStack[Tracer | NullTracer] = ContextStack(NULL_TRACER)


def current_tracer() -> Tracer | NullTracer:
    """The innermost active tracer (the no-op :data:`NULL_TRACER` by default).

    Per-thread: a worker thread traces nothing unless a tracer is installed
    on that thread with :func:`use_tracer`.
    """
    return _STACK.current()


@contextlib.contextmanager
def use_tracer(tracer: Tracer | NullTracer | None) -> Iterator[Tracer | NullTracer]:
    """Run a block with ``tracer`` active; ``None`` keeps tracing disabled."""
    t = tracer if tracer is not None else NULL_TRACER
    with _STACK.use(t):
        yield t
