"""Bounded flight recorder: the last N events, dumped when things go wrong.

The tracer answers "what happened during this run?" — but only if you
asked for a trace up front, and only after the run ends.  The flight
recorder answers the incident-response question: *what were the last
things the process did before it died?*  It keeps a per-thread ring
buffer of the most recent ``capacity`` events (timestamp marks, fault
injections, span-level notes, counter bumps) at O(1) append cost, and
**drains** the merged window into a ``flight.jsonl`` artifact whenever a
failure edge fires:

* :meth:`~repro.core.executor.TemporalExecutor.abort_sequence` (a
  mid-sequence teardown),
* a degradation-ladder engine fallback (``repro.core.module``),
* a :class:`~repro.resilience.faults.SimulatedKill` (boundary or
  mid-sequence — the injector drains *before* raising, since a boundary
  kill never reaches ``abort_sequence``).

Like the tracer, the recorder is off by default through a zero-overhead
:class:`NullFlightRecorder`; ``repro train --flight-recorder out.jsonl``
and ``repro chaos --flight-recorder out.jsonl`` install a real one via
:func:`use_flight_recorder`.  The context stack is thread-local over a
process default (see :mod:`repro.util.ctxstack`), so worker threads see
the null recorder unless handed the real one explicitly.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

from repro.analysis.sanitizer import new_lock
from repro.util.ctxstack import ContextStack

__all__ = [
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT_RECORDER",
    "current_flight_recorder",
    "use_flight_recorder",
]


class FlightRecorder:
    """Per-thread ring buffers of recent events, drained to JSONL on failure.

    Parameters
    ----------
    capacity:
        Events kept *per thread*; older events fall off the ring.
    path:
        Default artifact path for :meth:`drain` (a drain can override it).
    """

    enabled = True

    def __init__(self, capacity: int = 256, path: str | os.PathLike | None = None) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.path = os.fspath(path) if path is not None else None
        self._lock = new_lock("FlightRecorder._lock")
        self._rings: dict[int, deque[dict[str, Any]]] = {}
        # Recorded-event totals are kept per thread (a cell registered next
        # to each ring) and summed on read: a single shared `+= 1` from the
        # documented lock-free record() path would lose updates under
        # contention — the first genuine data race the concurrency
        # analyzer's review of this module turned up.
        self._counts: dict[int, list[int]] = {}
        self._tls = threading.local()
        self.drains: list[dict[str, Any]] = []

    def _ring(self) -> deque[dict[str, Any]]:
        ring = getattr(self._tls, "ring", None)
        if ring is None:
            ring = deque(maxlen=self.capacity)
            cell = [0]
            self._tls.ring = ring
            self._tls.count = cell
            with self._lock:
                ident = threading.get_ident()
                self._rings[ident] = ring
                self._counts[ident] = cell
        return ring

    @property
    def total_recorded(self) -> int:
        """Events recorded across all threads (exact, summed under lock)."""
        with self._lock:
            return sum(cell[0] for cell in self._counts.values())

    def record(self, kind: str, name: str, **fields: Any) -> None:
        """Append one event to the calling thread's ring (O(1), lock-free).

        ``kind`` is a coarse taxonomy — ``"mark"`` (progress breadcrumbs
        like timestamp boundaries), ``"fault"`` (injected faults),
        ``"span"`` (notable span edges), ``"counter"`` (counter bumps).
        """
        event = {
            "ts": time.time(),
            "tid": threading.get_ident(),
            "kind": kind,
            "name": name,
        }
        if fields:
            event.update(fields)
        self._ring().append(event)
        self._tls.count[0] += 1  # thread-private cell; no lost updates

    def events(self) -> list[dict[str, Any]]:
        """The merged window across all threads, oldest first."""
        with self._lock:
            rings = list(self._rings.values())
        merged: list[dict[str, Any]] = []
        for ring in rings:
            merged.extend(ring)
        merged.sort(key=lambda e: e["ts"])
        return merged

    def drain(self, reason: str, path: str | os.PathLike | None = None) -> int:
        """Append the current window to the JSONL artifact; returns #events.

        The artifact is append-mode JSONL: each drain writes one header
        record (``{"flight_drain": reason, ...}``) followed by the merged
        event window, so a chaos run with several kills yields several
        windows in one file.  With no path configured the drain is still
        accounted (so reports can assert the recorder fired) but nothing
        is written.
        """
        events = self.events()
        target = os.fspath(path) if path is not None else self.path
        self.drains.append({
            "reason": reason,
            "events": len(events),
            "path": target,
            "ts": time.time(),
        })
        if target is None:
            return len(events)
        parent = os.path.dirname(os.path.abspath(target))
        if parent:
            os.makedirs(parent, exist_ok=True)
        with self._lock:  # one drain writes at a time; records stay lock-free
            with open(target, "a") as fh:
                header = {
                    "flight_drain": reason,
                    "ts": time.time(),
                    "events": len(events),
                    "capacity": self.capacity,
                }
                fh.write(json.dumps(header) + "\n")
                for event in events:
                    fh.write(json.dumps(event) + "\n")
        return len(events)

    def drain_count(self) -> int:
        return len(self.drains)


class NullFlightRecorder:
    """Zero-overhead stand-in when no flight recorder is installed."""

    enabled = False
    capacity = 0
    path = None
    total_recorded = 0
    drains: list[dict[str, Any]] = []

    def record(self, kind: str, name: str, **fields: Any) -> None:
        pass

    def events(self) -> list[dict[str, Any]]:
        return []

    def drain(self, reason: str, path: str | os.PathLike | None = None) -> int:
        return 0

    def drain_count(self) -> int:
        return 0


#: The process-wide default: recording disabled.
NULL_FLIGHT_RECORDER = NullFlightRecorder()

_STACK: ContextStack[FlightRecorder | NullFlightRecorder] = ContextStack(NULL_FLIGHT_RECORDER)


def current_flight_recorder() -> FlightRecorder | NullFlightRecorder:
    """The innermost active recorder (the null recorder unless installed)."""
    return _STACK.current()


@contextmanager
def use_flight_recorder(recorder: FlightRecorder) -> Iterator[FlightRecorder]:
    """Run a block with ``recorder`` installed on this thread."""
    with _STACK.use(recorder):
        yield recorder
