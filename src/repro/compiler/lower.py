"""Lowering: vertex IR → tensor IR.

The heart of the vertex-centric compilation.  Aggregation bodies are
normalized to a **sum of products** and each term is split by stage:

* source-stage factors  → the *payload*, computed entirely in node space;
* edge-stage factors    → per-edge scalar *weights* (attention scores,
  edge features);
* destination-stage factors → hoisted out of the aggregation
  (``Σ_e d·s_e = d·Σ_e s_e``);
* constants             → folded into the coefficient.

A term then lowers to ``spmm(weights, payload)`` — the node-space streaming
product that never materializes an ``E×F`` message tensor.  Terms add up by
linearity; ``mean`` divides by clamped in-degree; ``max`` lowers to the
dedicated max-aggregation op.

Widths are inferred statically ('s' = per-vertex scalar ``(N,)``,
'v' = per-vertex vector ``(N,F)``) so backward broadcasting is resolved at
compile time, and edge-stage computations are *verified* to be scalar —
a feature-wide per-edge value would be exactly the memory blow-up the
design avoids, so it is a compile error rather than a silent fallback.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.compiler.ir import Stage, VNode
from repro.compiler.symbols import TraceResult
from repro.compiler.tir import EW_BINARY, EW_UNARY, IMPLICIT_ONES, TOp, TProgram

__all__ = ["CompileError", "lower_trace"]


class CompileError(Exception):
    """A vertex program the compiler cannot (or refuses to) lower."""


@dataclass
class _Term:
    coef: float
    factors: list[VNode] = field(default_factory=list)


def _normalize(node: VNode) -> list[_Term]:
    """Expand an aggregation body into sum-of-products form."""
    if node.op == "add":
        return _normalize(node.args[0]) + _normalize(node.args[1])
    if node.op == "sub":
        neg = [_Term(-t.coef, t.factors) for t in _normalize(node.args[1])]
        return _normalize(node.args[0]) + neg
    if node.op == "neg":
        return [_Term(-t.coef, t.factors) for t in _normalize(node.args[0])]
    if node.op == "mul":
        left, right = _normalize(node.args[0]), _normalize(node.args[1])
        return [_Term(a.coef * b.coef, a.factors + b.factors) for a, b in itertools.product(left, right)]
    if node.op == "div":
        denom = node.args[1]
        if denom.op == "const":
            return [_Term(t.coef / denom.attrs["value"], t.factors) for t in _normalize(node.args[0])]
        recip = VNode.unary("recip", denom)
        return [_Term(t.coef, t.factors + [recip]) for t in _normalize(node.args[0])]
    if node.op == "const":
        return [_Term(node.attrs["value"])]
    return [_Term(1.0, [node])]


_UNARY_EVAL = {
    "neg": lambda x: -x,
    "exp": math.exp,
    "log": math.log,
    "tanh": math.tanh,
    "sigmoid": lambda x: 1.0 / (1.0 + math.exp(-x)),
    "relu": lambda x: max(x, 0.0),
    "leaky_relu": lambda x, slope=0.01: x if x > 0 else slope * x,
    "recip": lambda x: 1.0 / x,
}


class _Lowerer:
    def __init__(self, name: str, feature_widths: dict[str, str]) -> None:
        self.prog = TProgram(name)
        self.widths: dict[str, str] = {}  # buffer -> 's' | 'v'
        self.feature_widths = feature_widths
        self._memo: dict[int, str] = {}
        self._tmp = itertools.count()
        self._const_cache: dict[float, str] = {}

    # -- buffer helpers -------------------------------------------------
    def _fresh(self, prefix: str = "t") -> str:
        return f"{prefix}{next(self._tmp)}"

    def const_buf(self, value: float) -> str:
        buf = self._const_cache.get(value)
        if buf is None:
            buf = self._fresh("c")
            self.prog.consts[buf] = float(value)
            self.prog.spaces[buf] = "scalar"
            self.widths[buf] = "s"
            self._const_cache[value] = buf
        return buf

    def emit(self, kind: str, ins: tuple[str, ...], space: str, width: str, **attrs) -> str:
        out = self._fresh()
        self.prog.ops.append(TOp(kind, out, ins, attrs))
        self.prog.spaces[out] = space
        self.widths[out] = width
        return out

    def input_buf(self, node: VNode) -> str:
        if node.stage == Stage.EDGE:
            buf = f"e_{node.name}"
            kind = "edge"
            width = "s"
        else:
            buf = f"n_{node.name}"
            kind = "node"
            width = self.feature_widths.get(node.name, "v")
            if width not in ("s", "v"):
                raise CompileError(f"feature width for {node.name!r} must be 's' or 'v', got {width!r}")
        if buf not in self.prog.inputs:
            self.prog.inputs[buf] = (kind, node.name)
            self.prog.spaces[buf] = "edge" if kind == "edge" else "node"
            self.widths[buf] = width
        return buf

    # -- expression lowering ---------------------------------------------
    def lower_expr(self, node: VNode) -> str:
        cached = self._memo.get(id(node))
        if cached is not None:
            return cached
        buf = self._lower_expr_uncached(node)
        self._memo[id(node)] = buf
        return buf

    def _lower_expr_uncached(self, node: VNode) -> str:
        if node.op == "feat":
            return self.input_buf(node)
        if node.op == "const":
            return self.const_buf(node.attrs["value"])
        if node.op == "agg":
            return self.lower_agg(node)
        if node.op == "edge_softmax":
            body = self.to_edge_space(node.args[0])
            return self.emit("edge_softmax", (body,), "edge", "s")
        if node.op in EW_UNARY:
            arg = node.args[0]
            if arg.op == "const":
                fn = _UNARY_EVAL[node.op]
                args = (arg.attrs["value"],)
                if node.op == "leaky_relu":
                    return self.const_buf(fn(arg.attrs["value"], node.attrs.get("slope", 0.01)))
                return self.const_buf(fn(*args))
            if node.stage == Stage.EDGE:
                a = self.to_edge_space(arg)
                return self.emit("ew", (a,), "edge", "s", op=node.op, **node.attrs)
            a = self.lower_expr(arg)
            return self.emit("ew", (a,), self.prog.spaces[a], self.widths[a], op=node.op, **node.attrs)
        if node.op in EW_BINARY:
            if node.stage == Stage.EDGE:
                a = self.to_edge_space(node.args[0])
                b = self.to_edge_space(node.args[1])
                return self.emit("ew", (a, b), "edge", "s", op=node.op)
            a = self.lower_expr(node.args[0])
            b = self.lower_expr(node.args[1])
            width = "v" if "v" in (self.widths[a], self.widths[b]) else "s"
            space = "node" if "node" in (self.prog.spaces[a], self.prog.spaces[b]) else "scalar"
            return self.emit("ew", (a, b), space, width, op=node.op)
        raise CompileError(f"cannot lower op {node.op!r}")

    def to_edge_space(self, node: VNode) -> str:
        """Lower and coerce a value into per-edge scalar space."""
        if node.stage == Stage.EDGE or node.op == "edge_softmax":
            return self.lower_expr(node)
        buf = self.lower_expr(node)
        if self.prog.spaces[buf] == "edge":
            return buf
        if self.prog.spaces[buf] == "scalar":
            return buf  # runtime broadcasts python floats
        if self.widths[buf] != "s":
            raise CompileError(
                "edge-stage computations must be per-vertex scalars; "
                f"got a vector-width value from {node.op!r}. Feature-wide "
                "per-edge values would materialize E×F memory — restructure "
                "the expression so features stay in the aggregation payload."
            )
        kind = "gather_src" if node.stage == Stage.SRC else "gather_dst"
        return self.emit(kind, (buf,), "edge", "s")

    # -- aggregation lowering ----------------------------------------------
    def lower_agg(self, node: VNode) -> str:
        agg_op = node.attrs["agg_op"]
        direction = node.attrs.get("direction", "in")
        terms = _normalize(node.args[0])
        if agg_op == "max":
            if direction != "in":
                raise CompileError("max aggregation over out-neighbors is not supported")
            return self._lower_agg_max(terms)
        term_bufs = [self._lower_sum_term(t, direction) for t in terms]
        total = term_bufs[0]
        for buf in term_bufs[1:]:
            width = "v" if "v" in (self.widths[total], self.widths[buf]) else "s"
            total = self.emit("ew", (total, buf), "node", width, op="add")
        if agg_op == "mean":
            deg_kind = "in_deg_clamped" if direction == "in" else "out_deg_clamped"
            deg = self.emit(deg_kind, (), "node", "s")
            total = self.emit("ew", (total, deg), "node", self.widths[total], op="div")
        return total

    def _split_factors(self, term: _Term) -> tuple[list[VNode], list[VNode], list[VNode], float]:
        src, dst, edge = [], [], []
        coef = term.coef
        for f in term.factors:
            if f.stage == Stage.SRC:
                src.append(f)
            elif f.stage == Stage.DST:
                dst.append(f)
            elif f.stage == Stage.EDGE:
                edge.append(f)
            else:  # CONST-stage factor (e.g. recip of a constant expression)
                buf = self.lower_expr(f)
                coef *= self.prog.consts[buf]
        return src, dst, edge, coef

    def _product(self, factors: list[VNode], to_edge: bool = False) -> str | None:
        if not factors:
            return None
        bufs = [self.to_edge_space(f) if to_edge else self.lower_expr(f) for f in factors]
        out = bufs[0]
        for buf in bufs[1:]:
            space = "edge" if to_edge else "node"
            width = "s" if to_edge else ("v" if "v" in (self.widths[out], self.widths[buf]) else "s")
            out = self.emit("ew", (out, buf), space, width, op="mul")
        return out

    def _lower_sum_term(self, term: _Term, direction: str = "in") -> str:
        src_f, dst_f, edge_f, coef = self._split_factors(term)
        if direction == "out":
            # Out-direction aggregation supports literal edge-feature
            # weights (the matrix builder permutes them through the shared
            # labels); *computed* edge scores would need out-edge-grouped
            # segment ops, which the design restricts to the in direction.
            for f in edge_f:
                if f.op != "feat":
                    raise CompileError(
                        "out-neighbor aggregation supports raw edge-feature "
                        "weights only; computed per-edge scores (softmax, "
                        "activations) are in-direction constructs"
                    )
        payload = self._product(src_f)
        weight = self._product(edge_f, to_edge=True)
        if coef != 1.0:
            cbuf = self.const_buf(coef)
            if weight is not None:
                weight = self.emit("ew", (weight, cbuf), "edge", "s", op="mul")
            elif payload is not None:
                payload = self.emit(
                    "ew", (payload, cbuf), "node", self.widths[payload], op="mul"
                )
        if payload is not None:
            w_in = weight if weight is not None else IMPLICIT_ONES
            result = self.emit(
                "spmm", (w_in, payload), "node", self.widths[payload], direction=direction
            )
        elif weight is not None:
            kind = "segment_sum" if direction == "in" else "scatter_src"
            result = self.emit(kind, (weight,), "node", "s")
        else:
            # Σ over edges of a bare constant: coef · degree.
            deg = self.emit("in_deg" if direction == "in" else "out_deg", (), "node", "s")
            cbuf = self.const_buf(coef)
            result = self.emit("ew", (deg, cbuf), "node", "s", op="mul")
        for f in dst_f:
            buf = self.lower_expr(f)
            width = "v" if "v" in (self.widths[result], self.widths[buf]) else "s"
            result = self.emit("ew", (result, buf), "node", width, op="mul")
        return result

    def _lower_agg_max(self, terms: list[_Term]) -> str:
        if len(terms) != 1:
            raise CompileError("max aggregation over a sum of terms is not supported")
        src_f, dst_f, edge_f, coef = self._split_factors(terms[0])
        if edge_f or dst_f:
            raise CompileError(
                "max aggregation supports a source-stage payload only "
                "(edge weights and destination factors have no max-linearity)"
            )
        payload = self._product(src_f)
        if payload is None:
            raise CompileError("max aggregation needs a neighbor-dependent payload")
        if coef != 1.0:
            cbuf = self.const_buf(coef)
            payload = self.emit("ew", (payload, cbuf), "node", self.widths[payload], op="mul")
        return self.emit("agg_max", (payload,), "node", self.widths[payload])


def lower_trace(
    traced: TraceResult,
    feature_widths: dict[str, str],
    name: str = "vertex_program",
) -> tuple[TProgram, dict[str, str]]:
    """Lower a traced vertex function to a forward tensor program.

    ``feature_widths`` declares each node feature as 's' (per-vertex scalar)
    or 'v' (per-vertex feature vector); undeclared features default to 'v'.
    Returns the program and the inferred buffer-width table (consumed by
    autodiff for broadcast resolution).
    """
    lowerer = _Lowerer(name, feature_widths)
    out = lowerer.lower_expr(traced.root)
    if lowerer.prog.spaces[out] != "node":
        raise CompileError("vertex program must produce a per-vertex (node-space) output")
    lowerer.prog.outputs = [out]
    lowerer.prog.validate()
    return lowerer.prog, lowerer.widths
